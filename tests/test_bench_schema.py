"""The shared benchmark JSON schema: one writer, one envelope, every bench.

Two enforcement layers:

* the writer (``bench_common.write_bench_json``) always produces the full
  :data:`bench_common.BENCH_SCHEMA` envelope, with structured sweeps in
  the facade's ``SweepResultSet`` schema round-tripping losslessly;
* a source scan proves no ``bench_*`` module writes JSON on the side —
  the only way benchmark output reaches disk is the shared writer.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.analysis import SweepResult
from repro.api import SWEEP_SCHEMA, SweepResultSet

BENCHMARKS_DIR = Path(__file__).parent.parent / "benchmarks"


@pytest.fixture(scope="module")
def bench_common():
    spec = importlib.util.spec_from_file_location(
        "bench_common", BENCHMARKS_DIR / "bench_common.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_common", module)
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def sample_sweep() -> SweepResultSet:
    return SweepResultSet(
        results=(
            SweepResult(
                method="SOLH",
                eps_values=[0.2, 0.8],
                means=[1.5e-6, float("nan")],
                stds=[2.0e-7, float("nan")],
            ),
        ),
        eps_values=(0.2, 0.8),
        delta=1e-9,
        repeats=5,
        workers=2,
        metric="mse",
        d=16,
        n=20_000,
    )


REQUIRED_KEYS = {
    "schema", "name", "params", "elapsed_seconds", "table", "sweep", "extra",
}
REQUIRED_PARAMS = {"scale", "repeats", "seed", "workers", "shards"}


class TestEnvelope:
    def test_all_keys_always_present(self, bench_common, tmp_path):
        target = bench_common.write_bench_json(
            "unit_test_bench",
            bench_common.BenchResult(table="a table"),
            path=tmp_path / "record.json",
        )
        payload = json.loads(target.read_text())
        assert set(payload) == REQUIRED_KEYS
        assert payload["schema"] == bench_common.BENCH_SCHEMA
        assert set(payload["params"]) == REQUIRED_PARAMS
        assert payload["sweep"] is None
        assert payload["extra"] == {}
        assert payload["table"] == "a table"

    def test_sweep_embeds_and_round_trips(
        self, bench_common, sample_sweep, tmp_path
    ):
        target = bench_common.write_bench_json(
            "unit_test_bench",
            bench_common.BenchResult(
                table="t", sweep=sample_sweep, extra={"k": 1}
            ),
            elapsed=1.25,
            path=tmp_path / "record.json",
        )
        text = target.read_text()
        assert "NaN" not in text  # strict RFC-8259 JSON for non-Python tools
        payload = json.loads(text)
        assert payload["sweep"]["schema"] == SWEEP_SCHEMA
        assert payload["elapsed_seconds"] == 1.25
        assert payload["extra"] == {"k": 1}
        back = SweepResultSet.from_dict(payload["sweep"])
        assert back.methods == ("SOLH",)
        assert back.table() == sample_sweep.table()  # NaN cells survive

    def test_emit_writes_both_artifacts(
        self, bench_common, sample_sweep, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setattr(bench_common, "RESULTS_DIR", tmp_path)
        bench_common.emit(
            "unit_test_bench",
            bench_common.BenchResult(table="the table", sweep=sample_sweep),
        )
        assert "the table" in capsys.readouterr().out
        assert (tmp_path / "unit_test_bench.txt").exists()
        payload = json.loads((tmp_path / "unit_test_bench.json").read_text())
        assert payload["schema"] == bench_common.BENCH_SCHEMA

    def test_emit_accepts_plain_string(
        self, bench_common, tmp_path, monkeypatch
    ):
        # Backwards compatibility: most benches still pass a table string.
        monkeypatch.setattr(bench_common, "RESULTS_DIR", tmp_path)
        bench_common.emit("unit_test_bench", "bare text")
        payload = json.loads((tmp_path / "unit_test_bench.json").read_text())
        assert payload["table"] == "bare text"
        assert payload["sweep"] is None


class TestSingleWriter:
    def test_no_bench_writes_json_on_the_side(self):
        offenders = []
        for path in sorted(BENCHMARKS_DIR.glob("bench_*.py")):
            if path.name == "bench_common.py":
                continue
            source = path.read_text()
            if "json.dump" in source or "emit_json" in source:
                offenders.append(path.name)
        assert not offenders, (
            f"benchmarks must emit JSON only through bench_common's shared "
            f"writer; offenders: {offenders}"
        )

    def test_every_bench_routes_through_emit(self):
        missing = []
        for path in sorted(BENCHMARKS_DIR.glob("bench_*.py")):
            if path.name == "bench_common.py":
                continue
            if "emit(" not in path.read_text():
                missing.append(path.name)
        assert not missing, f"benches not using the shared writer: {missing}"
