"""Unit tests for the stdlib HTTP/1.1 layer (parsing, limits, framing)."""

import asyncio
import json

import pytest

from repro.server.http import (
    HttpError,
    Request,
    error_bytes,
    read_request,
    response_bytes,
)


def _parse(raw: bytes, **limits):
    """Feed raw bytes into a fresh StreamReader and parse one request."""

    async def run():
        reader = asyncio.StreamReader(limit=256 * 1024)
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **limits)

    return asyncio.run(run())


def _parse_error(raw: bytes, **limits) -> HttpError:
    with pytest.raises(HttpError) as caught:
        _parse(raw, **limits)
    return caught.value


def test_simple_get_with_query():
    request = _parse(b"GET /api/estimates?limit=5&sort=-epoch HTTP/1.1\r\n"
                     b"Host: x\r\n\r\n")
    assert request.method == "GET"
    assert request.path == "/api/estimates"
    assert request.param("limit") == "5"
    assert request.param("sort") == "-epoch"
    assert request.param("missing") is None
    assert request.keep_alive  # HTTP/1.1 default


def test_post_with_body():
    body = json.dumps({"values": [1, 2, 3]}).encode()
    request = _parse(
        b"POST /api/reports HTTP/1.1\r\n"
        + f"Content-Length: {len(body)}\r\n\r\n".encode() + body
    )
    assert request.method == "POST"
    assert request.json() == {"values": [1, 2, 3]}


def test_keep_alive_negotiation():
    closed = _parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
    assert not closed.keep_alive
    old = _parse(b"GET / HTTP/1.0\r\n\r\n")
    assert not old.keep_alive  # HTTP/1.0 closes by default
    old_keep = _parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
    assert old_keep.keep_alive


def test_clean_eof_returns_none():
    assert _parse(b"") is None


def test_mid_request_eof_is_400():
    assert _parse_error(b"GET / HTTP/1.1\r\nHost").status == 400


def test_malformed_request_line_is_400():
    assert _parse_error(b"NONSENSE\r\n\r\n").status == 400


def test_unsupported_protocol_is_501():
    assert _parse_error(b"GET / HTTP/2\r\n\r\n").status == 501


def test_chunked_upload_is_501():
    error = _parse_error(
        b"POST /api/reports HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
    )
    assert error.status == 501


def test_post_without_content_length_is_411():
    assert _parse_error(b"POST /api/reports HTTP/1.1\r\n\r\n").status == 411


def test_oversized_declared_body_is_413():
    error = _parse_error(
        b"POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n",
        max_body_bytes=1024,
    )
    assert error.status == 413
    assert error.close


def test_header_block_over_limit_is_431():
    padding = b"X-Pad: " + b"a" * 20_000 + b"\r\n"
    error = _parse_error(
        b"GET / HTTP/1.1\r\n" + padding + b"\r\n",
        max_header_bytes=16 * 1024,
    )
    assert error.status == 431
    assert error.close


def test_invalid_content_length_is_400():
    error = _parse_error(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
    assert error.status == 400


def test_repeated_query_param_is_400():
    request = _parse(b"GET /api/estimates?limit=1&limit=2 HTTP/1.1\r\n\r\n")
    with pytest.raises(HttpError) as caught:
        request.param("limit")
    assert caught.value.status == 400
    assert caught.value.field == "limit"


def test_non_object_json_body_is_400():
    request = Request(method="POST", path="/", body=b"[1, 2]")
    with pytest.raises(HttpError) as caught:
        request.json()
    assert caught.value.status == 400
    assert caught.value.field == "body"
    broken = Request(method="POST", path="/", body=b"{nope")
    with pytest.raises(HttpError):
        broken.json()


def test_response_bytes_round_trip():
    raw = response_bytes(200, {"ok": True}, keep_alive=True,
                         headers=(("X-Extra", "1"),))
    head, __, body = raw.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.1 200 OK")
    assert b"X-Extra: 1" in head
    assert b"Connection: keep-alive" in head
    assert json.loads(body) == {"ok": True}
    assert f"Content-Length: {len(body)}".encode() in head


def test_error_bytes_carry_field_and_close():
    error = HttpError(400, "bad", field="values", close=True)
    raw = error_bytes(error, keep_alive=True)
    head, __, body = raw.partition(b"\r\n\r\n")
    assert b"Connection: close" in head  # close overrides keep_alive
    payload = json.loads(body)
    assert payload == {
        "error": {"status": 400, "message": "bad", "field": "values"}
    }
    assert "values: bad" in str(error)


def test_retry_after_header_on_429():
    raw = error_bytes(
        HttpError(429, "full", headers=(("Retry-After", "3"),))
    )
    assert b"Retry-After: 3" in raw.partition(b"\r\n\r\n")[0]
