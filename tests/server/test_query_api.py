"""Edge cases of ``GET /api/estimates``: pagination, cursors, sorting,
empty stores, and queries racing concurrent uploads."""

import asyncio

import numpy as np

from repro.api import DeploymentConfig, PrivacyBudget, ShuffleSession
from repro.server import MAX_LIMIT, ServerClient, fetch_all_estimates

D = 8
SEED = 11
EPOCH_BATCHES = 3
BATCH = 100


def _serve(**kwargs):
    options = dict(port=0, epoch_size=300, admitted_epochs=6, seed=SEED)
    options.update(kwargs)
    return ShuffleSession(
        DeploymentConfig(mechanism="auto", d=D),
        PrivacyBudget(eps=1.0, delta=1e-9),
    ).serve(100, **options)


async def _feed_epochs(client, epochs: int) -> None:
    rng = np.random.default_rng(7)
    for __ in range(epochs):
        for __ in range(EPOCH_BATCHES):
            response = await client.submit(rng.integers(0, D, size=BATCH))
            assert response.status == 202
        await client.close_epoch()


def _query_test(test_body, epochs: int = 0):
    """Run one async test body against a served (and optionally fed) API."""

    async def run():
        async with _serve() as server:
            async with ServerClient("127.0.0.1", server.port) as client:
                if epochs:
                    await _feed_epochs(client, epochs)
                await test_body(client)

    asyncio.run(run())


def test_empty_state_store_is_an_empty_page():
    async def body(client):
        page = await client.estimates()
        assert page["items"] == []
        assert page["page"] == {
            "total": 0, "limit": 50, "offset": 0,
            "next_cursor": None, "has_more": False,
        }
        # a cursor into an empty log is also just an empty page
        page = await client.estimates(cursor="5|0")
        assert page["items"] == []

    _query_test(body)


def test_limit_is_clamped_to_max():
    async def body(client):
        page = await client.estimates(limit=100_000)
        assert page["page"]["limit"] == MAX_LIMIT
        assert len(page["items"]) == min(MAX_LIMIT, 2 * D)
        zero = await client.request("GET", "/api/estimates?limit=0")
        assert zero.status == 400
        assert zero.body["error"]["field"] == "limit"

    _query_test(body, epochs=2)


def test_offset_past_end_is_empty_not_error():
    async def body(client):
        page = await client.estimates(offset=10_000)
        assert page["items"] == []
        assert page["page"]["total"] == 2 * D
        assert page["page"]["has_more"] is False
        assert page["page"]["next_cursor"] is None

    _query_test(body, epochs=2)


def test_cursor_walk_reads_every_row_exactly_once():
    async def body(client):
        paged = []
        cursor = None
        pages = 0
        while True:
            params = {"limit": 3}
            if cursor is not None:
                params["cursor"] = cursor
            page = await client.estimates(**params)
            paged.extend(page["items"])
            pages += 1
            cursor = page["page"]["next_cursor"]
            if not page["page"]["has_more"]:
                break
        everything = (await client.estimates(limit=200))["items"]
        assert paged == everything
        assert pages == (2 * D + 2) // 3
        keys = [(item["epoch"], item["index"]) for item in paged]
        assert keys == sorted(keys)  # canonical order, no dupes

    _query_test(body, epochs=2)


def test_cursor_past_last_epoch_is_empty():
    async def body(client):
        page = await client.estimates(cursor="999|0")
        assert page["items"] == []
        assert page["page"]["has_more"] is False

    _query_test(body, epochs=1)


def test_malformed_cursor_is_400():
    async def body(client):
        for bad in ("zap", "1|2|3", "1|-2", "a|b", "|"):
            response = await client.request(
                "GET", f"/api/estimates?cursor={bad}"
            )
            assert response.status == 400, bad
            assert response.body["error"]["field"] == "cursor"

    _query_test(body, epochs=1)


def test_invalid_sort_field_is_400():
    async def body(client):
        for bad in ("bogus", "epoch,bogus", "estimate:sideways", ","):
            response = await client.request(
                "GET", f"/api/estimates?sort={bad}"
            )
            assert response.status == 400, bad
            assert response.body["error"]["field"] == "sort"

    _query_test(body, epochs=1)


def test_sort_directions_and_cursor_exclusivity():
    async def body(client):
        descending = await client.estimates(sort="-estimate", limit=200)
        values = [item["estimate"] for item in descending["items"]]
        assert values == sorted(values, reverse=True)
        spelled = await client.estimates(sort="estimate:desc", limit=200)
        assert spelled["items"] == descending["items"]
        # non-default sort never emits a cursor, and refuses one
        assert descending["page"]["next_cursor"] is None
        refused = await client.request(
            "GET", "/api/estimates?sort=-estimate&cursor=0|0"
        )
        assert refused.status == 400
        assert refused.body["error"]["field"] == "cursor"

    _query_test(body, epochs=1)


def test_epoch_filter():
    async def body(client):
        page = await client.estimates(epoch=1, limit=200)
        assert len(page["items"]) == D
        assert all(item["epoch"] == 1 for item in page["items"])

    _query_test(body, epochs=2)


def test_concurrent_upload_while_query():
    """Queries interleave with uploads without errors, and the final
    pages settle at the complete, canonically ordered log."""

    async def run():
        async with _serve() as server:
            async with ServerClient("127.0.0.1", server.port) as writer:
                reader = ServerClient("127.0.0.1", server.port)
                async with reader:
                    stop = asyncio.Event()
                    observed = []

                    async def query_loop():
                        while not stop.is_set():
                            page = await reader.estimates(limit=200)
                            observed.append(page["page"]["total"])
                            await asyncio.sleep(0.001)

                    querier = asyncio.create_task(query_loop())
                    await _feed_epochs(writer, 3)
                    stop.set()
                    await querier
                    # totals only ever grow, in whole epochs
                    assert all(total % D == 0 for total in observed)
                    assert observed == sorted(observed)
                    final = await fetch_all_estimates(reader)
                    assert len(final) == 3 * D
                    keys = [(i["epoch"], i["index"]) for i in final]
                    assert keys == sorted(keys)

    asyncio.run(run())
