"""End-to-end tests of the HTTP front door: routing, validation,
backpressure, failure containment, and the HTTP ≡ in-process identity."""

import asyncio
import json
import threading
from types import SimpleNamespace

import numpy as np
import pytest

from repro import faults
from repro.api import ConfigError, DeploymentConfig, PrivacyBudget, ShuffleSession
from repro.faults import ENV_VAR
from repro.persistence import MemoryStateStore, SqliteStateStore
from repro.persistence.records import config_from_dict
from repro.server import ServerClient, ServerConfig, TelemetryServer
from repro.service import TelemetryPipeline
from repro.service.pipeline import EpochReport

D = 8
SEED = 11


@pytest.fixture(autouse=True)
def _clean_failpoints(monkeypatch):
    """Failpoints never leak across tests (parent registry and env)."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    faults.disarm()
    yield
    faults.disarm()


def _session() -> ShuffleSession:
    return ShuffleSession(
        DeploymentConfig(mechanism="auto", d=D),
        PrivacyBudget(eps=1.0, delta=1e-9),
    )


def _serve(**kwargs):
    """A real pipeline behind a front door on a free port."""
    options = dict(
        port=0, epoch_size=300, admitted_epochs=4, seed=SEED,
    )
    options.update(kwargs)
    return _session().serve(100, **options)


class StubPipeline:
    """A pipeline double whose submit can block (gate) or blow up (fail)."""

    def __init__(self, gate=None, fail=False):
        self.config = SimpleNamespace(d=D)
        self.store = MemoryStateStore()
        self.epochs_completed = 0
        self.exhausted = False
        self.received = []
        self.gate = gate
        self.fail = fail
        self.closed = False

    def submit(self, values):
        if self.gate is not None:
            self.gate.wait(timeout=30)
        if self.fail:
            raise RuntimeError("synthetic pipeline failure")
        self.received.append(np.asarray(values))

    def end_epoch(self):
        self.epochs_completed += 1
        return EpochReport(
            epoch=self.epochs_completed - 1, n_flushes=0, n_rejected=0,
            n_reports=0, n_fake=0, flush_latency_s=0.0,
            reports_per_sec=0.0, eps_spent=0.0, delta_spent=0.0,
        )

    def close(self):
        self.closed = True


def test_server_config_names_bad_fields():
    with pytest.raises(ConfigError, match="port"):
        ServerConfig(port=-1)
    with pytest.raises(ConfigError, match="max_pending"):
        ServerConfig(max_pending=0)
    with pytest.raises(ConfigError, match="retry_after_s"):
        ServerConfig(retry_after_s=0.0)
    with pytest.raises(ConfigError, match="max_body_bytes"):
        _session().serve(100, max_body_bytes=10)


def test_health_config_and_epoch_close():
    async def run():
        async with _serve() as server:
            assert server.port != 0  # port=0 resolved to the bound port
            async with ServerClient("127.0.0.1", server.port) as client:
                health = await client.health()
                assert health["status"] == "ok"
                assert health["epochs_completed"] == 0
                config = await client.config()
                assert config["server"]["max_pending"] == 64
                # the served deployment round-trips into a real config
                assert config_from_dict(config["deployment"]).d == D
                response = await client.submit([1, 2, 3, 4, 5])
                assert response.status == 202
                assert response.body["submit_seq"] == 0
                report = await client.close_epoch()
                assert report["epoch"] == 0
                assert report["n_reports"] == 5
                health = await client.health()
                assert health["epochs_completed"] == 1
                assert health["accepted_reports"] == 5

    asyncio.run(run())


def test_validation_and_routing_errors():
    async def run():
        async with _serve() as server:
            async with ServerClient("127.0.0.1", server.port) as client:
                cases = [
                    ({"nope": 1}, "values"),        # missing key
                    ({"values": []}, "values"),     # empty
                    ({"values": "abc"}, "values"),  # not an array
                    ({"values": [0.5]}, "values"),  # non-integer
                    ({"values": [True]}, "values"),  # boolean
                    ({"values": [D]}, "values"),    # out of domain
                    ({"values": [-1]}, "values"),   # negative
                ]
                for payload, field in cases:
                    response = await client.request(
                        "POST", "/api/reports", payload
                    )
                    assert response.status == 400, payload
                    assert response.body["error"]["field"] == field
                not_found = await client.request("GET", "/nope")
                assert not_found.status == 404
                wrong_verb = await client.request(
                    "GET", "/api/reports"
                )
                assert wrong_verb.status == 405
                assert wrong_verb.headers["allow"] == "POST"
                # nothing above ever reached the pipeline
                health = await client.health()
                assert health["accepted_batches"] == 0

    asyncio.run(run())


def test_malformed_json_body_is_400():
    async def run():
        async with _serve() as server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            body = b"{not json"
            writer.write(
                b"POST /api/reports HTTP/1.1\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode() + body
            )
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            assert b"400" in head.split(b"\r\n", 1)[0]
            writer.close()
            await writer.wait_closed()

    asyncio.run(run())


def test_oversized_body_is_413():
    async def run():
        async with _serve(max_body_bytes=2048) as server:
            async with ServerClient("127.0.0.1", server.port) as client:
                response = await client.submit([1] * 2000)
                assert response.status == 413
                # framing errors close the connection...
                assert response.headers["connection"] == "close"
                # ...and the client transparently reconnects
                ok = await client.submit([1, 2, 3])
                assert ok.status == 202

    asyncio.run(run())


def test_backpressure_never_drops_an_accepted_report():
    """Fill the bounded queue: overflow gets 429 + Retry-After, every
    202-acknowledged batch reaches the pipeline once unblocked."""
    gate = threading.Event()
    stub = StubPipeline(gate=gate)

    async def run():
        server = TelemetryServer(
            lambda: stub, ServerConfig(port=0, max_pending=2, retry_after_s=2)
        )
        async with server:
            async with ServerClient("127.0.0.1", server.port) as client:
                accepted = []
                refused = None
                for attempt in range(50):
                    response = await client.submit([attempt % D])
                    if response.status == 202:
                        accepted.append(attempt % D)
                    elif response.status == 429:
                        refused = response
                        break
                    else:
                        raise AssertionError(response.status)
                assert refused is not None, "queue never filled"
                assert refused.retry_after() == 2.0
                assert refused.body["error"]["status"] == 429
                # unblock the pipeline and wait for the queue to drain
                gate.set()
                for __ in range(200):
                    health = await client.health()
                    if health["pending"] == 0:
                        break
                    await asyncio.sleep(0.01)
                assert health["pending"] == 0
                assert health["rejected_429"] >= 1
                # a retry of the refused batch is accepted now
                retry = await client.submit([0])
                assert retry.status == 202
                accepted.append(0)
        # every 202 reached the pipeline, in acceptance order
        applied = [int(batch[0]) for batch in stub.received]
        assert applied == accepted
        assert stub.closed  # stop() closed the pipeline

    asyncio.run(run())


def test_pipeline_failure_is_contained():
    stub = StubPipeline(fail=True)

    async def run():
        server = TelemetryServer(
            lambda: stub, ServerConfig(port=0, max_pending=4)
        )
        async with server:
            async with ServerClient("127.0.0.1", server.port) as client:
                assert (await client.submit([1])).status == 202
                for __ in range(200):
                    health = await client.health()
                    if health["status"] == "failed":
                        break
                    await asyncio.sleep(0.01)
                assert health["status"] == "failed"
                assert health["failed_batches"] == 1
                assert "synthetic pipeline failure" in health["failure"]
                # the server refuses new work rather than corrupting state
                assert (await client.submit([1])).status == 503
                epoch = await client.request("POST", "/api/epochs")
                assert epoch.status == 503

    asyncio.run(run())


def test_ingest_crash_recovers_from_durable_store(tmp_path):
    """The self-healing contract: with a durable store *factory*, an
    ingest crash resumes from the write-ahead log — the crashed batch is
    dropped (it was never applied), health returns to ok, and the served
    estimates equal an in-process replay of the surviving batches."""
    faults.install(["server.ingest:raise:at=2"], export_env=False)

    async def run():
        server = _serve(
            store=lambda: SqliteStateStore(str(tmp_path / "state.db")),
            max_recoveries=3,
            recovery_backoff_s=0.01,
        )
        async with server:
            async with ServerClient("127.0.0.1", server.port) as client:
                deployment = (await client.config())["deployment"]
                rng = np.random.default_rng(99)
                recorded = []
                for __ in range(3):  # epoch 0; the 3rd batch crashes
                    values = rng.integers(0, D, size=100)
                    response = await client.submit(values)
                    assert response.status == 202
                    recorded.append((response.body["submit_seq"], values))
                for __ in range(500):
                    health = await client.health()
                    if health["recoveries"] == 1 and health["status"] == "ok":
                        break
                    await asyncio.sleep(0.01)
                assert health["status"] == "ok"
                assert health["recoveries"] == 1
                assert health["recovery_attempts"] >= 1
                assert health["failed_batches"] == 1
                await client.close_epoch()
                for __ in range(3):  # epoch 1, on the resumed pipeline
                    values = rng.integers(0, D, size=100)
                    response = await client.submit(values)
                    assert response.status == 202
                    recorded.append((response.body["submit_seq"], values))
                await client.close_epoch()
                page = await client.estimates(limit=200)
                assert page["page"]["total"] == 2 * D
                served = {}
                for item in page["items"]:
                    served.setdefault(item["epoch"], []).append(
                        item["estimate"]
                    )
        return deployment, recorded, served

    deployment, recorded, served = asyncio.run(run())
    # The crashed batch (submit_seq 2, injected at=2) never reached the
    # pipeline: the replay feeds every *surviving* batch in seq order.
    config = config_from_dict(deployment)
    pipeline = TelemetryPipeline(config, np.random.default_rng(SEED))
    surviving = [
        (seq, values)
        for seq, values in sorted(recorded, key=lambda pair: pair[0])
        if seq != 2
    ]
    assert len(surviving) == 5
    for i, (__, values) in enumerate(surviving):
        pipeline.submit(values)
        if i in (1, 4):  # epoch 0 kept 2 batches, epoch 1 all 3
            pipeline.end_epoch()
    replayed = {
        int(epoch): [float(x) for x in estimates]
        for epoch, estimates in pipeline.store.epoch_log()
    }
    assert served == replayed


def test_ingest_crash_without_durable_store_stays_failed():
    """A store *instance*-free memory factory cannot be resumed: the
    recovery path reports unsupported and the server keeps the
    fail-hard 503 contract."""
    faults.install(["server.ingest:raise:once"], export_env=False)

    async def run():
        server = _serve(
            store=lambda: MemoryStateStore(),
            max_recoveries=3,
            recovery_backoff_s=0.01,
        )
        async with server:
            async with ServerClient("127.0.0.1", server.port) as client:
                assert (await client.submit([1])).status == 202
                for __ in range(500):
                    health = await client.health()
                    if health["status"] == "failed":
                        break
                    await asyncio.sleep(0.01)
                assert health["status"] == "failed"
                assert health["recoveries"] == 0
                assert health["recovery_attempts"] >= 1
                assert (await client.submit([1])).status == 503

    asyncio.run(run())


def test_http_ingest_matches_in_process_replay():
    """The acceptance identity, in miniature: estimates served over HTTP
    equal a same-seed in-process run fed the recorded submit order."""

    async def run():
        async with _serve() as server:
            async with ServerClient("127.0.0.1", server.port) as client:
                deployment = (await client.config())["deployment"]
                rng = np.random.default_rng(99)
                recorded = []
                for __ in range(2):  # epochs
                    for __ in range(3):  # batches
                        values = rng.integers(0, D, size=100)
                        response = await client.submit(values)
                        assert response.status == 202
                        recorded.append(
                            (response.body["submit_seq"], values)
                        )
                    await client.close_epoch()
                page = await client.estimates(limit=200)
                assert page["page"]["total"] == 2 * D
                served = {}
                for item in page["items"]:
                    served.setdefault(item["epoch"], []).append(
                        item["estimate"]
                    )
        return deployment, recorded, served

    deployment, recorded, served = asyncio.run(run())
    config = config_from_dict(deployment)
    pipeline = TelemetryPipeline(config, np.random.default_rng(SEED))
    ordered = sorted(recorded, key=lambda pair: pair[0])
    for i, (__, values) in enumerate(ordered):
        pipeline.submit(values)
        if (i + 1) % 3 == 0:  # the recorded runs closed every 3rd batch
            pipeline.end_epoch()
    replayed = {
        int(epoch): [float(x) for x in estimates]
        for epoch, estimates in pipeline.store.epoch_log()
    }
    assert served == replayed


def test_stop_is_idempotent_and_drains():
    async def run():
        server = _serve()
        await server.start()
        client = ServerClient("127.0.0.1", server.port)
        async with client:
            assert (await client.submit([1, 2])).status == 202
        await server.stop()
        await server.stop()  # idempotent
        assert server.pipeline is None

    asyncio.run(run())
