"""AES-128-CBC against FIPS-197 / NIST SP 800-38A vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import AES128CBC
from repro.crypto.aes import pkcs7_pad, pkcs7_unpad


class TestFIPS197:
    def test_single_block_encrypt(self):
        cipher = AES128CBC(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
        ct = cipher.encrypt_block_raw(
            bytes.fromhex("00112233445566778899aabbccddeeff")
        )
        assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_single_block_decrypt(self):
        cipher = AES128CBC(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
        pt = cipher.decrypt_block_raw(
            bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        )
        assert pt.hex() == "00112233445566778899aabbccddeeff"

    def test_appendix_b_vector(self):
        cipher = AES128CBC(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        ct = cipher.encrypt_block_raw(
            bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        )
        assert ct.hex() == "3925841d02dc09fbdc118597196a0b32"


class TestSP80038A:
    """NIST SP 800-38A F.2.1 CBC-AES128 vectors."""

    KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    IV = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    BLOCKS = [
        ("6bc1bee22e409f96e93d7e117393172a", "7649abac8119b246cee98e9b12e9197d"),
        ("ae2d8a571e03ac9c9eb76fac45af8e51", "5086cb9b507219ee95db113a917678b2"),
        ("f69f2445df4f9b17ad2b417be66c3710", "b2eb05e2c39be9fcda6c19078c6a9d1b"),
    ]

    def test_chained_blocks(self):
        plaintext = b"".join(bytes.fromhex(p) for p, __ in self.BLOCKS[:3])
        # Skipping block 3 of the NIST chain (we use 3 of 4 blocks).
        ciphertext = AES128CBC(self.KEY).encrypt(plaintext, self.IV)
        expected_first = bytes.fromhex(self.BLOCKS[0][1])
        assert ciphertext[:16] == expected_first
        # Second block chains on the first ciphertext block.
        expected_second = bytes.fromhex(
            "5086cb9b507219ee95db113a917678b2"
        )
        assert ciphertext[16:32] == expected_second

    def test_decrypt_inverts(self):
        plaintext = bytes.fromhex(self.BLOCKS[0][0])
        ct = AES128CBC(self.KEY).encrypt(plaintext, self.IV)
        assert AES128CBC(self.KEY).decrypt(ct, self.IV) == plaintext


class TestCBCBehaviour:
    KEY = b"0123456789abcdef"
    IV = b"fedcba9876543210"

    def test_roundtrip_various_lengths(self):
        cipher = AES128CBC(self.KEY)
        for length in (0, 1, 15, 16, 17, 100):
            message = bytes(range(256))[:length]
            assert cipher.decrypt(cipher.encrypt(message, self.IV), self.IV) == message

    def test_padding_always_added(self):
        cipher = AES128CBC(self.KEY)
        # 16-byte input -> 32-byte ciphertext (full padding block).
        assert len(cipher.encrypt(b"x" * 16, self.IV)) == 32

    def test_wrong_iv_fails_or_garbles(self):
        cipher = AES128CBC(self.KEY)
        ct = cipher.encrypt(b"hello world, this is a test!", self.IV)
        try:
            wrong = cipher.decrypt(ct, b"0" * 16)
            assert wrong != b"hello world, this is a test!"
        except ValueError:
            pass  # padding check caught it

    def test_rejects_bad_iv_length(self):
        cipher = AES128CBC(self.KEY)
        with pytest.raises(ValueError):
            cipher.encrypt(b"data", b"short")

    def test_rejects_partial_ciphertext(self):
        cipher = AES128CBC(self.KEY)
        with pytest.raises(ValueError):
            cipher.decrypt(b"12345", self.IV)

    def test_rejects_bad_key_length(self):
        with pytest.raises(ValueError):
            AES128CBC(b"short")


class TestPKCS7:
    def test_pad_length(self):
        assert pkcs7_pad(b"abc") == b"abc" + bytes([13]) * 13

    def test_full_block_pad(self):
        assert pkcs7_pad(b"x" * 16)[-16:] == bytes([16]) * 16

    def test_unpad_roundtrip(self):
        for length in range(0, 33):
            data = b"q" * length
            assert pkcs7_unpad(pkcs7_pad(data)) == data

    def test_unpad_rejects_garbage(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(b"x" * 15 + bytes([3]))
        with pytest.raises(ValueError):
            pkcs7_unpad(b"")


@given(message=st.binary(max_size=200))
@settings(max_examples=50, deadline=None)
def test_cbc_roundtrip_property(message):
    """Property: decrypt(encrypt(m)) == m for arbitrary messages."""
    cipher = AES128CBC(b"0123456789abcdef")
    iv = b"fedcba9876543210"
    assert cipher.decrypt(cipher.encrypt(message, iv), iv) == message
