"""Additive secret sharing over Z_M."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    add_share_vectors,
    reconstruct_value,
    reconstruct_vector,
    share_value,
    share_vector,
)


class TestScalar:
    def test_roundtrip(self, rng):
        shares = share_value(12345, 3, 2**16, rng)
        assert reconstruct_value(shares, 2**16) == 12345

    def test_share_count(self, rng):
        assert len(share_value(7, 5, 100, rng)) == 5

    def test_rejects_single_share(self, rng):
        with pytest.raises(ValueError):
            share_value(7, 1, 100, rng)

    def test_shares_in_range(self, rng):
        for __ in range(20):
            shares = share_value(50, 4, 97, rng)
            assert all(0 <= s < 97 for s in shares)


class TestVector:
    def test_roundtrip_int64(self, rng):
        values = rng.integers(0, 2**32, 100, dtype=np.int64)
        shares = share_vector(values, 4, 2**32, rng)
        assert (reconstruct_vector(shares, 2**32) == values).all()

    def test_roundtrip_big_modulus(self, rng):
        modulus = (1 << 64) * 12  # exceeds int64: object path
        values = np.array([modulus - 1, 0, 1, modulus // 2], dtype=object)
        shares = share_vector(values, 3, modulus, rng)
        assert list(reconstruct_vector(shares, modulus)) == list(values)

    def test_uint64_above_int64_reduced_exactly(self, rng):
        # Regression: a plain int64 cast would wrap 2^63 + 5 to a negative
        # value and share the wrong residue.
        values = np.array([2**63 + 5, 2**64 - 1, 0], dtype=np.uint64)
        shares = share_vector(values, 2, 11, rng)
        expected = [int(v) % 11 for v in values]
        assert list(reconstruct_vector(shares, 11)) == expected

    def test_object_values_above_int64_small_modulus(self, rng):
        # Same regression guard via the object-dtype path.
        values = np.array([2**70 + 3, 2**63 + 5], dtype=object)
        shares = share_vector(values, 3, 97, rng)
        expected = [int(v) % 97 for v in values]
        assert list(reconstruct_vector(shares, 97)) == expected

    def test_single_missing_share_is_uninformative(self, rng):
        # Without one share the partial sum is uniform: check statistically
        # that partial sums of a fixed secret cover the group.
        partials = []
        for __ in range(2000):
            shares = share_vector(np.array([5]), 3, 16, rng)
            partials.append(int((shares[0][0] + shares[1][0]) % 16))
        counts = np.bincount(partials, minlength=16)
        assert counts.min() > 2000 / 16 * 0.6
        assert counts.max() < 2000 / 16 * 1.5

    def test_mismatched_lengths_rejected(self, rng):
        with pytest.raises(ValueError):
            reconstruct_vector(
                [np.zeros(3, dtype=np.int64), np.zeros(4, dtype=np.int64)], 16
            )

    def test_add_share_vectors(self, rng):
        a = np.array([15, 1], dtype=np.int64)
        b = np.array([2, 15], dtype=np.int64)
        assert add_share_vectors(a, b, 16).tolist() == [1, 0]

    def test_add_share_vectors_big_modulus(self):
        modulus = 1 << 70
        a = np.array([modulus - 1], dtype=object)
        b = np.array([2], dtype=object)
        assert list(add_share_vectors(a, b, modulus)) == [1]

    def test_homomorphic_under_addition(self, rng):
        """Share-wise sums reconstruct to the sum of secrets."""
        m = 2**20
        x = rng.integers(0, m, 50, dtype=np.int64)
        y = rng.integers(0, m, 50, dtype=np.int64)
        sx = share_vector(x, 3, m, rng)
        sy = share_vector(y, 3, m, rng)
        combined = [add_share_vectors(a, b, m) for a, b in zip(sx, sy)]
        assert (reconstruct_vector(combined, m) == (x + y) % m).all()


@given(
    secret=st.integers(min_value=0, max_value=2**31 - 1),
    r=st.integers(min_value=2, max_value=7),
    modulus=st.sampled_from([2**8, 2**16, 2**31, 2**32, 997, 10**9 + 7]),
)
@settings(max_examples=100, deadline=None)
def test_share_roundtrip_property(secret, r, modulus):
    """Property: sharing then reconstructing is the identity mod M."""
    rng = np.random.default_rng(0)
    shares = share_value(secret % modulus, r, modulus, rng)
    assert reconstruct_value(shares, modulus) == secret % modulus
