"""Onion encryption for the SS chain."""

import pytest

from repro.crypto import elgamal_ec, onion


@pytest.fixture(scope="module")
def chain_keys():
    return [elgamal_ec.generate_keypair(rng=i) for i in range(4)]


class TestWrapPeel:
    def test_single_layer(self, chain_keys):
        wrapped = onion.wrap(b"payload", [chain_keys[0].public], rng=7)
        payload, __ = onion.peel(wrapped, chain_keys[0].private)
        assert payload == b"payload"

    @pytest.mark.parametrize("layers", [2, 3, 4])
    def test_multi_layer_peeling(self, chain_keys, layers):
        publics = [kp.public for kp in chain_keys[:layers]]
        wrapped = onion.wrap(b"report-7", publics, rng=9)
        current = wrapped
        payload = None
        for kp in chain_keys[:layers]:
            payload, current = onion.peel(current, kp.private)
        assert payload == b"report-7"

    def test_unwrap_all(self, chain_keys):
        publics = [kp.public for kp in chain_keys]
        privates = [kp.private for kp in chain_keys]
        wrapped = onion.wrap(b"x" * 40, publics, rng=3)
        assert onion.unwrap_all(wrapped, privates) == b"x" * 40

    def test_wrong_order_fails(self, chain_keys):
        publics = [kp.public for kp in chain_keys[:2]]
        wrapped = onion.wrap(b"secret", publics, rng=3)
        # Peeling with the second key first must not produce the payload.
        try:
            payload, __ = onion.peel(wrapped, chain_keys[1].private)
            assert payload != b"secret"
        except ValueError:
            pass

    def test_requires_keys(self):
        with pytest.raises(ValueError):
            onion.wrap(b"data", [], rng=1)

    def test_size_grows_with_layers(self, chain_keys):
        one = onion.wrap(b"data", [chain_keys[0].public], rng=1)
        three = onion.wrap(b"data", [kp.public for kp in chain_keys[:3]], rng=1)
        assert three.size_bytes > one.size_bytes
