"""Number-theory utilities."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import math_utils as mu


class TestEgcdInvmod:
    def test_egcd_identity(self):
        g, x, y = mu.egcd(240, 46)
        assert g == math.gcd(240, 46)
        assert 240 * x + 46 * y == g

    def test_invmod_basic(self):
        assert mu.invmod(3, 7) == 5  # 3*5 = 15 = 1 mod 7

    def test_invmod_roundtrip(self):
        for a in (2, 5, 9, 100):
            inv = mu.invmod(a, 101)
            assert a * inv % 101 == 1

    def test_invmod_not_coprime(self):
        with pytest.raises(ValueError):
            mu.invmod(6, 9)

    @given(
        a=st.integers(min_value=1, max_value=10**9),
        m=st.integers(min_value=2, max_value=10**9),
    )
    @settings(max_examples=200, deadline=None)
    def test_invmod_property(self, a, m):
        if math.gcd(a, m) == 1:
            assert a * mu.invmod(a, m) % m == 1

    def test_lcm(self):
        assert mu.lcm(4, 6) == 12
        assert mu.lcm(7, 13) == 91


class TestPrimality:
    KNOWN_PRIMES = [2, 3, 5, 17, 97, 7919, 104729, (1 << 31) - 1, (1 << 61) - 1]
    KNOWN_COMPOSITES = [1, 4, 100, 7917, 561, 41041, 825265]  # incl. Carmichael

    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_primes_accepted(self, p):
        assert mu.is_probable_prime(p)

    @pytest.mark.parametrize("c", KNOWN_COMPOSITES)
    def test_composites_rejected(self, c):
        assert not mu.is_probable_prime(c)

    def test_large_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert mu.is_probable_prime((1 << 127) - 1)

    def test_large_composite(self):
        assert not mu.is_probable_prime(((1 << 127) - 1) * 3)


class TestPrimeGeneration:
    def test_random_prime_bits(self):
        for bits in (16, 32, 64, 128):
            p = mu.random_prime(bits, rng=7)
            assert p.bit_length() == bits
            assert mu.is_probable_prime(p)

    def test_deterministic_given_seed(self):
        assert mu.random_prime(64, rng=3) == mu.random_prime(64, rng=3)

    def test_random_prime_with_factor(self):
        factor = (1 << 16) * 1009
        p = mu.random_prime_with_factor(96, factor, rng=5)
        assert p.bit_length() == 96
        assert (p - 1) % factor == 0
        assert mu.is_probable_prime(p)

    def test_factor_too_large(self):
        with pytest.raises(ValueError):
            mu.random_prime_with_factor(32, 1 << 31, rng=1)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            mu.random_prime(1)


class TestCRT:
    def test_basic(self):
        # x = 2 mod 3, x = 3 mod 5 -> x = 8 mod 15
        assert mu.crt_pair(2, 3, 3, 5) == 8

    @given(
        p=st.sampled_from([101, 103, 107]),
        q=st.sampled_from([109, 113, 127]),
        x=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, p, q, x):
        x %= p * q
        combined = mu.crt_pair(x % p, p, x % q, q)
        assert combined == x


class TestHelpers:
    def test_random_below_range(self):
        for _ in range(50):
            assert 0 <= mu.random_below(17, rng=None) < 17

    def test_random_coprime(self):
        value = mu.random_coprime(100, rng=9)
        assert math.gcd(value, 100) == 1

    def test_int_bytes_roundtrip(self):
        for v in (0, 1, 255, 256, 123456789):
            assert mu.bytes_to_int(mu.int_to_bytes(v)) == v

    def test_int_to_bytes_fixed_length(self):
        assert len(mu.int_to_bytes(5, 8)) == 8

    def test_int_to_bytes_rejects_negative(self):
        with pytest.raises(ValueError):
            mu.int_to_bytes(-1)

    def test_as_random_coercions(self):
        import random

        assert isinstance(mu.as_random(None), random.Random)
        assert isinstance(mu.as_random(5), random.Random)
        r = random.Random(1)
        assert mu.as_random(r) is r
