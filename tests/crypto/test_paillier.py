"""Paillier AHE: correctness and homomorphic laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import paillier


@pytest.fixture(scope="module")
def keys():
    return paillier.generate_keypair(key_bits=512, rng=99)


class TestRoundtrip:
    @pytest.mark.parametrize("message", [0, 1, 255, 2**32 - 1, 2**64 + 12345])
    def test_encrypt_decrypt(self, keys, message):
        pub, priv = keys
        assert priv.decrypt(pub.encrypt(message, rng=1)) == message

    def test_ciphertexts_randomized(self, keys):
        pub, __ = keys
        assert pub.encrypt(42, rng=1) != pub.encrypt(42, rng=2)

    def test_message_reduced_mod_n(self, keys):
        pub, priv = keys
        assert priv.decrypt(pub.encrypt(pub.n + 5, rng=1)) == 5


class TestHomomorphism:
    def test_add(self, keys):
        pub, priv = keys
        c = pub.add(pub.encrypt(1111, rng=1), pub.encrypt(2222, rng=2))
        assert priv.decrypt(c) == 3333

    def test_add_plain(self, keys):
        pub, priv = keys
        c = pub.add_plain(pub.encrypt(1000, rng=1), 234)
        assert priv.decrypt(c) == 1234

    def test_multiply_plain(self, keys):
        pub, priv = keys
        c = pub.multiply_plain(pub.encrypt(111, rng=1), 9)
        assert priv.decrypt(c) == 999

    def test_rerandomize_preserves_plaintext(self, keys):
        pub, priv = keys
        c = pub.encrypt(777, rng=1)
        c2 = pub.rerandomize(c, rng=2)
        assert c2 != c
        assert priv.decrypt(c2) == 777

    def test_long_addition_chain(self, keys):
        pub, priv = keys
        total = pub.encrypt(0, rng=1)
        for i in range(50):
            total = pub.add(total, pub.encrypt(i, rng=i + 2))
        assert priv.decrypt(total) == sum(range(50))

    @given(
        a=st.integers(min_value=0, max_value=2**48),
        b=st.integers(min_value=0, max_value=2**48),
    )
    @settings(max_examples=20, deadline=None)
    def test_addition_property(self, keys, a, b):
        pub, priv = keys
        c = pub.add(pub.encrypt(a, rng=1), pub.encrypt(b, rng=2))
        assert priv.decrypt(c) == a + b


class TestParameters:
    def test_key_bits_respected(self, keys):
        pub, __ = keys
        assert pub.n.bit_length() == 512

    def test_ciphertext_bytes(self, keys):
        pub, __ = keys
        assert pub.ciphertext_bytes == (pub.n_squared.bit_length() + 7) // 8

    def test_plaintext_space(self, keys):
        pub, __ = keys
        assert pub.plaintext_space == pub.n

    def test_rejects_tiny_keys(self):
        with pytest.raises(ValueError):
            paillier.generate_keypair(key_bits=32)

    def test_deterministic_keygen(self):
        a = paillier.generate_keypair(key_bits=256, rng=7)
        b = paillier.generate_keypair(key_bits=256, rng=7)
        assert a[0].n == b[0].n
