"""DGK-style AHE: Z_{2^l} plaintext wraparound and Pohlig-Hellman decryption."""

import pytest

from repro.crypto import dgk


@pytest.fixture(scope="module")
def keys16():
    return dgk.generate_keypair(l=16, key_bits=512, subgroup_bits=80, rng=41)


class TestRoundtrip:
    @pytest.mark.parametrize("message", [0, 1, 2, 255, 4095, 65535])
    def test_encrypt_decrypt(self, keys16, message):
        pub, priv = keys16
        assert priv.decrypt(pub.encrypt(message, rng=1)) == message

    def test_all_bit_patterns(self, keys16):
        pub, priv = keys16
        for message in (0b1010101010101010, 0b0101010101010101, 0x8000, 0x0001):
            assert priv.decrypt(pub.encrypt(message, rng=3)) == message

    def test_ciphertexts_randomized(self, keys16):
        pub, __ = keys16
        assert pub.encrypt(42, rng=1) != pub.encrypt(42, rng=2)

    def test_message_reduced_mod_2l(self, keys16):
        pub, priv = keys16
        assert priv.decrypt(pub.encrypt(65536 + 7, rng=1)) == 7


class TestHomomorphism:
    def test_add(self, keys16):
        pub, priv = keys16
        c = pub.add(pub.encrypt(1000, rng=1), pub.encrypt(234, rng=2))
        assert priv.decrypt(c) == 1234

    def test_add_wraps_mod_2l(self, keys16):
        """The Section VI-A3 requirement: sums wrap inside the plaintext
        space so shares reconstruct correctly."""
        pub, priv = keys16
        c = pub.add(pub.encrypt(60_000, rng=1), pub.encrypt(10_000, rng=2))
        assert priv.decrypt(c) == (60_000 + 10_000) % 65536

    def test_add_plain(self, keys16):
        pub, priv = keys16
        c = pub.add_plain(pub.encrypt(100, rng=1), 65535)
        assert priv.decrypt(c) == (100 + 65535) % 65536

    def test_multiply_plain(self, keys16):
        pub, priv = keys16
        c = pub.multiply_plain(pub.encrypt(300, rng=1), 7)
        assert priv.decrypt(c) == 2100

    def test_rerandomize(self, keys16):
        pub, priv = keys16
        c = pub.encrypt(777, rng=1)
        c2 = pub.rerandomize(c, rng=2)
        assert c2 != c
        assert priv.decrypt(c2) == 777

    def test_share_reconstruction_chain(self, keys16):
        # r shares of a secret summed homomorphically reconstruct mod 2^16.
        pub, priv = keys16
        secret, modulus = 54321, 65536
        shares = [11111, 60000, (secret - 11111 - 60000) % modulus]
        total = pub.encrypt(0, rng=1)
        for i, share in enumerate(shares):
            total = pub.add(total, pub.encrypt(share, rng=i + 2))
        assert priv.decrypt(total) == secret


class TestParameters:
    def test_plaintext_space(self, keys16):
        pub, __ = keys16
        assert pub.plaintext_space == 1 << 16

    def test_modulus_structure(self, keys16):
        pub, priv = keys16
        assert pub.n % priv.p == 0
        assert (priv.p - 1) % ((1 << 16) * priv.v_p) == 0

    def test_g_hat_has_order_2l(self, keys16):
        __, priv = keys16
        order = 1 << 16
        assert pow(priv.g_hat, order, priv.p) == 1
        assert pow(priv.g_hat, order // 2, priv.p) != 1

    def test_l32_keypair(self, dgk_keys):
        pub, priv = dgk_keys
        assert pub.plaintext_space == 1 << 32
        assert priv.decrypt(pub.encrypt(2**31 + 9, rng=1)) == 2**31 + 9

    def test_rejects_bad_l(self):
        with pytest.raises(ValueError):
            dgk.generate_keypair(l=0, key_bits=512, subgroup_bits=80, rng=1)
