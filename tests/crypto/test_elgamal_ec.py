"""secp256r1 arithmetic and hybrid ElGamal."""

import pytest

from repro.crypto import elgamal_ec as ec


class TestCurveArithmetic:
    def test_generator_on_curve(self):
        assert ec.is_on_curve(ec.GENERATOR)

    def test_identity_on_curve(self):
        assert ec.is_on_curve(ec.IDENTITY)

    def test_group_order(self):
        assert ec.scalar_mult(ec.N, ec.GENERATOR).is_identity

    def test_add_identity(self):
        assert ec.point_add(ec.GENERATOR, ec.IDENTITY) == ec.GENERATOR
        assert ec.point_add(ec.IDENTITY, ec.GENERATOR) == ec.GENERATOR

    def test_double_matches_add(self):
        assert ec.point_double(ec.GENERATOR) == ec.point_add(
            ec.GENERATOR, ec.GENERATOR
        )

    def test_inverse_points_cancel(self):
        g = ec.GENERATOR
        neg = ec.Point(g.x, (-g.y) % ec.P)
        assert ec.point_add(g, neg).is_identity

    def test_scalar_mult_matches_repeated_addition(self):
        accumulated = ec.IDENTITY
        for k in range(1, 12):
            accumulated = ec.point_add(accumulated, ec.GENERATOR)
            assert ec.scalar_mult(k, ec.GENERATOR) == accumulated
            assert ec.is_on_curve(accumulated)

    def test_scalar_mult_distributive(self):
        a, b = 123456789, 987654321
        lhs = ec.scalar_mult(a + b, ec.GENERATOR)
        rhs = ec.point_add(
            ec.scalar_mult(a, ec.GENERATOR), ec.scalar_mult(b, ec.GENERATOR)
        )
        assert lhs == rhs

    def test_scalar_zero_is_identity(self):
        assert ec.scalar_mult(0, ec.GENERATOR).is_identity

    def test_known_2g(self):
        # 2G for P-256 (public test vector).
        two_g = ec.scalar_mult(2, ec.GENERATOR)
        assert two_g.x == int(
            "7CF27B188D034F7E8A52380304B51AC3C08969E277F21B35A60B48FC47669978", 16
        )


class TestKeys:
    def test_keypair_consistency(self):
        kp = ec.generate_keypair(rng=11)
        assert ec.is_on_curve(kp.public)
        assert kp.public == ec.scalar_mult(kp.private, ec.GENERATOR)

    def test_deterministic_given_seed(self):
        assert ec.generate_keypair(rng=5).private == ec.generate_keypair(rng=5).private


class TestHybridEncryption:
    def test_roundtrip(self):
        kp = ec.generate_keypair(rng=3)
        ct = ec.encrypt(b"the report", kp.public, rng=4)
        assert ec.decrypt(ct, kp.private) == b"the report"

    def test_roundtrip_empty_and_long(self):
        kp = ec.generate_keypair(rng=3)
        for message in (b"", b"x" * 1000):
            ct = ec.encrypt(message, kp.public, rng=9)
            assert ec.decrypt(ct, kp.private) == message

    def test_randomized(self):
        kp = ec.generate_keypair(rng=3)
        a = ec.encrypt(b"m", kp.public, rng=1)
        b = ec.encrypt(b"m", kp.public, rng=2)
        assert a.payload != b.payload or a.ephemeral != b.ephemeral

    def test_wrong_key_fails(self):
        kp1 = ec.generate_keypair(rng=3)
        kp2 = ec.generate_keypair(rng=4)
        ct = ec.encrypt(b"secret", kp1.public, rng=5)
        try:
            assert ec.decrypt(ct, kp2.private) != b"secret"
        except ValueError:
            pass  # padding failure is the expected outcome

    def test_size_accounting(self):
        kp = ec.generate_keypair(rng=3)
        ct = ec.encrypt(b"1234567890", kp.public, rng=5)
        assert ct.size_bytes == 64 + 16 + len(ct.payload)
