"""GRR: probabilities, estimation, the exact fast path, and SH resolution."""

import numpy as np
import pytest

from repro.core import grr_variance_local
from repro.frequency_oracles import GRR, make_sh


class TestMechanics:
    def test_eq1_probabilities(self):
        fo = GRR(4, np.log(3.0))
        assert fo.p == pytest.approx(0.5)
        assert fo.q == pytest.approx(1.0 / 6.0)

    def test_blanket_gamma(self):
        fo = GRR(4, np.log(3.0))
        assert fo.blanket_gamma == pytest.approx(4.0 / 6.0)

    def test_privatize_keeps_domain(self, rng):
        fo = GRR(8, 1.0)
        out = fo.privatize(rng.integers(0, 8, 1000), rng)
        assert out.min() >= 0 and out.max() < 8

    def test_privatize_ldp_ratio(self, rng):
        # Empirically check Pr[A(v)=v] / Pr[A(v')=v] ~ e^eps.
        fo = GRR(4, 1.0)
        n = 200_000
        from_v = fo.privatize(np.zeros(n, dtype=int), rng)
        from_w = fo.privatize(np.ones(n, dtype=int), rng)
        p_same = (from_v == 0).mean()
        p_cross = (from_w == 0).mean()
        assert p_same / p_cross == pytest.approx(np.exp(1.0), rel=0.05)

    def test_rejects_small_domain(self):
        with pytest.raises(ValueError):
            GRR(1, 1.0)


class TestEstimation:
    def test_unbiased(self, rng, small_histogram):
        fo = GRR(16, 2.0)
        runs = np.stack(
            [fo.estimate_from_histogram(small_histogram, rng) for _ in range(60)]
        )
        truth = small_histogram / small_histogram.sum()
        bias = np.abs(runs.mean(axis=0) - truth)
        # Standard error of the mean at 60 runs bounds the allowed bias.
        standard_error = runs.std(axis=0) / np.sqrt(60)
        assert (bias < 5 * standard_error + 1e-4).all()

    def test_empirical_variance_matches_analysis(self, rng):
        d, n, eps = 16, 50_000, 1.0
        histogram = rng.multinomial(n, np.full(d, 1 / d))
        fo = GRR(d, eps)
        truth = histogram / n
        errors = [
            np.mean((fo.estimate_from_histogram(histogram, rng) - truth) ** 2)
            for _ in range(40)
        ]
        predicted = grr_variance_local(eps, n, d)
        assert np.mean(errors) == pytest.approx(predicted, rel=0.25)

    def test_support_counts_full_domain(self, rng):
        fo = GRR(5, 10.0)  # nearly no noise
        reports = fo.privatize(np.array([0, 0, 1, 4]), rng)
        counts = fo.support_counts(reports)
        assert counts.sum() == 4

    def test_support_counts_candidates_subset(self, rng):
        fo = GRR(5, 10.0)
        reports = np.array([0, 0, 1, 4])
        counts = fo.support_counts(reports, candidates=[0, 4])
        assert counts.tolist() == [2.0, 1.0]

    def test_estimate_identity_at_huge_epsilon(self, rng):
        fo = GRR(4, 20.0)
        values = np.array([0] * 70 + [1] * 20 + [2] * 10)
        estimates = fo.run(values, rng)
        assert estimates == pytest.approx([0.7, 0.2, 0.1, 0.0], abs=0.02)


class TestFastPath:
    def test_sample_matches_per_user_distribution(self, rng):
        """The blanket-decomposition sampler must match per-user reports."""
        d, eps = 6, 1.0
        histogram = np.array([500, 300, 100, 50, 30, 20])
        fo = GRR(d, eps)
        fast = np.stack(
            [fo.sample_support_counts(histogram, rng) for _ in range(300)]
        )
        values = np.repeat(np.arange(d), histogram)
        slow = np.stack(
            [fo.support_counts(fo.privatize(values, rng)) for _ in range(300)]
        )
        # Means and variances agree within sampling tolerance.
        assert fast.mean(axis=0) == pytest.approx(slow.mean(axis=0), rel=0.1)
        assert fast.var(axis=0) == pytest.approx(slow.var(axis=0), rel=0.5, abs=5)

    def test_sample_total_preserved(self, rng):
        fo = GRR(8, 1.0)
        histogram = rng.multinomial(5000, np.full(8, 1 / 8))
        counts = fo.sample_support_counts(histogram, rng)
        assert counts.sum() == 5000

    def test_sample_rejects_wrong_shape(self, rng):
        fo = GRR(8, 1.0)
        with pytest.raises(ValueError):
            fo.sample_support_counts(np.zeros(5, dtype=int), rng)


class TestOrdinalEncoding:
    def test_report_space_is_domain(self):
        assert GRR(37, 1.0).report_space == 37

    def test_roundtrip(self, rng):
        fo = GRR(12, 1.0)
        reports = fo.privatize(rng.integers(0, 12, 200), rng)
        encoded = fo.encode_reports(reports)
        decoded = fo.decode_reports(encoded)
        assert (decoded == reports).all()

    def test_decode_rejects_out_of_range(self):
        fo = GRR(12, 1.0)
        with pytest.raises(ValueError):
            fo.decode_reports(np.array([12]))

    def test_fake_bias_is_one_over_d(self):
        assert GRR(25, 1.0).fake_report_bias() == pytest.approx(1.0 / 25)


class TestSH:
    def test_amplifies_at_scale(self):
        oracle, resolution = make_sh(100, 0.8, 1_000_000, 1e-9)
        assert resolution.amplified
        assert oracle.eps == pytest.approx(resolution.eps_l)
        assert oracle.eps > 0.8

    def test_fallback_below_threshold(self):
        oracle, resolution = make_sh(1000, 0.1, 10_000, 1e-9)
        assert not resolution.amplified
        assert oracle.eps == pytest.approx(0.1)
