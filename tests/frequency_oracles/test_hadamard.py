"""Hadamard response: transform correctness and estimation."""

import numpy as np
import pytest

from repro.frequency_oracles import (
    HadamardResponse,
    fast_walsh_hadamard,
    hadamard_entry,
    next_power_of_two,
)


class TestHadamardPrimitives:
    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(2) == 2
        assert next_power_of_two(3) == 4
        assert next_power_of_two(100) == 128
        assert next_power_of_two(128) == 128

    def test_entry_parity(self):
        # H[1,1] = (-1)^popcount(1) = -1; H[0,c] = +1.
        assert hadamard_entry(0, 5) == 1
        assert hadamard_entry(1, 1) == -1
        assert hadamard_entry(3, 3) == 1  # popcount(3)=2

    def test_rows_orthogonal(self):
        K = 16
        H = np.array(
            [[hadamard_entry(r, c) for c in range(K)] for r in range(K)]
        )
        assert (H @ H.T == K * np.eye(K)).all()

    def test_fwht_matches_matrix_multiply(self, rng):
        K = 32
        vector = rng.normal(size=K)
        H = np.array(
            [[hadamard_entry(r, c) for c in range(K)] for r in range(K)]
        )
        assert fast_walsh_hadamard(vector) == pytest.approx(H @ vector)

    def test_fwht_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fast_walsh_hadamard(np.ones(12))


class TestMechanism:
    def test_k_larger_than_domain(self):
        fo = HadamardResponse(100, 1.0)
        assert fo.K == 128
        assert fo.K > fo.d

    def test_unbiased(self, rng, small_histogram):
        fo = HadamardResponse(16, 2.0)
        runs = np.stack(
            [fo.estimate_from_histogram(small_histogram, rng) for _ in range(60)]
        )
        truth = small_histogram / small_histogram.sum()
        standard_error = runs.std(axis=0) / np.sqrt(60)
        assert (np.abs(runs.mean(axis=0) - truth) < 5 * standard_error + 1e-4).all()

    def test_per_user_matches_fast_path_mean(self, rng):
        d = 8
        histogram = np.array([300, 200, 150, 100, 100, 80, 40, 30])
        fo = HadamardResponse(d, 1.5)
        values = np.repeat(np.arange(d), histogram)
        slow = np.stack(
            [fo.support_counts(fo.privatize(values, rng)) for _ in range(200)]
        )
        fast = np.stack(
            [fo.sample_support_counts(histogram, rng) for _ in range(200)]
        )
        assert fast.mean(axis=0) == pytest.approx(slow.mean(axis=0), rel=0.08)

    def test_support_counts_via_wht_match_naive(self, rng):
        fo = HadamardResponse(10, 2.0)
        reports = fo.privatize(rng.integers(0, 10, 100), rng)
        counts = fo.support_counts(reports)
        naive = np.zeros(10)
        for i in range(100):
            for v in range(10):
                if hadamard_entry(int(reports.rows[i]), v + 1) == reports.bits[i]:
                    naive[v] += 1
        assert counts == pytest.approx(naive)

    def test_estimate_at_huge_epsilon(self, rng):
        fo = HadamardResponse(4, 12.0)
        values = np.array([0] * 600 + [1] * 300 + [2] * 100)
        estimates = fo.run(values, rng)
        assert estimates == pytest.approx([0.6, 0.3, 0.1, 0.0], abs=0.08)


class TestOrdinalEncoding:
    def test_report_space(self):
        fo = HadamardResponse(100, 1.0)
        assert fo.report_space == 128 * 2

    def test_roundtrip(self, rng):
        fo = HadamardResponse(20, 1.0)
        reports = fo.privatize(rng.integers(0, 20, 100), rng)
        decoded = fo.decode_reports(fo.encode_reports(reports))
        assert (decoded.rows == reports.rows).all()
        assert (decoded.bits == reports.bits).all()

    def test_fake_bias_zero(self):
        assert HadamardResponse(20, 1.0).fake_report_bias() == 0.0
