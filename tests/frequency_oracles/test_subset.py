"""Subset-selection frequency oracle."""

import math

import numpy as np
import pytest

from repro.core import olh_variance_local
from repro.frequency_oracles import SubsetSelection, subset_variance_local


class TestMechanics:
    def test_optimal_subset_size(self):
        d, eps = 100, 1.0
        expected = round(d / (math.exp(eps) + 1.0))
        assert SubsetSelection(d, eps).k == expected

    def test_probabilities_ordered(self):
        fo = SubsetSelection(50, 1.0)
        assert 0 < fo.p_other < fo.p_true < 1

    def test_ldp_ratio(self):
        # Pr[v in subset | true=v] / Pr[v in subset | true=w] <= e^eps.
        fo = SubsetSelection(50, 1.0)
        assert fo.p_true / fo.p_other <= math.exp(1.0) * 1.05

    def test_reports_are_k_subsets(self, rng):
        fo = SubsetSelection(20, 1.0)
        reports = fo.privatize(rng.integers(0, 20, 100), rng)
        assert reports.members.shape == (100, fo.k)
        for row in reports.members:
            assert len(set(row.tolist())) == fo.k  # no duplicates
            assert row.min() >= 0 and row.max() < 20

    def test_true_value_inclusion_rate(self, rng):
        fo = SubsetSelection(20, 2.0)
        values = np.full(4000, 7)
        reports = fo.privatize(values, rng)
        included = (reports.members == 7).any(axis=1).mean()
        assert included == pytest.approx(fo.p_true, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            SubsetSelection(10, 0.0)
        with pytest.raises(ValueError):
            SubsetSelection(10, 1.0, k=10)


class TestEstimation:
    def test_unbiased(self, rng, small_histogram):
        fo = SubsetSelection(16, 2.0)
        runs = np.stack(
            [fo.estimate_from_histogram(small_histogram, rng) for _ in range(60)]
        )
        truth = small_histogram / small_histogram.sum()
        standard_error = runs.std(axis=0) / np.sqrt(60)
        assert (np.abs(runs.mean(axis=0) - truth) < 5 * standard_error + 1e-4).all()

    def test_fast_path_matches_exact(self, rng):
        d = 8
        histogram = np.array([400, 250, 150, 80, 50, 40, 20, 10])
        fo = SubsetSelection(d, 1.0)
        values = np.repeat(np.arange(d), histogram)
        slow = np.stack(
            [fo.support_counts(fo.privatize(values, rng)) for _ in range(100)]
        )
        fast = np.stack(
            [fo.sample_support_counts(histogram, rng) for _ in range(100)]
        )
        assert fast.mean(axis=0) == pytest.approx(slow.mean(axis=0), rel=0.07)

    def test_variance_close_to_olh(self, rng):
        """Subset selection and OLH are both local-model optimal: their
        variances agree within a small constant."""
        n, d, eps = 100_000, 64, 1.0
        subset = subset_variance_local(eps, n, d)
        olh = olh_variance_local(eps, n, max(2, int(round(math.exp(eps))) + 1))
        assert 0.5 < subset / olh < 2.0

    def test_empirical_variance_matches_formula(self, rng):
        d, n, eps = 16, 30_000, 1.0
        histogram = rng.multinomial(n, np.full(d, 1 / d))
        fo = SubsetSelection(d, eps)
        truth = histogram / n
        errors = [
            np.mean((fo.estimate_from_histogram(histogram, rng) - truth) ** 2)
            for _ in range(40)
        ]
        assert np.mean(errors) == pytest.approx(
            subset_variance_local(eps, n, d), rel=0.3
        )

    def test_candidates_subset(self, rng):
        fo = SubsetSelection(10, 1.0)
        reports = fo.privatize(rng.integers(0, 10, 50), rng)
        full = fo.support_counts(reports)
        partial = fo.support_counts(reports, candidates=[2, 8])
        assert partial.tolist() == [full[2], full[8]]
