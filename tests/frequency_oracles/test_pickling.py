"""Oracles, plans, codecs, and registry-built mechanisms must pickle.

The process-sharded fold workers and the process-backed sweep engine ship
these objects (or the specs to rebuild them) across spawn boundaries, so
every one of them has to survive a pickle round trip with its estimator
parameters intact.  A mechanism that grows a closure, a lambda default,
or an open handle breaks multi-process execution — this suite is the
tripwire.
"""

import pickle

import numpy as np
import pytest

from repro.analysis.experiments import FIGURE3_METHODS
from repro.core.ordinal import OrdinalCodec
from repro.core.params import plan_peos
from repro.core.registry import build_mechanism
from repro.frequency_oracles import GRR, SOLH
from repro.hashing import XXHash32Family


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


class TestOraclePickling:
    def test_grr_roundtrip_preserves_estimator(self):
        fo = roundtrip(GRR(16, 3.0))
        assert fo.compatible_with(GRR(16, 3.0))
        counts = np.arange(16, dtype=float)
        assert np.array_equal(
            fo.estimate(counts, 100), GRR(16, 3.0).estimate(counts, 100)
        )

    def test_solh_roundtrip_preserves_family(self):
        fo = SOLH(16, 3.0, 4, family=XXHash32Family())
        clone = roundtrip(fo)
        assert clone.compatible_with(fo)
        # Hash evaluation must be identical across processes — that is
        # what lets a worker re-evaluate users' hash functions.
        assert clone.family.hash_value(12345, 7, 4) == fo.family.hash_value(
            12345, 7, 4
        )

    def test_ordinal_codec_roundtrip(self):
        for space in (64, 1 << 40, 1 << 70):  # int64 fast path + object path
            codec = roundtrip(OrdinalCodec(space))
            assert codec.space == space

    def test_plan_roundtrip(self):
        plan = plan_peos(1.0, 3.0, 6.0, n=2000, d=16, delta=1e-9)
        assert roundtrip(plan) == plan


class TestRegistryMechanismPickling:
    @pytest.mark.parametrize("name", FIGURE3_METHODS)
    def test_built_mechanism_roundtrip(self, name):
        # n large enough that every factory (AUE in particular) is feasible.
        mechanism = build_mechanism(name, 16, 100_000, 1.0, 1e-9)
        clone = roundtrip(mechanism)
        assert type(clone) is type(mechanism)
