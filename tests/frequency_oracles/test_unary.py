"""Unary-encoding oracles: RAPPOR, removal RAPPOR, and AUE."""

import math

import numpy as np
import pytest

from repro.frequency_oracles import (
    AUE,
    RAPPOR,
    RemovalRAPPOR,
    make_rap,
    make_rap_r,
    one_hot_matrix,
)


class TestOneHot:
    def test_shape_and_content(self):
        matrix = one_hot_matrix(np.array([0, 2, 2]), 4)
        assert matrix.shape == (3, 4)
        assert matrix.sum() == 3
        assert matrix[1, 2] == 1 and matrix[2, 2] == 1

    def test_rejects_out_of_domain(self):
        with pytest.raises(ValueError):
            one_hot_matrix(np.array([4]), 4)


class TestRAPPOR:
    def test_flip_probability_halved_budget(self):
        fo = RAPPOR(10, 2.0)
        assert fo.flip_prob == pytest.approx(1.0 / (math.exp(1.0) + 1.0))

    def test_privatize_flip_rate(self, rng):
        fo = RAPPOR(16, 2.0)
        reports = fo.privatize(np.zeros(8000, dtype=int), rng)
        # Location 0 held a 1-bit: kept with probability p.
        assert reports[:, 0].mean() == pytest.approx(fo.p, abs=0.02)
        # All other locations held 0-bits: set with probability q.
        assert reports[:, 1:].mean() == pytest.approx(fo.q, abs=0.01)

    def test_unbiased(self, rng, small_histogram):
        fo = RAPPOR(16, 2.0)
        runs = np.stack(
            [fo.estimate_from_histogram(small_histogram, rng) for _ in range(60)]
        )
        truth = small_histogram / small_histogram.sum()
        standard_error = runs.std(axis=0) / np.sqrt(60)
        assert (np.abs(runs.mean(axis=0) - truth) < 5 * standard_error + 1e-4).all()

    def test_fast_path_matches_exact_path(self, rng):
        d = 8
        histogram = np.array([400, 250, 150, 80, 50, 40, 20, 10])
        fo = RAPPOR(d, 1.5)
        values = np.repeat(np.arange(d), histogram)
        slow = np.stack(
            [fo.support_counts(fo.privatize(values, rng)) for _ in range(200)]
        )
        fast = np.stack(
            [fo.sample_support_counts(histogram, rng) for _ in range(200)]
        )
        assert fast.mean(axis=0) == pytest.approx(slow.mean(axis=0), rel=0.05)
        assert fast.var(axis=0) == pytest.approx(slow.var(axis=0), rel=0.5, abs=10)

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(ValueError):
            RAPPOR(10, 0.0)


class TestRemovalRAPPOR:
    def test_flip_probability_full_budget(self):
        fo = RemovalRAPPOR(10, 2.0)
        assert fo.flip_prob == pytest.approx(1.0 / (math.exp(2.0) + 1.0))

    def test_replacement_equivalent(self):
        assert RemovalRAPPOR(10, 1.0).replacement_eps == pytest.approx(2.0)

    def test_less_noise_than_rappor_same_budget(self):
        assert RemovalRAPPOR(10, 2.0).flip_prob < RAPPOR(10, 2.0).flip_prob

    def test_unbiased(self, rng, small_histogram):
        fo = RemovalRAPPOR(16, 1.0)
        runs = np.stack(
            [fo.estimate_from_histogram(small_histogram, rng) for _ in range(60)]
        )
        truth = small_histogram / small_histogram.sum()
        standard_error = runs.std(axis=0) / np.sqrt(60)
        assert (np.abs(runs.mean(axis=0) - truth) < 5 * standard_error + 1e-4).all()


class TestAUE:
    N, DELTA = 200_000, 1e-9

    def test_noise_probability(self):
        fo = AUE(16, 0.5, self.N, self.DELTA)
        assert fo.noise_prob == pytest.approx(
            200 * math.log(4 / self.DELTA) / (0.25 * self.N)
        )

    def test_reports_can_exceed_one(self, rng):
        fo = AUE(4, 0.5, self.N, self.DELTA)
        # Force a visible noise rate by privatizing many one-hot rows.
        reports = fo.privatize(np.zeros(5000, dtype=int), rng)
        assert reports.max() <= 2
        assert (reports[:, 0] >= 1).all()  # the true bit is sent in clear

    def test_not_ldp_true_value_visible(self, rng):
        # AUE sends the exact one-hot vector: with noise_prob << 1 most
        # reports reveal the true value exactly — the paper's criticism.
        fo = AUE(8, 1.0, self.N, self.DELTA)
        reports = fo.privatize(np.full(100, 3), rng)
        exact = ((reports == one_hot_matrix(np.full(100, 3), 8)).all(axis=1)).mean()
        assert exact > 0.5

    def test_unbiased(self, rng, small_histogram):
        fo = AUE(16, 0.5, int(small_histogram.sum()), self.DELTA)
        runs = np.stack(
            [fo.estimate_from_histogram(small_histogram, rng) for _ in range(60)]
        )
        truth = small_histogram / small_histogram.sum()
        standard_error = runs.std(axis=0) / np.sqrt(60)
        assert (np.abs(runs.mean(axis=0) - truth) < 5 * standard_error + 1e-4).all()

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            AUE(16, 0.1, 100, self.DELTA)


class TestShuffleFactories:
    N, DELTA = 500_000, 1e-9

    def test_make_rap_amplifies(self):
        oracle, resolution = make_rap(100, 0.5, self.N, self.DELTA)
        assert resolution.amplified
        assert oracle.eps == pytest.approx(resolution.eps_l)

    def test_make_rap_r_amplifies(self):
        oracle, resolution = make_rap_r(100, 0.5, self.N, self.DELTA)
        assert resolution.amplified

    def test_rap_r_spends_more_effective_budget(self):
        rap, __ = make_rap(100, 0.5, self.N, self.DELTA)
        rap_r, __ = make_rap_r(100, 0.5, self.N, self.DELTA)
        assert rap_r.flip_prob < rap.flip_prob

    def test_fallback_small_population(self):
        __, resolution = make_rap(100, 0.05, 500, self.DELTA)
        assert not resolution.amplified
