"""Optimized unary encoding (OUE)."""

import math

import numpy as np
import pytest

from repro.frequency_oracles import OUE, RAPPOR, oue_variance_local


class TestMechanics:
    def test_probabilities(self):
        fo = OUE(10, 1.0)
        assert fo.p == 0.5
        assert fo.q == pytest.approx(1.0 / (math.exp(1.0) + 1.0))

    def test_ldp_ratio_on_flipped_bit(self):
        # Worst-case ratio (p/q) * ((1-q)/(1-p)) must equal e^eps.
        fo = OUE(10, 1.3)
        ratio = (fo.p / fo.q) * ((1.0 - fo.q) / (1.0 - fo.p))
        assert ratio == pytest.approx(math.exp(1.3))

    def test_privatize_rates(self, rng):
        fo = OUE(16, 2.0)
        reports = fo.privatize(np.zeros(8000, dtype=int), rng)
        assert reports[:, 0].mean() == pytest.approx(0.5, abs=0.02)
        assert reports[:, 1:].mean() == pytest.approx(fo.q, abs=0.01)

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(ValueError):
            OUE(10, 0.0)


class TestEstimation:
    def test_unbiased(self, rng, small_histogram):
        fo = OUE(16, 2.0)
        runs = np.stack(
            [fo.estimate_from_histogram(small_histogram, rng) for _ in range(60)]
        )
        truth = small_histogram / small_histogram.sum()
        standard_error = runs.std(axis=0) / np.sqrt(60)
        assert (np.abs(runs.mean(axis=0) - truth) < 5 * standard_error + 1e-4).all()

    def test_fast_path_matches_exact(self, rng):
        d = 8
        histogram = np.array([400, 250, 150, 80, 50, 40, 20, 10])
        fo = OUE(d, 1.5)
        values = np.repeat(np.arange(d), histogram)
        slow = np.stack(
            [fo.support_counts(fo.privatize(values, rng)) for _ in range(200)]
        )
        fast = np.stack(
            [fo.sample_support_counts(histogram, rng) for _ in range(200)]
        )
        assert fast.mean(axis=0) == pytest.approx(slow.mean(axis=0), rel=0.06)

    def test_empirical_variance_matches_formula(self, rng):
        d, n, eps = 16, 50_000, 1.0
        histogram = rng.multinomial(n, np.full(d, 1 / d))
        fo = OUE(d, eps)
        truth = histogram / n
        errors = [
            np.mean((fo.estimate_from_histogram(histogram, rng) - truth) ** 2)
            for _ in range(40)
        ]
        assert np.mean(errors) == pytest.approx(oue_variance_local(eps, n), rel=0.25)

    def test_beats_rappor_locally(self, rng):
        """The [54] result the module exists to demonstrate.

        The analytic gap at eps=4 is ~2.4x (at eps=0.5 it is only ~2%,
        too small to resolve statistically in a quick test).
        """
        d, n, eps = 32, 100_000, 4.0
        histogram = rng.multinomial(n, np.full(d, 1 / d))
        truth = histogram / n
        oue = OUE(d, eps)
        rap = RAPPOR(d, eps)
        oue_mse = np.mean(
            [
                np.mean((oue.estimate_from_histogram(histogram, rng) - truth) ** 2)
                for _ in range(10)
            ]
        )
        rap_mse = np.mean(
            [
                np.mean((rap.estimate_from_histogram(histogram, rng) - truth) ** 2)
                for _ in range(10)
            ]
        )
        assert oue_mse < rap_mse

    def test_candidates_subset(self, rng):
        fo = OUE(8, 2.0)
        reports = fo.privatize(rng.integers(0, 8, 100), rng)
        full = fo.support_counts(reports)
        subset = fo.support_counts(reports, candidates=[1, 5])
        assert subset.tolist() == [full[1], full[5]]

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            OUE(8, 2.0).sample_support_counts(np.zeros(4, dtype=int), rng)
