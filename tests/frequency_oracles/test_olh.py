"""Local hashing oracles: OLH mechanics and SOLH resolution."""

import math

import numpy as np
import pytest

from repro.core import olh_variance_local, solh_optimal_d_prime, solh_variance_shuffled
from repro.frequency_oracles import OLH, SOLH, LocalHashingOracle
from repro.hashing import (
    CarterWegmanHashFamily,
    MultiplyShiftHashFamily,
    XXHash32Family,
)


class TestMechanics:
    def test_olh_picks_optimal_d_prime(self):
        assert OLH(100, math.log(3.0)).d_prime == 4  # round(3)+1

    def test_privatize_report_shapes(self, rng):
        fo = LocalHashingOracle(50, 1.0, 8)
        reports = fo.privatize(rng.integers(0, 50, 200), rng)
        assert len(reports) == 200
        assert reports.values.min() >= 0 and reports.values.max() < 8

    def test_rejects_domain_violation(self, rng):
        fo = LocalHashingOracle(50, 1.0, 8)
        with pytest.raises(ValueError):
            fo.privatize(np.array([50]), rng)

    def test_rejects_tiny_hash_domain(self):
        with pytest.raises(ValueError):
            LocalHashingOracle(50, 1.0, 1)

    def test_support_counts_match_manual(self, rng):
        fo = LocalHashingOracle(10, 2.0, 4)
        reports = fo.privatize(rng.integers(0, 10, 50), rng)
        counts = fo.support_counts(reports)
        manual = np.zeros(10)
        for i in range(50):
            for v in range(10):
                if fo.family.hash_value(int(reports.seeds[i]), v, 4) == reports.values[i]:
                    manual[v] += 1
        assert counts == pytest.approx(manual)

    def test_support_counts_candidate_subset(self, rng):
        fo = LocalHashingOracle(10, 2.0, 4)
        reports = fo.privatize(rng.integers(0, 10, 100), rng)
        full = fo.support_counts(reports)
        subset = fo.support_counts(reports, candidates=[3, 7])
        assert subset.tolist() == [full[3], full[7]]

    def test_chunking_invariant(self, rng):
        small_chunks = LocalHashingOracle(20, 2.0, 4, chunk_bytes=256)
        reports = small_chunks.privatize(rng.integers(0, 20, 300), rng)
        big_chunks = LocalHashingOracle(20, 2.0, 4)
        assert small_chunks.support_counts(reports) == pytest.approx(
            big_chunks.support_counts(reports)
        )


class TestKernelRegression:
    """Pin ``support_counts`` to the pre-kernel-engine outputs.

    The counts below were produced by the original materialize-compare-sum
    loop (int64 hash matrix + boolean mask) at these exact seeds, before
    the shared kernel (:mod:`repro.hashing.kernels`) replaced it.  The
    kernel must reproduce them — and the estimates derived from them —
    bit for bit, for every family.
    """

    GOLDEN_COUNTS = {
        "carter-wegman": [89, 81, 89, 79, 70, 83, 86, 85, 102, 96, 95, 82,
                          91, 79, 84, 95, 88, 94, 76, 89, 77, 89, 63],
        "multiply-shift": [77, 83, 84, 85, 70, 74, 87, 93, 90, 79, 80, 94,
                           92, 74, 80, 98, 86, 97, 84, 80, 88, 90, 74],
        "xxhash32": [78, 75, 86, 85, 90, 82, 82, 93, 71, 80, 91, 89, 95,
                     86, 86, 74, 81, 85, 78, 83, 75, 85, 85],
    }
    GOLDEN_ESTIMATES = {
        "carter-wegman": (1.0953894297323228, 0.0808074169474665),
        "multiply-shift": (0.8888815864221309, -0.02693580564915553),
        "xxhash32": (0.6733951412288867, -0.01795720376610369),
    }

    @pytest.mark.parametrize(
        "family",
        [CarterWegmanHashFamily(), MultiplyShiftHashFamily(), XXHash32Family()],
        ids=lambda f: f.name,
    )
    def test_bit_identical_to_pre_kernel_path(self, family):
        rng = np.random.default_rng(20200714)
        fo = LocalHashingOracle(23, 1.3, 5, family=family)
        reports = fo.privatize(rng.integers(0, 23, 400), rng)
        counts = fo.support_counts(reports)
        assert counts.tolist() == self.GOLDEN_COUNTS[family.name]
        estimates = fo.estimate(counts, 400)
        golden_sum, golden_first = self.GOLDEN_ESTIMATES[family.name]
        assert float(estimates.sum()) == golden_sum
        assert float(estimates[0]) == golden_first


class TestEstimation:
    def test_unbiased(self, rng, small_histogram):
        fo = LocalHashingOracle(16, 2.0, 8)
        runs = np.stack(
            [fo.estimate_from_histogram(small_histogram, rng) for _ in range(60)]
        )
        truth = small_histogram / small_histogram.sum()
        standard_error = runs.std(axis=0) / np.sqrt(60)
        assert (np.abs(runs.mean(axis=0) - truth) < 5 * standard_error + 1e-4).all()

    def test_empirical_variance_matches_eq4(self, rng):
        d, n, eps, d_prime = 16, 50_000, 1.0, 4
        histogram = rng.multinomial(n, np.full(d, 1 / d))
        fo = LocalHashingOracle(d, eps, d_prime)
        truth = histogram / n
        errors = [
            np.mean((fo.estimate_from_histogram(histogram, rng) - truth) ** 2)
            for _ in range(40)
        ]
        assert np.mean(errors) == pytest.approx(
            olh_variance_local(eps, n, d_prime), rel=0.25
        )

    def test_per_user_path_consistent_with_fast_path(self, rng):
        d, eps, d_prime = 8, 1.5, 4
        histogram = np.array([400, 200, 100, 100, 80, 60, 40, 20])
        fo = LocalHashingOracle(d, eps, d_prime)
        values = np.repeat(np.arange(d), histogram)
        slow = np.stack(
            [fo.support_counts(fo.privatize(values, rng)) for _ in range(200)]
        )
        fast = np.stack(
            [fo.sample_support_counts(histogram, rng) for _ in range(200)]
        )
        assert fast.mean(axis=0) == pytest.approx(slow.mean(axis=0), rel=0.08)


class TestOrdinalEncoding:
    def test_report_space(self):
        fo = LocalHashingOracle(10, 1.0, 8, family=XXHash32Family())
        assert fo.report_space == (1 << 32) * 8

    def test_roundtrip(self, rng):
        fo = LocalHashingOracle(10, 1.0, 8, family=XXHash32Family())
        reports = fo.privatize(rng.integers(0, 10, 100), rng)
        decoded = fo.decode_reports(fo.encode_reports(reports))
        assert (decoded.seeds == reports.seeds).all()
        assert (decoded.values == reports.values).all()

    def test_fake_bias_zero(self):
        assert LocalHashingOracle(10, 1.0, 8).fake_report_bias() == 0.0


class TestSOLHResolution:
    N, DELTA = 500_000, 1e-9

    def test_uses_eq5_d_prime(self):
        oracle, resolution = SOLH.for_central_target(100, 0.5, self.N, self.DELTA)
        assert oracle.d_prime == solh_optimal_d_prime(0.5, self.N, self.DELTA)
        assert resolution.amplified

    def test_respects_explicit_d_prime(self):
        oracle, resolution = SOLH.for_central_target(
            100, 0.5, self.N, self.DELTA, d_prime=10
        )
        assert oracle.d_prime == 10
        assert resolution.amplified

    def test_fallback_to_local_olh(self):
        oracle, resolution = SOLH.for_central_target(100, 0.1, 300, self.DELTA)
        assert not resolution.amplified
        assert oracle.eps == pytest.approx(0.1)

    def test_local_budget_exceeds_central(self):
        __, resolution = SOLH.for_central_target(100, 0.5, self.N, self.DELTA)
        assert resolution.eps_l > 0.5

    def test_empirical_mse_matches_prop6(self, rng):
        n, d, eps_c = 100_000, 64, 0.5
        histogram = rng.multinomial(n, np.full(d, 1 / d))
        oracle, __ = SOLH.for_central_target(d, eps_c, n, self.DELTA)
        truth = histogram / n
        errors = [
            np.mean((oracle.estimate_from_histogram(histogram, rng) - truth) ** 2)
            for _ in range(30)
        ]
        predicted = solh_variance_shuffled(eps_c, n, self.DELTA)
        assert np.mean(errors) == pytest.approx(predicted, rel=0.3)

    def test_solh_beats_sh_on_large_domain(self, rng):
        from repro.frequency_oracles import make_sh

        n, d, eps_c = 50_000, 2000, 0.5
        histogram = rng.multinomial(n, np.full(d, 1 / d))
        truth = histogram / n
        solh, __ = SOLH.for_central_target(d, eps_c, n, self.DELTA)
        sh, __ = make_sh(d, eps_c, n, self.DELTA)
        solh_mse = np.mean(
            [
                np.mean((solh.estimate_from_histogram(histogram, rng) - truth) ** 2)
                for _ in range(5)
            ]
        )
        sh_mse = np.mean(
            [
                np.mean((sh.estimate_from_histogram(histogram, rng) - truth) ** 2)
                for _ in range(5)
            ]
        )
        assert solh_mse < sh_mse / 10
