"""The shared FO plumbing: perturbation probabilities, randomized response,
estimate normalization, and fake-report calibration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frequency_oracles import (
    GRR,
    normalize_estimates,
    perturbation_probabilities,
    randomized_response,
)


class TestPerturbationProbabilities:
    def test_eq1_values(self):
        p, q = perturbation_probabilities(np.log(3.0), 4)
        assert p == pytest.approx(3.0 / 6.0)
        assert q == pytest.approx(1.0 / 6.0)

    def test_ratio_is_e_eps(self):
        for eps in (0.5, 1.0, 3.0):
            p, q = perturbation_probabilities(eps, 10)
            assert p / q == pytest.approx(np.exp(eps))

    def test_normalized(self):
        p, q = perturbation_probabilities(1.0, 7)
        assert p + 6 * q == pytest.approx(1.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            perturbation_probabilities(0.0, 4)
        with pytest.raises(ValueError):
            perturbation_probabilities(1.0, 1)


class TestRandomizedResponse:
    def test_keeps_with_probability_p(self, rng):
        values = np.zeros(50_000, dtype=np.int64)
        out = randomized_response(values, 4, 0.7, rng)
        kept = float((out == 0).mean())
        assert abs(kept - 0.7) < 0.02

    def test_other_values_uniform(self, rng):
        values = np.zeros(90_000, dtype=np.int64)
        out = randomized_response(values, 4, 0.4, rng)
        others = np.bincount(out, minlength=4)[1:]
        expected = 90_000 * 0.6 / 3
        assert (np.abs(others - expected) < 4 * np.sqrt(expected)).all()

    def test_never_outputs_out_of_range(self, rng):
        out = randomized_response(rng.integers(0, 5, 1000), 5, 0.5, rng)
        assert out.min() >= 0 and out.max() < 5

    def test_rejects_out_of_domain_values(self, rng):
        with pytest.raises(ValueError):
            randomized_response(np.array([7]), 4, 0.5, rng)

    def test_p_one_is_identity(self, rng):
        values = rng.integers(0, 8, 100)
        assert (randomized_response(values, 8, 1.0, rng) == values).all()


class TestNormalizeEstimates:
    def test_none_is_copy(self):
        estimates = np.array([0.5, -0.1, 0.7])
        out = normalize_estimates(estimates, "none")
        assert (out == estimates).all()
        out[0] = 99.0
        assert estimates[0] == 0.5

    def test_clip(self):
        out = normalize_estimates(np.array([-0.2, 0.5, 1.4]), "clip")
        assert out.tolist() == [0.0, 0.5, 1.0]

    def test_norm_sums_to_one(self):
        out = normalize_estimates(np.array([0.5, -0.1, 0.7]), "norm")
        assert out.sum() == pytest.approx(1.0)
        assert (out >= 0).all()

    def test_norm_all_negative_stays_zero(self):
        out = normalize_estimates(np.array([-0.5, -0.1]), "norm")
        assert out.sum() == 0.0

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            normalize_estimates(np.array([0.5]), "sigmoid")


class TestCalibrateWithFakes:
    def test_eq6_grr(self):
        fo = GRR(10, 2.0)
        estimates = np.full(10, 0.1)
        n, n_r = 1000, 200
        calibrated = fo.calibrate_with_fakes(estimates, n, n_r)
        expected = ((n + n_r) * 0.1 - n_r * (1.0 / 10)) / n
        assert calibrated[0] == pytest.approx(expected)

    def test_no_fakes_identity(self):
        fo = GRR(10, 2.0)
        estimates = np.linspace(0, 0.3, 10)
        assert fo.calibrate_with_fakes(estimates, 1000, 0) == pytest.approx(estimates)

    def test_rejects_negative_fakes(self):
        fo = GRR(10, 2.0)
        with pytest.raises(ValueError):
            fo.calibrate_with_fakes(np.zeros(10), 100, -1)

    def test_preserves_sum_one_for_grr(self):
        # Fakes are uniform over [d]; Eq. (6) keeps a simplex estimate on
        # the simplex.
        fo = GRR(10, 2.0)
        estimates = np.full(10, 0.1)
        calibrated = fo.calibrate_with_fakes(estimates, 1000, 300)
        assert calibrated.sum() == pytest.approx(1.0)


@given(
    p=st.floats(min_value=0.01, max_value=0.99),
    k=st.integers(min_value=2, max_value=64),
)
@settings(max_examples=50, deadline=None)
def test_randomized_response_range_property(p, k):
    """Property: RR output always lies in the report domain."""
    rng = np.random.default_rng(0)
    values = rng.integers(0, k, 200)
    out = randomized_response(values, k, p, rng)
    assert out.min() >= 0 and out.max() < k
