"""Encode/decode round-trip properties for every ordinal-encodable oracle.

The registry declares which mechanisms serialize to the ordinal group
(Section VI-A2); this module asserts, for each of them, that
``decode_reports(encode_reports(r))`` is the identity on privatized
reports — at both 32-bit and 64-bit seed spaces for the local-hashing
oracles, i.e. on both sides of the codec's int64/object boundary.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import specs_with
from repro.frequency_oracles import GRR, OLH, SOLH
from repro.hashing import CarterWegmanHashFamily, XXHash32Family

D, N_USERS, DELTA = 24, 400, 1e-9


def _assert_roundtrip(fo, reports):
    encoded = fo.encode_reports(reports)
    assert encoded.dtype == fo.ordinal_codec.dtype
    if len(encoded):
        low = min(int(v) for v in encoded)
        high = max(int(v) for v in encoded)
        assert 0 <= low and high < fo.report_space
    decoded = fo.decode_reports(encoded)
    if hasattr(reports, "seeds"):
        assert (decoded.seeds == reports.seeds).all()
        assert (decoded.values == reports.values).all()
    elif isinstance(reports, np.ndarray):
        assert (np.asarray(decoded) == reports).all()
    else:
        # Mechanism-specific container (e.g. HadamardReports): re-encoding
        # the decoded reports must reproduce the serialization exactly.
        reencoded = fo.encode_reports(decoded)
        assert [int(v) for v in reencoded] == [int(v) for v in encoded]


class TestRegistryDrivenRoundTrips:
    """Every spec the registry marks ordinal-encodable must round-trip."""

    @pytest.mark.parametrize(
        "spec",
        specs_with(ordinal_encodable=True),
        ids=lambda spec: spec.name,
    )
    def test_registry_spec_roundtrip(self, spec, rng):
        oracle = spec.build(D, 50_000, 0.8, DELTA)
        values = rng.integers(0, D, N_USERS)
        _assert_roundtrip(oracle, oracle.privatize(values, rng))


SEED_FAMILIES = {
    "32-bit": XXHash32Family,
    "64-bit": CarterWegmanHashFamily,
}


class TestLocalHashingSeedSpaces:
    """OLH and SOLH round-trip on both sides of the int64 boundary."""

    @pytest.mark.parametrize("family_name", sorted(SEED_FAMILIES))
    @pytest.mark.parametrize("oracle_kind", ["OLH", "SOLH"])
    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_property(self, family_name, oracle_kind, data):
        family = SEED_FAMILIES[family_name]()
        eps = data.draw(st.floats(0.3, 4.0))
        seed = data.draw(st.integers(0, 2**31))
        rng = np.random.default_rng(seed)
        if oracle_kind == "OLH":
            fo = OLH(D, eps, family=family)
        else:
            d_prime = data.draw(st.integers(2, 64))
            fo = SOLH(D, eps, d_prime, family=family)
        expect_fast = family.seed_space * fo.d_prime < (1 << 62)
        assert fo.ordinal_codec.fast == expect_fast
        if family_name == "32-bit":
            assert fo.ordinal_codec.fast  # the int64 fast path must engage
        values = rng.integers(0, D, data.draw(st.integers(0, 200)))
        _assert_roundtrip(fo, fo.privatize(values, rng))

    def test_grr_roundtrip_property(self, rng):
        fo = GRR(D, 1.2)
        assert fo.ordinal_codec.fast
        for n_users in (0, 1, N_USERS):
            values = rng.integers(0, D, n_users)
            _assert_roundtrip(fo, fo.privatize(values, rng))

    def test_encoded_values_match_legacy_layout(self, rng):
        """The packed integers themselves are unchanged by the codec:
        ``seed * d' + y``, the Section VI-A2 layout."""
        fo = SOLH(D, 1.5, 8, family=XXHash32Family())
        reports = fo.privatize(rng.integers(0, D, 100), rng)
        encoded = fo.encode_reports(reports)
        legacy = np.array(
            [int(s) * fo.d_prime + int(y)
             for s, y in zip(reports.seeds, reports.values)],
            dtype=object,
        )
        assert [int(v) for v in encoded] == [int(v) for v in legacy]
