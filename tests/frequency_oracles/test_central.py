"""Central-model baselines: Laplace and the uniform guess."""

import numpy as np
import pytest

from repro.core import laplace_variance_central
from repro.frequency_oracles import LaplaceMechanism, UniformBaseline


class TestLaplace:
    def test_noise_scale(self):
        assert LaplaceMechanism(10, 0.5).noise_scale(1000) == pytest.approx(
            2.0 / (1000 * 0.5)
        )

    def test_unbiased(self, rng, small_histogram):
        mech = LaplaceMechanism(16, 0.5)
        runs = np.stack(
            [mech.estimate_from_histogram(small_histogram, rng) for _ in range(100)]
        )
        truth = small_histogram / small_histogram.sum()
        standard_error = runs.std(axis=0) / np.sqrt(100)
        assert (np.abs(runs.mean(axis=0) - truth) < 5 * standard_error).all()

    def test_empirical_variance(self, rng, small_histogram):
        mech = LaplaceMechanism(16, 0.5)
        truth = small_histogram / small_histogram.sum()
        errors = [
            np.mean((mech.estimate_from_histogram(small_histogram, rng) - truth) ** 2)
            for _ in range(200)
        ]
        n = int(small_histogram.sum())
        assert np.mean(errors) == pytest.approx(
            laplace_variance_central(0.5, n), rel=0.3
        )

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            LaplaceMechanism(16, 0.5).estimate_from_histogram(np.zeros(4, int), rng)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            LaplaceMechanism(16, 0.0)


class TestBase:
    def test_always_uniform(self, rng, small_histogram):
        base = UniformBaseline(16)
        estimates = base.estimate_from_histogram(small_histogram, rng)
        assert estimates == pytest.approx(np.full(16, 1 / 16))

    def test_ignores_data(self, rng):
        base = UniformBaseline(4)
        a = base.estimate_from_histogram(np.array([100, 0, 0, 0]), rng)
        b = base.estimate_from_histogram(np.array([25, 25, 25, 25]), rng)
        assert (a == b).all()

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            UniformBaseline(16).estimate_from_histogram(np.zeros(4, int), rng)
