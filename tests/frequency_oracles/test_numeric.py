"""One-bit mean estimation in the shuffle model."""

import numpy as np
import pytest

from repro.frequency_oracles import (
    OneBitMeanEstimator,
    make_shuffled_mean_estimator,
    mean_confidence_halfwidth,
)


class TestMechanics:
    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            OneBitMeanEstimator(5.0, 5.0, 1.0)

    def test_rejects_out_of_range_values(self, rng):
        estimator = OneBitMeanEstimator(0.0, 10.0, 1.0)
        with pytest.raises(ValueError):
            estimator.privatize([11.0], rng)

    def test_reports_are_bits(self, rng):
        estimator = OneBitMeanEstimator(0.0, 1.0, 1.0)
        reports = estimator.privatize(rng.random(500), rng)
        assert set(np.unique(reports.bits)) <= {0, 1}


class TestEstimation:
    def test_unbiased(self, rng):
        estimator = OneBitMeanEstimator(0.0, 100.0, 2.0)
        values = rng.uniform(20, 80, 5000)
        estimates = [estimator.run(values, rng) for __ in range(80)]
        true_mean = float(values.mean())
        standard_error = np.std(estimates) / np.sqrt(80)
        assert abs(np.mean(estimates) - true_mean) < 5 * standard_error

    def test_handles_negative_range(self, rng):
        estimator = OneBitMeanEstimator(-50.0, 50.0, 3.0)
        values = rng.uniform(-10, 30, 20_000)
        estimate = np.mean([estimator.run(values, rng) for __ in range(20)])
        assert estimate == pytest.approx(float(values.mean()), abs=2.0)

    def test_variance_bound_holds(self, rng):
        estimator = OneBitMeanEstimator(0.0, 1.0, 1.0)
        values = rng.random(2000)
        estimates = [estimator.run(values, rng) for __ in range(200)]
        empirical = float(np.var(estimates))
        assert empirical <= estimator.variance_bound(2000) * 1.3

    def test_more_budget_less_noise(self, rng):
        low = OneBitMeanEstimator(0.0, 1.0, 0.5)
        high = OneBitMeanEstimator(0.0, 1.0, 4.0)
        assert high.variance_bound(1000) < low.variance_bound(1000)


class TestShuffleResolution:
    def test_amplifies_at_scale(self):
        estimator, resolution = make_shuffled_mean_estimator(
            0.0, 1.0, 0.3, 1_000_000, 1e-9
        )
        assert resolution.amplified
        assert estimator.eps > 0.3

    def test_fallback_small_population(self):
        estimator, resolution = make_shuffled_mean_estimator(
            0.0, 1.0, 0.05, 500, 1e-9
        )
        assert not resolution.amplified
        assert estimator.eps == pytest.approx(0.05)

    def test_shuffled_beats_local_empirically(self, rng):
        n = 200_000
        values = rng.uniform(0.2, 0.7, n)
        local = OneBitMeanEstimator(0.0, 1.0, 0.3)
        shuffled, __ = make_shuffled_mean_estimator(0.0, 1.0, 0.3, n, 1e-9)
        local_err = np.std([local.run(values, rng) for __ in range(10)])
        shuffled_err = np.std([shuffled.run(values, rng) for __ in range(10)])
        assert shuffled_err < local_err


class TestConfidence:
    def test_halfwidth_positive_and_monotone(self):
        estimator = OneBitMeanEstimator(0.0, 1.0, 1.0)
        hw95 = mean_confidence_halfwidth(estimator, 1000, 0.95)
        hw99 = mean_confidence_halfwidth(estimator, 1000, 0.99)
        assert 0 < hw95 < hw99

    def test_shrinks_with_population(self):
        estimator = OneBitMeanEstimator(0.0, 1.0, 1.0)
        assert mean_confidence_halfwidth(estimator, 10_000) < (
            mean_confidence_halfwidth(estimator, 100)
        )

    def test_validation(self):
        estimator = OneBitMeanEstimator(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            mean_confidence_halfwidth(estimator, 100, confidence=1.5)

    def test_empirical_coverage(self, rng):
        estimator = OneBitMeanEstimator(0.0, 1.0, 2.0)
        values = rng.random(3000)
        true_mean = float(values.mean())
        halfwidth = mean_confidence_halfwidth(estimator, 3000, 0.95)
        covered = sum(
            abs(estimator.run(values, rng) - true_mean) <= halfwidth
            for __ in range(100)
        )
        # The bound is worst-case, so coverage should be at least nominal.
        assert covered >= 90
