"""Cross-module integration tests: plan -> deploy -> run -> verify."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import plan_peos
from repro.crypto.secret_sharing import reconstruct_vector, share_vector
from repro.frequency_oracles import GRR, SOLH
from repro.hashing import XXHash32Family
from repro.protocol import PEOSDeployment, ThreatReport, run_peos
from repro.shuffle import encrypted_oblivious_shuffle, oblivious_shuffle, server_reconstruct


class TestPlanToProtocol:
    """The full deployment story: Section VI-D plan feeds Algorithm 1."""

    def test_planned_deployment_end_to_end(self, rng, paillier_keys):
        pub, priv = paillier_keys
        n, d, delta = 300, 8, 1e-9
        # Targets loose enough to be feasible at this demo n.
        plan = plan_peos(3.0, 6.0, 8.0, n, d, delta, max_fake_factor=2.0)
        if plan.mechanism == "grr":
            fo = GRR(d, plan.eps_l)
        else:
            fo = SOLH(d, plan.eps_l, min(plan.d_prime, 16), family=XXHash32Family())
        n_fake = min(plan.n_r, 150)  # keep the crypto demo fast
        values = rng.integers(0, d, n)
        result = run_peos(
            values, fo, r=3, n_fake=n_fake, ahe_public=pub,
            ahe_decrypt=priv.decrypt, rng=rng, crypto_rng=5,
        )
        truth = np.bincount(values, minlength=d) / n
        assert len(result.shuffled_reports) == n + n_fake
        # Loose accuracy check: the estimate is in the right ballpark.
        assert float(np.mean((result.estimates - truth) ** 2)) < 0.05

    def test_plan_feeds_threat_report(self):
        n, d, delta = 500_000, 100, 1e-9
        plan = plan_peos(0.5, 2.0, 5.0, n, d, delta)
        deployment = PEOSDeployment(
            mechanism=plan.mechanism,
            eps_l=plan.eps_l,
            report_domain=plan.d_prime,
            n=n,
            n_r=plan.n_r,
            r=5,
            delta=delta,
        )
        report = ThreatReport.evaluate(deployment)
        guarantees = dict(report.rows())
        assert guarantees["Adv (server)"] <= 0.5 * (1 + 1e-6)
        assert guarantees["Adv_u (server + users)"] <= 2.0 * (1 + 1e-6)
        assert guarantees["Adv_a (server + majority shufflers)"] <= 5.0 * (1 + 1e-6)


class TestEndToEndAccuracy:
    def test_peos_estimate_close_to_plain_fo(self, rng, paillier_keys):
        """The crypto pipeline must not change the statistics: PEOS with
        n_fake=0 behaves exactly like the bare frequency oracle."""
        pub, priv = paillier_keys
        d, n = 6, 500
        fo = GRR(d, 8.0)  # low noise isolates pipeline errors
        values = rng.integers(0, d, n)
        result = run_peos(
            values, fo, r=3, n_fake=0, ahe_public=pub,
            ahe_decrypt=priv.decrypt, rng=rng, crypto_rng=5,
        )
        truth = np.bincount(values, minlength=d) / n
        assert result.estimates == pytest.approx(truth, abs=0.08)
        # The shuffled multiset must be a permutation of the users' reports
        # (decoded back through the oracle's support counting).
        assert len(result.shuffled_reports) == n


@given(
    r=st.integers(min_value=2, max_value=5),
    n=st.integers(min_value=1, max_value=25),
    modulus=st.sampled_from([2**8, 2**16, 2**32, 997]),
)
@settings(max_examples=25, deadline=None)
def test_oblivious_shuffle_multiset_property(r, n, modulus):
    """Property: the oblivious shuffle preserves the multiset for any
    (r, n, modulus)."""
    rng = np.random.default_rng(1234)
    values = rng.integers(0, modulus, n, dtype=np.int64)
    shares = share_vector(values, r, modulus, rng)
    out, __ = oblivious_shuffle(shares, modulus, rng)
    reconstructed = reconstruct_vector(out, modulus)
    assert sorted(reconstructed.tolist()) == sorted(values.tolist())


class TestEOSPropertySmall:
    @pytest.mark.parametrize("r", [2, 3, 4, 5])
    @pytest.mark.parametrize("modulus", [2**8, 2**16])
    def test_multiset_across_shapes(self, rng, paillier_keys, r, modulus):
        pub, priv = paillier_keys
        values = rng.integers(0, modulus, 8, dtype=np.int64)
        shares = share_vector(values, r, modulus, rng)
        encrypted = [pub.encrypt(int(s), 77 + i) for i, s in enumerate(shares[-1])]
        plain = list(shares[:-1]) + [np.zeros(8, dtype=np.int64)]
        state = encrypted_oblivious_shuffle(
            plain, encrypted, holder=r - 1, modulus=modulus, ahe=pub,
            rng=rng, crypto_rng=3,
        )
        reconstructed = np.asarray(server_reconstruct(state, modulus, priv.decrypt))
        assert sorted(reconstructed.tolist()) == sorted(values.tolist())
