"""Pin the paper's own printed numbers where they are analytically exact.

These tests evaluate our closed forms at the *paper's* parameter points
(n, d, delta from Section VII-A) and check consistency with the values and
orderings the paper prints.  They are regression anchors: if a formula
drifts, the reproduction silently diverges from the paper — these fail
loudly instead.
"""

import math

import pytest

from repro.core import (
    blanket_budget,
    grr_amplification_threshold,
    invert_solh,
    peos_epsilon_collusion_solh,
    solh_optimal_d_prime,
    solh_variance_shuffled,
)

# Paper Section VII-A populations.
N_IPUMS, D_IPUMS = 602_325, 915
N_KOSARAK, D_KOSARAK = 990_002, 42_178
DELTA = 1e-9


class TestTableIIAnchors:
    """Table II prints SOLH's optimal d' on Kosarak for four eps_c values."""

    @pytest.mark.parametrize(
        "eps_c,paper_d_prime",
        [(0.2, 45), (0.4, 177), (0.6, 397), (0.8, 705)],
    )
    def test_optimal_d_prime_matches_paper(self, eps_c, paper_d_prime):
        ours = solh_optimal_d_prime(eps_c, N_KOSARAK, DELTA)
        # Within 1 of the paper's printed value (integer-floor conventions).
        assert abs(ours - paper_d_prime) <= 1

    @pytest.mark.parametrize("eps_c", [0.2, 0.4, 0.6, 0.8])
    def test_solh_variance_order_of_magnitude(self, eps_c):
        """Paper's SOLH utilities: 5.27e-8 / 1.30e-8 / 5.76e-9 / 3.24e-9.

        Prop. 6 at the paper's n must land within 2x of the printed MSE
        (their numbers are empirical with 100 repeats, ours analytic).
        """
        paper = {0.2: 5.27e-8, 0.4: 1.30e-8, 0.6: 5.76e-9, 0.8: 3.24e-9}[eps_c]
        ours = solh_variance_shuffled(eps_c, N_KOSARAK, DELTA)
        assert paper / 2 < ours < paper * 2


class TestFigure3Anchors:
    def test_sh_threshold_inside_plot_range(self):
        """Figure 3's SH cliff: the amplification threshold on IPUMS must
        fall inside the plotted eps_c range (0.1, 1.0) — the paper shows SH
        recovering only in the upper part of the range."""
        threshold = grr_amplification_threshold(N_IPUMS, D_IPUMS, DELTA)
        assert 0.1 < threshold < 1.0

    def test_kosarak_sh_never_amplifies_in_range(self):
        """The paper: 'for the Kosarak dataset, d is too large so that SH
        cannot benefit from amplification' (at eps_c <= 1)."""
        threshold = grr_amplification_threshold(N_KOSARAK, D_KOSARAK, DELTA)
        assert threshold > 1.0

    def test_solh_always_amplifies_in_range(self):
        """'our improved SOLH method can always enjoy the privacy
        amplification advantage' — even at eps_c = 0.1 on IPUMS."""
        assert invert_solh(0.1, N_IPUMS, 2, DELTA) is not None


class TestSectionVIIHeadline:
    def test_absolute_error_below_one_basis_point(self):
        """'our PEOS can make estimations that has absolute errors of
        < 0.01% in reasonable settings': at the IPUMS scale with eps_c=0.8
        the per-value standard error must be below 1e-4."""
        std = math.sqrt(solh_variance_shuffled(0.8, N_IPUMS, DELTA))
        assert std < 1e-4


class TestCorollary8Anchors:
    def test_collusion_guarantee_formula_at_scale(self):
        # With d'=45 (the Table II eps_c=0.2 point) and 5% fakes, eps_s is
        # in the single digits — a *meaningful* guarantee, which is the
        # point of PEOS vs the unbounded exposure of plain shuffling.
        n_r = int(0.05 * N_KOSARAK)
        eps_s = peos_epsilon_collusion_solh(45, n_r, DELTA)
        assert 0 < eps_s < 10

    def test_blanket_budget_scaling(self):
        """m = eps^2 (n-1) / (14 ln(2/delta)) — linear in n, quadratic in
        eps; both scalings are what make Table II's d' grow."""
        m1 = blanket_budget(0.2, N_KOSARAK, DELTA)
        assert blanket_budget(0.4, N_KOSARAK, DELTA) == pytest.approx(4 * m1, rel=1e-9)
        assert blanket_budget(0.2, 2 * N_KOSARAK, DELTA) == pytest.approx(
            m1 * (2 * N_KOSARAK - 1) / (N_KOSARAK - 1), rel=1e-9
        )
