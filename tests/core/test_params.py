"""The Section VI-D PEOS deployment planner."""

import pytest

from repro.core import InfeasiblePlanError, plan_peos
from repro.core.peos_analysis import (
    peos_epsilon_collusion_grr,
    peos_epsilon_collusion_solh,
    peos_epsilon_server_grr,
    peos_epsilon_server_solh,
)

N, D, DELTA = 500_000, 100, 1e-9


class TestFeasiblePlans:
    def test_returns_plan(self):
        plan = plan_peos(0.5, 2.0, 4.0, N, D, DELTA)
        assert plan.mechanism in ("grr", "solh")
        assert plan.n_r > 0
        assert plan.variance > 0

    def test_server_target_met(self):
        plan = plan_peos(0.5, 2.0, 4.0, N, D, DELTA)
        assert plan.eps_server <= 0.5 * (1 + 1e-6)

    def test_collusion_target_met(self):
        plan = plan_peos(0.5, 2.0, 4.0, N, D, DELTA)
        assert plan.eps_collusion <= 2.0 * (1 + 1e-6)

    def test_local_target_met(self):
        plan = plan_peos(0.5, 2.0, 4.0, N, D, DELTA)
        assert plan.eps_local <= 4.0 * (1 + 1e-6)

    def test_guarantees_recomputable(self):
        plan = plan_peos(0.5, 2.0, 4.0, N, D, DELTA)
        if plan.mechanism == "solh":
            server = peos_epsilon_server_solh(
                plan.eps_l, plan.d_prime, N, plan.n_r, DELTA
            )
            collusion = peos_epsilon_collusion_solh(plan.d_prime, plan.n_r, DELTA)
        else:
            server = peos_epsilon_server_grr(plan.eps_l, D, N, plan.n_r, DELTA)
            collusion = peos_epsilon_collusion_grr(D, plan.n_r, DELTA)
        assert server == pytest.approx(plan.eps_server, rel=1e-6)
        assert collusion == pytest.approx(plan.eps_collusion, rel=1e-6)

    def test_small_domain_can_choose_grr(self):
        plan = plan_peos(0.8, 3.0, 6.0, 5_000_000, 4, DELTA)
        # Either mechanism may win, but the plan must be valid; GRR keeps
        # d_prime equal to the domain.
        if plan.mechanism == "grr":
            assert plan.d_prime == 4

    def test_tighter_targets_cost_utility(self):
        loose = plan_peos(0.8, 3.0, 6.0, N, D, DELTA)
        tight = plan_peos(0.2, 1.0, 4.0, N, D, DELTA)
        assert tight.variance >= loose.variance


class TestValidation:
    def test_rejects_unordered_targets(self):
        with pytest.raises(ValueError):
            plan_peos(2.0, 1.0, 4.0, N, D, DELTA)

    def test_infeasible_raises(self):
        # A tiny population cannot meet an aggressive collusion target.
        with pytest.raises(InfeasiblePlanError):
            plan_peos(0.0001, 0.0002, 0.0003, 50, D, DELTA)
