"""Variance analysis: Propositions 4-6, Eq. (5), and mechanism choice."""

import math

import pytest

from repro.core import amplification as amp
from repro.core import variance as var

N, D, DELTA = 200_000, 100, 1e-9


class TestLocalVariances:
    def test_grr_local_formula(self):
        e = math.exp(2.0)
        assert var.grr_variance_local(2.0, N, D) == pytest.approx(
            (e + D - 2) / (N * (e - 1) ** 2)
        )

    def test_olh_local_formula(self):
        e = math.exp(2.0)
        assert var.olh_variance_local(2.0, N, 8) == pytest.approx(
            (e + 7) ** 2 / (N * (e - 1) ** 2 * 7)
        )

    def test_grr_variance_grows_with_domain(self):
        assert var.grr_variance_local(1.0, N, 1000) > var.grr_variance_local(1.0, N, 10)

    def test_olh_variance_independent_of_domain(self):
        # Eq. (4) has no d in it; OLH's utility does not degrade with d.
        assert var.olh_variance_local(1.0, N, 8) == var.olh_variance_local(1.0, N, 8)

    def test_rappor_local_formula(self):
        e_half = math.exp(1.0)
        assert var.rappor_variance_local(2.0, N) == pytest.approx(
            e_half / (N * (e_half - 1) ** 2)
        )

    def test_removal_beats_rappor_at_same_budget(self):
        assert var.rappor_removal_variance_local(2.0, N) < (
            var.rappor_variance_local(2.0, N)
        )


class TestShuffledVariances:
    def test_prop4_formula(self):
        m = amp.blanket_budget(0.5, N, DELTA)
        assert var.grr_variance_shuffled(0.5, N, D, DELTA) == pytest.approx(
            (m - 1) / (N * (m - D) ** 2)
        )

    def test_prop6_formula(self):
        d_prime = amp.solh_optimal_d_prime(0.5, N, DELTA)
        m = amp.blanket_budget(0.5, N, DELTA)
        assert var.solh_variance_shuffled(0.5, N, DELTA) == pytest.approx(
            m**2 / (N * (m - d_prime) ** 2 * (d_prime - 1))
        )

    def test_prop5_formula(self):
        m2 = 0.5**2 * (N - 1) / (56 * math.log(4 / DELTA))
        assert var.unary_variance_shuffled(0.5, N, DELTA) == pytest.approx(
            (m2 - 1) / (N * (m2 - 2) ** 2)
        )

    def test_sh_falls_back_to_local_below_threshold(self):
        threshold = amp.grr_amplification_threshold(2000, 1000, DELTA)
        eps_c = threshold * 0.5
        assert var.grr_variance_shuffled(eps_c, 2000, 1000, DELTA) == pytest.approx(
            var.grr_variance_local(eps_c, 2000, 1000)
        )

    def test_solh_beats_sh_on_large_domain(self):
        d_large = 5000
        assert var.solh_variance_shuffled(0.5, N, DELTA) < (
            var.grr_variance_shuffled(0.5, N, d_large, DELTA)
        )

    def test_rap_r_beats_rap(self):
        assert var.unary_removal_variance_shuffled(0.5, N, DELTA) < (
            var.unary_variance_shuffled(0.5, N, DELTA)
        )

    def test_variance_decreases_with_epsilon(self):
        values = [
            var.solh_variance_shuffled(e, N, DELTA) for e in (0.2, 0.5, 1.0)
        ]
        assert values[0] > values[1] > values[2]


class TestOptimalDPrimeIsOptimal:
    def test_eq5_minimizes_over_integer_sweep(self):
        eps_c = 0.5
        optimal = amp.solh_optimal_d_prime(eps_c, N, DELTA)
        best = min(
            range(2, 3 * optimal),
            key=lambda dp: var.solh_variance_shuffled(eps_c, N, DELTA, d_prime=dp),
        )
        # Integer rounding can shift by one.
        assert abs(best - optimal) <= 1

    def test_profile_shape_is_unimodal_around_optimum(self):
        eps_c = 0.5
        optimal = amp.solh_optimal_d_prime(eps_c, N, DELTA)
        profile = var.solh_variance_profile(
            eps_c, N, DELTA, [max(2, optimal // 4), optimal, optimal * 2]
        )
        assert profile[1][1] <= profile[0][1]
        assert profile[1][1] <= profile[2][1]


class TestAUE:
    def test_noise_probability_formula(self):
        q = var.aue_noise_probability(0.5, N, DELTA)
        assert q == pytest.approx(200 * math.log(4 / DELTA) / (0.25 * N))

    def test_variance_is_bernoulli_over_n(self):
        q = var.aue_noise_probability(0.5, N, DELTA)
        assert var.aue_variance(0.5, N, DELTA) == pytest.approx(q * (1 - q) / N)

    def test_infeasible_at_tiny_population(self):
        with pytest.raises(ValueError):
            var.aue_noise_probability(0.1, 100, DELTA)

    def test_comparable_to_solh_within_constant(self):
        # Section IV-B4: AUE and SOLH differ by only a constant factor.
        aue = var.aue_variance(0.5, N, DELTA)
        solh = var.solh_variance_shuffled(0.5, N, DELTA)
        ratio = aue / solh
        assert 0.05 < ratio < 50


class TestCentralBaselines:
    def test_laplace_variance(self):
        assert var.laplace_variance_central(0.5, N) == pytest.approx(
            8.0 / (N * 0.5) ** 2
        )

    def test_laplace_beats_shuffle_methods(self):
        assert var.laplace_variance_central(0.5, N) < (
            var.solh_variance_shuffled(0.5, N, DELTA)
        )

    def test_base_variance_uniform_data_zero(self):
        assert var.base_variance([0.25, 0.25, 0.25, 0.25]) == pytest.approx(0.0)

    def test_base_variance_skewed_positive(self):
        assert var.base_variance([0.9, 0.1, 0.0, 0.0]) > 0


class TestChooseMechanism:
    def test_small_domain_prefers_grr(self):
        assert var.choose_mechanism(1.0, 10_000_000, 3, DELTA) == "grr"

    def test_large_domain_prefers_solh(self):
        assert var.choose_mechanism(0.5, N, 50_000, DELTA) == "solh"

    def test_choice_matches_direct_comparison(self):
        for d in (5, 100, 5000):
            chosen = var.choose_mechanism(0.5, N, d, DELTA)
            grr = var.grr_variance_shuffled(0.5, N, d, DELTA)
            solh = var.solh_variance_shuffled(0.5, N, DELTA)
            assert chosen == ("grr" if grr <= solh else "solh")
