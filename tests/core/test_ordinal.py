"""The ordinal codec: dtype discipline, packing, and the int64 boundary."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ordinal import INT64_SAFE_SPACE, OrdinalCodec, uniform_ordinal

SMALL_SPACE = (1 << 32) * 17  # a 32-bit-seed local-hashing group
HUGE_SPACE = (1 << 64) * 17  # a 64-bit-seed group: object fallback


class TestDtypeDiscipline:
    def test_fast_path_below_boundary(self):
        assert OrdinalCodec(INT64_SAFE_SPACE - 1).fast
        assert OrdinalCodec(INT64_SAFE_SPACE - 1).dtype == np.dtype(np.int64)

    def test_object_path_at_boundary(self):
        assert not OrdinalCodec(INT64_SAFE_SPACE).fast
        assert OrdinalCodec(INT64_SAFE_SPACE).dtype == np.dtype(object)

    def test_rejects_empty_space(self):
        with pytest.raises(ValueError):
            OrdinalCodec(0)

    def test_equality_and_hash(self):
        assert OrdinalCodec(10) == OrdinalCodec(10)
        assert OrdinalCodec(10) != OrdinalCodec(11)
        assert hash(OrdinalCodec(10)) == hash(OrdinalCodec(10))

    @pytest.mark.parametrize("space", [SMALL_SPACE, HUGE_SPACE])
    def test_constructors_agree_on_dtype(self, space, rng):
        codec = OrdinalCodec(space)
        for arr in (
            codec.zeros(4),
            codec.asarray([0, 1, 2]),
            codec.concat([1], [2, 3]),
            codec.uniform(5, rng),
        ):
            assert arr.dtype == codec.dtype


class TestArrays:
    def test_concat_matches_values(self):
        codec = OrdinalCodec(SMALL_SPACE)
        merged = codec.concat([1, 2], [3])
        assert merged.tolist() == [1, 2, 3]

    def test_object_concat_is_exact(self):
        codec = OrdinalCodec(HUGE_SPACE)
        big = HUGE_SPACE - 1
        merged = codec.concat([big], [0])
        assert merged[0] == big and merged[1] == 0

    def test_pad_check_enforces_length(self):
        codec = OrdinalCodec(SMALL_SPACE)
        assert len(codec.pad_check(np.arange(3), 3)) == 3
        with pytest.raises(ValueError):
            codec.pad_check(np.arange(3), 4)

    def test_validate_range(self):
        codec = OrdinalCodec(100)
        codec.validate([0, 99])
        with pytest.raises(ValueError):
            codec.validate([100])
        with pytest.raises(ValueError):
            codec.validate([-1])

    def test_validate_empty_is_fine(self):
        assert len(OrdinalCodec(100).validate([])) == 0

    def test_uniform_in_range(self, rng):
        draws = OrdinalCodec(50).uniform(2000, rng)
        assert draws.min() >= 0 and draws.max() < 50

    def test_uniform_object_path_in_range(self, rng):
        draws = OrdinalCodec(HUGE_SPACE).uniform(50, rng)
        assert all(0 <= int(v) < HUGE_SPACE for v in draws)


class TestPairPacking:
    @given(
        seeds=st.lists(st.integers(0, (1 << 32) - 1), min_size=1, max_size=40),
        base=st.integers(2, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_int64_roundtrip(self, seeds, base):
        codec = OrdinalCodec((1 << 32) * base)
        lo = [s % base for s in seeds]
        packed = codec.pack_pairs(
            np.array(seeds, dtype=np.uint64), np.array(lo, dtype=np.int64), base
        )
        assert packed.dtype == np.dtype(np.int64)
        hi_out, lo_out = codec.unpack_pairs(packed, base)
        assert hi_out.tolist() == seeds
        assert lo_out.tolist() == lo

    @given(
        seeds=st.lists(st.integers(0, (1 << 64) - 1), min_size=1, max_size=20),
        base=st.integers(2, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_object_roundtrip(self, seeds, base):
        codec = OrdinalCodec((1 << 64) * base)
        assert not codec.fast
        lo = [s % base for s in seeds]
        packed = codec.pack_pairs(
            np.array(seeds, dtype=np.uint64), np.array(lo, dtype=np.int64), base
        )
        assert packed.dtype == np.dtype(object)
        hi_out, lo_out = codec.unpack_pairs(packed, base)
        assert [int(h) for h in hi_out] == seeds
        assert lo_out.tolist() == lo


class TestUniformOrdinal:
    def test_matches_secret_sharing_alias(self, rng):
        from repro.crypto.secret_sharing import uniform_array

        a = uniform_ordinal(1000, 100, np.random.default_rng(3))
        b = uniform_array(1000, 100, np.random.default_rng(3))
        assert (a == b).all()

    def test_rejects_nonpositive_modulus(self, rng):
        with pytest.raises(ValueError):
            uniform_ordinal(0, 5, rng)
