"""Amplification bounds (Table I, Theorems 1-3) and their inversions."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import amplification as amp

N, D, DELTA = 100_000, 100, 1e-9


class TestBinomialMechanism:
    def test_theorem1_formula(self):
        eps = amp.binomial_mechanism_epsilon(N, 0.01, DELTA)
        assert eps == pytest.approx(
            math.sqrt(14 * math.log(2 / DELTA) / (N * 0.01))
        )

    def test_more_noise_less_epsilon(self):
        assert amp.binomial_mechanism_epsilon(N, 0.5, DELTA) < (
            amp.binomial_mechanism_epsilon(N, 0.01, DELTA)
        )

    def test_more_users_less_epsilon(self):
        assert amp.binomial_mechanism_epsilon(10 * N, 0.01, DELTA) < (
            amp.binomial_mechanism_epsilon(N, 0.01, DELTA)
        )

    @pytest.mark.parametrize("bad_p", [0.0, -0.1, 1.5])
    def test_rejects_bad_probability(self, bad_p):
        with pytest.raises(ValueError):
            amp.binomial_mechanism_epsilon(N, bad_p, DELTA)


class TestForwardBounds:
    def test_grr_matches_table1_row3(self):
        eps_l = 2.0
        expected = math.sqrt(
            14 * math.log(2 / DELTA) * (math.exp(eps_l) + D - 1) / (N - 1)
        )
        assert amp.grr_amplified_epsilon(eps_l, N, D, DELTA) == pytest.approx(expected)

    def test_csuzz_matches_table1_row2(self):
        eps_l = 1.0
        expected = math.sqrt(32 * math.log(4 / DELTA) * (math.exp(eps_l) + 1) / N)
        assert amp.csuzz_amplified_epsilon(eps_l, N, DELTA) == pytest.approx(expected)

    def test_efmrtt_matches_table1_row1(self):
        eps_l = 0.3
        expected = math.sqrt(144 * math.log(1 / DELTA) * eps_l**2 / N)
        assert amp.efmrtt_amplified_epsilon(eps_l, N, DELTA) == pytest.approx(expected)

    def test_efmrtt_requires_small_epsilon(self):
        with pytest.raises(ValueError):
            amp.efmrtt_amplified_epsilon(0.6, N, DELTA)

    def test_unary_matches_theorem2(self):
        eps_l = 2.0
        expected = 2 * math.sqrt(
            14 * math.log(4 / DELTA) * (math.exp(eps_l / 2) + 1) / (N - 1)
        )
        assert amp.unary_amplified_epsilon(eps_l, N, DELTA) == pytest.approx(expected)

    def test_solh_matches_theorem3(self):
        eps_l, d_prime = 2.0, 16
        expected = math.sqrt(
            14 * math.log(2 / DELTA) * (math.exp(eps_l) + d_prime - 1) / (N - 1)
        )
        assert amp.solh_amplified_epsilon(eps_l, N, d_prime, DELTA) == pytest.approx(
            expected
        )

    def test_amplified_epsilon_grows_with_local_budget(self):
        values = [amp.grr_amplified_epsilon(e, N, D, DELTA) for e in (0.5, 1.0, 2.0)]
        assert values[0] < values[1] < values[2]

    def test_bbgn_beats_csuzz_binary_at_scale(self):
        # BBGN'19 is the strongest bound of Table I (smaller eps_c).
        eps_l = 1.0
        assert amp.grr_amplified_epsilon(eps_l, N, 2, DELTA) < (
            amp.csuzz_amplified_epsilon(eps_l, N, DELTA)
        )


class TestInversions:
    def test_grr_roundtrip(self):
        # Must sit above the amplification threshold (~0.55 at these n, d).
        eps_c = 0.8
        eps_l = amp.invert_grr(eps_c, N, D, DELTA)
        assert eps_l is not None
        assert amp.grr_amplified_epsilon(eps_l, N, D, DELTA) == pytest.approx(eps_c)

    def test_solh_roundtrip(self):
        eps_c, d_prime = 0.5, 8
        eps_l = amp.invert_solh(eps_c, N, d_prime, DELTA)
        assert eps_l is not None
        assert amp.solh_amplified_epsilon(eps_l, N, d_prime, DELTA) == pytest.approx(
            eps_c
        )

    def test_unary_roundtrip(self):
        eps_c = 0.5
        eps_l = amp.invert_unary(eps_c, N, DELTA)
        assert eps_l is not None
        assert amp.unary_amplified_epsilon(eps_l, N, DELTA) == pytest.approx(eps_c)

    def test_grr_none_below_threshold(self):
        threshold = amp.grr_amplification_threshold(N, D, DELTA)
        assert amp.invert_grr(threshold * 0.9, N, D, DELTA) is None

    def test_grr_some_above_threshold(self):
        threshold = amp.grr_amplification_threshold(N, D, DELTA)
        assert amp.invert_grr(threshold * 1.5, N, D, DELTA) is not None

    def test_removal_equivalent_to_double_budget_rap(self):
        # RAP_R at eps_c should spend the same flip probability as RAP at
        # 2*eps_c: e^{eps_R} == e^{eps_RAP/2}.
        eps_c = 0.4
        eps_removal = amp.invert_unary_removal(eps_c, N, DELTA)
        eps_rap = amp.invert_unary(2 * eps_c, N, DELTA)
        assert eps_removal == pytest.approx(eps_rap / 2)

    def test_larger_d_prime_means_less_local_budget(self):
        small = amp.invert_solh(0.5, N, 4, DELTA)
        large = amp.invert_solh(0.5, N, 64, DELTA)
        assert small > large


class TestOptimalDPrime:
    def test_equation5(self):
        m = amp.blanket_budget(0.5, N, DELTA)
        assert amp.solh_optimal_d_prime(0.5, N, DELTA) == max(2, int((m + 2) // 3))

    def test_grows_with_epsilon(self):
        values = [amp.solh_optimal_d_prime(e, N, DELTA) for e in (0.2, 0.5, 1.0)]
        assert values[0] <= values[1] <= values[2]

    def test_grows_with_population(self):
        assert amp.solh_optimal_d_prime(0.5, 10 * N, DELTA) > (
            amp.solh_optimal_d_prime(0.5, N, DELTA)
        )

    def test_floor_is_two(self):
        assert amp.solh_optimal_d_prime(0.01, 1000, DELTA) == 2


class TestResolvers:
    def test_resolve_grr_amplifies_at_scale(self):
        resolution = amp.resolve_grr(0.8, N, D, DELTA)
        assert resolution.amplified
        assert resolution.eps_l > resolution.eps_c
        assert resolution.gain > 1.0

    def test_resolve_grr_fallback_below_threshold(self):
        resolution = amp.resolve_grr(0.05, 2000, 1000, DELTA)
        assert not resolution.amplified
        assert resolution.eps_l == resolution.eps_c

    def test_resolve_solh_uses_optimal_d_prime(self):
        resolution, d_prime = amp.resolve_solh(0.5, N, DELTA)
        assert d_prime == amp.solh_optimal_d_prime(0.5, N, DELTA)
        assert resolution.amplified

    def test_resolve_solh_fallback_small_population(self):
        resolution, d_prime = amp.resolve_solh(0.1, 200, DELTA)
        assert not resolution.amplified
        assert resolution.eps_l == pytest.approx(0.1)
        assert d_prime >= 2

    def test_resolve_unary_amplifies_at_scale(self):
        resolution = amp.resolve_unary(0.5, N, DELTA)
        assert resolution.amplified

    def test_resolve_unary_removal_beats_rap(self):
        rap = amp.resolve_unary(0.5, N, DELTA)
        rap_r = amp.resolve_unary_removal(0.5, N, DELTA)
        # Removal semantics do not halve the budget: more local budget is
        # spent per bit for the same central target.
        assert 2 * rap_r.eps_l > rap.eps_l


class TestValidation:
    def test_rejects_tiny_population(self):
        with pytest.raises(ValueError):
            amp.grr_amplified_epsilon(1.0, 1, D, DELTA)

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.5])
    def test_rejects_bad_delta(self, delta):
        with pytest.raises(ValueError):
            amp.blanket_budget(0.5, N, delta)

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(ValueError):
            amp.blanket_budget(0.0, N, DELTA)

    def test_rejects_small_domains(self):
        with pytest.raises(ValueError):
            amp.grr_amplified_epsilon(1.0, N, 1, DELTA)
        with pytest.raises(ValueError):
            amp.solh_amplified_epsilon(1.0, N, 1, DELTA)


@given(
    eps_c=st.floats(min_value=0.05, max_value=1.0),
    n=st.integers(min_value=10_000, max_value=1_000_000),
    d_prime=st.integers(min_value=2, max_value=64),
)
@settings(max_examples=100, deadline=None)
def test_solh_inversion_roundtrip_property(eps_c, n, d_prime):
    """Property: whenever the inversion succeeds, the forward bound returns
    exactly the requested central epsilon."""
    eps_l = amp.invert_solh(eps_c, n, d_prime, DELTA)
    if eps_l is not None:
        forward = amp.solh_amplified_epsilon(eps_l, n, d_prime, DELTA)
        assert forward == pytest.approx(eps_c, rel=1e-9)
