"""PEOS privacy (Corollaries 8-9) and utility (Section VI-C)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import amplification as amp
from repro.core import peos_analysis as peos

N, DELTA = 200_000, 1e-9


class TestCorollary8:
    def test_server_epsilon_formula(self):
        eps_l, d_prime, n_r = 2.0, 16, 10_000
        blanket = (N - 1) / (math.exp(eps_l) + d_prime - 1) + n_r / d_prime
        expected = math.sqrt(14 * math.log(2 / DELTA) / blanket)
        assert peos.peos_epsilon_server_solh(
            eps_l, d_prime, N, n_r, DELTA
        ) == pytest.approx(expected)

    def test_collusion_epsilon_formula(self):
        expected = math.sqrt(14 * math.log(2 / DELTA) * 16 / 10_000)
        assert peos.peos_epsilon_collusion_solh(16, 10_000, DELTA) == pytest.approx(
            expected
        )

    def test_no_fakes_means_no_collusion_protection(self):
        assert peos.peos_epsilon_collusion_solh(16, 0, DELTA) == math.inf

    def test_fakes_strictly_improve_server_guarantee(self):
        without = peos.peos_epsilon_server_solh(2.0, 16, N, 0, DELTA)
        with_fakes = peos.peos_epsilon_server_solh(2.0, 16, N, 50_000, DELTA)
        assert with_fakes < without

    def test_zero_fakes_reduces_to_theorem3(self):
        assert peos.peos_epsilon_server_solh(2.0, 16, N, 0, DELTA) == pytest.approx(
            amp.solh_amplified_epsilon(2.0, N, 16, DELTA)
        )

    def test_more_fakes_better_collusion_guarantee(self):
        assert peos.peos_epsilon_collusion_solh(16, 100_000, DELTA) < (
            peos.peos_epsilon_collusion_solh(16, 10_000, DELTA)
        )


class TestCorollary9:
    def test_grr_zero_fakes_reduces_to_bbgn(self):
        assert peos.peos_epsilon_server_grr(2.0, 100, N, 0, DELTA) == pytest.approx(
            amp.grr_amplified_epsilon(2.0, N, 100, DELTA)
        )

    def test_grr_collusion_formula(self):
        expected = math.sqrt(14 * math.log(2 / DELTA) * 100 / 5000)
        assert peos.peos_epsilon_collusion_grr(100, 5000, DELTA) == pytest.approx(
            expected
        )

    def test_grr_collusion_no_fakes_infinite(self):
        assert peos.peos_epsilon_collusion_grr(100, 0, DELTA) == math.inf


class TestInversions:
    def test_solh_roundtrip(self):
        # n_r small enough that the fake reports alone do NOT meet eps_c.
        eps_c, d_prime, n_r = 0.5, 16, 10_000
        eps_l = peos.invert_peos_solh(eps_c, d_prime, N, n_r, DELTA)
        assert eps_l is not None and math.isfinite(eps_l)
        assert peos.peos_epsilon_server_solh(
            eps_l, d_prime, N, n_r, DELTA
        ) == pytest.approx(eps_c)

    def test_grr_roundtrip(self):
        eps_c, d, n_r = 0.5, 50, 20_000
        eps_l = peos.invert_peos_grr(eps_c, d, N, n_r, DELTA)
        assert eps_l is not None and math.isfinite(eps_l)
        assert peos.peos_epsilon_server_grr(eps_l, d, N, n_r, DELTA) == pytest.approx(
            eps_c
        )

    def test_fakes_buy_local_budget(self):
        base = peos.invert_peos_solh(0.5, 16, N, 0, DELTA)
        boosted = peos.invert_peos_solh(0.5, 16, N, 50_000, DELTA)
        assert boosted > base

    def test_infinite_when_fakes_alone_suffice(self):
        # Enough fake reports meet the target with no user noise at all.
        a = 14 * math.log(2 / DELTA) / 0.5**2
        n_r = int(a * 16) + 1000
        assert peos.invert_peos_solh(0.5, 16, N, n_r, DELTA) == math.inf

    def test_none_when_target_unreachable(self):
        assert peos.invert_peos_solh(0.001, 16, 1000, 0, DELTA) is None


class TestRequiredFakeReports:
    def test_formula(self):
        expected = math.ceil(14 * math.log(2 / DELTA) * 16 / 0.5**2)
        assert peos.required_fake_reports(0.5, 16, DELTA) == expected

    def test_achieves_target(self):
        n_r = peos.required_fake_reports(0.5, 16, DELTA)
        assert peos.peos_epsilon_collusion_solh(16, n_r, DELTA) <= 0.5

    def test_minimality(self):
        n_r = peos.required_fake_reports(0.5, 16, DELTA)
        assert peos.peos_epsilon_collusion_solh(16, n_r - 1, DELTA) > 0.5

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(ValueError):
            peos.required_fake_reports(0.0, 16, DELTA)


class TestUtility:
    def test_variance_positive(self):
        assert peos.peos_variance_solh(0.5, N, 20_000, DELTA) > 0

    def test_zero_fakes_matches_prop6(self):
        from repro.core.variance import solh_variance_shuffled

        assert peos.peos_variance_solh(0.5, N, 0, DELTA) == pytest.approx(
            solh_variance_shuffled(0.5, N, DELTA), rel=0.02
        )

    def test_fakes_cost_utility_at_fixed_everything(self):
        # At fixed eps_c and optimal configuration the extra reports add
        # noise mass; variance should not improve dramatically.
        base = peos.peos_variance_solh(0.5, N, 0, DELTA)
        heavy = peos.peos_variance_solh(0.5, N, N, DELTA)
        assert heavy > 0 and base > 0

    def test_raises_when_unreachable(self):
        with pytest.raises(ValueError):
            peos.peos_variance_solh(0.001, 1000, 0, DELTA, d_prime=16)

    def test_grr_variance_positive(self):
        assert peos.peos_variance_grr(0.5, N, 20_000, 50, DELTA) > 0


class TestOptimalDPrimeUnderFakes:
    def test_reduces_to_eq5_without_fakes(self):
        assert peos.peos_optimal_d_prime(0.5, N, 0, DELTA) == (
            amp.solh_optimal_d_prime(0.5, N, DELTA)
        )

    def test_closed_form_matches_exact_search(self):
        eps_c, n_r = 0.5, 30_000
        closed = peos.peos_optimal_d_prime(eps_c, N, n_r, DELTA)
        searched = peos.peos_search_d_prime(eps_c, N, n_r, DELTA)
        # Integer rounding tolerance.
        assert abs(closed - searched) <= 2

    def test_fakes_increase_optimal_d_prime(self):
        # The derivation in peos_analysis (and the exact search) show the
        # optimum grows with n_r — see the module docstring for the
        # discrepancy with the paper's printed formula.
        without = peos.peos_optimal_d_prime(0.5, N, 0, DELTA)
        with_fakes = peos.peos_optimal_d_prime(0.5, N, 100_000, DELTA)
        assert with_fakes >= without


class TestGuaranteeReports:
    def test_analyze_consistency(self):
        report = peos.analyze_peos_solh(2.0, 16, N, 20_000, DELTA)
        assert report.eps_server == pytest.approx(
            peos.peos_epsilon_server_solh(2.0, 16, N, 20_000, DELTA)
        )
        assert report.eps_collusion == pytest.approx(
            peos.peos_epsilon_collusion_solh(16, 20_000, DELTA)
        )
        assert report.eps_local == 2.0

    def test_server_weakest_adversary(self):
        report = peos.analyze_peos_solh(2.0, 16, N, 20_000, DELTA)
        assert report.eps_server <= report.eps_collusion <= report.eps_local

    def test_dominates(self):
        strong = peos.analyze_peos_solh(1.0, 16, N, 100_000, DELTA)
        weak = peos.analyze_peos_solh(2.0, 16, N, 20_000, DELTA)
        assert strong.dominates(weak)
        assert not weak.dominates(strong)


@given(
    eps_c=st.floats(min_value=0.1, max_value=1.0),
    n_r=st.integers(min_value=0, max_value=100_000),
    d_prime=st.integers(min_value=2, max_value=64),
)
@settings(max_examples=100, deadline=None)
def test_peos_inversion_roundtrip_property(eps_c, n_r, d_prime):
    """Property: finite successful inversions reproduce the central target."""
    eps_l = peos.invert_peos_solh(eps_c, d_prime, N, n_r, DELTA)
    if eps_l is not None and math.isfinite(eps_l):
        forward = peos.peos_epsilon_server_solh(eps_l, d_prime, N, n_r, DELTA)
        assert forward == pytest.approx(eps_c, rel=1e-9)
