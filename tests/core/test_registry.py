"""The mechanism registry: specs, capabilities, aliases, and consumers."""

import numpy as np
import pytest

from repro.core import plan_peos
from repro.core.registry import (
    MechanismSpec,
    UnknownMechanismError,
    build_mechanism,
    get_spec,
    has_mechanism,
    register,
    registered_names,
    specs_with,
    validate_names,
)

N, D, DELTA = 50_000, 32, 1e-9

EXPECTED = ("OLH", "Had", "SH", "SOLH", "AUE", "RAP", "RAP_R", "Base", "Lap")


class TestLookup:
    def test_builtin_set_registered(self):
        for name in EXPECTED:
            assert has_mechanism(name)
            assert get_spec(name).name == name

    def test_lookup_is_case_insensitive(self):
        assert get_spec("solh").name == "SOLH"
        assert get_spec("rap_r").name == "RAP_R"

    def test_planner_aliases_resolve(self):
        # The Section VI-D planner emits lowercase mechanism ids.
        assert get_spec("grr").name == "SH"
        assert get_spec("solh").name == "SOLH"

    def test_unknown_name_raises_with_suggestion(self):
        with pytest.raises(UnknownMechanismError) as excinfo:
            get_spec("SOHL")
        message = str(excinfo.value)
        assert "SOLH" in message and "SOHL" in message

    def test_unknown_is_a_key_error(self):
        with pytest.raises(KeyError):
            get_spec("FANCY")

    def test_validate_names(self):
        validate_names(["SOLH", "Base"])
        with pytest.raises(UnknownMechanismError):
            validate_names(["SOLH", "NOPE"])


class TestCapabilities:
    def test_ordinal_encodable_set(self):
        names = {spec.name for spec in specs_with(ordinal_encodable=True)}
        assert names == {"OLH", "Had", "SH", "SOLH"}

    def test_streamable_specs_have_plan_factories(self):
        streamable = specs_with(streamable=True)
        assert {spec.name for spec in streamable} == {"SH", "SOLH"}
        for spec in streamable:
            assert spec.plan_factory is not None

    def test_central_only_set(self):
        names = {spec.name for spec in specs_with(central_only=True)}
        assert names == {"AUE", "Base", "Lap"}

    def test_every_ordinal_spec_exposes_report_space(self, rng):
        for spec in specs_with(ordinal_encodable=True):
            oracle = spec.build(D, N, 0.8, DELTA)
            assert oracle.report_space >= 2
            assert oracle.ordinal_codec.space == oracle.report_space

    def test_closed_form_specs_override_sampling(self):
        from repro.frequency_oracles.base import FrequencyOracle

        for spec in specs_with(closed_form_sampling=True):
            oracle = spec.build(D, N, 0.8, DELTA)
            if isinstance(oracle, FrequencyOracle):
                assert (
                    type(oracle).sample_support_counts
                    is not FrequencyOracle.sample_support_counts
                )
            else:
                # Central mechanisms (Lap, Base) estimate straight from the
                # histogram — closed-form by construction.
                assert hasattr(oracle, "estimate_from_histogram")


class TestBuild:
    def test_build_matches_legacy_construction(self):
        olh = build_mechanism("OLH", D, N, 0.8, DELTA)
        assert olh.eps == pytest.approx(0.8)
        solh = build_mechanism("SOLH", D, N, 0.8, DELTA)
        assert solh.eps > 0.8  # amplified local budget

    def test_infeasible_parameters_raise_value_error(self):
        with pytest.raises(ValueError):
            build_mechanism("AUE", 8, 80, 0.1, DELTA)

    def test_plan_factory_builds_streaming_oracle(self):
        plan = plan_peos(1.0, 3.0, 6.0, n=1000, d=16, delta=1e-9)
        spec = get_spec(plan.mechanism)
        oracle = spec.build_from_plan(16, plan)
        assert oracle.d == 16
        # 32-bit seed family keeps the report group in int64 territory.
        assert oracle.ordinal_codec.fast

    def test_non_streamable_plan_factory_refused(self):
        spec = get_spec("Base")
        with pytest.raises(ValueError):
            spec.build_from_plan(16, None)


class TestRegistration:
    def test_alias_collision_rejected(self):
        with pytest.raises(ValueError):
            register(MechanismSpec(
                name="Conflicting",
                factory=lambda d, n, e, dl: None,
                aliases=("solh",),
            ))
        assert not has_mechanism("Conflicting")

    def test_reregistration_replaces_and_drops_stale_aliases(self):
        spec = MechanismSpec(
            name="Ephemeral",
            factory=lambda d, n, e, dl: "v1",
            aliases=("eph",),
        )
        register(spec)
        try:
            assert get_spec("eph").name == "Ephemeral"
            register(MechanismSpec(
                name="Ephemeral", factory=lambda d, n, e, dl: "v2"
            ))
            assert not has_mechanism("eph")  # stale alias dropped
            assert get_spec("Ephemeral").build(1, 1, 1.0, 0.0) == "v2"
        finally:
            from repro.core import registry

            registry._REGISTRY.pop("Ephemeral", None)
            registry._LOOKUP.pop("ephemeral", None)
            registry._LOOKUP.pop("eph", None)

    def test_registered_names_preserve_order(self):
        names = registered_names()
        assert tuple(n for n in names if n in EXPECTED) == EXPECTED


class TestServiceIntegration:
    def test_oracle_from_plan_resolves_through_registry(self):
        from repro.service.pipeline import oracle_from_plan

        plan = plan_peos(1.0, 3.0, 6.0, n=1000, d=16, delta=1e-9)
        oracle = oracle_from_plan(16, plan)
        assert oracle.d == 16
        assert get_spec(plan.mechanism).streamable

    def test_oracle_from_plan_rejects_unknown_mechanism(self):
        from dataclasses import replace

        from repro.service.pipeline import oracle_from_plan

        plan = plan_peos(1.0, 3.0, 6.0, n=1000, d=16, delta=1e-9)
        with pytest.raises(ValueError):
            oracle_from_plan(16, replace(plan, mechanism="nonsense"))


class TestFacadeHooks:
    """The spec hooks the repro.api facade consumes (PR 3)."""

    def test_local_model_flags(self):
        assert get_spec("OLH").local_model
        assert get_spec("Had").local_model
        for name in ("SH", "SOLH", "RAP", "RAP_R", "AUE", "Base", "Lap"):
            assert not get_spec(name).local_model, name

    def test_planner_ids(self):
        assert get_spec("SH").planner_id == "grr"
        assert get_spec("SOLH").planner_id == "solh"
        # every planner id resolves back to the spec itself (the alias)
        for name in ("SH", "SOLH"):
            spec = get_spec(name)
            assert get_spec(spec.planner_id).name == name

    def test_variance_matches_closed_forms(self):
        from repro.core import (
            grr_variance_shuffled,
            laplace_variance_central,
            solh_variance_shuffled,
        )

        assert get_spec("SOLH").variance(D, N, 0.5, DELTA) == pytest.approx(
            solh_variance_shuffled(0.5, N, DELTA)
        )
        assert get_spec("SH").variance(D, N, 0.5, DELTA) == pytest.approx(
            grr_variance_shuffled(0.5, N, D, DELTA)
        )
        assert get_spec("Lap").variance(D, N, 0.5, DELTA) == pytest.approx(
            laplace_variance_central(0.5, N)
        )
        assert get_spec("Base").variance(D, N, 0.5, DELTA) == 0.0

    def test_variance_none_when_unregistered_or_infeasible(self):
        assert get_spec("Had").variance(D, N, 0.5, DELTA) is None
        # AUE's noise probability exceeds 1 at tiny eps_c * n
        assert get_spec("AUE").variance(D, 100, 0.01, DELTA) is None

    def test_olh_variance_mirrors_its_d_prime_choice(self):
        import math

        from repro.core import olh_variance_local
        from repro.frequency_oracles import OLH

        eps = 0.8
        oracle = OLH(D, eps)
        assert get_spec("OLH").variance(D, N, eps, DELTA) == pytest.approx(
            olh_variance_local(eps, N, oracle.d_prime)
        )

    def test_planner_mechanism_restriction(self):
        free = plan_peos(1.0, 3.0, 6.0, n=500, d=16, delta=DELTA)
        assert free.mechanism == "grr"
        pinned = plan_peos(
            1.0, 3.0, 6.0, n=500, d=16, delta=DELTA, mechanism="solh"
        )
        assert pinned.mechanism == "solh"
        assert pinned.d == 16
        with pytest.raises(ValueError, match="restriction"):
            plan_peos(1.0, 3.0, 6.0, n=500, d=16, delta=DELTA, mechanism="olh")
