"""DP composition accounting."""

import math

import pytest

from repro.core import (
    advanced_composition,
    advanced_composition_total,
    basic_composition,
    group_privacy_epsilon,
    split_budget,
)


class TestBasic:
    def test_even_split(self):
        split = basic_composition(1.2, 1e-8, 6)
        assert split.eps_per_round == pytest.approx(0.2)
        assert split.delta_per_round == pytest.approx(1e-8 / 6)
        assert split.method == "basic"

    def test_total_recovers_budget(self):
        split = basic_composition(1.2, 1e-8, 6)
        assert split.total_eps_basic == pytest.approx(1.2)

    @pytest.mark.parametrize("bad", [(0.0, 1e-8, 6), (1.0, 0.0, 6), (1.0, 1e-8, 0)])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            basic_composition(*bad)


class TestAdvancedTotal:
    def test_formula(self):
        eps_i, rounds, slack = 0.1, 10, 1e-6
        expected = (
            math.sqrt(2 * rounds * math.log(1 / slack)) * eps_i
            + rounds * eps_i * (math.exp(eps_i) - 1)
        )
        assert advanced_composition_total(eps_i, rounds, slack) == pytest.approx(
            expected
        )

    def test_monotone_in_rounds(self):
        assert advanced_composition_total(0.1, 100, 1e-6) > (
            advanced_composition_total(0.1, 10, 1e-6)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            advanced_composition_total(0.0, 10, 1e-6)
        with pytest.raises(ValueError):
            advanced_composition_total(0.1, 10, 2.0)


class TestAdvanced:
    def test_respects_budget(self):
        split = advanced_composition(1.0, 1e-8, 50)
        if split.method == "advanced":
            total = advanced_composition_total(
                split.eps_per_round, 50, 1e-8 * 0.5
            )
            assert total <= 1.0 * (1 + 1e-6)

    def test_beats_basic_at_many_rounds(self):
        basic = basic_composition(1.0, 1e-8, 200)
        advanced = advanced_composition(1.0, 1e-8, 200)
        assert advanced.eps_per_round > basic.eps_per_round
        assert advanced.method == "advanced"

    def test_falls_back_to_basic_at_few_rounds(self):
        split = advanced_composition(1.0, 1e-8, 2)
        assert split.method == "basic"
        assert split.eps_per_round == pytest.approx(0.5)

    def test_slack_fraction_validated(self):
        with pytest.raises(ValueError):
            advanced_composition(1.0, 1e-8, 10, slack_fraction=1.5)


class TestDispatchAndGroup:
    def test_split_budget_dispatch(self):
        assert split_budget(1.0, 1e-8, 4, "basic").method == "basic"
        assert split_budget(1.0, 1e-8, 300, "advanced").method == "advanced"

    def test_split_budget_unknown(self):
        with pytest.raises(ValueError):
            split_budget(1.0, 1e-8, 4, "renyi")

    def test_group_privacy(self):
        assert group_privacy_epsilon(0.7, 2) == pytest.approx(1.4)

    def test_group_privacy_validation(self):
        with pytest.raises(ValueError):
            group_privacy_epsilon(0.7, 0)

    def test_removal_to_replacement_is_group_two(self):
        # Section IV-B4: eps-removal-LDP implies 2eps-replacement-LDP.
        assert group_privacy_epsilon(1.0, 2) == 2.0
