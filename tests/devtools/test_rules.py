"""One positive + one negative fixture per lint rule.

Fixtures are inline sources compiled through the engine's
:func:`lint_sources` seam — no dependence on repository state, so a rule
regression is attributable to the rule, never to drift in ``src/``.
"""

import textwrap

from repro.devtools import all_rules, lint_sources


def codes(sources):
    """Rule codes found when linting ``sources`` (path -> source)."""
    prepared = {
        path: textwrap.dedent(source) for path, source in sources.items()
    }
    report = lint_sources(prepared, all_rules())
    return [finding.rule for finding in report.findings]


def check_one(path, source):
    return codes({path: source})


SERVICE = "src/repro/service/module.py"
CORE = "src/repro/core/module.py"
API = "src/repro/api/module.py"


# -- RPL001: global RNG state -------------------------------------------------

def test_rpl001_flags_global_sampler():
    found = check_one(CORE, """
        import numpy as np

        def sample():
            return np.random.randint(0, 10)
    """)
    assert found == ["RPL001"]


def test_rpl001_flags_module_level_rng_construction():
    found = check_one(CORE, """
        import numpy as np

        RNG = np.random.default_rng(2020)
    """)
    assert found == ["RPL001"]


def test_rpl001_flags_stdlib_global_sampler():
    found = check_one(CORE, """
        import random

        def sample():
            return random.randrange(10)
    """)
    assert found == ["RPL001"]


def test_rpl001_accepts_injected_generator():
    found = check_one(CORE, """
        import numpy as np

        def sample(rng: np.random.Generator):
            local = np.random.default_rng(7)
            return rng.integers(0, 10) + local.integers(0, 10)
    """)
    assert found == []


# -- RPL002: unseeded generators ---------------------------------------------

def test_rpl002_flags_unseeded_default_rng():
    found = check_one(CORE, """
        import numpy as np

        def make():
            return np.random.default_rng()
    """)
    assert found == ["RPL002"]


def test_rpl002_flags_unseeded_stdlib_random():
    found = check_one(CORE, """
        import random

        def make():
            return random.Random()
    """)
    assert found == ["RPL002"]


def test_rpl002_accepts_seeded_and_system_random():
    found = check_one(CORE, """
        import random

        import numpy as np

        def make(seed):
            return np.random.default_rng(seed), random.SystemRandom()
    """)
    assert found == []


# -- RPL003: wall clock -------------------------------------------------------

def test_rpl003_flags_wall_clock():
    found = check_one(CORE, """
        import time

        def stamp(record):
            record["at"] = time.time()
            return record
    """)
    assert found == ["RPL003"]


def test_rpl003_accepts_perf_counter():
    found = check_one(CORE, """
        import time

        def measure(work):
            started = time.perf_counter()
            work()
            return time.perf_counter() - started
    """)
    assert found == []


# -- RPL010: returned views ---------------------------------------------------

def test_rpl010_flags_returned_parameter_slice():
    found = check_one(SERVICE, """
        def head(values, k):
            return values[:k]
    """)
    assert found == ["RPL010"]


def test_rpl010_flags_returned_view_method():
    found = check_one(SERVICE, """
        def flat(values):
            return values.reshape(-1)
    """)
    assert found == ["RPL010"]


def test_rpl010_accepts_copied_slice():
    found = check_one(SERVICE, """
        def head(values, k):
            return values[:k].copy()
    """)
    assert found == []


def test_rpl010_scoped_to_service():
    found = check_one(CORE, """
        def head(values, k):
            return values[:k]
    """)
    assert found == []


# -- RPL011: stored aliases ---------------------------------------------------

def test_rpl011_flags_bare_asarray_on_self():
    found = check_one(CORE, """
        import numpy as np

        class Holder:
            def __init__(self, values):
                self.values = np.asarray(values)
    """)
    assert found == ["RPL011"]


def test_rpl011_accepts_copy_or_frozen_view():
    found = check_one(CORE, """
        import numpy as np

        class Holder:
            def __init__(self, values, weights):
                self.values = np.array(values)
                self.weights = np.asarray(weights)
                self.weights.setflags(writeable=False)
    """)
    assert found == []


# -- RPL020: shared-memory scope ----------------------------------------------

def test_rpl020_flags_unmanaged_segment_creation():
    found = check_one(CORE, """
        from multiprocessing import shared_memory

        def allocate(nbytes):
            segment = shared_memory.SharedMemory(
                name="seg", create=True, size=nbytes
            )
            return segment
    """)
    assert found == ["RPL020"]


def test_rpl020_accepts_pool_and_try_finally():
    found = check_one(CORE, """
        from multiprocessing import shared_memory

        class SegmentPool:
            def allocate(self, nbytes):
                segment = shared_memory.SharedMemory(
                    name="seg", create=True, size=nbytes
                )
                self._segments.append(segment)
                return segment

        def scratch(nbytes):
            segment = None
            try:
                segment = shared_memory.SharedMemory(
                    name="tmp", create=True, size=nbytes
                )
                return bytes(segment.buf)
            finally:
                if segment is not None:
                    segment.unlink()
    """)
    assert found == []


# -- RPL021: unmanaged executors/connections ----------------------------------

def test_rpl021_flags_unclosed_connection():
    found = check_one(CORE, """
        import sqlite3

        def tally(path):
            conn = sqlite3.connect(path)
            return conn.execute("select count(*) from t").fetchone()
    """)
    assert found == ["RPL021"]


def test_rpl021_flags_executor_never_shut_down():
    found = check_one(CORE, """
        from concurrent.futures import ProcessPoolExecutor

        class Runner:
            def start(self):
                self._pool = ProcessPoolExecutor(max_workers=2)
    """)
    assert found == ["RPL021"]


def test_rpl021_accepts_with_block_and_reachable_close():
    found = check_one(CORE, """
        import sqlite3
        from concurrent.futures import ProcessPoolExecutor

        def tally(path):
            with sqlite3.connect(path) as conn:
                return conn.execute("select 1").fetchone()

        class Runner:
            def start(self):
                self._pool = ProcessPoolExecutor(max_workers=2)

            def close(self):
                if self._pool is not None:
                    self._pool.shutdown(wait=True)
    """)
    assert found == []


# -- RPL030: front-door error discipline --------------------------------------

def test_rpl030_flags_escaping_value_error():
    found = check_one(API, """
        def configure(flush_size):
            if flush_size < 1:
                raise ValueError("flush size must be >= 1")
    """)
    assert found == ["RPL030"]


def test_rpl030_accepts_locally_caught_parse_idiom():
    found = check_one(API, """
        from repro.core.errors import ConfigError

        def parse(text):
            try:
                value = int(text)
                if value < 0:
                    raise ValueError
            except ValueError:
                raise ConfigError("limit", f"bad value {text!r}") from None
            return value
    """)
    assert found == []


def test_rpl030_scoped_to_front_door():
    found = check_one(CORE, """
        def check(x):
            if x < 0:
                raise ValueError("negative")
    """)
    assert found == []


# -- RPL031: swallowed exceptions ---------------------------------------------

def test_rpl031_flags_except_pass():
    found = check_one(CORE, """
        def probe(work):
            try:
                work()
            except Exception:
                pass
    """)
    assert found == ["RPL031"]


def test_rpl031_accepts_narrow_probe_and_handled_broad():
    found = check_one(CORE, """
        def probe(work, log):
            try:
                work()
            except TypeError:
                pass
            try:
                work()
            except Exception as failure:
                log(failure)
    """)
    assert found == []


# -- RPL040: import cycles ----------------------------------------------------

def test_rpl040_flags_cross_package_cycle():
    found = codes({
        "src/repro/alpha/one.py": "from ..beta import helper\n",
        "src/repro/beta/two.py": "from ..alpha import helper\n",
    })
    assert found == ["RPL040", "RPL040"]


def test_rpl040_accepts_dag_and_lazy_imports():
    found = codes({
        "src/repro/alpha/one.py": textwrap.dedent("""
            from ..beta import helper
        """),
        "src/repro/beta/two.py": textwrap.dedent("""
            def lazily():
                from ..alpha import helper
                return helper
        """),
    })
    assert found == []


# -- RPL041: oracle merge gating ----------------------------------------------

def test_rpl041_flags_object_state_without_parameter_tuple():
    found = check_one(CORE, """
        class HashedOracle(FrequencyOracle):
            def __init__(self, d, family):
                self.family = family

            def support_counts(self, reports, candidates=None):
                return reports
    """)
    assert found == ["RPL041"]


def test_rpl041_accepts_parameter_tuple_or_scalar_state():
    found = check_one(CORE, """
        class HashedOracle(FrequencyOracle):
            def __init__(self, d, family):
                self.family = family

            def support_counts(self, reports, candidates=None):
                return reports

            def parameter_tuple(self):
                return super().parameter_tuple() + (self.family.name,)

        class ScalarOracle(FrequencyOracle):
            def __init__(self, d, eps):
                self.d = int(d)
                self.eps = float(eps)

            def support_counts(self, reports, candidates=None):
                return reports
    """)
    assert found == []


# -- RPL050: unbounded retry sleeps -------------------------------------------

def test_rpl050_flags_sleep_in_while_true():
    found = check_one(CORE, """
        import time

        def wait_for(ready):
            while True:
                if ready():
                    return
                time.sleep(0.1)
    """)
    assert found == ["RPL050"]


def test_rpl050_flags_async_sleep_in_while_true():
    found = check_one(SERVICE, """
        import asyncio

        async def wait_for(ready):
            while 1:
                if ready():
                    return
                await asyncio.sleep(0.1)
    """)
    assert found == ["RPL050"]


def test_rpl050_accepts_attempt_bounded_backoff():
    found = check_one(CORE, """
        import time

        def wait_for(ready, attempts=8):
            for attempt in range(attempts):
                if ready():
                    return True
                time.sleep(min(1.0, 0.05 * 2.0 ** attempt))
            return False
    """)
    assert found == []


def test_rpl050_accepts_condition_loops_and_sleepless_spins():
    found = check_one(CORE, """
        import time

        def drain(queue, clock):
            deadline = clock() + 5.0
            while clock() < deadline:
                if queue.empty():
                    return True
                time.sleep(0.01)
            return False

        def pump(queue):
            while True:
                job = queue.get()  # blocks; waiting is not retrying
                if job is None:
                    return
    """)
    assert found == []


def test_rpl050_inner_bounded_loop_shields_sleep():
    # The sleep's *nearest* loop is the bounded for: the enclosing
    # while True is an event loop, not an unbounded retry.
    found = check_one(CORE, """
        import time

        def serve(poll):
            while True:
                job = poll()
                if job is None:
                    return
                for attempt in range(3):
                    if job():
                        break
                    time.sleep(0.05)
    """)
    assert found == []


# -- catalog shape ------------------------------------------------------------

def test_catalog_has_at_least_ten_documented_rules():
    rules = all_rules()
    assert len(rules) >= 10
    for rule in rules:
        assert rule.code.startswith("RPL") and len(rule.code) == 6
        assert rule.summary and rule.rationale
    assert len({rule.code for rule in rules}) == len(rules)
