"""Engine-level tests: suppressions, baselines, filtering, CLI exit codes."""

import json
import textwrap

import pytest

from repro.devtools import Baseline, all_rules, lint_sources
from repro.devtools.cli import main
from repro.devtools.config import find_project_root, load_config
from repro.devtools.engine import SYNTAX_RULE, Finding, UsageError

WALL_CLOCK = textwrap.dedent("""
    import time

    def stamp():
        return time.time()
""")

TWO_RULES = textwrap.dedent("""
    import random
    import time

    def noisy():
        return random.Random(), time.time()
""")

PATH = "src/repro/core/module.py"


def lint_one(source, **kwargs):
    return lint_sources({PATH: source}, all_rules(), **kwargs)


# -- inline suppressions ------------------------------------------------------

def test_line_suppression_silences_and_is_counted():
    suppressed = WALL_CLOCK.replace(
        "time.time()", "time.time()  # repro-lint: disable=RPL003"
    )
    report = lint_one(suppressed)
    assert report.clean
    assert report.stats["suppressions_used"] == 1


def test_line_suppression_is_line_scoped():
    report = lint_one(
        "# repro-lint: disable=RPL003\n" + WALL_CLOCK
    )
    assert [finding.rule for finding in report.findings] == ["RPL003"]
    assert report.stats["suppressions_used"] == 0


def test_file_suppression_and_all():
    by_file = lint_one("# repro-lint: disable-file=RPL003\n" + WALL_CLOCK)
    assert by_file.clean
    assert by_file.stats["suppressions_used"] == 1

    all_on_line = WALL_CLOCK.replace(
        "time.time()", "time.time()  # repro-lint: disable=all"
    )
    assert lint_one(all_on_line).clean


def test_suppression_inside_string_literal_is_inert():
    report = lint_one(
        WALL_CLOCK.replace(
            "return time.time()",
            'note = "# repro-lint: disable=RPL003"\n    return time.time()',
        )
    )
    assert [finding.rule for finding in report.findings] == ["RPL003"]


# -- select / ignore ----------------------------------------------------------

def test_select_runs_only_named_rules():
    report = lint_one(TWO_RULES, select=["RPL003"])
    assert [finding.rule for finding in report.findings] == ["RPL003"]


def test_ignore_drops_named_rules():
    report = lint_one(TWO_RULES, ignore=["rpl003"])
    assert [finding.rule for finding in report.findings] == ["RPL002"]


def test_unknown_code_is_a_usage_error():
    with pytest.raises(UsageError, match="RPL999"):
        lint_one(TWO_RULES, select=["RPL999"])
    with pytest.raises(UsageError, match="--ignore"):
        lint_one(TWO_RULES, ignore=["RPL998"])


# -- syntax failures ----------------------------------------------------------

def test_unparseable_file_yields_syntax_finding():
    report = lint_sources({PATH: "def broken(:\n"}, all_rules())
    assert [finding.rule for finding in report.findings] == [SYNTAX_RULE]
    assert "does not parse" in report.findings[0].message


# -- baseline round-trip ------------------------------------------------------

def test_baseline_round_trip(tmp_path):
    first = lint_one(WALL_CLOCK)
    assert not first.clean

    baseline = Baseline.from_findings(first.findings, justification="legacy")
    baseline_path = tmp_path / "baseline.json"
    baseline.dump(baseline_path)
    reloaded = Baseline.load(baseline_path)
    assert reloaded.entries == baseline.entries
    assert all(entry["justification"] == "legacy" for entry in reloaded.entries)

    second = lint_one(WALL_CLOCK, baseline=reloaded)
    assert second.clean
    assert second.stats["baselined"] == 1
    assert second.stats["baseline_stale_entries"] == 0


def test_baseline_survives_line_moves_but_reports_stale_entries():
    report = lint_one(WALL_CLOCK)
    baseline = Baseline.from_findings(report.findings, justification="legacy")

    moved = lint_one("\n\n\n" + WALL_CLOCK, baseline=baseline)
    assert moved.clean and moved.stats["baselined"] == 1

    fixed = lint_one(
        WALL_CLOCK.replace("time.time()", "time.perf_counter()"),
        baseline=baseline,
    )
    assert fixed.clean
    assert fixed.stats["baseline_stale_entries"] == 1


def test_baseline_rejects_foreign_schema(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"schema": "something-else/9", "entries": []}))
    with pytest.raises(UsageError, match="schema"):
        Baseline.load(bad)


def test_missing_baseline_is_empty(tmp_path):
    assert Baseline.load(tmp_path / "absent.json").entries == []


# -- report shape -------------------------------------------------------------

def test_report_dict_schema_and_stats():
    report = lint_one(TWO_RULES)
    payload = report.to_dict()
    assert payload["schema"] == "repro.lint/1"
    assert {f["rule"] for f in payload["findings"]} == {"RPL002", "RPL003"}
    assert payload["baselined"] == []
    stats = payload["stats"]
    assert stats["files_scanned"] == 1
    assert stats["findings"] == 2
    assert stats["findings_by_rule"] == {"RPL002": 1, "RPL003": 1}
    assert set(stats) == {
        "files_scanned", "findings", "findings_by_rule",
        "suppressions_used", "baselined", "baseline_stale_entries",
    }


def test_fingerprint_excludes_line():
    early = Finding(rule="RPL003", path=PATH, line=4, message="wall clock")
    late = Finding(rule="RPL003", path=PATH, line=40, message="wall clock")
    assert early.fingerprint() == late.fingerprint()


# -- CLI ----------------------------------------------------------------------

@pytest.fixture
def project(tmp_path, monkeypatch):
    """A throwaway project root with one violating module."""
    (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""
        [tool.repro-lint]
        paths = ["src"]
        baseline = "lint-baseline.json"
    """))
    module = tmp_path / "src" / "pkg" / "module.py"
    module.parent.mkdir(parents=True)
    module.write_text(WALL_CLOCK)
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_cli_reports_findings_with_exit_1(project, capsys):
    assert main(["--format", "text", "--stats"]) == 1
    out = capsys.readouterr().out
    assert "src/pkg/module.py:5: RPL003" in out
    assert "lint: 1 file(s) scanned, 1 finding(s) [RPL003=1]" in out


def test_cli_json_embeds_stats(project, capsys):
    assert main(["--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro.lint/1"
    assert payload["stats"]["findings_by_rule"] == {"RPL003": 1}


def test_cli_exit_0_when_clean(project, capsys):
    assert main(["--ignore", "RPL003"]) == 0
    assert capsys.readouterr().out == ""


def test_cli_exit_2_on_usage_error(project, capsys):
    assert main(["--select", "RPL999"]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_cli_write_baseline_then_clean(project, capsys):
    assert main(["--write-baseline"]) == 0
    written = json.loads((project / "lint-baseline.json").read_text())
    assert written["schema"] == Baseline.SCHEMA
    assert len(written["entries"]) == 1
    capsys.readouterr()
    assert main([]) == 0


def test_cli_select_comma_and_repeat(project, capsys):
    assert main(["--select", "RPL001,RPL002", "--select", "RPL010"]) == 0
    capsys.readouterr()
    assert main(["--select", "RPL003"]) == 1


# -- config -------------------------------------------------------------------

def test_find_project_root_walks_up(project):
    nested = project / "src" / "pkg"
    assert find_project_root(nested) == project


def test_load_config_reads_pyproject(project):
    config = load_config(project)
    assert config.paths == ["src"]
    assert config.baseline == "lint-baseline.json"
