"""Self-hosting regression: the repository must pass its own linter.

Runs the real CLI over ``src`` against the committed baseline, so any
new invariant violation fails tier-1 — not just CI.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.devtools import Baseline, all_rules, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_lints_clean_via_cli():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", "src", "--format", "json"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, (
        f"repro lint found violations:\n{result.stdout}\n{result.stderr}"
    )
    payload = json.loads(result.stdout)
    assert payload["schema"] == "repro.lint/1"
    assert payload["findings"] == []
    assert payload["stats"]["files_scanned"] > 50


def test_repo_lints_clean_via_api_with_no_stale_baseline():
    baseline = Baseline.load(REPO_ROOT / ".repro-lint-baseline.json")
    assert baseline.entries, "committed baseline should exist and be non-empty"
    assert all(entry.get("justification") for entry in baseline.entries), (
        "every baseline entry must carry a justification"
    )
    report = lint_paths(
        [Path("src")], all_rules(), root=REPO_ROOT, baseline=baseline
    )
    assert report.clean, [finding.to_dict() for finding in report.findings]
    # A stale entry means the grandfathered violation was fixed: the
    # baseline must shrink with it, or it will mask a future regression.
    assert report.stats["baseline_stale_entries"] == 0
