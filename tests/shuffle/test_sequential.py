"""Sequential shuffle (SS): counts, spot checks, and tampering."""

import numpy as np
import pytest

from repro.costs import CostTracker
from repro.shuffle import generate_keys, sequential_shuffle

M = 1 << 16


@pytest.fixture(scope="module")
def keys3():
    return generate_keys(3, rng=77)


class TestHappyPath:
    def test_all_reports_delivered(self, rng, keys3):
        reports = [int(v) for v in rng.integers(0, M, 20)]
        result = sequential_shuffle(reports, M, keys3, n_fake=6, rng=rng, crypto_rng=1)
        assert len(result.reports) == 26
        # Original reports survive as a sub-multiset.
        out = sorted(result.reports.tolist())
        for report in reports:
            assert report in out

    def test_fakes_split_evenly(self, rng, keys3):
        result = sequential_shuffle(
            [1, 2, 3], M, keys3, n_fake=7, rng=rng, crypto_rng=1
        )
        assert result.fakes_per_shuffler == [3, 2, 2]
        assert sum(result.fakes_per_shuffler) == 7

    def test_order_shuffled(self, rng, keys3):
        reports = list(range(50))
        result = sequential_shuffle(reports, M, keys3, n_fake=0, rng=rng, crypto_rng=1)
        assert sorted(result.reports.tolist()) == reports
        assert result.reports.tolist() != reports

    def test_spot_check_passes_honest_run(self, rng, keys3):
        result = sequential_shuffle(
            [5, 6], M, keys3, n_fake=3, rng=rng, crypto_rng=1,
            spot_check_reports=[111, 222],
        )
        assert result.spot_check_passed
        assert len(result.reports) == 2 + 3 + 2


class TestTampering:
    def test_replacement_fails_spot_check(self, rng, keys3):
        """A shuffler replacing the whole batch destroys the dummies."""
        from repro.crypto import onion

        def replace_everything(j, batch):
            if j != 0:
                return batch
            remaining = [kp.public for kp in keys3.shufflers[1:]] + [
                keys3.server.public
            ]
            return [
                onion.wrap(int(9999).to_bytes(2, "big"), remaining, 5)
                for __ in batch
            ]

        result = sequential_shuffle(
            [1, 2, 3, 4], M, keys3, n_fake=0, rng=rng, crypto_rng=1,
            spot_check_reports=[1234], shuffler_tamper=replace_everything,
        )
        assert not result.spot_check_passed

    def test_injection_evades_spot_check(self, rng, keys3):
        """Pure injection keeps dummies intact — the undetectable attack."""
        from repro.crypto import onion

        def inject(j, batch):
            if j != 0:
                return batch
            remaining = [kp.public for kp in keys3.shufflers[1:]] + [
                keys3.server.public
            ]
            extra = [
                onion.wrap(int(7).to_bytes(2, "big"), remaining, 5)
                for __ in range(10)
            ]
            return batch + extra

        result = sequential_shuffle(
            [1, 2, 3], M, keys3, n_fake=0, rng=rng, crypto_rng=1,
            spot_check_reports=[1234], shuffler_tamper=inject,
        )
        assert result.spot_check_passed  # attack invisible to the check
        assert (result.reports == 7).sum() >= 10  # yet the data is poisoned


class TestCosts:
    def test_user_and_parties_tracked(self, rng, keys3):
        tracker = CostTracker()
        sequential_shuffle(
            [1, 2, 3, 4, 5], M, keys3, n_fake=3, rng=rng, crypto_rng=1,
            tracker=tracker,
        )
        assert tracker.cost("user").bytes_sent > 0
        assert tracker.cost("user").compute_seconds > 0
        for j in range(3):
            assert tracker.cost(f"shuffler:{j}").compute_seconds > 0
        assert tracker.cost("server").compute_seconds > 0

    def test_onion_shrinks_along_chain(self, rng, keys3):
        tracker = CostTracker()
        sequential_shuffle(
            [1] * 10, M, keys3, n_fake=0, rng=rng, crypto_rng=1, tracker=tracker,
        )
        first_hop = tracker.cost("shuffler:0").bytes_received
        last_hop = tracker.cost("server").bytes_received
        assert last_hop < first_hop  # one fewer layer of encryption
