"""Encrypted oblivious shuffle: correctness across AHE schemes and r."""

import numpy as np
import pytest

from repro.costs import CostTracker
from repro.crypto.secret_sharing import share_vector
from repro.shuffle import encrypted_oblivious_shuffle, server_reconstruct

M = 2**32


def _run_eos(pub, decrypt, r, n, rng, tracker=None):
    values = rng.integers(0, M, n, dtype=np.int64)
    shares = share_vector(values, r, M, rng)
    encrypted = [pub.encrypt(int(s), 1000 + i) for i, s in enumerate(shares[r - 1])]
    plain = list(shares[:r - 1]) + [np.zeros(n, dtype=np.int64)]
    state = encrypted_oblivious_shuffle(
        plain, encrypted, holder=r - 1, modulus=M, ahe=pub, rng=rng,
        crypto_rng=7, tracker=tracker,
    )
    reconstructed = np.asarray(
        server_reconstruct(state, M, decrypt, tracker=tracker,
                           ciphertext_bytes=pub.ciphertext_bytes)
    )
    return values, reconstructed, state


class TestPaillierBackend:
    @pytest.mark.parametrize("r", [2, 3, 4])
    def test_multiset_preserved(self, rng, paillier_keys, r):
        pub, priv = paillier_keys
        values, rec, __ = _run_eos(pub, priv.decrypt, r, 25, rng)
        assert sorted(rec.tolist()) == sorted(values.tolist())

    def test_net_permutation_consistent(self, rng, paillier_keys):
        pub, priv = paillier_keys
        values, rec, state = _run_eos(pub, priv.decrypt, 3, 30, rng)
        assert (values[state.transcript.net_permutation] == rec).all()

    def test_holder_moves(self, rng, paillier_keys):
        pub, priv = paillier_keys
        holders = set()
        for seed in range(5):
            local_rng = np.random.default_rng(seed)
            __, __, state = _run_eos(pub, priv.decrypt, 3, 8, local_rng)
            holders.add(state.holder)
        assert len(holders) > 1  # the ciphertext share travels

    def test_ciphertexts_rerandomized(self, rng, paillier_keys):
        pub, priv = paillier_keys
        values = np.zeros(5, dtype=np.int64)
        shares = share_vector(values, 3, M, rng)
        encrypted = [pub.encrypt(int(s), 50 + i) for i, s in enumerate(shares[2])]
        original = list(encrypted)
        plain = [shares[0], shares[1], np.zeros(5, dtype=np.int64)]
        state = encrypted_oblivious_shuffle(
            plain, encrypted, 2, M, pub, rng, crypto_rng=3
        )
        assert set(state.encrypted).isdisjoint(set(original))


class TestNoRerandomization:
    """The paper's cost model: corrections only, no fresh blinding."""

    def test_multiset_still_preserved(self, rng, paillier_keys):
        pub, priv = paillier_keys
        values = rng.integers(0, M, 20, dtype=np.int64)
        shares = share_vector(values, 3, M, rng)
        encrypted = [pub.encrypt(int(s), 9 + i) for i, s in enumerate(shares[2])]
        plain = [shares[0], shares[1], np.zeros(20, dtype=np.int64)]
        state = encrypted_oblivious_shuffle(
            plain, encrypted, 2, M, pub, rng, crypto_rng=3, rerandomize=False,
        )
        rec = np.asarray(server_reconstruct(state, M, priv.decrypt))
        assert sorted(rec.tolist()) == sorted(values.tolist())

    def test_corrections_still_unlink(self, rng, paillier_keys):
        """Even without blinding, the secret correction changes every
        ciphertext at each hop."""
        pub, priv = paillier_keys
        values = np.zeros(6, dtype=np.int64)
        shares = share_vector(values, 3, M, rng)
        encrypted = [pub.encrypt(int(s), 40 + i) for i, s in enumerate(shares[2])]
        original = list(encrypted)
        plain = [shares[0], shares[1], np.zeros(6, dtype=np.int64)]
        state = encrypted_oblivious_shuffle(
            plain, encrypted, 2, M, pub, rng, crypto_rng=3, rerandomize=False,
        )
        assert set(state.encrypted).isdisjoint(set(original))


class TestDGKBackend:
    def test_multiset_preserved(self, rng, dgk_keys):
        pub, priv = dgk_keys
        values, rec, __ = _run_eos(pub, priv.decrypt, 3, 20, rng)
        assert sorted(rec.tolist()) == sorted(values.tolist())

    def test_plaintext_space_matches_modulus(self, dgk_keys):
        pub, __ = dgk_keys
        assert pub.plaintext_space == M  # l=32 keypair: wraps natively


class TestValidation:
    def test_rejects_bad_holder(self, rng, paillier_keys):
        pub, __ = paillier_keys
        with pytest.raises(ValueError):
            encrypted_oblivious_shuffle(
                [np.zeros(3, dtype=np.int64)] * 2, [1, 2, 3], holder=5,
                modulus=M, ahe=pub, rng=rng,
            )

    def test_rejects_length_mismatch(self, rng, paillier_keys):
        pub, __ = paillier_keys
        with pytest.raises(ValueError):
            encrypted_oblivious_shuffle(
                [np.zeros(3, dtype=np.int64), np.zeros(4, dtype=np.int64)],
                [1, 2, 3], holder=0, modulus=M, ahe=pub, rng=rng,
            )


class TestCostAccounting:
    def test_holder_pays_ciphertext_bandwidth(self, rng, paillier_keys):
        pub, priv = paillier_keys
        tracker = CostTracker()
        _run_eos(pub, priv.decrypt, 3, 10, rng, tracker=tracker)
        group = tracker.group_cost("shuffler")
        assert group.bytes_sent > 10 * pub.ciphertext_bytes  # ciphertext hops

    def test_server_receives_everything(self, rng, paillier_keys):
        pub, priv = paillier_keys
        tracker = CostTracker()
        _run_eos(pub, priv.decrypt, 3, 10, rng, tracker=tracker)
        assert tracker.cost("server").bytes_received > 0
