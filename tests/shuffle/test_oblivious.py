"""Resharing-based oblivious shuffle: correctness and obliviousness."""

import math

import numpy as np
import pytest

from repro.costs import CostTracker
from repro.crypto.secret_sharing import reconstruct_vector, share_vector
from repro.shuffle import hider_count, oblivious_shuffle, shuffle_rounds

M = 2**32


def _run(r, n, rng):
    values = rng.integers(0, M, n, dtype=np.int64)
    shares = share_vector(values, r, M, rng)
    out, transcript = oblivious_shuffle(shares, M, rng)
    return values, reconstruct_vector(out, M), transcript


class TestStructure:
    @pytest.mark.parametrize("r,expected", [(2, 2), (3, 2), (4, 3), (5, 3), (7, 4)])
    def test_hider_count(self, r, expected):
        assert hider_count(r) == expected

    @pytest.mark.parametrize("r", [2, 3, 4, 5, 7])
    def test_round_count_is_r_choose_t(self, r):
        t = hider_count(r)
        assert len(shuffle_rounds(r)) == math.comb(r, t)

    def test_rejects_single_shuffler(self):
        with pytest.raises(ValueError):
            hider_count(1)


class TestCorrectness:
    @pytest.mark.parametrize("r", [2, 3, 4, 5])
    def test_multiset_preserved(self, rng, r):
        values, rec, __ = _run(r, 40, rng)
        assert sorted(rec.tolist()) == sorted(values.tolist())

    def test_net_permutation_consistent(self, rng):
        values, rec, transcript = _run(3, 60, rng)
        assert (values[transcript.net_permutation] == rec).all()

    def test_output_actually_shuffled(self, rng):
        values, rec, __ = _run(3, 200, rng)
        assert not (values == rec).all()

    def test_big_modulus_object_path(self, rng):
        modulus = (1 << 64) * 10
        values = np.array([modulus - 1, 0, 7, modulus // 3], dtype=object)
        shares = share_vector(values, 3, modulus, rng)
        out, __ = oblivious_shuffle(shares, modulus, rng)
        rec = reconstruct_vector(out, modulus)
        assert sorted(int(v) for v in rec) == sorted(int(v) for v in values)

    def test_mismatched_lengths_rejected(self, rng):
        with pytest.raises(ValueError):
            oblivious_shuffle(
                [np.zeros(3, dtype=np.int64), np.zeros(4, dtype=np.int64)], M, rng
            )


class TestObliviousness:
    """The counting argument: minority coalitions miss >= 1 permutation."""

    @pytest.mark.parametrize("r", [3, 5])
    def test_minority_coalitions_blind(self, rng, r):
        from itertools import combinations

        __, __, transcript = _run(r, 10, rng)
        max_corrupt = r - hider_count(r)  # floor(r/2) for odd r
        for size in range(1, max_corrupt + 1):
            for coalition in combinations(range(r), size):
                assert not transcript.known_to(coalition)

    def test_full_coalition_knows(self, rng):
        __, __, transcript = _run(3, 10, rng)
        assert transcript.known_to([0, 1, 2])

    def test_hider_majority_knows(self, rng):
        __, __, transcript = _run(3, 10, rng)
        # Any 2 of 3 shufflers include a hider of every round when t=2:
        # each round's hider set has size 2, so any pair intersects it.
        assert transcript.known_to([0, 1])

    def test_each_round_permutation_recorded(self, rng):
        __, __, transcript = _run(3, 25, rng)
        assert len(transcript.rounds) == 3
        for rnd in transcript.rounds:
            assert sorted(rnd.permutation.tolist()) == list(range(25))


class TestCostAccounting:
    def test_all_shufflers_communicate(self, rng):
        values = rng.integers(0, M, 30, dtype=np.int64)
        shares = share_vector(values, 3, M, rng)
        tracker = CostTracker()
        oblivious_shuffle(shares, M, rng, tracker=tracker)
        for j in range(3):
            cost = tracker.cost(f"shuffler:{j}")
            assert cost.bytes_sent > 0
            assert cost.bytes_received > 0

    def test_communication_grows_with_n(self, rng):
        def total_bytes(n):
            values = rng.integers(0, M, n, dtype=np.int64)
            shares = share_vector(values, 3, M, rng)
            tracker = CostTracker()
            oblivious_shuffle(shares, M, rng, tracker=tracker)
            return tracker.group_cost("shuffler").bytes_sent

        assert total_bytes(100) > total_bytes(10) * 5
