"""Single-shuffler pipeline."""

import numpy as np

from repro.costs import CostTracker
from repro.crypto import elgamal_ec
from repro.shuffle import single_shuffle

M = 1 << 16


class TestSingleShuffle:
    def test_multiset_preserved(self, rng):
        keypair = elgamal_ec.generate_keypair(rng=5)
        reports = [int(v) for v in rng.integers(0, M, 30)]
        result = single_shuffle(reports, M, keypair, rng, crypto_rng=1)
        assert sorted(result.reports.tolist()) == sorted(reports)

    def test_permutation_applied(self, rng):
        keypair = elgamal_ec.generate_keypair(rng=5)
        reports = list(range(40))
        result = single_shuffle(reports, M, keypair, rng, crypto_rng=1)
        assert (np.asarray(reports)[result.permutation] == result.reports).all()
        assert result.reports.tolist() != reports

    def test_costs_tracked(self, rng):
        keypair = elgamal_ec.generate_keypair(rng=5)
        tracker = CostTracker()
        single_shuffle([1, 2, 3], M, keypair, rng, crypto_rng=1, tracker=tracker)
        assert tracker.cost("user").bytes_sent > 0
        assert tracker.cost("shuffler:0").bytes_sent > 0
        assert tracker.cost("server").compute_seconds > 0
