"""Support-count kernel engine: bit-identity on every path, plan logic."""

import numpy as np
import pytest

from repro.hashing import (
    CarterWegmanHashFamily,
    MultiplyShiftHashFamily,
    XXHash32Family,
    chunk_spans,
    plan_support_counts,
    support_counts_kernel,
)

FAMILIES = [CarterWegmanHashFamily(), MultiplyShiftHashFamily(), XXHash32Family()]


@pytest.fixture(params=FAMILIES, ids=lambda f: f.name)
def family(request):
    return request.param


def naive_counts(family, seeds, reported, candidates, d_out):
    """The pre-kernel reference: materialize, compare, reduce."""
    hashed = family.hash_outer(seeds, candidates, d_out)
    return (hashed == np.asarray(reported)[:, None]).sum(axis=0)


class TestBitIdentity:
    """Every execution path must reproduce the naive counts exactly."""

    def test_matches_naive_materialization(self, family, rng):
        seeds = family.sample_seeds(300, rng)
        reported = rng.integers(0, 8, 300)
        candidates = np.arange(50)
        counts = support_counts_kernel(family, seeds, reported, candidates, 8)
        assert counts.dtype == np.int64
        assert counts.tolist() == naive_counts(
            family, seeds, reported, candidates, 8
        ).tolist()

    def test_candidate_subset_and_order(self, family, rng):
        seeds = family.sample_seeds(120, rng)
        reported = rng.integers(0, 4, 120)
        candidates = np.array([7, 3, 3, 41, 0])
        counts = support_counts_kernel(family, seeds, reported, candidates, 4)
        assert counts.tolist() == naive_counts(
            family, seeds, reported, candidates, 4
        ).tolist()

    def test_tiny_chunk_bytes_forces_candidate_major(self, family, rng):
        seeds = family.sample_seeds(200, rng)
        reported = rng.integers(0, 8, 200)
        candidates = np.arange(30)
        plan = plan_support_counts(200, 30, 8, chunk_bytes=64)
        assert plan.orientation == "candidates"
        tiny = support_counts_kernel(
            family, seeds, reported, candidates, 8, chunk_bytes=64
        )
        assert tiny.tolist() == naive_counts(
            family, seeds, reported, candidates, 8
        ).tolist()

    def test_report_major_chunking_invariant(self, family, rng):
        seeds = family.sample_seeds(500, rng)
        reported = rng.integers(0, 8, 500)
        candidates = np.arange(10)
        one_shot = support_counts_kernel(family, seeds, reported, candidates, 8)
        chunked = support_counts_kernel(
            family, seeds, reported, candidates, 8, chunk_bytes=400
        )
        assert one_shot.tolist() == chunked.tolist()

    def test_unique_seed_fast_path(self, rng):
        """Duplicated 32-bit seeds must route through seed grouping."""
        family = XXHash32Family()
        seeds = np.repeat(family.sample_seeds(40, rng), 10)
        reported = rng.integers(0, 8, len(seeds))
        candidates = np.arange(25)
        plan = plan_support_counts(len(seeds), 25, 8, n_unique=40)
        assert plan.orientation == "unique"
        counts = support_counts_kernel(family, seeds, reported, candidates, 8)
        assert counts.tolist() == naive_counts(
            family, seeds, reported, candidates, 8
        ).tolist()

    def test_unique_path_chunked(self, rng):
        family = XXHash32Family()
        seeds = np.repeat(family.sample_seeds(64, rng), 8)
        reported = rng.integers(0, 4, len(seeds))
        candidates = np.arange(40)
        counts = support_counts_kernel(
            family, seeds, reported, candidates, 4, chunk_bytes=4096
        )
        assert counts.tolist() == naive_counts(
            family, seeds, reported, candidates, 4
        ).tolist()

    def test_64bit_seed_space_skips_grouping(self, rng):
        """Grouping requires a small seed space; CW duplicates still count."""
        family = CarterWegmanHashFamily()
        seeds = np.repeat(family.sample_seeds(20, rng), 10)
        reported = rng.integers(0, 8, len(seeds))
        candidates = np.arange(15)
        counts = support_counts_kernel(family, seeds, reported, candidates, 8)
        assert counts.tolist() == naive_counts(
            family, seeds, reported, candidates, 8
        ).tolist()

    def test_d_out_one_counts_everything(self, family):
        seeds = np.arange(10, dtype=np.uint64)
        reported = np.zeros(10, dtype=np.int64)
        counts = support_counts_kernel(family, seeds, reported, np.arange(6), 1)
        assert counts.tolist() == [10] * 6

    def test_empty_reports(self, family):
        counts = support_counts_kernel(
            family, np.array([], dtype=np.uint64), np.array([], dtype=np.int64),
            np.arange(5), 8,
        )
        assert counts.tolist() == [0] * 5

    def test_empty_candidates(self, family, rng):
        seeds = family.sample_seeds(10, rng)
        counts = support_counts_kernel(
            family, seeds, rng.integers(0, 8, 10),
            np.array([], dtype=np.int64), 8,
        )
        assert counts.shape == (0,)


class TestPlan:
    def test_full_matrix_fits_one_chunk(self):
        plan = plan_support_counts(1_000, 10, 16)
        assert plan.orientation == "reports"
        assert plan.chunk == 1_000
        assert plan.hashes_evaluated == 10_000

    def test_wide_candidate_axis_flips_orientation(self):
        plan = plan_support_counts(10, 1_000_000, 16, chunk_bytes=1 << 20)
        assert plan.orientation == "candidates"
        assert 1 <= plan.chunk < 1_000_000
        assert plan.peak_intermediate_bytes <= (1 << 20)

    def test_unique_requires_enough_duplicates(self):
        grouped = plan_support_counts(1_000, 50, 8, n_unique=100)
        assert grouped.orientation == "unique"
        ungrouped = plan_support_counts(1_000, 50, 8, n_unique=999)
        assert ungrouped.orientation == "reports"

    def test_unique_requires_weight_table_within_budget(self):
        plan = plan_support_counts(1_000, 50, 1 << 20, chunk_bytes=1 << 16,
                                   n_unique=100)
        assert plan.orientation != "unique"

    def test_peak_bytes_scale_with_chunk(self):
        small = plan_support_counts(10_000, 128, 16, chunk_bytes=1 << 16)
        large = plan_support_counts(10_000, 128, 16, chunk_bytes=1 << 26)
        assert small.peak_intermediate_bytes < large.peak_intermediate_bytes
        assert small.peak_intermediate_bytes <= (1 << 16)

    def test_explicit_plan_overrides_auto(self, rng):
        family = CarterWegmanHashFamily()
        seeds = family.sample_seeds(50, rng)
        reported = rng.integers(0, 8, 50)
        candidates = np.arange(20)
        forced = plan_support_counts(50, 20, 8, chunk_bytes=128)
        counts = support_counts_kernel(
            family, seeds, reported, candidates, 8, plan=forced
        )
        assert counts.tolist() == naive_counts(
            family, seeds, reported, candidates, 8
        ).tolist()


class TestGroupingProbe:
    """The duplicate-seed probe must not sort huge clearly-unique inputs."""

    def test_small_inputs_always_probe(self):
        from repro.hashing.kernels import _grouping_plausible

        assert _grouping_plausible(XXHash32Family(), 1_000, 4)
        assert not _grouping_plausible(XXHash32Family(), 1, 100)

    def test_large_narrow_inputs_require_birthday_regime(self):
        from repro.hashing.kernels import _grouping_plausible

        family = XXHash32Family()
        assert not _grouping_plausible(family, 1_000_000, 16)
        assert _grouping_plausible(family, (1 << 31) + 1, 16)

    def test_wide_candidate_axis_always_probes(self):
        """Duplicate-heavy re-aggregation workloads keep the O(u*d) win."""
        from repro.hashing.kernels import _grouping_plausible

        assert _grouping_plausible(XXHash32Family(), 1_000_000, 128)

    def test_64bit_seed_space_never_probes(self):
        from repro.hashing.kernels import _grouping_plausible

        assert not _grouping_plausible(CarterWegmanHashFamily(), 1_000, 1_000)


class TestChunkSpans:
    def test_covers_range_exactly(self):
        spans = list(chunk_spans(10, 3))
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_degenerate_chunk_clamped_to_one(self):
        assert list(chunk_spans(3, 0)) == [(0, 1), (1, 2), (2, 3)]

    def test_empty_total(self):
        assert list(chunk_spans(0, 5)) == []
