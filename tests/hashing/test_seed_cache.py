"""SeedRowCache: LRU accounting, identity invalidation, bit-transparent
integration with the kernel, the oracle, and pipeline resume."""

import numpy as np
import pytest

from repro.frequency_oracles import OLH
from repro.hashing import (
    CarterWegmanHashFamily,
    SeedRowCache,
    XXHash32Family,
    support_counts_kernel,
)
from repro.persistence import MemoryStateStore
from repro.service import ShardedPipeline, StreamConfig

D = 16
ROW_BYTES = 4 * D  # uint32 rows over the full arange(D) candidate set


def _rows(cache, family, seeds, d_out=D):
    candidates = np.arange(d_out)
    cache.ensure(family, d_out, len(candidates))
    return cache.rows(family, np.asarray(seeds, dtype=np.int64),
                      candidates, d_out)


class TestLRUEviction:
    def test_budget_caps_rows_and_evicts_oldest(self):
        family = XXHash32Family()
        cache = SeedRowCache(3 * ROW_BYTES)
        _rows(cache, family, [1, 2, 3])
        assert cache.cached_seeds() == (1, 2, 3)
        assert cache.nbytes == 3 * ROW_BYTES
        _rows(cache, family, [4])  # over budget: seed 1 (oldest) goes
        assert cache.cached_seeds() == (2, 3, 4)
        assert cache.evictions == 1
        assert cache.nbytes == 3 * ROW_BYTES

    def test_hit_refreshes_recency(self):
        family = XXHash32Family()
        cache = SeedRowCache(3 * ROW_BYTES)
        _rows(cache, family, [1, 2, 3])
        _rows(cache, family, [1])  # 1 becomes most-recent
        _rows(cache, family, [4])  # so 2, not 1, is evicted
        assert cache.cached_seeds() == (3, 1, 4)
        assert cache.hits == 1
        assert cache.misses == 4

    def test_budget_below_one_row_is_passthrough(self):
        family = XXHash32Family()
        cache = SeedRowCache(ROW_BYTES - 1)
        out = _rows(cache, family, [1, 2])
        assert out.shape == (2, D)
        assert len(cache) == 0  # nothing inserted, nothing raised
        assert cache.misses == 2

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            SeedRowCache(0)


class TestBitTransparency:
    def test_hit_rows_identical_to_recomputed(self, rng):
        family = XXHash32Family()
        cache = SeedRowCache(1 << 20)
        seeds = family.sample_seeds(64, rng)
        first = _rows(cache, family, seeds)
        again = _rows(cache, family, seeds)  # pure hits
        assert cache.hits == 64
        assert again.tobytes() == first.tobytes()

    def test_kernel_counts_identical_cache_on_off(self, rng):
        family = XXHash32Family()
        cache = SeedRowCache(1 << 20)
        candidates = np.arange(D)
        # Cross-flush: the second flush re-draws from the same seed pool,
        # so the cached run serves a mix of hits and misses.
        pool = family.sample_seeds(128, rng)
        for __ in range(3):
            take = rng.integers(0, len(pool), 400)
            seeds = pool[take]
            reported = rng.integers(0, 8, 400)
            plain = support_counts_kernel(
                family, seeds, reported, candidates, 8
            )
            cached = support_counts_kernel(
                family, seeds, reported, candidates, 8, seed_cache=cache
            )
            assert cached.tobytes() == plain.tobytes()
        assert cache.hits > 0

    def test_explicit_plan_bypasses_cache(self, rng):
        from repro.hashing import plan_support_counts

        family = XXHash32Family()
        cache = SeedRowCache(1 << 20)
        seeds = family.sample_seeds(50, rng)
        reported = rng.integers(0, 8, 50)
        plan = plan_support_counts(50, D, 8)
        support_counts_kernel(
            family, seeds, reported, np.arange(D), 8,
            plan=plan, seed_cache=cache,
        )
        assert cache.lookups == 0  # pinned plans opt out of cache steering


class TestInvalidation:
    def test_family_change_resets(self):
        cache = SeedRowCache(1 << 20)
        _rows(cache, XXHash32Family(), [1, 2])
        _rows(cache, CarterWegmanHashFamily(), [1, 2])
        assert cache.resets == 1
        # The rows now cached belong to the new family only.
        assert len(cache) == 2

    def test_d_out_change_resets(self):
        family = XXHash32Family()
        cache = SeedRowCache(1 << 20)
        _rows(cache, family, [1, 2], d_out=16)
        _rows(cache, family, [1, 2], d_out=8)
        assert cache.resets == 1
        assert cache.misses == 4  # nothing survived as a hit

    def test_same_identity_does_not_reset(self):
        family = XXHash32Family()
        cache = SeedRowCache(1 << 20)
        _rows(cache, family, [1])
        _rows(cache, family, [2])
        assert cache.resets == 0


class TestOracleIntegration:
    def test_configure_kernel_builds_and_clears_cache(self):
        fo = OLH(d=D, eps=1.0, family=XXHash32Family())
        assert fo.seed_cache is None
        fo.configure_kernel(seed_cache_bytes=1 << 16)
        assert isinstance(fo.seed_cache, SeedRowCache)
        fo.configure_kernel(seed_cache_bytes=0)
        assert fo.seed_cache is None

    def test_wide_seed_space_declines_cache(self):
        # The default Carter-Wegman family draws 64-bit seeds: they never
        # recur, so the cache stays off ("off outside the int64 fast path").
        fo = OLH(d=D, eps=1.0)
        fo.configure_kernel(seed_cache_bytes=1 << 20)
        assert fo.seed_cache is None

    def test_counts_identical_with_candidate_subsets(self, rng):
        # Explicit candidate sets must not be served from the cache (its
        # rows are only valid for the full-domain default), and results
        # must stay identical either way.
        fo_off = OLH(d=D, eps=1.0, family=XXHash32Family())
        fo_on = OLH(d=D, eps=1.0, family=XXHash32Family())
        fo_on.configure_kernel(seed_cache_bytes=1 << 20)
        reports = fo_off.privatize(rng.integers(0, D, 300),
                                   np.random.default_rng(3))
        subset = np.array([1, 5, 11])
        assert (
            fo_on.support_counts(reports, candidates=subset).tobytes()
            == fo_off.support_counts(reports, candidates=subset).tobytes()
        )
        assert fo_on.seed_cache.lookups == 0
        # Full-domain folds do engage it, bit-identically.
        assert (
            fo_on.support_counts(reports).tobytes()
            == fo_off.support_counts(reports).tobytes()
        )
        assert fo_on.seed_cache.lookups > 0

    def test_repeat_folds_hit(self, rng):
        fo = OLH(d=D, eps=1.0, family=XXHash32Family())
        fo.configure_kernel(seed_cache_bytes=1 << 22)
        reports = fo.privatize(rng.integers(0, D, 500),
                               np.random.default_rng(3))
        first = fo.support_counts(reports)
        again = fo.support_counts(reports)
        assert again.tobytes() == first.tobytes()
        assert fo.seed_cache.hit_rate > 0.4  # second fold is all hits


class TestPipelineResume:
    """The cache is a process-local working set: resume rebuilds it from
    scratch, so recovered runs can never see a stale row."""

    def _epoch_values(self):
        feed_rng = np.random.default_rng(99)
        return [feed_rng.integers(0, D, 250) for __ in range(4)]

    def _config(self):
        return StreamConfig.from_targets(
            d=D, flush_size=100, eps_targets=(1.0, 3.0, 6.0), delta=1e-9,
            admitted_flushes=16,
        )

    def test_resume_with_cache_matches_uninterrupted_without(self):
        epochs = self._epoch_values()
        plain = ShardedPipeline(self._config(), np.random.default_rng(5))
        for values in epochs:
            plain.submit(values)
            plain.end_epoch()
        reference = plain.result()

        store = MemoryStateStore()
        interrupted = ShardedPipeline(
            self._config(), np.random.default_rng(5), store=store,
            seed_cache_bytes=1 << 22,
        )
        for values in epochs[:2]:
            interrupted.submit(values)
            interrupted.end_epoch()
        # Abandon mid-run; resume from the store with the cache on again.
        resumed = ShardedPipeline.resume(store, seed_cache_bytes=1 << 22)
        assert resumed.fo.seed_cache is not None
        assert len(resumed.fo.seed_cache) == 0  # rebuilt empty, not loaded
        for values in epochs[2:]:
            resumed.submit(values)
            resumed.end_epoch()
        result = resumed.result()
        assert result.estimates.tobytes() == reference.estimates.tobytes()
        assert result.eps_spent == reference.eps_spent
        assert resumed.fo.seed_cache.lookups > 0  # cache really engaged
