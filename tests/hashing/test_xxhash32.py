"""xxHash32 against the published reference vectors and basic laws."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import xxhash32, xxhash32_int, xxhash32_int_array


class TestReferenceVectors:
    """Vectors from the xxHash reference implementation / python-xxhash."""

    def test_empty_seed0(self):
        assert xxhash32(b"", 0) == 0x02CC5D05

    def test_single_byte(self):
        assert xxhash32(b"a", 0) == 0x550D7456

    def test_abc(self):
        assert xxhash32(b"abc", 0) == 0x32D153FF

    def test_long_string(self):
        assert xxhash32(b"Nobody inspects the spammish repetition", 0) == 0xE2293B2F

    def test_exactly_16_bytes(self):
        # Exercises the 4-accumulator stripe path boundary.
        assert xxhash32(b"0123456789abcdef", 0) == xxhash32(b"0123456789abcdef", 0)

    def test_seed_changes_output(self):
        assert xxhash32(b"abc", 0) != xxhash32(b"abc", 1)

    def test_seed_wraps_32_bits(self):
        assert xxhash32(b"abc", 1 << 32) == xxhash32(b"abc", 0)


class TestProperties:
    def test_output_is_32_bit(self):
        for data in (b"", b"x", b"hello world" * 10):
            for seed in (0, 1, 0xFFFFFFFF):
                assert 0 <= xxhash32(data, seed) < (1 << 32)

    def test_deterministic(self):
        assert xxhash32(b"determinism", 7) == xxhash32(b"determinism", 7)

    @pytest.mark.parametrize("length", [0, 1, 3, 4, 5, 15, 16, 17, 31, 32, 33, 100])
    def test_all_length_paths(self, length):
        data = bytes(range(256))[:length] * (length // max(length, 1) + 1)
        data = data[:length]
        value = xxhash32(data, 42)
        assert 0 <= value < (1 << 32)

    def test_int_hashing_consistent_with_bytes(self):
        assert xxhash32_int(1234, 9) == xxhash32((1234).to_bytes(8, "little"), 9)

    def test_int_hashing_distinct_values(self):
        outputs = {xxhash32_int(v, 0) for v in range(1000)}
        # No collisions expected among 1000 values in a 2^32 range.
        assert len(outputs) == 1000


class TestVectorizedArrayPath:
    """The branch-free lane path must be bit-identical to the reference."""

    def test_outer_grid_matches_scalar(self):
        rng = np.random.default_rng(7)
        values = np.concatenate(
            [
                np.array([0, 1, (1 << 32) - 1, 1 << 32, (1 << 64) - 1],
                         dtype=np.uint64),
                rng.integers(0, 1 << 63, 40, dtype=np.uint64),
            ]
        )
        seeds = np.concatenate(
            [
                np.array([0, 1, (1 << 32) - 1], dtype=np.uint64),
                rng.integers(0, 1 << 32, 12, dtype=np.uint64),
            ]
        )
        matrix = xxhash32_int_array(values[None, :], seeds[:, None])
        assert matrix.dtype == np.uint32
        assert matrix.shape == (len(seeds), len(values))
        for i, seed in enumerate(seeds):
            for j, value in enumerate(values):
                assert int(matrix[i, j]) == xxhash32_int(int(value), int(seed))

    def test_elementwise_broadcast(self):
        values = np.arange(64, dtype=np.uint64)
        seeds = np.arange(64, dtype=np.uint64) * 977
        out = xxhash32_int_array(values, seeds)
        assert out.shape == (64,)
        assert all(
            int(out[i]) == xxhash32_int(int(values[i]), int(seeds[i]))
            for i in range(64)
        )

    def test_scalar_inputs(self):
        assert int(xxhash32_int_array(1234, 9)) == xxhash32_int(1234, 9)

    def test_seed_wraps_32_bits(self):
        wrapped = xxhash32_int_array(
            np.array([5], dtype=np.uint64), np.array([(1 << 32) + 7],
                                                     dtype=np.uint64)
        )
        assert int(wrapped[0]) == xxhash32_int(5, 7)

    def test_empty(self):
        out = xxhash32_int_array(np.array([], dtype=np.uint64), 3)
        assert out.shape == (0,)
        assert out.dtype == np.uint32

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError, match="outside"):
            xxhash32_int_array(np.array([3, -1]), 0)

    @given(
        value=st.integers(min_value=0, max_value=(1 << 64) - 1),
        seed=st.integers(min_value=0, max_value=(1 << 32) - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_identical_to_reference(self, value, seed):
        vectorized = xxhash32_int_array(
            np.array([value], dtype=np.uint64), np.uint64(seed)
        )
        assert int(vectorized[0]) == xxhash32_int(value, seed)
