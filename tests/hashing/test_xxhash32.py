"""xxHash32 against the published reference vectors and basic laws."""

import pytest

from repro.hashing import xxhash32, xxhash32_int


class TestReferenceVectors:
    """Vectors from the xxHash reference implementation / python-xxhash."""

    def test_empty_seed0(self):
        assert xxhash32(b"", 0) == 0x02CC5D05

    def test_single_byte(self):
        assert xxhash32(b"a", 0) == 0x550D7456

    def test_abc(self):
        assert xxhash32(b"abc", 0) == 0x32D153FF

    def test_long_string(self):
        assert xxhash32(b"Nobody inspects the spammish repetition", 0) == 0xE2293B2F

    def test_exactly_16_bytes(self):
        # Exercises the 4-accumulator stripe path boundary.
        assert xxhash32(b"0123456789abcdef", 0) == xxhash32(b"0123456789abcdef", 0)

    def test_seed_changes_output(self):
        assert xxhash32(b"abc", 0) != xxhash32(b"abc", 1)

    def test_seed_wraps_32_bits(self):
        assert xxhash32(b"abc", 1 << 32) == xxhash32(b"abc", 0)


class TestProperties:
    def test_output_is_32_bit(self):
        for data in (b"", b"x", b"hello world" * 10):
            for seed in (0, 1, 0xFFFFFFFF):
                assert 0 <= xxhash32(data, seed) < (1 << 32)

    def test_deterministic(self):
        assert xxhash32(b"determinism", 7) == xxhash32(b"determinism", 7)

    @pytest.mark.parametrize("length", [0, 1, 3, 4, 5, 15, 16, 17, 31, 32, 33, 100])
    def test_all_length_paths(self, length):
        data = bytes(range(256))[:length] * (length // max(length, 1) + 1)
        data = data[:length]
        value = xxhash32(data, 42)
        assert 0 <= value < (1 << 32)

    def test_int_hashing_consistent_with_bytes(self):
        assert xxhash32_int(1234, 9) == xxhash32((1234).to_bytes(8, "little"), 9)

    def test_int_hashing_distinct_values(self):
        outputs = {xxhash32_int(v, 0) for v in range(1000)}
        # No collisions expected among 1000 values in a 2^32 range.
        assert len(outputs) == 1000
