"""Kernel calibration: measurement, persistence, activation, and the
guarantee that the budget is pure execution tuning (bit-identical counts)."""

import numpy as np
import pytest

from repro.hashing import (
    XXHash32Family,
    active_chunk_bytes,
    calibrate_kernel,
    ensure_calibration,
    plan_support_counts,
    resolve_chunk_bytes,
    set_active_chunk_bytes,
    support_counts_kernel,
)
from repro.hashing.calibrate import CALIBRATION_TUNING_KEY, KernelCalibration
from repro.persistence import MemoryStateStore, SqliteStateStore

#: tiny probe that keeps one full ladder well under 100 ms
FAST_PROBE = dict(n_reports=2_000, n_candidates=16, d_out=8, repeats=1)
SMALL_LADDER = (1 << 16, 1 << 18, 1 << 20)


class TestCalibrateKernel:
    def test_picks_from_ladder_and_records_probes(self):
        calibration = calibrate_kernel(ladder=SMALL_LADDER, **FAST_PROBE)
        assert calibration.chunk_bytes in SMALL_LADDER
        assert calibration.source == "measured"
        assert [chunk for chunk, __ in calibration.probes] == list(SMALL_LADDER)
        assert all(seconds > 0 for __, seconds in calibration.probes)
        assert "family=" in calibration.workload

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            calibrate_kernel(repeats=0)
        with pytest.raises(ValueError):
            calibrate_kernel(ladder=())

    def test_round_trips_through_dict(self):
        calibration = calibrate_kernel(ladder=SMALL_LADDER, **FAST_PROBE)
        restored = KernelCalibration.from_dict(calibration.to_dict())
        assert restored.chunk_bytes == calibration.chunk_bytes
        assert restored.probes == calibration.probes
        assert restored.source == "stored"

    def test_from_dict_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            KernelCalibration.from_dict({"chunk_bytes": 0})


class TestActivation:
    def test_active_budget_feeds_default_plans(self, rng):
        family = XXHash32Family()
        seeds = family.sample_seeds(300, rng)
        reported = rng.integers(0, 8, 300)
        candidates = np.arange(40)
        baseline = support_counts_kernel(
            family, seeds, reported, candidates, 8
        )
        previous = set_active_chunk_bytes(64)  # absurdly small, on purpose
        try:
            assert active_chunk_bytes() == 64
            # Planning with chunk_bytes=None now sees the tiny budget...
            plan = plan_support_counts(300, 40, 8)
            assert plan.orientation == "candidates"
            # ...and the kernel still produces bit-identical counts.
            squeezed = support_counts_kernel(
                family, seeds, reported, candidates, 8
            )
            assert squeezed.tobytes() == baseline.tobytes()
        finally:
            # restore the uncalibrated default for the rest of the suite
            import repro.hashing.kernels as kernels

            kernels._ACTIVE_CHUNK_BYTES = previous
        assert active_chunk_bytes() != 64

    def test_counts_identical_across_budgets(self, rng):
        family = XXHash32Family()
        seeds = family.sample_seeds(500, rng)
        reported = rng.integers(0, 8, 500)
        candidates = np.arange(64)
        reference = None
        for chunk_bytes in (512, 1 << 14, 1 << 26):
            counts = support_counts_kernel(
                family, seeds, reported, candidates, 8,
                chunk_bytes=chunk_bytes,
            )
            if reference is None:
                reference = counts
            assert counts.tobytes() == reference.tobytes()

    def test_calibration_activate_returns_previous(self):
        calibration = calibrate_kernel(
            ladder=(1 << 20,), **FAST_PROBE
        )
        previous = calibration.activate()
        try:
            assert active_chunk_bytes() == 1 << 20
        finally:
            import repro.hashing.kernels as kernels

            kernels._ACTIVE_CHUNK_BYTES = previous


class TestEnsureCalibration:
    def test_memory_store_round_trip(self):
        store = MemoryStateStore()
        first = ensure_calibration(
            store, activate=False, ladder=SMALL_LADDER, **FAST_PROBE
        )
        assert first.source == "measured"
        assert store.load_tuning(CALIBRATION_TUNING_KEY) is not None
        second = ensure_calibration(store, activate=False)
        assert second.source == "stored"  # loaded, not re-measured
        assert second.chunk_bytes == first.chunk_bytes
        assert second.probes == first.probes

    def test_sqlite_store_round_trip(self, tmp_path):
        path = str(tmp_path / "state.db")
        with SqliteStateStore(path) as store:
            measured = ensure_calibration(
                store, activate=False, ladder=SMALL_LADDER, **FAST_PROBE
            )
        # A different process/run sees the persisted record.
        with SqliteStateStore(path) as store:
            loaded = ensure_calibration(store, activate=False)
        assert loaded.source == "stored"
        assert loaded.chunk_bytes == measured.chunk_bytes

    def test_corrupt_record_remeasured(self):
        store = MemoryStateStore()
        store.record_tuning(CALIBRATION_TUNING_KEY, {"chunk_bytes": -5})
        calibration = ensure_calibration(
            store, activate=False, ladder=SMALL_LADDER, **FAST_PROBE
        )
        assert calibration.source == "measured"
        # The bad record was replaced with the fresh measurement.
        stored = store.load_tuning(CALIBRATION_TUNING_KEY)
        assert stored["chunk_bytes"] == calibration.chunk_bytes

    def test_no_store_measures_without_persisting(self):
        calibration = ensure_calibration(
            None, activate=False, ladder=SMALL_LADDER, **FAST_PROBE
        )
        assert calibration.source == "measured"


class TestResolveChunkBytes:
    def test_passthroughs(self):
        assert resolve_chunk_bytes(None) is None
        assert resolve_chunk_bytes(12345) == 12345
        assert resolve_chunk_bytes("65536") == 65536

    def test_garbage_string_raises_for_caller_to_map(self):
        with pytest.raises(ValueError):
            resolve_chunk_bytes("lots")

    def test_auto_uses_store(self):
        store = MemoryStateStore()
        # Pre-seed the tuning bag so "auto" resolves without a live probe.
        store.record_tuning(
            CALIBRATION_TUNING_KEY,
            {"chunk_bytes": 1 << 22, "probes": [], "workload": "t"},
        )
        import repro.hashing.kernels as kernels

        previous = kernels._ACTIVE_CHUNK_BYTES
        try:
            assert resolve_chunk_bytes("auto", store=store) == 1 << 22
        finally:
            kernels._ACTIVE_CHUNK_BYTES = previous
