"""Hash families: determinism, consistency across APIs, and universality."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import (
    CarterWegmanHashFamily,
    MultiplyShiftHashFamily,
    XXHash32Family,
    default_family,
    splitmix64,
)

FAMILIES = [CarterWegmanHashFamily(), MultiplyShiftHashFamily(), XXHash32Family()]


@pytest.fixture(params=FAMILIES, ids=lambda f: f.name)
def family(request):
    return request.param


class TestConsistency:
    """All three evaluation APIs must agree."""

    def test_hash_values_matches_scalar(self, family, rng):
        seed = family.sample_seed(rng)
        values = np.arange(50)
        vectorized = family.hash_values(seed, values, 16)
        scalar = [family.hash_value(seed, int(v), 16) for v in values]
        assert vectorized.tolist() == scalar

    def test_hash_outer_matches_scalar(self, family, rng):
        seeds = family.sample_seeds(10, rng)
        values = np.arange(20)
        matrix = family.hash_outer(seeds, values, 8)
        assert matrix.shape == (10, 20)
        for i in range(10):
            for j in range(20):
                assert matrix[i, j] == family.hash_value(int(seeds[i]), j, 8)

    def test_hash_pairwise_matches_scalar(self, family, rng):
        seeds = family.sample_seeds(30, rng)
        values = rng.integers(0, 100, 30)
        pairwise = family.hash_pairwise(seeds, values, 8)
        for i in range(30):
            assert pairwise[i] == family.hash_value(int(seeds[i]), int(values[i]), 8)

    def test_deterministic_across_calls(self, family, rng):
        seed = family.sample_seed(rng)
        first = family.hash_values(seed, np.arange(100), 32)
        second = family.hash_values(seed, np.arange(100), 32)
        assert (first == second).all()


#: largest value each family's domain admits (CW is bounded by its prime)
FAMILY_MAX_VALUE = {
    "carter-wegman": (1 << 31) - 2,
    "multiply-shift": (1 << 64) - 1,
    "xxhash32": (1 << 64) - 1,
}


class TestCrossPathAgreement:
    """Property: hash_value == hash_values == hash_outer == hash_pairwise.

    Exercised on the edge inputs — value 0, the family's max domain value,
    ``d_out=1`` — plus a random sample, for every family.
    """

    @pytest.mark.parametrize("d_out", [1, 2, 16, 257])
    def test_all_paths_agree_on_edge_values(self, family, rng, d_out):
        values = np.array(
            [0, 1, 2, FAMILY_MAX_VALUE[family.name]], dtype=np.uint64
        )
        seeds = family.sample_seeds(len(values), rng)
        scalar = [
            [family.hash_value(int(s), int(v), d_out) for v in values]
            for s in seeds
        ]
        outer = family.hash_outer(seeds, values, d_out)
        outer_u32 = family.hash_outer_u32(seeds, values, d_out)
        assert outer.tolist() == scalar
        assert outer_u32.dtype == np.uint32
        assert outer_u32.tolist() == scalar
        for i, seed in enumerate(seeds):
            assert family.hash_values(int(seed), values, d_out).tolist() == scalar[i]
        pairwise = family.hash_pairwise(seeds, values, d_out)
        assert pairwise.tolist() == [scalar[i][i] for i in range(len(values))]

    def test_empty_arrays(self, family, rng):
        seeds = family.sample_seeds(4, rng)
        empty = np.array([], dtype=np.int64)
        assert family.hash_values(int(seeds[0]), empty, 8).shape == (0,)
        assert family.hash_outer(seeds, empty, 8).shape == (4, 0)
        assert family.hash_outer(empty.astype(np.uint64), np.arange(5), 8).shape == (0, 5)
        assert family.hash_pairwise(empty.astype(np.uint64), empty, 8).shape == (0,)

    def test_hash_outer_u32_matches_hash_outer(self, family, rng):
        seeds = family.sample_seeds(12, rng)
        values = np.arange(33)
        assert (
            family.hash_outer_u32(seeds, values, 7).astype(np.int64).tolist()
            == family.hash_outer(seeds, values, 7).tolist()
        )


class TestRange:
    @pytest.mark.parametrize("d_out", [2, 3, 7, 16, 257])
    def test_output_in_range(self, family, rng, d_out):
        seeds = family.sample_seeds(20, rng)
        matrix = family.hash_outer(seeds, np.arange(50), d_out)
        assert matrix.min() >= 0
        assert matrix.max() < d_out

    def test_seed_space_respected(self, family, rng):
        seeds = family.sample_seeds(1000, rng)
        assert int(seeds.max()) < family.seed_space


class TestUniversality:
    """Statistical checks on the collision behaviour SOLH relies on."""

    def test_collision_rate_near_one_over_dout(self, rng):
        # For fixed distinct (v, w), Pr over H of collision should be ~1/d'.
        family = CarterWegmanHashFamily()
        d_out = 8
        seeds = family.sample_seeds(4000, rng)
        a = family.hash_outer(seeds, np.array([3]), d_out)[:, 0]
        b = family.hash_outer(seeds, np.array([77]), d_out)[:, 0]
        rate = float((a == b).mean())
        assert abs(rate - 1.0 / d_out) < 0.03

    def test_single_function_balanced(self, rng):
        family = CarterWegmanHashFamily()
        seed = family.sample_seed(rng)
        outputs = family.hash_values(seed, np.arange(80_000), 16)
        counts = np.bincount(outputs, minlength=16)
        # Carter-Wegman is affine, hence almost perfectly balanced.
        assert counts.min() > 80_000 / 16 * 0.9
        assert counts.max() < 80_000 / 16 * 1.1

    def test_different_seeds_give_different_functions(self, rng):
        family = CarterWegmanHashFamily()
        values = np.arange(64)
        out1 = family.hash_values(1, values, 64)
        out2 = family.hash_values(2, values, 64)
        assert not (out1 == out2).all()


class TestCarterWegmanDomain:
    """Domain validation must be consistent across every evaluation path."""

    def test_rejects_value_at_mersenne_prime(self):
        family = CarterWegmanHashFamily()
        with pytest.raises(ValueError):
            family.hash_value(0, (1 << 31) - 1, 4)

    def test_large_domain_value_ok(self):
        family = CarterWegmanHashFamily()
        assert 0 <= family.hash_value(5, (1 << 31) - 2, 4) < 4

    @pytest.mark.parametrize("bad", [-1, (1 << 31) - 1, 1 << 40])
    def test_vectorized_paths_reject_out_of_range(self, bad):
        """The vector paths used to silently alias ``v mod p``; now every
        path applies the scalar path's gate."""
        family = CarterWegmanHashFamily()
        seeds = np.arange(3, dtype=np.uint64)
        values = np.array([0, bad, 5], dtype=np.int64)
        with pytest.raises(ValueError, match="outside"):
            family.hash_values(1, values, 4)
        with pytest.raises(ValueError, match="outside"):
            family.hash_outer(seeds, values, 4)
        with pytest.raises(ValueError, match="outside"):
            family.hash_outer_u32(seeds, values, 4)
        with pytest.raises(ValueError, match="outside"):
            family.hash_pairwise(seeds, values, 4)

    def test_xxhash32_vector_paths_reject_negatives(self):
        family = XXHash32Family()
        with pytest.raises(ValueError, match="outside"):
            family.hash_values(1, np.array([0, -3]), 4)
        with pytest.raises(ValueError, match="outside"):
            family.hash_outer(np.arange(2, dtype=np.uint64), np.array([-1]), 4)


class TestSplitmix:
    def test_known_nonzero(self):
        assert splitmix64(0) != 0

    def test_bijective_sample(self):
        outputs = {splitmix64(i) for i in range(10_000)}
        assert len(outputs) == 10_000

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    @settings(max_examples=200, deadline=None)
    def test_in_range(self, value):
        assert 0 <= splitmix64(value) < (1 << 64)


class TestDefaultFamily:
    def test_is_carter_wegman_singleton(self):
        assert isinstance(default_family(), CarterWegmanHashFamily)
        assert default_family() is default_family()


@given(
    seed=st.integers(min_value=0, max_value=(1 << 64) - 1),
    value=st.integers(min_value=0, max_value=(1 << 31) - 2),
    d_out=st.integers(min_value=2, max_value=1000),
)
@settings(max_examples=200, deadline=None)
def test_cw_scalar_vector_agree_property(seed, value, d_out):
    """Property: the scalar and vector CW paths agree on arbitrary inputs."""
    family = CarterWegmanHashFamily()
    scalar = family.hash_value(seed, value, d_out)
    vector = family.hash_values(seed, np.array([value]), d_out)[0]
    assert scalar == vector
