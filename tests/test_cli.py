"""Command-line interface."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.n == 602_325

    def test_plan_requires_targets(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "--eps1", "0.5"])

    def test_stream_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.epochs == 4
        assert args.budget_epochs is None  # resolved to epochs - 1 at run time
        assert args.backend == "plain"

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8000
        assert args.max_pending == 64
        assert args.budget_epochs == 4
        assert args.state_db is None
        assert args.fold_backend == "serial"


class TestCommands:
    def test_table1_runs(self, capsys):
        assert main(["table1", "--eps", "0.25", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "BBGN19" in out

    def test_fig3_runs_small(self, capsys):
        assert main([
            "fig3", "--scale", "0.01", "--repeats", "1", "--eps", "0.8",
        ]) == 0
        out = capsys.readouterr().out
        assert "SOLH" in out and "IPUMS-like" in out

    def test_table2_runs_small(self, capsys):
        assert main([
            "table2", "--scale", "0.02", "--repeats", "1", "--eps", "0.6",
        ]) == 0
        out = capsys.readouterr().out
        assert "RAP_R" in out

    def test_fig4_runs_small(self, capsys):
        assert main([
            "fig4", "--scale", "0.05", "--eps", "1.0",
            "--methods", "SOLH", "--k", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "SOLH" in out

    def test_stream_runs_small(self, capsys):
        assert main([
            "stream", "--epochs", "3", "--epoch-size", "200",
            "--flush-size", "100", "--d", "8", "--budget-epochs", "2",
            "--seed", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "lifetime budget" in out
        assert "budget refusals" in out  # epoch 2's flushes are rejected
        assert "final estimates over 400 released reports" in out

    def test_stream_sharded_prints_transport_summary(self, capsys):
        assert main([
            "stream", "--epochs", "2", "--epoch-size", "200",
            "--flush-size", "100", "--d", "8", "--budget-epochs", "2",
            "--seed", "7", "--shards", "2",
            "--seed-cache-bytes", "1000000",
        ]) == 0
        out = capsys.readouterr().out
        assert "transport (" in out  # bytes_moved / shm peak summary
        assert "seed cache:" in out  # hit-rate summary

    def test_invalid_eps_exits_cleanly(self, capsys):
        # Facade validation surfaces as exit code 2, not a traceback.
        assert main(["fig3", "--scale", "0.01", "--eps", "-0.5"]) == 2
        assert "eps" in capsys.readouterr().err

    def test_plan_runs(self, capsys):
        assert main([
            "plan", "--eps1", "0.5", "--eps2", "2.0", "--eps3", "5.0",
            "--n", "100000", "--d", "64",
        ]) == 0
        out = capsys.readouterr().out
        assert "mechanism" in out and "n_r" in out


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        """``python -m repro`` is identical to ``python -m repro.cli``."""
        root = Path(__file__).parent.parent
        env = dict(os.environ)
        src = str(root / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else src
        )
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "table1", "--eps", "0.25"],
            capture_output=True, text=True, env=env, cwd=root,
        )
        assert completed.returncode == 0
        assert "BBGN19" in completed.stdout


class TestServeCommand:
    def test_invalid_network_knobs_exit_cleanly(self, capsys):
        assert main(["serve", "--max-pending", "0"]) == 2
        assert "max_pending" in capsys.readouterr().err
        assert main(["serve", "--port", "70000"]) == 2
        assert "port" in capsys.readouterr().err
        assert main(["serve", "--flush-size", "0"]) == 2
        assert "--flush-size" in capsys.readouterr().err

    def test_bad_state_db_parent_exits_cleanly(self, capsys, tmp_path):
        bad = str(tmp_path / "missing" / "state.db")
        assert main(["serve", "--port", "0", "--state-db", bad]) == 2
        assert "state_db" in capsys.readouterr().err

    def test_serve_sigterm_is_a_clean_exit(self, tmp_path):
        """Start the server, drive it over HTTP, SIGTERM it: exit 0."""
        import json
        import re
        import signal
        import urllib.request

        root = Path(__file__).parent.parent
        env = dict(os.environ)
        src = str(root / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else src
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--d", "8", "--flush-size", "100", "--epoch-size", "200",
             "--budget-epochs", "2", "--seed", "7",
             "--state-db", str(tmp_path / "serve.db")],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env, cwd=root,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
            assert match, f"no listen banner in {banner!r}"
            base = f"http://127.0.0.1:{match.group(1)}"
            request = urllib.request.Request(
                f"{base}/api/reports",
                data=json.dumps({"values": [1, 2, 3]}).encode(),
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                assert response.status == 202
                assert json.load(response)["accepted"] == 3
            with urllib.request.urlopen(
                f"{base}/api/health", timeout=10
            ) as response:
                assert json.load(response)["accepted_reports"] == 3
            process.send_signal(signal.SIGTERM)
            out, err = process.communicate(timeout=60)
            assert process.returncode == 0, err
            assert "shutdown complete" in out
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()


class TestStreamPersistence:
    STREAM_ARGS = [
        "stream", "--epochs", "3", "--epoch-size", "200",
        "--flush-size", "100", "--d", "8", "--budget-epochs", "2",
        "--seed", "7",
    ]

    def test_resume_requires_state_db(self, capsys):
        assert main(self.STREAM_ARGS + ["--resume"]) == 2
        assert "--state-db" in capsys.readouterr().err

    def test_bad_state_db_parent_exits_cleanly(self, capsys, tmp_path):
        bad = str(tmp_path / "missing" / "state.db")
        assert main(self.STREAM_ARGS + ["--state-db", bad]) == 2
        assert "state_db" in capsys.readouterr().err

    def test_resume_of_empty_db_exits_cleanly(self, capsys, tmp_path):
        empty = str(tmp_path / "state.db")
        assert main(
            self.STREAM_ARGS + ["--state-db", empty, "--resume"]
        ) == 2
        assert "no run" in capsys.readouterr().err

    def test_estimates_out_round_trips(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "estimates.json"
        assert main(
            self.STREAM_ARGS + ["--estimates-out", str(out_path)]
        ) == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        assert len(payload["estimates"]) == 8
        assert payload["epochs"] == 3
        assert payload["n_rejected"] > 0

    def test_crash_and_resume_matches_clean_run(self, tmp_path):
        """Kill a persisted run mid-stream (exit 3), resume, compare."""
        import json

        root = Path(__file__).parent.parent
        env = dict(os.environ)
        src = str(root / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else src
        )
        base = [sys.executable, "-m", "repro"] + self.STREAM_ARGS
        clean_json = str(tmp_path / "clean.json")
        resumed_json = str(tmp_path / "resumed.json")
        db = str(tmp_path / "state.db")

        clean = subprocess.run(
            base + ["--estimates-out", clean_json],
            capture_output=True, text=True, env=env, cwd=root,
        )
        assert clean.returncode == 0, clean.stderr

        crashed = subprocess.run(
            base + ["--state-db", db, "--crash-after-epoch", "2"],
            capture_output=True, text=True, env=env, cwd=root,
        )
        assert crashed.returncode == 3, crashed.stderr
        assert "simulated crash" in crashed.stderr

        resumed = subprocess.run(
            base + ["--state-db", db, "--resume",
                    "--estimates-out", resumed_json],
            capture_output=True, text=True, env=env, cwd=root,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resumed from" in resumed.stdout

        with open(clean_json) as a, open(resumed_json) as b:
            assert json.load(a) == json.load(b)
