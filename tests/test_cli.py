"""Command-line interface."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.n == 602_325

    def test_plan_requires_targets(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "--eps1", "0.5"])

    def test_stream_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.epochs == 4
        assert args.budget_epochs is None  # resolved to epochs - 1 at run time
        assert args.backend == "plain"


class TestCommands:
    def test_table1_runs(self, capsys):
        assert main(["table1", "--eps", "0.25", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "BBGN19" in out

    def test_fig3_runs_small(self, capsys):
        assert main([
            "fig3", "--scale", "0.01", "--repeats", "1", "--eps", "0.8",
        ]) == 0
        out = capsys.readouterr().out
        assert "SOLH" in out and "IPUMS-like" in out

    def test_table2_runs_small(self, capsys):
        assert main([
            "table2", "--scale", "0.02", "--repeats", "1", "--eps", "0.6",
        ]) == 0
        out = capsys.readouterr().out
        assert "RAP_R" in out

    def test_fig4_runs_small(self, capsys):
        assert main([
            "fig4", "--scale", "0.05", "--eps", "1.0",
            "--methods", "SOLH", "--k", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "SOLH" in out

    def test_stream_runs_small(self, capsys):
        assert main([
            "stream", "--epochs", "3", "--epoch-size", "200",
            "--flush-size", "100", "--d", "8", "--budget-epochs", "2",
            "--seed", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "lifetime budget" in out
        assert "budget refusals" in out  # epoch 2's flushes are rejected
        assert "final estimates over 400 released reports" in out

    def test_invalid_eps_exits_cleanly(self, capsys):
        # Facade validation surfaces as exit code 2, not a traceback.
        assert main(["fig3", "--scale", "0.01", "--eps", "-0.5"]) == 2
        assert "eps" in capsys.readouterr().err

    def test_plan_runs(self, capsys):
        assert main([
            "plan", "--eps1", "0.5", "--eps2", "2.0", "--eps3", "5.0",
            "--n", "100000", "--d", "64",
        ]) == 0
        out = capsys.readouterr().out
        assert "mechanism" in out and "n_r" in out


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        """``python -m repro`` is identical to ``python -m repro.cli``."""
        root = Path(__file__).parent.parent
        env = dict(os.environ)
        src = str(root / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else src
        )
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "table1", "--eps", "0.25"],
            capture_output=True, text=True, env=env, cwd=root,
        )
        assert completed.returncode == 0
        assert "BBGN19" in completed.stdout
