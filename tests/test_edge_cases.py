"""Edge cases and failure injection across module boundaries.

These tests deliberately stress corner configurations (tiny populations,
degenerate domains, corrupted inputs) that the main suites don't reach.
"""

import numpy as np
import pytest

from repro.analysis import treehist
from repro.core import plan_peos, solh_optimal_d_prime
from repro.crypto.secret_sharing import reconstruct_vector, share_vector
from repro.data import StringDataset
from repro.frequency_oracles import GRR, SOLH, HadamardResponse
from repro.hashing import XXHash32Family
from repro.protocol import run_peos


class TestDegenerateDomains:
    def test_binary_domain_grr(self, rng):
        """d=2 — the randomized-response original."""
        fo = GRR(2, 1.0)
        values = np.array([0] * 700 + [1] * 300)
        estimates = fo.run(values, rng)
        assert estimates.sum() == pytest.approx(1.0)
        assert estimates[0] > estimates[1]

    def test_single_user(self, rng):
        fo = GRR(4, 1.0)
        estimates = fo.run(np.array([2]), rng)
        assert len(estimates) == 4

    def test_empty_population(self, rng):
        fo = GRR(4, 1.0)
        reports = fo.privatize(np.array([], dtype=np.int64), rng)
        assert len(reports) == 0

    def test_all_same_value(self, rng):
        fo = SOLH(8, 4.0, 4, family=XXHash32Family())
        estimates = fo.run(np.full(2000, 5), rng)
        assert np.argmax(estimates) == 5

    def test_hadamard_domain_exactly_power_of_two_minus_one(self, rng):
        # d = K - 1 uses every nonzero column.
        fo = HadamardResponse(127, 2.0)
        assert fo.K == 128
        estimates = fo.run(rng.integers(0, 127, 1000), rng)
        assert len(estimates) == 127


class TestTinyPopulations:
    def test_solh_optimal_d_prime_floors_at_two(self):
        assert solh_optimal_d_prime(0.1, 100, 1e-9) == 2

    def test_planner_small_population_loose_targets(self):
        plan = plan_peos(2.0, 4.0, 8.0, 5000, 4, 1e-9)
        assert plan.eps_server <= 2.0 * (1 + 1e-6)

    def test_peos_more_fakes_than_users(self, rng, paillier_keys):
        pub, priv = paillier_keys
        fo = GRR(4, 4.0)
        result = run_peos(
            rng.integers(0, 4, 10), fo, r=3, n_fake=50, ahe_public=pub,
            ahe_decrypt=priv.decrypt, rng=rng, crypto_rng=1,
        )
        assert len(result.shuffled_reports) == 60
        assert result.estimates.sum() == pytest.approx(1.0)


class TestCorruptedInputs:
    def test_reconstruct_wrong_modulus_garbles(self, rng):
        values = rng.integers(0, 2**16, 20, dtype=np.int64)
        shares = share_vector(values, 3, 2**16, rng)
        wrong = reconstruct_vector(shares, 2**15)
        assert not (np.asarray(wrong) == values).all()

    def test_dropped_share_vector_garbles(self, rng):
        values = rng.integers(0, 2**16, 20, dtype=np.int64)
        shares = share_vector(values, 3, 2**16, rng)
        partial = reconstruct_vector(shares[:2], 2**16)
        assert not (np.asarray(partial) == values).all()

    def test_grr_decode_rejects_corrupted_report(self):
        fo = GRR(10, 1.0)
        with pytest.raises(ValueError):
            fo.decode_reports(np.array([99]))

    def test_solh_estimate_with_swapped_counts_is_biased(self, rng):
        """Sanity: the estimator depends on the counts it is given."""
        fo = SOLH(8, 2.0, 4, family=XXHash32Family())
        counts = np.array([100.0, 0, 0, 0, 0, 0, 0, 0])
        estimates = fo.estimate(counts, 100)
        assert estimates[0] > estimates[1]


class TestTreeHistEdges:
    def test_single_round(self, rng):
        values = rng.integers(0, 256, 5000, dtype=np.int64)
        dataset = StringDataset("tiny", values, 8)
        result = treehist(dataset, "Lap", 1.0, 1e-9, rng, k=4, bits_per_round=8)
        assert len(result.discovered) == 4
        assert result.candidates_per_round == [256]

    def test_k_larger_than_support(self, rng):
        values = np.array([1, 1, 2, 2, 3] * 100, dtype=np.int64)
        dataset = StringDataset("tiny", values, 8)
        result = treehist(dataset, "Lap", 2.0, 1e-9, rng, k=4, bits_per_round=8)
        # Only 3 distinct strings exist; top-k still returns k guesses.
        assert len(result.discovered) == 4
        assert {1, 2, 3} <= set(result.discovered.tolist())

    def test_advanced_composition_path(self, rng):
        values = rng.integers(0, 1 << 16, 20_000, dtype=np.int64)
        dataset = StringDataset("tiny", values, 16)
        result = treehist(
            dataset, "SOLH", 1.0, 1e-9, rng, k=8, composition="advanced"
        )
        assert len(result.discovered) == 8

    def test_unknown_composition_rejected(self, rng):
        dataset = StringDataset("tiny", np.array([1, 2], dtype=np.int64), 8)
        with pytest.raises(ValueError):
            treehist(dataset, "Lap", 1.0, 1e-9, rng, composition="renyi")


class TestNumericalStability:
    def test_huge_epsilon_probabilities_saturate(self):
        fo = GRR(4, 50.0)
        assert fo.p == pytest.approx(1.0)
        assert fo.q == pytest.approx(0.0, abs=1e-20)

    def test_tiny_epsilon_still_valid(self, rng):
        fo = GRR(4, 1e-6)
        reports = fo.privatize(rng.integers(0, 4, 100), rng)
        assert reports.min() >= 0 and reports.max() < 4

    def test_large_domain_estimates_finite(self, rng):
        fo = GRR(100_000, 1.0)
        counts = fo.sample_support_counts(
            rng.multinomial(10_000, np.full(100_000, 1e-5)), rng
        )
        estimates = fo.estimate(counts, 10_000)
        assert np.isfinite(estimates).all()
