"""The averaging attack (Section V-C) and the memoization defense."""

import numpy as np
import pytest

from repro.frequency_oracles import GRR
from repro.protocol.attacks import (
    averaging_attack_posterior,
    averaging_attack_success_rate,
)


class TestPosterior:
    def test_fresh_noise_concentrates(self, rng):
        fo = GRR(8, 1.0)
        counts = averaging_attack_posterior(fo, 3, 400, rng, memoize=False)
        assert int(np.argmax(counts)) == 3

    def test_memoized_stays_single_report(self, rng):
        fo = GRR(8, 1.0)
        counts = averaging_attack_posterior(fo, 3, 400, rng, memoize=True)
        # One report repeated: exactly one value has all the mass.
        assert (counts > 0).sum() == 1
        assert counts.max() == 400

    def test_single_repetition_equals_one_report(self, rng):
        fo = GRR(8, 1.0)
        counts = averaging_attack_posterior(fo, 3, 1, rng)
        assert counts.sum() == 1

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            averaging_attack_posterior(GRR(8, 1.0), 3, 0, rng)


class TestSuccessRate:
    def test_grows_with_repetitions(self, rng):
        fo = GRR(8, 1.0)
        few = averaging_attack_success_rate(fo, 1, rng, trials=60)
        many = averaging_attack_success_rate(fo, 200, rng, trials=60)
        assert many > few
        assert many > 0.9  # averaging defeats the LDP noise

    def test_memoization_caps_leakage(self, rng):
        fo = GRR(16, 0.5)
        memoized = averaging_attack_success_rate(
            fo, 200, rng, trials=120, memoize=True
        )
        # With memoization the adversary learns one LDP report's worth:
        # success is the report-is-truthful probability p (~0.1 here),
        # far from the ~1.0 of the unprotected rerun.
        assert memoized < 0.4

    def test_memoized_rate_matches_p(self, rng):
        fo = GRR(8, 2.0)
        rate = averaging_attack_success_rate(fo, 50, rng, trials=400, memoize=True)
        assert rate == pytest.approx(fo.p, abs=0.08)
