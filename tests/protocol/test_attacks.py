"""Attack simulations: collusion views, SS poisoning, PEOS fake masking."""

import numpy as np
import pytest

from repro.protocol.attacks import (
    constant_share_attack,
    low_entropy_share_attack,
    residual_multiset,
    simulate_fake_reports,
    spot_check_detection_probability,
)


class TestResidualMultiset:
    def test_subtracts_known_reports(self):
        shuffled = [1, 1, 2, 3, 5, 5, 5]
        known = [1, 5, 5]
        residual = residual_multiset(shuffled, known)
        assert residual == {1: 1, 2: 1, 3: 1, 5: 1}

    def test_victim_hidden_among_fakes(self):
        # Adv_u's view: after removing n-1 known reports, the victim's
        # report is one among the fakes — exactly |fakes| + 1 reports left.
        shuffled = [7] + [3, 4, 5] + [0, 1]  # victim + knowns + fakes
        residual = residual_multiset(shuffled, [3, 4, 5])
        assert sum(residual.values()) == 3

    def test_missing_known_report_raises(self):
        with pytest.raises(ValueError):
            residual_multiset([1, 2], [9])


class TestSpotCheckDetection:
    def test_no_replacement_no_detection(self):
        assert spot_check_detection_probability(100, 5, 0) == 0.0

    def test_full_replacement_always_detected(self):
        assert spot_check_detection_probability(100, 5, 100) == pytest.approx(1.0)

    def test_monotone_in_replacement(self):
        probs = [
            spot_check_detection_probability(1000, 10, k) for k in (10, 100, 500)
        ]
        assert probs[0] < probs[1] < probs[2]

    def test_matches_simulation(self, rng):
        n_total, n_spot, n_replaced = 200, 5, 40
        analytic = spot_check_detection_probability(n_total, n_spot, n_replaced)
        trials = 3000
        detected = 0
        for __ in range(trials):
            destroyed = rng.choice(n_total, size=n_replaced, replace=False)
            if (destroyed < n_spot).any():  # WLOG dummies at the front
                detected += 1
        assert detected / trials == pytest.approx(analytic, abs=0.03)

    def test_rejects_impossible_parameters(self):
        with pytest.raises(ValueError):
            spot_check_detection_probability(10, 2, 11)


class TestPEOSFakeMasking:
    """The core poisoning-resistance property of PEOS."""

    M = 64

    def _chi2_uniform(self, reports):
        counts = np.bincount(np.asarray(reports, dtype=int), minlength=self.M)
        expected = len(reports) / self.M
        return float(((counts - expected) ** 2 / expected).sum())

    # 99.9th percentile of chi-square with 63 dof.
    CHI2_999 = 103.4

    def test_honest_fakes_uniform(self, rng):
        reports = simulate_fake_reports(3, 8000, self.M, rng)
        assert self._chi2_uniform(reports) < self.CHI2_999

    def test_one_honest_shuffler_suffices(self, rng):
        reports = simulate_fake_reports(
            3, 8000, self.M, rng,
            malicious={
                0: constant_share_attack(7),
                1: low_entropy_share_attack([0, 1], rng),
            },
        )
        assert self._chi2_uniform(reports) < self.CHI2_999

    def test_all_malicious_breaks_uniformity(self, rng):
        """Sanity: with NO honest shuffler the attack does succeed."""
        reports = simulate_fake_reports(
            2, 8000, self.M, rng,
            malicious={
                0: constant_share_attack(0),
                1: constant_share_attack(5),
            },
        )
        assert self._chi2_uniform(reports) > self.CHI2_999
        assert (np.asarray(reports) == 5).all()

    def test_attack_helpers_shapes(self, rng):
        honest = np.arange(10, dtype=np.int64)
        assert (constant_share_attack(3)(10, honest) == 3).all()
        low = low_entropy_share_attack([1, 2], rng)(10, honest)
        assert set(low.tolist()) <= {1, 2}

    def test_rejects_no_shufflers(self, rng):
        with pytest.raises(ValueError):
            simulate_fake_reports(0, 10, self.M, rng)
