"""Cost tracker bookkeeping."""

import time

import pytest

from repro.costs import CostTracker, PartyCost, share_bytes


class TestTracker:
    def test_send_double_entry(self):
        tracker = CostTracker()
        tracker.send("a", "b", 100)
        assert tracker.cost("a").bytes_sent == 100
        assert tracker.cost("b").bytes_received == 100

    def test_send_accumulates(self):
        tracker = CostTracker()
        tracker.send("a", "b", 100)
        tracker.send("a", "b", 50)
        assert tracker.cost("a").bytes_sent == 150

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CostTracker().send("a", "b", -1)

    def test_compute_context(self):
        tracker = CostTracker()
        with tracker.compute("worker"):
            time.sleep(0.01)
        assert tracker.cost("worker").compute_seconds >= 0.01

    def test_compute_accumulates_on_exception(self):
        tracker = CostTracker()
        with pytest.raises(RuntimeError):
            with tracker.compute("worker"):
                raise RuntimeError("boom")
        assert tracker.cost("worker").compute_seconds >= 0

    def test_group_cost(self):
        tracker = CostTracker()
        tracker.send("shuffler:0", "server", 10)
        tracker.send("shuffler:1", "server", 20)
        assert tracker.group_cost("shuffler").bytes_sent == 30

    def test_max_cost_picks_busiest(self):
        tracker = CostTracker()
        tracker.send("shuffler:0", "x", 10)
        tracker.send("shuffler:1", "x", 90)
        assert tracker.max_cost("shuffler").bytes_sent == 90

    def test_scaled(self):
        tracker = CostTracker()
        tracker.send("a", "b", 100)
        scaled = tracker.scaled(10.0)
        assert scaled.cost("a").bytes_sent == 1000
        # Original untouched.
        assert tracker.cost("a").bytes_sent == 100

    def test_unknown_party_is_zero(self):
        assert CostTracker().cost("ghost").bytes_sent == 0


class TestPartyCost:
    def test_merged(self):
        a = PartyCost(bytes_sent=1, bytes_received=2, compute_seconds=0.5)
        b = PartyCost(bytes_sent=10, bytes_received=20, compute_seconds=1.0)
        merged = a.merged(b)
        assert merged.bytes_sent == 11
        assert merged.bytes_received == 22
        assert merged.compute_seconds == 1.5

    def test_scaled(self):
        cost = PartyCost(bytes_sent=100, compute_seconds=2.0)
        scaled = cost.scaled(0.5)
        assert scaled.bytes_sent == 50
        assert scaled.compute_seconds == 1.0


class TestShareBytes:
    @pytest.mark.parametrize(
        "modulus,expected", [(2, 1), (256, 1), (2**16, 2), (2**32, 4), (2**64, 8)]
    )
    def test_width(self, modulus, expected):
        assert share_bytes(modulus) == expected
