"""End-to-end PEOS (Algorithm 1)."""

import numpy as np
import pytest

from repro.costs import CostTracker
from repro.frequency_oracles import GRR, SOLH, HadamardResponse
from repro.hashing import XXHash32Family
from repro.protocol import run_peos
from repro.protocol.attacks import constant_share_attack


@pytest.fixture
def grr_oracle():
    return GRR(8, 3.0)


class TestCorrectness:
    def test_report_count(self, rng, grr_oracle, paillier_keys):
        pub, priv = paillier_keys
        values = rng.integers(0, 8, 60)
        result = run_peos(
            values, grr_oracle, r=3, n_fake=15, ahe_public=pub,
            ahe_decrypt=priv.decrypt, rng=rng, crypto_rng=1,
        )
        assert len(result.shuffled_reports) == 75
        assert result.n_users == 60 and result.n_fake == 15

    def test_grr_estimates_reasonable(self, rng, paillier_keys):
        pub, priv = paillier_keys
        fo = GRR(4, 6.0)  # low noise for a small-n statistical check
        values = np.array([0] * 200 + [1] * 100 + [2] * 60 + [3] * 40)
        rng.shuffle(values)
        result = run_peos(
            values, fo, r=3, n_fake=40, ahe_public=pub,
            ahe_decrypt=priv.decrypt, rng=rng, crypto_rng=1,
        )
        truth = np.array([0.5, 0.25, 0.15, 0.10])
        assert result.estimates == pytest.approx(truth, abs=0.12)

    def test_estimates_sum_to_one_grr(self, rng, grr_oracle, paillier_keys):
        pub, priv = paillier_keys
        values = rng.integers(0, 8, 100)
        result = run_peos(
            values, grr_oracle, r=3, n_fake=20, ahe_public=pub,
            ahe_decrypt=priv.decrypt, rng=rng, crypto_rng=1,
        )
        assert result.estimates.sum() == pytest.approx(1.0)

    def test_solh_works(self, rng, paillier_keys):
        pub, priv = paillier_keys
        fo = SOLH(8, 4.0, 4, family=XXHash32Family())
        values = np.array([0] * 150 + [5] * 50)
        rng.shuffle(values)
        result = run_peos(
            values, fo, r=3, n_fake=30, ahe_public=pub,
            ahe_decrypt=priv.decrypt, rng=rng, crypto_rng=1,
        )
        assert result.estimates[0] > result.estimates[1]
        assert result.estimates[0] == pytest.approx(0.75, abs=0.25)

    def test_hadamard_works(self, rng, paillier_keys):
        pub, priv = paillier_keys
        fo = HadamardResponse(6, 5.0)
        values = np.array([2] * 120 + [4] * 40)
        rng.shuffle(values)
        result = run_peos(
            values, fo, r=3, n_fake=20, ahe_public=pub,
            ahe_decrypt=priv.decrypt, rng=rng, crypto_rng=1,
        )
        assert np.argmax(result.estimates) == 2

    def test_dgk_backend(self, rng, dgk_keys):
        pub, priv = dgk_keys
        # DGK plaintext space is 2^32; Hadamard report space (K*2 = 16)
        # divides it, so shares wrap consistently.
        fo = HadamardResponse(6, 5.0)
        values = np.array([1] * 80 + [3] * 20)
        rng.shuffle(values)
        result = run_peos(
            values, fo, r=3, n_fake=10, ahe_public=pub,
            ahe_decrypt=lambda c: priv.decrypt(c), rng=rng, crypto_rng=1,
        )
        assert np.argmax(result.estimates) == 1

    def test_rejects_single_shuffler(self, rng, grr_oracle, paillier_keys):
        pub, priv = paillier_keys
        with pytest.raises(ValueError):
            run_peos(
                [1, 2], grr_oracle, r=1, n_fake=0, ahe_public=pub,
                ahe_decrypt=priv.decrypt, rng=rng,
            )


class TestFakeReports:
    def test_fakes_present_in_multiset(self, rng, grr_oracle, paillier_keys):
        pub, priv = paillier_keys
        values = rng.integers(0, 8, 30)
        result = run_peos(
            values, grr_oracle, r=3, n_fake=50, ahe_public=pub,
            ahe_decrypt=priv.decrypt, rng=rng, crypto_rng=1,
        )
        assert len(result.shuffled_reports) == 80

    def test_no_fakes_allowed(self, rng, grr_oracle, paillier_keys):
        pub, priv = paillier_keys
        values = rng.integers(0, 8, 30)
        result = run_peos(
            values, grr_oracle, r=3, n_fake=0, ahe_public=pub,
            ahe_decrypt=priv.decrypt, rng=rng, crypto_rng=1,
        )
        assert len(result.shuffled_reports) == 30

    def test_malicious_minority_cannot_skew_fakes(self, rng, paillier_keys):
        """One honest shuffler's uniform share masks the biased ones: the
        reconstructed fake reports stay (close to) uniform."""
        pub, priv = paillier_keys
        fo = GRR(8, 3.0)
        result = run_peos(
            [], fo, r=3, n_fake=600, ahe_public=pub,
            ahe_decrypt=priv.decrypt, rng=rng, crypto_rng=1,
            malicious_fake_shares={
                0: constant_share_attack(0),
                1: constant_share_attack(3),
            },
        )
        counts = np.bincount(result.shuffled_reports.astype(int), minlength=8)
        # Chi-square against uniform with 7 dof: 99.9th percentile ~ 24.3.
        expected = 600 / 8
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 24.3


class TestCosts:
    def test_cost_table_complete(self, rng, grr_oracle, paillier_keys):
        pub, priv = paillier_keys
        tracker = CostTracker()
        run_peos(
            rng.integers(0, 8, 40), grr_oracle, r=3, n_fake=10, ahe_public=pub,
            ahe_decrypt=priv.decrypt, rng=rng, crypto_rng=1, tracker=tracker,
        )
        assert tracker.cost("user").bytes_sent > 0
        assert tracker.cost("user").compute_seconds > 0
        for j in range(3):
            assert tracker.cost(f"shuffler:{j}").bytes_sent > 0
        assert tracker.cost("server").bytes_received > 0
        assert tracker.cost("server").compute_seconds > 0

    def test_user_sends_one_ciphertext(self, rng, grr_oracle, paillier_keys):
        pub, priv = paillier_keys
        tracker = CostTracker()
        n = 25
        run_peos(
            rng.integers(0, 8, n), grr_oracle, r=3, n_fake=0, ahe_public=pub,
            ahe_decrypt=priv.decrypt, rng=rng, crypto_rng=1, tracker=tracker,
        )
        # Users upload 2 plaintext shares + 1 AHE ciphertext each.
        expected_min = n * pub.ciphertext_bytes
        assert tracker.cost("user").bytes_sent >= expected_min
