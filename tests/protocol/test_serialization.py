"""Wire formats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol.serialization import (
    WireFormatError,
    ciphertext_vector_wire_size,
    decode_ciphertext_vector,
    decode_report_batch,
    decode_share_vector,
    encode_ciphertext_vector,
    encode_report_batch,
    encode_share_vector,
    share_vector_wire_size,
)

M = 2**32


class TestShares:
    def test_roundtrip(self, rng):
        shares = rng.integers(0, M, 50, dtype=np.int64)
        decoded = decode_share_vector(encode_share_vector(shares, M), M)
        assert (decoded == shares).all()

    def test_roundtrip_big_modulus(self):
        modulus = (1 << 64) * 9
        shares = [modulus - 1, 0, 123]
        decoded = decode_share_vector(
            encode_share_vector(shares, modulus), modulus
        )
        assert list(decoded) == shares

    def test_empty_vector(self):
        decoded = decode_share_vector(encode_share_vector([], M), M)
        assert len(decoded) == 0

    def test_wire_size_exact(self, rng):
        shares = rng.integers(0, M, 17, dtype=np.int64)
        data = encode_share_vector(shares, M)
        assert len(data) == share_vector_wire_size(17, M)

    def test_rejects_out_of_group(self):
        with pytest.raises(WireFormatError):
            encode_share_vector([M], M)

    def test_rejects_truncation(self, rng):
        data = encode_share_vector(rng.integers(0, M, 5, dtype=np.int64), M)
        with pytest.raises(WireFormatError):
            decode_share_vector(data[:-1], M)

    def test_rejects_bad_magic(self, rng):
        data = encode_share_vector(rng.integers(0, M, 5, dtype=np.int64), M)
        with pytest.raises(WireFormatError):
            decode_share_vector(b"XXXX" + data[4:], M)

    def test_rejects_wrong_type(self, rng):
        data = encode_report_batch([1, 2], M)
        with pytest.raises(WireFormatError):
            decode_share_vector(data, M)


class TestCiphertexts:
    def test_roundtrip(self):
        values = [0, 1, 2**512 - 1, 12345678901234567890]
        assert decode_ciphertext_vector(encode_ciphertext_vector(values)) == values

    def test_wire_size_exact(self):
        values = [1, 2**100, 2**1000]
        assert len(encode_ciphertext_vector(values)) == (
            ciphertext_vector_wire_size(values)
        )

    def test_rejects_negative(self):
        with pytest.raises(WireFormatError):
            encode_ciphertext_vector([-1])

    def test_rejects_trailing_garbage(self):
        data = encode_ciphertext_vector([5]) + b"zz"
        with pytest.raises(WireFormatError):
            decode_ciphertext_vector(data)


class TestReports:
    def test_roundtrip(self, rng):
        reports = rng.integers(0, 1000, 30, dtype=np.int64)
        decoded = decode_report_batch(encode_report_batch(reports, 1000), 1000)
        assert (decoded == reports).all()

    def test_rejects_out_of_space(self):
        with pytest.raises(WireFormatError):
            encode_report_batch([1000], 1000)

    def test_width_follows_space(self):
        small = encode_report_batch([1], 256)
        large = encode_report_batch([1], 2**32)
        assert len(large) > len(small)


@given(
    values=st.lists(st.integers(min_value=0, max_value=M - 1), max_size=40),
)
@settings(max_examples=100, deadline=None)
def test_share_roundtrip_property(values):
    """Property: encode/decode is the identity for arbitrary share vectors."""
    decoded = decode_share_vector(encode_share_vector(values, M), M)
    assert list(decoded) == values
