"""System model: adversaries and their guarantees (Section V / VI-B)."""

import math

import pytest

from repro.protocol import Adversary, PEOSDeployment, ThreatReport, privacy_against

DEPLOYMENT = PEOSDeployment(
    mechanism="solh",
    eps_l=4.0,
    report_domain=16,
    n=200_000,
    n_r=20_000,
    r=5,
    delta=1e-9,
)


class TestAdversary:
    def test_constructors(self):
        assert not Adversary.server().colluding_users
        assert Adversary.with_users().colluding_users
        assert Adversary.with_shufflers(2).corrupted_shufflers == 2

    def test_describe(self):
        assert "server" in Adversary.server().describe()
        assert "users" in Adversary.with_users().describe()
        assert "2 shuffler" in Adversary.with_shufflers(2).describe()

    def test_rejects_negative_corruption(self):
        with pytest.raises(ValueError):
            Adversary.with_shufflers(-1)


class TestGuarantees:
    def test_server_is_weakest_adversary(self):
        server = privacy_against(DEPLOYMENT, Adversary.server())
        users = privacy_against(DEPLOYMENT, Adversary.with_users())
        assert server <= users

    def test_user_collusion_only_fake_blanket(self):
        from repro.core import peos_epsilon_collusion_solh

        expected = min(
            DEPLOYMENT.eps_l,
            peos_epsilon_collusion_solh(16, 20_000, 1e-9),
        )
        assert privacy_against(DEPLOYMENT, Adversary.with_users()) == pytest.approx(
            expected
        )

    def test_minority_shuffler_corruption_harmless(self):
        minority = privacy_against(
            DEPLOYMENT, Adversary.with_shufflers(DEPLOYMENT.honest_majority_threshold)
        )
        server_only = privacy_against(DEPLOYMENT, Adversary.server())
        assert minority == pytest.approx(server_only)

    def test_majority_corruption_degrades_to_ldp(self):
        majority = privacy_against(
            DEPLOYMENT,
            Adversary.with_shufflers(DEPLOYMENT.honest_majority_threshold + 1),
        )
        assert majority == pytest.approx(DEPLOYMENT.eps_l)

    def test_honest_majority_threshold(self):
        assert DEPLOYMENT.honest_majority_threshold == 2  # floor(5/2)

    def test_grr_variant(self):
        deployment = PEOSDeployment(
            mechanism="grr", eps_l=3.0, report_domain=100,
            n=200_000, n_r=50_000, r=3, delta=1e-9,
        )
        assert privacy_against(deployment, Adversary.server()) < 3.0

    def test_rejects_unknown_mechanism(self):
        with pytest.raises(ValueError):
            PEOSDeployment(
                mechanism="magic", eps_l=1.0, report_domain=4,
                n=100, n_r=0, r=3, delta=1e-9,
            )


class TestThreatReport:
    def test_covers_canonical_adversaries(self):
        report = ThreatReport.evaluate(DEPLOYMENT)
        assert len(report.guarantees) == 4
        assert any("majority" in name for name in report.guarantees)

    def test_rows_sorted(self):
        report = ThreatReport.evaluate(DEPLOYMENT)
        names = [name for name, __ in report.rows()]
        assert names == sorted(names)

    def test_all_guarantees_finite(self):
        report = ThreatReport.evaluate(DEPLOYMENT)
        assert all(math.isfinite(eps) for eps in report.guarantees.values())
