"""Seed determinism: streaming and one-shot paths are reproducible and
agree bit-for-bit on the same released reports, for GRR and SOLH."""

import numpy as np
import pytest

from repro.core.params import PeosPlan
from repro.frequency_oracles import GRR, SOLH
from repro.hashing import XXHash32Family
from repro.service import StreamConfig, TelemetryPipeline


def _plan(mechanism: str) -> PeosPlan:
    return PeosPlan(
        mechanism=mechanism,
        eps_l=3.0,
        d_prime=4 if mechanism == "solh" else 8,
        n_r=25,
        variance=1e-4,
        eps_server=0.5,
        eps_collusion=1.0,
        eps_local=3.0,
        delta=1e-9,
    )


def _config(mechanism: str, keep_reports: bool = False) -> StreamConfig:
    from repro.service import epoch_release_epsilon

    plan = _plan(mechanism)
    # 3 epochs of 150 reports at flush_size 60: two full flushes plus a
    # remainder of 30 per epoch; budget covers all nine releases.
    return StreamConfig(
        d=8,
        plan=plan,
        flush_size=60,
        eps_budget=3 * epoch_release_epsilon(8, plan, 150, 60),
        delta_budget=plan.delta * 9,
        keep_reports=keep_reports,
    )


def _stream_once(mechanism: str, seed: int, keep_reports: bool = False):
    rng = np.random.default_rng(seed)
    pipeline = TelemetryPipeline(_config(mechanism, keep_reports), rng)
    for __ in range(3):
        values = rng.integers(0, 8, 150)
        pipeline.submit(values)
        pipeline.end_epoch()
    return pipeline


@pytest.mark.parametrize("mechanism", ["grr", "solh"])
class TestStreamingDeterminism:
    def test_same_seed_byte_identical(self, mechanism):
        first = _stream_once(mechanism, seed=2020).estimates()
        second = _stream_once(mechanism, seed=2020).estimates()
        assert first.tobytes() == second.tobytes()

    def test_different_seed_differs(self, mechanism):
        first = _stream_once(mechanism, seed=2020).estimates()
        second = _stream_once(mechanism, seed=2021).estimates()
        assert not np.array_equal(first, second)


@pytest.mark.parametrize("oracle_factory", [
    lambda: GRR(8, 3.0),
    lambda: SOLH(8, 3.0, 4, family=XXHash32Family()),
], ids=["grr", "solh"])
class TestOneShotDeterminism:
    def test_same_seed_byte_identical(self, oracle_factory):
        fo = oracle_factory()
        values = np.random.default_rng(7).integers(0, 8, 500)
        first = fo.run(values, np.random.default_rng(2020))
        second = fo.run(values, np.random.default_rng(2020))
        assert first.tobytes() == second.tobytes()


@pytest.mark.parametrize("mechanism", ["grr", "solh"])
class TestStreamingMatchesOneShot:
    def test_byte_identical_over_released_reports(self, mechanism):
        pipeline = _stream_once(mechanism, seed=2020, keep_reports=True)
        result = pipeline.result()
        fo = pipeline.fo
        counts = sum(
            fo.support_counts(batch) for batch in pipeline.released_batches
        )
        raw = fo.estimate(counts, result.n_genuine + result.n_fake)
        one_shot = fo.calibrate_with_fakes(raw, result.n_genuine, result.n_fake)
        assert one_shot.tobytes() == result.estimates.tobytes()
