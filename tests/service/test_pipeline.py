"""End-to-end streaming pipeline: epochs, budget enforcement, backends."""

import numpy as np
import pytest

from repro.core.params import PeosPlan
from repro.service import (
    StreamConfig,
    TelemetryPipeline,
    make_backend,
)
from repro.service.pipeline import flush_release_epsilon


def small_plan(
    mechanism: str = "grr", d_prime: int = 8, n_r: int = 20, eps_server: float = 0.5
) -> PeosPlan:
    """A handmade per-flush plan small enough for the crypto backends."""
    return PeosPlan(
        mechanism=mechanism,
        eps_l=3.0,
        d_prime=d_prime,
        n_r=n_r,
        variance=1e-4,
        eps_server=eps_server,
        eps_collusion=1.0,
        eps_local=3.0,
        delta=1e-9,
    )


def full_flush_eps(config: StreamConfig) -> float:
    """The charge of one full-size flush under ``config``."""
    return flush_release_epsilon(
        config.d, config.plan, config.flush_size, config.plan.n_r
    )


def small_config(admitted_flushes: int = 4, **kwargs) -> StreamConfig:
    plan = kwargs.pop("plan", small_plan())
    d = kwargs.pop("d", 8)
    flush_size = kwargs.pop("flush_size", 50)
    # Size the budget off the actual per-release charge (the handmade
    # plan's eps_server is not what the pipeline prices flushes at).
    eps_per_flush = flush_release_epsilon(d, plan, flush_size, plan.n_r)
    return StreamConfig(
        d=d,
        plan=plan,
        flush_size=flush_size,
        eps_budget=eps_per_flush * admitted_flushes,
        delta_budget=plan.delta * admitted_flushes,
        **kwargs,
    )


class TestEpochs:
    def test_three_epochs_end_to_end(self, rng):
        pipeline = TelemetryPipeline(small_config(admitted_flushes=12), rng)
        for __ in range(3):
            pipeline.submit(rng.integers(0, 8, 100))
            report = pipeline.end_epoch()
            assert report.n_flushes == 2
            assert report.n_rejected == 0
            assert report.n_reports == 100
            assert report.n_fake == 2 * 20
        result = pipeline.result()
        assert len(result.epochs) == 3
        assert result.n_genuine == 300
        assert result.estimates.shape == (8,)
        assert result.estimates.sum() == pytest.approx(1.0, abs=0.3)

    def test_epoch_remainder_flushes(self, rng):
        pipeline = TelemetryPipeline(small_config(admitted_flushes=12), rng)
        pipeline.submit(rng.integers(0, 8, 70))
        report = pipeline.end_epoch()
        # one size flush of 50 + one epoch flush of 20
        assert report.n_flushes == 2
        assert report.n_reports == 70

    def test_metrics_accumulate(self, rng):
        ticks = iter(range(1000))
        config = small_config(admitted_flushes=12)
        pipeline = TelemetryPipeline(
            config, rng, clock=lambda: float(next(ticks))
        )
        pipeline.submit(rng.integers(0, 8, 100))
        report = pipeline.end_epoch()
        assert report.flush_latency_s == 2.0  # two flushes, 1 tick each
        assert report.reports_per_sec == pytest.approx(50.0)
        assert report.eps_spent == pytest.approx(2 * full_flush_eps(config))


class TestBudgetEnforcement:
    def test_accountant_rejects_overrun_flush(self, rng):
        # Budget admits 4 flushes; 3 epochs x 2 flushes = 6 attempts.
        config = small_config(admitted_flushes=4)
        pipeline = TelemetryPipeline(config, rng)
        reports = []
        for __ in range(3):
            pipeline.submit(rng.integers(0, 8, 100))
            reports.append(pipeline.end_epoch())
        assert [r.n_rejected for r in reports] == [0, 0, 2]
        result = pipeline.result()
        assert result.n_rejected == 2
        assert result.n_genuine == 200  # epoch 2's reports never released
        assert result.eps_spent == pytest.approx(4 * full_flush_eps(config))
        assert "exceed the budget" in result.rejections[0].reason

    def test_rejected_flush_not_aggregated(self, rng):
        pipeline = TelemetryPipeline(small_config(admitted_flushes=1), rng)
        pipeline.submit(rng.integers(0, 8, 100))
        pipeline.end_epoch()
        assert pipeline.aggregator.n_batches == 1
        assert pipeline.aggregator.n_genuine == 50

    def test_released_spans_skip_rejected_flushes(self, rng):
        pipeline = TelemetryPipeline(small_config(admitted_flushes=1), rng)
        pipeline.submit(rng.integers(0, 8, 100))
        pipeline.end_epoch()
        # First flush of 50 released, second rejected: one span, one gap.
        assert pipeline.released_spans == [(0, 50)]

    def test_released_values_selects_around_gaps(self, rng):
        pipeline = TelemetryPipeline(small_config(admitted_flushes=1), rng)
        values = rng.integers(0, 8, 100)
        pipeline.submit(values)
        pipeline.end_epoch()
        released = pipeline.released_values(values)
        assert np.array_equal(released, values[:50])
        with pytest.raises(ValueError):
            pipeline.released_values(values[:10])  # fewer than consumed

    def test_exhausted_flag_and_rejection_cap(self, rng):
        from repro.service.pipeline import MAX_REJECTION_RECORDS

        pipeline = TelemetryPipeline(
            small_config(admitted_flushes=1, flush_size=5), rng
        )
        assert not pipeline.exhausted
        for __ in range(MAX_REJECTION_RECORDS + 10):
            pipeline.submit(rng.integers(0, 8, 5))
        pipeline.end_epoch()
        assert pipeline.exhausted  # basic composition hit the budget exactly
        result = pipeline.result()
        assert result.n_rejected == MAX_REJECTION_RECORDS + 9
        assert len(result.rejections) == MAX_REJECTION_RECORDS


class TestReleasePricing:
    def test_remainder_flush_costs_more(self):
        plan = small_plan()
        full = flush_release_epsilon(8, plan, 50, plan.n_r)
        remainder = flush_release_epsilon(8, plan, 7, plan.n_r)
        assert remainder > full  # less genuine blanket -> weaker guarantee

    def test_full_flush_matches_planner_eps_server(self):
        config = StreamConfig.from_targets(d=16, flush_size=200)
        assert flush_release_epsilon(
            16, config.plan, 200, config.plan.n_r
        ) == config.plan.eps_server

    def test_tiny_batch_priced_by_fakes_only(self):
        plan = small_plan()
        from repro.core.peos_analysis import peos_epsilon_collusion_grr

        expected = peos_epsilon_collusion_grr(8, plan.n_r, plan.delta)
        assert flush_release_epsilon(8, plan, 0, plan.n_r) == expected
        assert flush_release_epsilon(8, plan, 1, plan.n_r) == expected

    def test_no_fakes_no_users_is_unreleasable(self):
        import math

        plan = small_plan(n_r=0)
        assert math.isinf(flush_release_epsilon(8, plan, 1, 0))


class TestIncrementalMatchesOneShot:
    def test_plain_backend_exact(self, rng):
        config = small_config(admitted_flushes=12, keep_reports=True)
        pipeline = TelemetryPipeline(config, rng)
        for __ in range(3):
            pipeline.submit(rng.integers(0, 8, 100))
            pipeline.end_epoch()
        result = pipeline.result()
        fo = pipeline.fo
        counts = sum(fo.support_counts(batch) for batch in pipeline.released_batches)
        raw = fo.estimate(counts, result.n_genuine + result.n_fake)
        one_shot = fo.calibrate_with_fakes(raw, result.n_genuine, result.n_fake)
        assert np.array_equal(one_shot, result.estimates)


class TestBackends:
    def test_sequential_backend(self, rng):
        config = small_config(
            admitted_flushes=4, flush_size=30, backend="sequential"
        )
        backend = make_backend("sequential", r=2, crypto_rng=5)
        pipeline = TelemetryPipeline(config, rng, backend=backend)
        pipeline.submit(rng.integers(0, 8, 30))
        report = pipeline.end_epoch()
        assert report.n_reports == 30
        assert pipeline.aggregator.total_reports == 30 + 20
        assert np.isfinite(pipeline.estimates()).all()

    def test_peos_backend(self, rng, paillier_keys):
        config = small_config(
            admitted_flushes=4,
            flush_size=20,
            backend="peos",
            plan=small_plan(n_r=10),
        )
        backend = make_backend("peos", r=2, crypto_rng=5)
        # Reuse the session keypair instead of generating a fresh one.
        public, private = paillier_keys
        backend._public = public
        backend._decrypt = private.decrypt
        pipeline = TelemetryPipeline(config, rng, backend=backend)
        pipeline.submit(rng.integers(0, 8, 20))
        report = pipeline.end_epoch()
        assert report.n_reports == 20
        assert pipeline.aggregator.total_reports == 30
        assert np.isfinite(pipeline.estimates()).all()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            make_backend("quantum")


class TestConfig:
    def test_from_targets_budget_sizing(self):
        config = StreamConfig.from_targets(
            d=16, flush_size=200, admitted_flushes=5
        )
        assert config.eps_budget == pytest.approx(5 * config.plan.eps_server)
        assert config.delta_budget == pytest.approx(5 * config.plan.delta)

    def test_from_targets_rejects_zero_flushes(self):
        with pytest.raises(ValueError):
            StreamConfig.from_targets(d=16, flush_size=200, admitted_flushes=0)

    def test_for_epochs_prices_remainder(self, rng):
        # 210 reports/epoch at flush_size 100: two full flushes plus a
        # remainder of 10, which costs more than a full flush; the budget
        # must still admit exactly 2 epochs.
        config = StreamConfig.for_epochs(
            d=16, flush_size=100, epoch_size=210, admitted_epochs=2
        )
        pipeline = TelemetryPipeline(config, rng)
        rejected = []
        for __ in range(3):
            pipeline.submit(rng.integers(0, 16, 210))
            rejected.append(pipeline.end_epoch().n_rejected)
        assert rejected == [0, 0, 3]
        assert pipeline.result().n_genuine == 420

    def test_flush_empty_releases_all_fake_epochs(self, rng):
        config = small_config(admitted_flushes=4, flush_empty=True)
        pipeline = TelemetryPipeline(config, rng)
        report = pipeline.end_epoch()  # no submissions at all
        assert report.n_flushes == 1
        assert report.n_reports == 0
        assert report.n_fake == 20
        assert pipeline.aggregator.n_fake == 20
        # All-fake releases are priced at the fakes-only bound.
        assert report.eps_spent == pytest.approx(
            flush_release_epsilon(8, config.plan, 0, 20)
        )

    def test_advanced_composition_gets_delta_headroom(self):
        from repro.service import PrivacyAccountant

        basic = StreamConfig.from_targets(
            d=16, flush_size=200, admitted_flushes=5
        )
        advanced = StreamConfig.from_targets(
            d=16, flush_size=200, admitted_flushes=5, composition="advanced"
        )
        assert advanced.delta_budget == pytest.approx(4 * basic.delta_budget)
        # After the 5 planned flushes the delta ledger is NOT what blocks
        # further admissions (the eps axis governs, where advanced
        # composition can stretch the budget).
        accountant = PrivacyAccountant(
            advanced.eps_budget, advanced.delta_budget, method="advanced"
        )
        for __ in range(5):
            accountant.charge(advanced.plan.eps_server, advanced.plan.delta)
        assert accountant.admits(1e-9, advanced.plan.delta)

    def test_for_epochs_validation(self):
        with pytest.raises(ValueError):
            StreamConfig.for_epochs(
                d=16, flush_size=100, epoch_size=200, admitted_epochs=0
            )
        with pytest.raises(ValueError):
            StreamConfig.for_epochs(
                d=16, flush_size=100, epoch_size=0, admitted_epochs=1
            )
