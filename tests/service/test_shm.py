"""Zero-copy shard traffic: the shared-memory pool, the transport knobs,
and the guarantee that nothing ever survives in /dev/shm."""

import os
import signal
import time

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.service import (
    SharedMemoryPool,
    ShardedPipeline,
    StreamConfig,
    TelemetryPipeline,
    attach_segment,
)
from repro.service.shm import SEGMENT_PREFIX, _size_class, leaked_segments

D = 16
EPS_TARGETS = (1.0, 3.0, 6.0)
DELTA = 1e-9

_HAS_DEV_SHM = os.path.isdir("/dev/shm")


def _config(**kwargs) -> StreamConfig:
    defaults = dict(
        d=D,
        flush_size=100,
        eps_targets=EPS_TARGETS,
        delta=DELTA,
        admitted_flushes=12,
    )
    defaults.update(kwargs)
    return StreamConfig.from_targets(**defaults)


def _feed(pipeline, seed: int = 77, epochs: int = 3, per_epoch: int = 150):
    feed_rng = np.random.default_rng(seed)
    for __ in range(epochs):
        pipeline.submit(feed_rng.integers(0, D, per_epoch))
        pipeline.end_epoch()
    return pipeline.result()


class TestSizeClass:
    def test_rounds_up_to_power_of_two(self):
        assert _size_class(1) == 1 << 12
        assert _size_class(4096) == 4096
        assert _size_class(4097) == 8192
        assert _size_class((1 << 20) + 1) == 1 << 21

    def test_never_below_minimum(self):
        # POSIX shm cannot be zero-sized, and tiny segments defeat reuse.
        assert _size_class(1) >= 4096


class TestSharedMemoryPool:
    def test_round_trip_through_attach(self):
        payload = np.arange(500, dtype=np.int64)
        with SharedMemoryPool() as pool:
            lease = pool.acquire(payload.nbytes)
            window = np.frombuffer(
                lease.shm.buf, dtype=np.int64, count=len(payload)
            )
            window[:] = payload
            del window
            # The worker-side view of the same segment.
            segment = attach_segment(lease.name)
            try:
                seen = np.frombuffer(
                    segment.buf, dtype=np.int64, count=len(payload)
                ).copy()
            finally:
                segment.close()
            lease.release()
        assert seen.tobytes() == payload.tobytes()
        assert leaked_segments() == []

    def test_release_returns_segment_for_reuse(self):
        with SharedMemoryPool() as pool:
            first = pool.acquire(1000)
            name = first.name
            first.release()
            second = pool.acquire(800)
            assert second.name == name
            assert pool.created_segments == 1
            second.release()

    def test_unreleased_lease_blocks_reuse(self):
        with SharedMemoryPool() as pool:
            first = pool.acquire(1000)
            second = pool.acquire(1000)
            assert second.name != first.name
            assert pool.created_segments == 2
            assert pool.leased_count == 2
            first.release()
            second.release()
            assert pool.leased_count == 0

    def test_refcounting(self):
        with SharedMemoryPool() as pool:
            lease = pool.acquire(100)
            lease.retain()
            assert lease.refs == 2
            lease.release()
            assert lease.refs == 1
            lease.release()
            assert lease.refs == 0
            # Past zero: release is a safe no-op, retain is an error.
            lease.release()
            assert lease.refs == 0
            with pytest.raises(ValueError):
                lease.retain()
            # The segment went back to the free list exactly once.
            assert pool.leased_count == 0

    def test_acquire_validates(self):
        with SharedMemoryPool() as pool:
            with pytest.raises(ValueError):
                pool.acquire(0)

    def test_close_unlinks_leased_segments(self):
        # A worker crash orphans its lease forever; close() must still
        # unlink the segment.
        pool = SharedMemoryPool()
        lease = pool.acquire(4096)
        name = lease.name
        pool.close()
        assert pool.closed
        with pytest.raises(FileNotFoundError):
            attach_segment(name)
        # Releasing the orphaned lease after close stays a safe no-op.
        lease.release()
        assert leaked_segments() == []

    def test_close_is_idempotent_and_blocks_acquire(self):
        pool = SharedMemoryPool()
        pool.acquire(64).release()
        pool.close()
        pool.close()
        with pytest.raises(ValueError):
            pool.acquire(64)

    @pytest.mark.skipif(not _HAS_DEV_SHM, reason="no scannable /dev/shm")
    def test_dev_shm_divergence_tracks_books_vs_kernel(self):
        # The mid-run consistency probe the fold supervisor runs on
        # every pool rebuild: healthy books diverge only when a segment
        # is unlinked behind the pool's back (missing) or a prefixed
        # entry appears it never created (orphaned).
        with SharedMemoryPool() as pool:
            lease = pool.acquire(4096)
            assert pool.dev_shm_divergence() == {
                "missing": [], "orphaned": []
            }
            imposter = os.path.join("/dev/shm", pool._prefix + "_imposter")
            with open(imposter, "wb"):
                pass
            try:
                assert pool.dev_shm_divergence()["orphaned"] == [
                    os.path.basename(imposter)
                ]
            finally:
                os.unlink(imposter)
            os.unlink(os.path.join("/dev/shm", lease.name))
            assert pool.dev_shm_divergence()["missing"] == [lease.name]
            lease.release()
        # close() tolerated the foreign unlink; nothing is left behind.
        assert leaked_segments() == []

    @pytest.mark.skipif(not _HAS_DEV_SHM, reason="no scannable /dev/shm")
    def test_segments_visible_then_gone_in_dev_shm(self):
        pool = SharedMemoryPool()
        lease = pool.acquire(4096)
        assert lease.name.startswith(SEGMENT_PREFIX)
        assert lease.name in os.listdir("/dev/shm")
        pool.close()
        assert lease.name not in os.listdir("/dev/shm")


class TestPipelineKnobValidation:
    def test_bad_transport_named(self):
        with pytest.raises(ConfigError) as err:
            ShardedPipeline(
                _config(), np.random.default_rng(0), transport="carrier-pigeon"
            )
        assert err.value.field == "transport"

    @pytest.mark.parametrize("bad", [0, -1])
    def test_bad_chunk_bytes_named(self, bad):
        with pytest.raises(ConfigError) as err:
            ShardedPipeline(_config(), np.random.default_rng(0), chunk_bytes=bad)
        assert err.value.field == "chunk_bytes"
        with pytest.raises(ConfigError) as err:
            TelemetryPipeline(_config(), np.random.default_rng(0), chunk_bytes=bad)
        assert err.value.field == "chunk_bytes"

    def test_bad_seed_cache_bytes_named(self):
        with pytest.raises(ConfigError) as err:
            ShardedPipeline(
                _config(), np.random.default_rng(0), seed_cache_bytes=-1
            )
        assert err.value.field == "seed_cache_bytes"
        with pytest.raises(ConfigError) as err:
            TelemetryPipeline(
                _config(), np.random.default_rng(0), seed_cache_bytes=-1
            )
        assert err.value.field == "seed_cache_bytes"


class TestTransportStats:
    def test_serial_run_reports_no_shm_traffic(self):
        pipeline = ShardedPipeline(_config(), np.random.default_rng(5))
        _feed(pipeline)
        stats = pipeline.transport_stats()
        assert stats["bytes_moved"] == 0  # serial folds never ship payloads
        assert stats["shm_peak_bytes"] == 0

    def test_pickle_transport_reported(self):
        pipeline = ShardedPipeline(
            _config(), np.random.default_rng(5), transport="pickle"
        )
        assert pipeline.transport_stats()["transport"] == "pickle"


@pytest.mark.slow
class TestProcessTransports:
    """Process folding over real worker processes: identity and cleanup."""

    def test_shm_matches_pickle_matches_serial(self):
        config = _config()
        serial = _feed(ShardedPipeline(config, np.random.default_rng(5)))
        results = {}
        for transport in ("pickle", "shm"):
            with ShardedPipeline(
                config,
                np.random.default_rng(5),
                n_shards=2,
                fold_backend="process",
                transport=transport,
            ) as pipeline:
                results[transport] = _feed(pipeline)
                stats = pipeline.transport_stats()
                assert stats["transport"] == transport
                assert stats["bytes_moved"] > 0
                if transport == "shm":
                    assert stats["shm_peak_bytes"] > 0
        assert (
            serial.estimates.tobytes()
            == results["pickle"].estimates.tobytes()
            == results["shm"].estimates.tobytes()
        )
        assert leaked_segments() == []

    @pytest.mark.skipif(not _HAS_DEV_SHM, reason="no scannable /dev/shm")
    def test_killed_workers_recovered_without_leaks(self):
        # SIGKILL every fold worker mid-run.  The fold supervisor must
        # rebuild the pool (reusing the live shm leases — the payloads
        # live in parent-owned segments), finish the run bit-identically
        # to a fault-free one, keep /dev/shm consistent mid-run, and
        # still empty it on close.
        config = _config()
        reference = _feed(ShardedPipeline(config, np.random.default_rng(5)))
        pipeline = ShardedPipeline(
            config,
            np.random.default_rng(5),
            n_shards=2,
            fold_backend="process",
            transport="shm",
        )
        feed_rng = np.random.default_rng(77)
        pipeline.warmup()
        pipeline.submit(feed_rng.integers(0, D, 150))  # queues shm folds
        for pid in list(pipeline._executor._processes):
            os.kill(pid, signal.SIGKILL)
        time.sleep(0.2)
        pipeline.end_epoch()  # collects folds through the supervisor
        divergence = pipeline._shm_pool.dev_shm_divergence()
        assert divergence == {"missing": [], "orphaned": []}
        for __ in range(2):
            pipeline.submit(feed_rng.integers(0, D, 150))
            pipeline.end_epoch()
        result = pipeline.result()
        stats = pipeline.fault_stats()
        pipeline.close()
        assert result.estimates.tobytes() == reference.estimates.tobytes()
        assert stats["worker_deaths"] >= 1
        assert stats["pool_rebuilds"] >= 1
        assert pipeline._executor is None
        assert pipeline._shm_pool is None
        assert leaked_segments() == []  # no orphaned lease survived
