"""Zero-copy shard traffic: the shared-memory pool, the transport knobs,
and the guarantee that nothing ever survives in /dev/shm."""

import os
import signal
import time

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.service import (
    SharedMemoryPool,
    ShardedPipeline,
    StreamConfig,
    TelemetryPipeline,
    attach_segment,
)
from repro.service.shm import SEGMENT_PREFIX, _size_class, leaked_segments

D = 16
EPS_TARGETS = (1.0, 3.0, 6.0)
DELTA = 1e-9

_HAS_DEV_SHM = os.path.isdir("/dev/shm")


def _config(**kwargs) -> StreamConfig:
    defaults = dict(
        d=D,
        flush_size=100,
        eps_targets=EPS_TARGETS,
        delta=DELTA,
        admitted_flushes=12,
    )
    defaults.update(kwargs)
    return StreamConfig.from_targets(**defaults)


def _feed(pipeline, seed: int = 77, epochs: int = 3, per_epoch: int = 150):
    feed_rng = np.random.default_rng(seed)
    for __ in range(epochs):
        pipeline.submit(feed_rng.integers(0, D, per_epoch))
        pipeline.end_epoch()
    return pipeline.result()


class TestSizeClass:
    def test_rounds_up_to_power_of_two(self):
        assert _size_class(1) == 1 << 12
        assert _size_class(4096) == 4096
        assert _size_class(4097) == 8192
        assert _size_class((1 << 20) + 1) == 1 << 21

    def test_never_below_minimum(self):
        # POSIX shm cannot be zero-sized, and tiny segments defeat reuse.
        assert _size_class(1) >= 4096


class TestSharedMemoryPool:
    def test_round_trip_through_attach(self):
        payload = np.arange(500, dtype=np.int64)
        with SharedMemoryPool() as pool:
            lease = pool.acquire(payload.nbytes)
            window = np.frombuffer(
                lease.shm.buf, dtype=np.int64, count=len(payload)
            )
            window[:] = payload
            del window
            # The worker-side view of the same segment.
            segment = attach_segment(lease.name)
            try:
                seen = np.frombuffer(
                    segment.buf, dtype=np.int64, count=len(payload)
                ).copy()
            finally:
                segment.close()
            lease.release()
        assert seen.tobytes() == payload.tobytes()
        assert leaked_segments() == []

    def test_release_returns_segment_for_reuse(self):
        with SharedMemoryPool() as pool:
            first = pool.acquire(1000)
            name = first.name
            first.release()
            second = pool.acquire(800)
            assert second.name == name
            assert pool.created_segments == 1
            second.release()

    def test_unreleased_lease_blocks_reuse(self):
        with SharedMemoryPool() as pool:
            first = pool.acquire(1000)
            second = pool.acquire(1000)
            assert second.name != first.name
            assert pool.created_segments == 2
            assert pool.leased_count == 2
            first.release()
            second.release()
            assert pool.leased_count == 0

    def test_refcounting(self):
        with SharedMemoryPool() as pool:
            lease = pool.acquire(100)
            lease.retain()
            assert lease.refs == 2
            lease.release()
            assert lease.refs == 1
            lease.release()
            assert lease.refs == 0
            # Past zero: release is a safe no-op, retain is an error.
            lease.release()
            assert lease.refs == 0
            with pytest.raises(ValueError):
                lease.retain()
            # The segment went back to the free list exactly once.
            assert pool.leased_count == 0

    def test_acquire_validates(self):
        with SharedMemoryPool() as pool:
            with pytest.raises(ValueError):
                pool.acquire(0)

    def test_close_unlinks_leased_segments(self):
        # A worker crash orphans its lease forever; close() must still
        # unlink the segment.
        pool = SharedMemoryPool()
        lease = pool.acquire(4096)
        name = lease.name
        pool.close()
        assert pool.closed
        with pytest.raises(FileNotFoundError):
            attach_segment(name)
        # Releasing the orphaned lease after close stays a safe no-op.
        lease.release()
        assert leaked_segments() == []

    def test_close_is_idempotent_and_blocks_acquire(self):
        pool = SharedMemoryPool()
        pool.acquire(64).release()
        pool.close()
        pool.close()
        with pytest.raises(ValueError):
            pool.acquire(64)

    @pytest.mark.skipif(not _HAS_DEV_SHM, reason="no scannable /dev/shm")
    def test_segments_visible_then_gone_in_dev_shm(self):
        pool = SharedMemoryPool()
        lease = pool.acquire(4096)
        assert lease.name.startswith(SEGMENT_PREFIX)
        assert lease.name in os.listdir("/dev/shm")
        pool.close()
        assert lease.name not in os.listdir("/dev/shm")


class TestPipelineKnobValidation:
    def test_bad_transport_named(self):
        with pytest.raises(ConfigError) as err:
            ShardedPipeline(
                _config(), np.random.default_rng(0), transport="carrier-pigeon"
            )
        assert err.value.field == "transport"

    @pytest.mark.parametrize("bad", [0, -1])
    def test_bad_chunk_bytes_named(self, bad):
        with pytest.raises(ConfigError) as err:
            ShardedPipeline(_config(), np.random.default_rng(0), chunk_bytes=bad)
        assert err.value.field == "chunk_bytes"
        with pytest.raises(ConfigError) as err:
            TelemetryPipeline(_config(), np.random.default_rng(0), chunk_bytes=bad)
        assert err.value.field == "chunk_bytes"

    def test_bad_seed_cache_bytes_named(self):
        with pytest.raises(ConfigError) as err:
            ShardedPipeline(
                _config(), np.random.default_rng(0), seed_cache_bytes=-1
            )
        assert err.value.field == "seed_cache_bytes"
        with pytest.raises(ConfigError) as err:
            TelemetryPipeline(
                _config(), np.random.default_rng(0), seed_cache_bytes=-1
            )
        assert err.value.field == "seed_cache_bytes"


class TestTransportStats:
    def test_serial_run_reports_no_shm_traffic(self):
        pipeline = ShardedPipeline(_config(), np.random.default_rng(5))
        _feed(pipeline)
        stats = pipeline.transport_stats()
        assert stats["bytes_moved"] == 0  # serial folds never ship payloads
        assert stats["shm_peak_bytes"] == 0

    def test_pickle_transport_reported(self):
        pipeline = ShardedPipeline(
            _config(), np.random.default_rng(5), transport="pickle"
        )
        assert pipeline.transport_stats()["transport"] == "pickle"


@pytest.mark.slow
class TestProcessTransports:
    """Process folding over real worker processes: identity and cleanup."""

    def test_shm_matches_pickle_matches_serial(self):
        config = _config()
        serial = _feed(ShardedPipeline(config, np.random.default_rng(5)))
        results = {}
        for transport in ("pickle", "shm"):
            with ShardedPipeline(
                config,
                np.random.default_rng(5),
                n_shards=2,
                fold_backend="process",
                transport=transport,
            ) as pipeline:
                results[transport] = _feed(pipeline)
                stats = pipeline.transport_stats()
                assert stats["transport"] == transport
                assert stats["bytes_moved"] > 0
                if transport == "shm":
                    assert stats["shm_peak_bytes"] > 0
        assert (
            serial.estimates.tobytes()
            == results["pickle"].estimates.tobytes()
            == results["shm"].estimates.tobytes()
        )
        assert leaked_segments() == []

    @pytest.mark.skipif(not _HAS_DEV_SHM, reason="no scannable /dev/shm")
    def test_killed_worker_leaks_no_segments(self):
        # The regression the pool exists for: SIGKILL a fold worker while
        # leases are outstanding and verify close() still empties /dev/shm
        # (and raises, because charged flushes must not silently vanish).
        config = _config()
        pipeline = ShardedPipeline(
            config,
            np.random.default_rng(5),
            n_shards=2,
            fold_backend="process",
            transport="shm",
        )
        pipeline.warmup()
        feed_rng = np.random.default_rng(7)
        pipeline.submit(feed_rng.integers(0, D, 800))  # queues shm folds
        for pid in list(pipeline._executor._processes):
            os.kill(pid, signal.SIGKILL)
        time.sleep(0.2)
        # drain re-raises the broken-pool failure when folds were still in
        # flight (charged flushes must not silently vanish); on a fast
        # machine they may all have completed first, and close() succeeds.
        try:
            pipeline.close()
        except Exception:
            pass
        assert pipeline._executor is None  # the executor shut down anyway
        assert pipeline._shm_pool is None  # the pool was closed anyway
        assert leaked_segments() == []  # no orphaned lease survived
