"""Incremental aggregation and the fake-report sampling paths."""

import numpy as np
import pytest

from repro.frequency_oracles import GRR, SOLH, HadamardResponse
from repro.hashing import XXHash32Family
from repro.service import IncrementalAggregator


class TestFolding:
    def test_incremental_equals_one_shot(self, rng):
        fo = GRR(8, 3.0)
        values = rng.integers(0, 8, 3000)
        reports = fo.privatize(values, rng)
        aggregator = IncrementalAggregator(fo)
        for chunk in np.array_split(reports, 7):
            aggregator.fold_reports(chunk, len(chunk), 0)
        one_shot = fo.estimate(fo.support_counts(reports), len(values))
        assert np.array_equal(aggregator.estimates(), one_shot)

    def test_fake_calibration_applied(self, rng):
        fo = GRR(4, 4.0)
        values = np.repeat(np.arange(4), 500)
        reports = fo.privatize(values, rng)
        fakes = rng.integers(0, 4, 800)
        aggregator = IncrementalAggregator(fo)
        aggregator.fold_reports(np.concatenate([reports, fakes]), 2000, 800)
        # Eq. (6) removes the uniform fake mass: estimates stay ~1/4 each.
        assert aggregator.estimates() == pytest.approx(np.full(4, 0.25), abs=0.05)

    def test_length_mismatch_rejected(self, rng):
        fo = GRR(4, 2.0)
        aggregator = IncrementalAggregator(fo)
        with pytest.raises(ValueError):
            aggregator.fold_reports(np.zeros(10, dtype=np.int64), 8, 1)

    def test_count_shape_validated(self):
        aggregator = IncrementalAggregator(GRR(4, 2.0))
        with pytest.raises(ValueError):
            aggregator.fold_counts(np.zeros(5), 5, 0)
        with pytest.raises(ValueError):
            aggregator.fold_counts(np.zeros(4), -1, 0)

    def test_empty_aggregator_returns_zeros(self):
        aggregator = IncrementalAggregator(GRR(4, 2.0))
        assert np.array_equal(aggregator.estimates(), np.zeros(4))

    def test_non_finite_counts_rejected(self):
        # A single NaN folded once would silently poison every later
        # estimates() call; the batch must be refused by name instead.
        aggregator = IncrementalAggregator(GRR(4, 2.0))
        aggregator.fold_counts(np.ones(4), 4, 0)
        poisoned = np.array([1.0, np.nan, 1.0, 1.0])
        with pytest.raises(ValueError, match="batch 1"):
            aggregator.fold_counts(poisoned, 4, 0)
        with pytest.raises(ValueError, match="non-finite"):
            aggregator.fold_counts(np.array([np.inf, 0.0, 0.0, 0.0]), 1, 0)
        # The refused batches left no trace in the running state.
        assert aggregator.n_batches == 1
        assert np.all(np.isfinite(aggregator.estimates()))


class TestStatisticalPath:
    def test_fold_histogram_unbiased(self, rng):
        fo = GRR(8, 4.0)
        histogram = np.array([4000, 2000, 1000, 500, 250, 125, 75, 50])
        truth = histogram / histogram.sum()
        aggregator = IncrementalAggregator(fo)
        for __ in range(5):
            aggregator.fold_histogram(histogram, 300, rng)
        assert aggregator.n_genuine == 5 * histogram.sum()
        assert aggregator.n_fake == 1500
        assert aggregator.estimates() == pytest.approx(truth, abs=0.03)

    def test_fold_histogram_solh(self, rng):
        fo = SOLH(16, 3.0, 4, family=XXHash32Family())
        histogram = np.zeros(16, dtype=np.int64)
        histogram[3] = 5000
        histogram[9] = 5000
        aggregator = IncrementalAggregator(fo)
        aggregator.fold_histogram(histogram, 500, rng)
        estimates = aggregator.estimates()
        assert set(np.argsort(estimates)[-2:]) == {3, 9}


class TestFakeSampling:
    def test_grr_fakes_sum_to_n_fake(self, rng):
        counts = GRR(8, 2.0).sample_fake_support_counts(640, rng)
        assert counts.sum() == 640
        assert counts == pytest.approx(np.full(8, 80.0), abs=40)

    def test_lh_fakes_marginal_rate(self, rng):
        fo = SOLH(8, 3.0, 4, family=XXHash32Family())
        counts = fo.sample_fake_support_counts(4000, rng)
        assert counts.shape == (8,)
        assert counts == pytest.approx(np.full(8, 1000.0), abs=150)

    def test_generic_path_via_hadamard(self, rng):
        # HadamardResponse has no closed-form override, so this exercises
        # the materialize-and-decode default on the base class.
        fo = HadamardResponse(6, 3.0)
        counts = fo.sample_fake_support_counts(2000, rng)
        assert counts.shape == (fo.d,)
        assert (counts >= 0).all() and counts.sum() <= 2000 * fo.d

    def test_zero_fakes(self, rng):
        assert np.array_equal(
            GRR(4, 2.0).sample_fake_support_counts(0, rng), np.zeros(4)
        )

    def test_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            GRR(4, 2.0).sample_fake_support_counts(-1, rng)


class TestMerge:
    def test_merge_combines_shards(self, rng):
        fo = GRR(8, 3.0)
        values = rng.integers(0, 8, 2000)
        reports = fo.privatize(values, rng)
        whole = IncrementalAggregator(fo)
        whole.fold_reports(reports, 2000, 0)
        left, right = IncrementalAggregator(fo), IncrementalAggregator(fo)
        left.fold_reports(reports[:700], 700, 0)
        right.fold_reports(reports[700:], 1300, 0)
        left.merge(right)
        assert left.n_genuine == 2000
        assert np.array_equal(left.estimates(), whole.estimates())

    def test_merge_rejects_mismatched_oracles(self):
        left = IncrementalAggregator(GRR(8, 3.0))
        with pytest.raises(ValueError):
            left.merge(IncrementalAggregator(GRR(4, 3.0)))

    def test_merge_rejects_mismatched_parameters(self):
        # Same mechanism and domain but a different local budget: folding
        # those counts would be debiased with the wrong p/q.
        left = IncrementalAggregator(GRR(8, 3.0))
        with pytest.raises(ValueError):
            left.merge(IncrementalAggregator(GRR(8, 2.0)))
        solh = IncrementalAggregator(SOLH(8, 3.0, 4, family=XXHash32Family()))
        with pytest.raises(ValueError):
            solh.merge(
                IncrementalAggregator(SOLH(8, 3.0, 8, family=XXHash32Family()))
            )

    def test_merge_all_state_additive(self, rng):
        fo = GRR(8, 3.0)
        left, right = IncrementalAggregator(fo), IncrementalAggregator(fo)
        left.fold_reports(fo.privatize(rng.integers(0, 8, 30), rng), 25, 5)
        left.fold_reports(fo.privatize(rng.integers(0, 8, 10), rng), 10, 0)
        right.fold_reports(fo.privatize(rng.integers(0, 8, 44), rng), 40, 4)
        expected_counts = left.support_counts + right.support_counts
        left.merge(right)
        assert left.n_genuine == 25 + 10 + 40
        assert left.n_fake == 5 + 4
        assert left.n_batches == 3
        assert np.array_equal(left.support_counts, expected_counts)

    def test_merge_not_fooled_by_lying_repr(self):
        # The old gate compared repr(); a subclass that doesn't surface
        # every parameter there would merge incompatible shards silently.
        # compatible_with() compares the parameter tuple instead.
        class TerseGRR(GRR):
            def __repr__(self):
                return "TerseGRR()"

        left = IncrementalAggregator(TerseGRR(8, 3.0))
        right = IncrementalAggregator(TerseGRR(8, 2.0))
        assert repr(left.fo) == repr(right.fo)
        with pytest.raises(ValueError, match="parameter mismatch"):
            left.merge(right)

    def test_merge_rejects_subclass_at_identical_parameters(self):
        # Refusing a possibly-sound merge is recoverable; a silently
        # biased merge is not, so type identity participates.
        class SubGRR(GRR):
            pass

        left = IncrementalAggregator(GRR(8, 3.0))
        with pytest.raises(ValueError):
            left.merge(IncrementalAggregator(SubGRR(8, 3.0)))


class TestCompatibility:
    def test_compatible_with_same_parameters(self):
        assert GRR(8, 3.0).compatible_with(GRR(8, 3.0))
        family = XXHash32Family()
        assert SOLH(8, 3.0, 4, family=family).compatible_with(
            SOLH(8, 3.0, 4, family=XXHash32Family())
        )

    def test_incompatible_across_any_parameter(self):
        base = SOLH(8, 3.0, 4, family=XXHash32Family())
        assert not base.compatible_with(SOLH(8, 2.0, 4, family=XXHash32Family()))
        assert not base.compatible_with(SOLH(8, 3.0, 8, family=XXHash32Family()))
        assert not base.compatible_with(SOLH(8, 3.0, 4))  # default CW family
        assert not base.compatible_with(GRR(8, 3.0))
        assert not base.compatible_with(object())

    def test_parameter_tuple_ignores_private_caches(self):
        fo = SOLH(8, 3.0, 4, family=XXHash32Family())
        before = fo.parameter_tuple()
        fo.ordinal_codec  # populates the private codec cache
        assert fo.parameter_tuple() == before
