"""Supervised folds under injected faults: retry, rebuild, degrade.

The contract every test here pins: folds are pure given their
``(sequence, reports, n_fake, entropy)`` inputs, so *any* combination of
worker deaths, injected raises, hangs, and transport degradations must
leave the final estimates bit-identical to the fault-free run at the
same seed — and ``/dev/shm`` empty afterwards.
"""

import os

import numpy as np
import pytest

from repro import faults
from repro.faults import ENV_VAR, InjectedFault
from repro.persistence import SqliteStateStore
from repro.service import ShardedPipeline, StreamConfig
from repro.service.shm import leaked_segments

D = 16
SEED = 5

_HAS_DEV_SHM = os.path.isdir("/dev/shm")


@pytest.fixture(autouse=True)
def _clean_registry(monkeypatch):
    """Failpoints never leak across tests (parent registry and env)."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    faults.disarm()
    yield
    faults.disarm()


def _config(**kwargs) -> StreamConfig:
    defaults = dict(
        d=D,
        flush_size=100,
        eps_targets=(1.0, 3.0, 6.0),
        delta=1e-9,
        admitted_flushes=12,
    )
    defaults.update(kwargs)
    return StreamConfig.from_targets(**defaults)


def _feed(pipeline, seed: int = 77, epochs: int = 3, per_epoch: int = 150):
    feed_rng = np.random.default_rng(seed)
    for __ in range(epochs):
        pipeline.submit(feed_rng.integers(0, D, per_epoch))
        pipeline.end_epoch()
    return pipeline.result()


@pytest.fixture(scope="module")
def reference():
    """The fault-free sharded run every chaos run must reproduce."""
    with ShardedPipeline(
        _config(), np.random.default_rng(SEED), n_shards=2
    ) as pipeline:
        return _feed(pipeline)


class TestKnobValidation:
    def test_bad_fold_timeout_named(self):
        from repro.core.errors import ConfigError

        with pytest.raises(ConfigError) as err:
            ShardedPipeline(
                _config(), np.random.default_rng(0), fold_timeout=0.0
            )
        assert err.value.field == "fold_timeout"

    def test_bad_fold_retries_named(self):
        from repro.core.errors import ConfigError

        with pytest.raises(ConfigError) as err:
            ShardedPipeline(
                _config(), np.random.default_rng(0), max_fold_retries=-1
            )
        assert err.value.field == "max_fold_retries"

    def test_fault_stats_start_clean(self):
        pipeline = ShardedPipeline(_config(), np.random.default_rng(0))
        stats = pipeline.fault_stats()
        assert stats == {
            "fold_retries": 0,
            "fold_timeouts": 0,
            "worker_deaths": 0,
            "pool_rebuilds": 0,
            "degradations": [],
        }
        # The returned dict is a copy, not a mutable alias.
        stats["degradations"].append("junk")
        assert pipeline.fault_stats()["degradations"] == []


@pytest.mark.slow
class TestBaselineFailHard:
    """With supervision disabled, today's fail-hard contract holds."""

    def test_worker_raise_propagates_when_degrade_off(
        self, monkeypatch, reference
    ):
        monkeypatch.setenv(ENV_VAR, "fold.worker:raise:once")
        pipeline = ShardedPipeline(
            _config(),
            np.random.default_rng(SEED),
            n_shards=2,
            fold_backend="process",
            max_fold_retries=0,
            degrade=False,
        )
        with pytest.raises(InjectedFault):
            _feed(pipeline)
        # close() re-raises too (charged flushes must not vanish), but
        # still tears everything down.
        with pytest.raises(InjectedFault):
            pipeline.close()
        assert pipeline._executor is None
        assert pipeline._shm_pool is None
        assert leaked_segments() == []


@pytest.mark.slow
class TestSupervisedRecovery:
    """The tentpole: chaos runs complete with bit-identical estimates."""

    @pytest.mark.skipif(not _HAS_DEV_SHM, reason="no scannable /dev/shm")
    def test_worker_sigkill_every_nth_fold_is_absorbed(
        self, monkeypatch, tmp_path, reference
    ):
        # The acceptance-criteria pin: SIGKILL a fold worker on every 3rd
        # fold with the process backend, shm transport, and a sqlite
        # store — the run completes, estimates match the fault-free run
        # bit for bit, and /dev/shm ends empty.
        monkeypatch.setenv(ENV_VAR, "fold.worker:kill:every=3")
        with SqliteStateStore(str(tmp_path / "chaos.db")) as store:
            with ShardedPipeline(
                _config(),
                np.random.default_rng(SEED),
                n_shards=2,
                fold_backend="process",
                transport="shm",
                store=store,
            ) as pipeline:
                result = _feed(pipeline)
                stats = pipeline.fault_stats()
        assert result.estimates.tobytes() == reference.estimates.tobytes()
        assert result.eps_spent == reference.eps_spent
        assert stats["worker_deaths"] > 0
        assert stats["pool_rebuilds"] > 0
        assert stats["fold_retries"] > 0
        assert stats["degradations"] == []  # retries sufficed
        assert leaked_segments() == []

    def test_persistent_raise_walks_the_full_ladder(
        self, monkeypatch, reference
    ):
        # Workers always raise (every worker process re-arms from the
        # env, so rebuilt pools fail too): supervision must walk
        # shm -> pickle -> serial and still finish bit-identically —
        # the serial rung folds in the parent, which is not armed.
        monkeypatch.setenv(ENV_VAR, "fold.worker:raise:every=1")
        with ShardedPipeline(
            _config(),
            np.random.default_rng(SEED),
            n_shards=2,
            fold_backend="process",
            max_fold_retries=1,
        ) as pipeline:
            result = _feed(pipeline)
            stats = pipeline.fault_stats()
            assert pipeline.transport_stats()["transport"] == "serial"
        assert result.estimates.tobytes() == reference.estimates.tobytes()
        hops = [(hop["from"], hop["to"]) for hop in stats["degradations"]]
        assert hops == [("shm", "pickle"), ("pickle", "serial")]
        assert leaked_segments() == []

    def test_hung_fold_times_out_and_degrades(self, monkeypatch, reference):
        # A worker sleeping far past fold_timeout is treated as hung:
        # the pool is killed and rebuilt; since every fresh worker hangs
        # again (the env re-arms them), the ladder ends serial.
        monkeypatch.setenv(ENV_VAR, "fold.worker:delay=30")
        with ShardedPipeline(
            _config(),
            np.random.default_rng(SEED),
            n_shards=2,
            fold_backend="process",
            fold_timeout=0.25,
            max_fold_retries=0,
        ) as pipeline:
            result = _feed(pipeline)
            stats = pipeline.fault_stats()
        assert result.estimates.tobytes() == reference.estimates.tobytes()
        assert stats["fold_timeouts"] > 0
        assert stats["degradations"][-1]["to"] == "serial"
        assert leaked_segments() == []

    def test_shm_write_failure_degrades_to_pickle(self, reference):
        # Parent-side chaos: the first segment acquire raises (shm
        # exhaustion); the charged flush must ship pickled instead, and
        # the rest of the run rides pickle with identical estimates.
        faults.install(["shm.write:raise:once"], export_env=False)
        with ShardedPipeline(
            _config(),
            np.random.default_rng(SEED),
            n_shards=2,
            fold_backend="process",
            transport="shm",
        ) as pipeline:
            result = _feed(pipeline)
            stats = pipeline.fault_stats()
            assert pipeline.transport_stats()["transport"] == "pickle"
        assert result.estimates.tobytes() == reference.estimates.tobytes()
        assert [hop["to"] for hop in stats["degradations"]] == ["pickle"]
        assert leaked_segments() == []
