"""ShardedPipeline: bit-identity across shard layouts, shared accounting,
and the spawn-safe process fold path."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.service import (
    ShardedPipeline,
    StreamConfig,
    TelemetryPipeline,
    epoch_release_epsilon,
)

D = 16
EPS_TARGETS = (1.0, 3.0, 6.0)
DELTA = 1e-9


def _config(**kwargs) -> StreamConfig:
    defaults = dict(
        d=D,
        flush_size=100,
        eps_targets=EPS_TARGETS,
        delta=DELTA,
        admitted_flushes=12,
    )
    defaults.update(kwargs)
    return StreamConfig.from_targets(**defaults)


def _feed(pipeline, seed: int = 77, epochs: int = 3, per_epoch: int = 150):
    feed_rng = np.random.default_rng(seed)
    for __ in range(epochs):
        pipeline.submit(feed_rng.integers(0, D, per_epoch))
        pipeline.end_epoch()
    return pipeline.result()


class TestBitIdentity:
    """The determinism contract of the sharded refactor."""

    def test_one_shard_matches_telemetry_pipeline(self):
        config = _config()
        legacy = _feed(TelemetryPipeline(config, np.random.default_rng(5)))
        sharded = _feed(ShardedPipeline(config, np.random.default_rng(5)))
        assert legacy.estimates.tobytes() == sharded.estimates.tobytes()
        assert legacy.n_genuine == sharded.n_genuine
        assert legacy.n_fake == sharded.n_fake
        assert legacy.eps_spent == sharded.eps_spent

    def test_four_shards_match_one_shard(self):
        config = _config()
        one = _feed(ShardedPipeline(config, np.random.default_rng(5), n_shards=1))
        four = _feed(ShardedPipeline(config, np.random.default_rng(5), n_shards=4))
        assert one.estimates.tobytes() == four.estimates.tobytes()
        assert one.eps_spent == four.eps_spent
        assert [e.n_reports for e in one.epochs] == [
            e.n_reports for e in four.epochs
        ]

    def test_epoch_reports_and_spans_layout_invariant(self):
        config = _config()
        one = ShardedPipeline(config, np.random.default_rng(5), n_shards=1)
        three = ShardedPipeline(config, np.random.default_rng(5), n_shards=3)
        _feed(one)
        _feed(three)
        assert one.released_spans == three.released_spans
        assert [e.n_flushes for e in one.epoch_reports] == [
            e.n_flushes for e in three.epoch_reports
        ]

    def test_rejections_accounted_once_globally(self):
        # A budget admitting 2 flushes: later flushes are refused by the
        # shared accountant identically at any shard count.
        config = _config(admitted_flushes=2)
        one = _feed(ShardedPipeline(config, np.random.default_rng(5), n_shards=1))
        four = _feed(ShardedPipeline(config, np.random.default_rng(5), n_shards=4))
        legacy = _feed(TelemetryPipeline(config, np.random.default_rng(5)))
        assert one.n_rejected == four.n_rejected == legacy.n_rejected > 0
        assert one.estimates.tobytes() == four.estimates.tobytes()
        assert [r.sequence for r in one.rejections] == [
            r.sequence for r in four.rejections
        ]


@pytest.mark.slow
class TestProcessFolding:
    def test_process_matches_serial(self):
        config = _config()
        serial = _feed(ShardedPipeline(config, np.random.default_rng(5), n_shards=2))
        with ShardedPipeline(
            config,
            np.random.default_rng(5),
            n_shards=2,
            fold_backend="process",
            workers=2,
        ) as pipeline:
            pipeline.warmup()
            process = _feed(pipeline)
        assert serial.estimates.tobytes() == process.estimates.tobytes()
        assert serial.n_genuine == process.n_genuine
        assert serial.eps_spent == process.eps_spent
        assert [e.n_reports for e in serial.epochs] == [
            e.n_reports for e in process.epochs
        ]


class TestConfiguration:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigError):
            ShardedPipeline(_config(), np.random.default_rng(0), n_shards=0)

    def test_rejects_unknown_fold_backend(self):
        with pytest.raises(ConfigError):
            ShardedPipeline(
                _config(), np.random.default_rng(0), fold_backend="thread"
            )

    def test_process_requires_plain_shuffle_backend(self):
        config = _config(backend="sequential")
        with pytest.raises(ConfigError, match="plain"):
            ShardedPipeline(
                config, np.random.default_rng(0), fold_backend="process"
            )

    def test_process_refuses_keep_reports(self):
        config = _config(keep_reports=True)
        with pytest.raises(ConfigError, match="keep_reports"):
            ShardedPipeline(
                config, np.random.default_rng(0), fold_backend="process"
            )

    def test_serial_keeps_reports(self):
        pipeline = ShardedPipeline(
            _config(keep_reports=True), np.random.default_rng(5), n_shards=2
        )
        _feed(pipeline)
        assert len(pipeline.released_batches) > 0

    def test_released_values_selects_admitted_spans(self):
        config = _config(admitted_flushes=2)
        pipeline = ShardedPipeline(config, np.random.default_rng(5), n_shards=2)
        feed_rng = np.random.default_rng(77)
        submitted = []
        for __ in range(3):
            values = feed_rng.integers(0, D, 150)
            submitted.append(values)
            pipeline.submit(values)
            pipeline.end_epoch()
        result = pipeline.result()
        released = pipeline.released_values(np.concatenate(submitted))
        assert len(released) == result.n_genuine


class TestMergeSeam:
    def test_estimates_flow_through_merge(self):
        # The per-shard aggregators really are merged (not re-folded):
        # the merged aggregate carries every shard's batch count.
        pipeline = ShardedPipeline(_config(), np.random.default_rng(5), n_shards=4)
        _feed(pipeline)
        aggregate = pipeline.aggregate()
        assert aggregate.n_batches == sum(s.n_batches for s in pipeline.shards)
        assert aggregate.n_genuine == sum(s.n_genuine for s in pipeline.shards)
        # Flushes actually landed on more than one shard.
        assert sum(1 for s in pipeline.shards if s.n_batches > 0) > 1

    def test_epoch_budgeted_config_works_sharded(self):
        plan_config = StreamConfig.for_epochs(
            d=D,
            flush_size=100,
            epoch_size=150,
            admitted_epochs=2,
            eps_targets=EPS_TARGETS,
            delta=DELTA,
        )
        legacy = _feed(TelemetryPipeline(plan_config, np.random.default_rng(9)), seed=13)
        sharded = _feed(
            ShardedPipeline(plan_config, np.random.default_rng(9), n_shards=2),
            seed=13,
        )
        assert legacy.estimates.tobytes() == sharded.estimates.tobytes()
        assert legacy.n_rejected == sharded.n_rejected
