"""Report buffering and flush carving."""

import numpy as np
import pytest

from repro.core.params import PeosPlan
from repro.service import ReportBuffer


def _plan(n_r: int) -> PeosPlan:
    return PeosPlan(
        mechanism="grr",
        eps_l=3.0,
        d_prime=8,
        n_r=n_r,
        variance=1e-4,
        eps_server=0.5,
        eps_collusion=1.0,
        eps_local=3.0,
        delta=1e-9,
    )


class TestSizeTrigger:
    def test_exact_flush_size_batches(self):
        buffer = ReportBuffer(flush_size=10, fakes_per_flush=3)
        batches = buffer.submit(np.arange(25))
        assert [b.n_reports for b in batches] == [10, 10]
        assert buffer.pending == 5
        assert all(b.trigger == "size" for b in batches)

    def test_submissions_accumulate_across_calls(self):
        buffer = ReportBuffer(flush_size=10, fakes_per_flush=0)
        assert buffer.submit(np.arange(6)) == []
        batches = buffer.submit(np.arange(6))
        assert len(batches) == 1
        assert batches[0].n_reports == 10
        assert buffer.pending == 2

    def test_reports_preserved_in_order(self):
        buffer = ReportBuffer(flush_size=4, fakes_per_flush=0)
        buffer.submit(np.array([1, 2]))
        (batch,) = buffer.submit(np.array([3, 4, 5]))
        assert batch.reports.tolist() == [1, 2, 3, 4]
        assert buffer.pending == 1

    def test_sequence_numbers_monotone(self):
        buffer = ReportBuffer(flush_size=5, fakes_per_flush=1)
        batches = buffer.submit(np.arange(15))
        batches += buffer.end_epoch()  # empty remainder: no batch
        batches += buffer.submit(np.arange(7))
        batches += buffer.end_epoch()
        assert [b.sequence for b in batches] == list(range(len(batches)))


class TestEpochTrigger:
    def test_end_epoch_drains_remainder(self):
        buffer = ReportBuffer(flush_size=10, fakes_per_flush=2)
        buffer.submit(np.arange(7))
        (batch,) = buffer.end_epoch()
        assert batch.trigger == "epoch"
        assert batch.n_reports == 7
        assert batch.n_fake == 2  # full fake order even for short batches
        assert buffer.pending == 0

    def test_epoch_counter_advances(self):
        buffer = ReportBuffer(flush_size=10, fakes_per_flush=0)
        assert buffer.epoch == 0
        buffer.submit(np.arange(3))
        (batch,) = buffer.end_epoch()
        assert batch.epoch == 0
        assert buffer.epoch == 1
        buffer.submit(np.arange(3))
        (batch,) = buffer.end_epoch()
        assert batch.epoch == 1

    def test_empty_epoch_emits_nothing_by_default(self):
        buffer = ReportBuffer(flush_size=10, fakes_per_flush=5)
        assert buffer.end_epoch() == []
        assert buffer.epoch == 1

    def test_flush_empty_emits_all_fake_batch(self):
        buffer = ReportBuffer(flush_size=10, fakes_per_flush=5, flush_empty=True)
        (batch,) = buffer.end_epoch()
        assert batch.n_reports == 0
        assert batch.n_fake == 5


class TestConfiguration:
    def test_from_plan_sizes_fakes(self):
        buffer = ReportBuffer.from_plan(_plan(n_r=42), flush_size=100)
        (batch,) = buffer.submit(np.arange(100))
        assert batch.n_fake == 42

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ReportBuffer(flush_size=0, fakes_per_flush=1)
        with pytest.raises(ValueError):
            ReportBuffer(flush_size=10, fakes_per_flush=-1)

    def test_rejects_non_flat_submission(self):
        buffer = ReportBuffer(flush_size=10, fakes_per_flush=0)
        with pytest.raises(ValueError):
            buffer.submit(np.zeros((2, 3)))


class TestMemoryOwnership:
    """Flush batches own their memory — never views of caller arrays.

    Regression tests for the aliasing bug where carved batches and the
    retained remainder were views of the submitted array: a caller
    reusing its upload buffer silently corrupted already-flushed batches,
    and a tiny remainder pinned the whole submission across epochs.
    """

    def test_size_batch_owns_memory(self):
        buffer = ReportBuffer(flush_size=10, fakes_per_flush=0)
        submitted = np.arange(25)
        batches = buffer.submit(submitted)
        for batch in batches:
            assert batch.reports.base is None
            assert not batch.reports.flags.writeable

    def test_epoch_batch_owns_memory(self):
        buffer = ReportBuffer(flush_size=10, fakes_per_flush=0)
        submitted = np.arange(7)
        buffer.submit(submitted)
        (batch,) = buffer.end_epoch()
        assert batch.reports.base is None

    def test_caller_mutation_does_not_corrupt_flushed_batch(self):
        buffer = ReportBuffer(flush_size=4, fakes_per_flush=0)
        upload = np.array([1, 2, 3, 4, 5])
        (batch,) = buffer.submit(upload)
        upload[:] = 99  # caller reuses its upload buffer
        assert batch.reports.tolist() == [1, 2, 3, 4]

    def test_caller_mutation_does_not_corrupt_pending_remainder(self):
        buffer = ReportBuffer(flush_size=4, fakes_per_flush=0)
        upload = np.array([1, 2, 3, 4, 5])
        buffer.submit(upload)
        upload[:] = 99
        (epoch_batch,) = buffer.end_epoch()
        assert epoch_batch.reports.tolist() == [5]

    def test_remainder_does_not_pin_merged_submission(self):
        # A 1-element remainder kept as a view would hold the entire
        # merged array alive; an owned copy has no base to pin.
        buffer = ReportBuffer(flush_size=1000, fakes_per_flush=0)
        buffer.submit(np.arange(1001))
        (chunk,) = buffer._pending
        assert chunk.base is None
        assert len(chunk) == 1

    def test_owned_transfer_skips_retain_copy(self):
        # The pipelines hand over freshly encoded arrays; ownership
        # transfer avoids a redundant O(n) copy on the ingest hot path.
        buffer = ReportBuffer(flush_size=10, fakes_per_flush=0)
        chunk = np.arange(4)
        buffer.submit(chunk, owned=True)
        assert buffer._pending[-1] is chunk
        # External callers that do not transfer ownership still get the
        # defensive copy.
        other = np.arange(3)
        buffer2 = ReportBuffer(flush_size=10, fakes_per_flush=0)
        buffer2.submit(other)
        assert buffer2._pending[-1] is not other

    def test_batches_are_read_only(self):
        buffer = ReportBuffer(flush_size=3, fakes_per_flush=0)
        (batch,) = buffer.submit(np.arange(3))
        with pytest.raises(ValueError):
            batch.reports[0] = 7
