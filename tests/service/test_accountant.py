"""Cross-epoch privacy-budget accounting."""

import math

import pytest

from repro.core.composition import advanced_composition_total, split_budget
from repro.service import BudgetExceededError, PrivacyAccountant


class TestBasicComposition:
    def test_admits_exact_budget_multiple(self):
        accountant = PrivacyAccountant(1.0, 1e-6)
        for __ in range(4):
            accountant.charge(0.25, 1e-9)
        assert accountant.n_charges == 4
        assert accountant.spent()[0] == pytest.approx(1.0)

    def test_refuses_overrun_and_keeps_ledger(self):
        accountant = PrivacyAccountant(1.0, 1e-6)
        for __ in range(4):
            accountant.charge(0.25)
        with pytest.raises(BudgetExceededError) as refusal:
            accountant.charge(0.25, label="epoch4/flush4")
        assert accountant.n_charges == 4  # refused charge not recorded
        assert refusal.value.requested_eps == 0.25
        assert refusal.value.spent_eps == pytest.approx(1.0)
        assert "epoch4/flush4" in str(refusal.value)

    def test_delta_budget_enforced(self):
        accountant = PrivacyAccountant(10.0, 1e-8)
        accountant.charge(0.1, 9e-9)
        with pytest.raises(BudgetExceededError):
            accountant.charge(0.1, 9e-9)

    def test_remaining_eps(self):
        accountant = PrivacyAccountant(1.0, 1e-6)
        accountant.charge(0.4)
        assert accountant.remaining_eps() == pytest.approx(0.6)
        assert accountant.admits(0.6)
        assert not accountant.admits(0.61)


class TestAdvancedComposition:
    def test_homogeneous_matches_core_composition(self):
        accountant = PrivacyAccountant(
            5.0, 1e-6, method="advanced", slack_fraction=0.5
        )
        for __ in range(20):
            accountant.charge(0.05)
        expected = advanced_composition_total(0.05, 20, 0.5 * 1e-6)
        eps_spent, delta_spent = accountant.spent()
        assert eps_spent == pytest.approx(min(expected, 20 * 0.05))
        if expected < 20 * 0.05:
            assert delta_spent == pytest.approx(0.5 * 1e-6)

    def test_advanced_never_exceeds_basic(self):
        accountant = PrivacyAccountant(5.0, 1e-6, method="advanced")
        charges = [0.05, 0.1, 0.02, 0.08, 0.05]
        for eps in charges:
            accountant.charge(eps)
        assert accountant.spent()[0] <= math.fsum(charges) + 1e-12

    def test_admits_more_small_flushes_than_basic(self):
        basic = PrivacyAccountant(1.0, 1e-6, method="basic")
        advanced = PrivacyAccountant(1.0, 1e-6, method="advanced")

        def count(accountant):
            admitted = 0
            while accountant.admits(0.01) and admitted < 1000:
                accountant.charge(0.01)
                admitted += 1
            return admitted

        assert count(basic) == 100
        assert count(advanced) > 100

    def test_slack_never_refuses_what_basic_admits(self):
        # 60 homogeneous charges fit the budget under basic composition;
        # the advanced accountant must not refuse them just because the
        # advanced bound's delta slack would overrun the delta budget.
        basic = PrivacyAccountant(6.0, 6e-8, method="basic")
        advanced = PrivacyAccountant(6.0, 6e-8, method="advanced")
        for accountant in (basic, advanced):
            for __ in range(60):
                accountant.charge(0.1, 1e-9)
            assert accountant.n_charges == 60

    def test_heterogeneous_formula(self):
        accountant = PrivacyAccountant(
            10.0, 1e-6, method="advanced", slack_fraction=0.5
        )
        charges = [0.01] * 50 + [0.02] * 50
        for eps in charges:
            accountant.charge(eps)
        delta_slack = 0.5 * 1e-6
        expected = math.sqrt(
            2.0 * math.log(1.0 / delta_slack) * sum(e * e for e in charges)
        ) + sum(e * (math.exp(e) - 1.0) for e in charges)
        assert accountant.spent()[0] == pytest.approx(min(expected, sum(charges)))


class TestHelpers:
    def test_for_flushes_uses_split_budget(self):
        accountant, split = PrivacyAccountant.for_flushes(1.0, 1e-6, 10)
        expected = split_budget(1.0, 1e-6, 10)
        assert split.eps_per_round == expected.eps_per_round
        for __ in range(10):
            accountant.charge(split.eps_per_round, split.delta_per_round)
        assert not accountant.admits(split.eps_per_round, split.delta_per_round)

    def test_validation(self):
        with pytest.raises(ValueError):
            PrivacyAccountant(0.0, 1e-6)
        with pytest.raises(ValueError):
            PrivacyAccountant(1.0, 2.0)
        with pytest.raises(ValueError):
            PrivacyAccountant(1.0, 1e-6, method="renyi")
        accountant = PrivacyAccountant(1.0, 1e-6)
        with pytest.raises(ValueError):
            accountant.charge(-0.1)
        with pytest.raises(ValueError):
            accountant.charge(0.1, delta=1.5)


class TestSnapshotRestore:
    def test_round_trip_is_exact(self):
        accountant = PrivacyAccountant(2.0, 1e-6, method="advanced")
        accountant.charge(0.5, 1e-8, label="epoch0/flush0")
        accountant.charge(0.25, 2e-8, label="epoch0/flush1")
        snapshot = accountant.snapshot()

        restored = PrivacyAccountant(2.0, 1e-6, method="advanced")
        restored.restore(snapshot)
        assert restored.spent() == accountant.spent()
        assert restored.n_charges == accountant.n_charges
        assert [c.label for c in restored.charges] == [
            "epoch0/flush0", "epoch0/flush1"
        ]
        # The restored ledger keeps charging from where it left off.
        restored.charge(0.25, 1e-8)
        accountant.charge(0.25, 1e-8)
        assert restored.spent() == accountant.spent()

    def test_snapshot_is_detached(self):
        accountant = PrivacyAccountant(1.0, 1e-6)
        accountant.charge(0.1)
        snapshot = accountant.snapshot()
        accountant.charge(0.2)
        assert len(snapshot) == 1

    def test_restore_into_nonempty_ledger_refused(self):
        accountant = PrivacyAccountant(1.0, 1e-6)
        accountant.charge(0.1)
        with pytest.raises(ValueError, match="restore"):
            accountant.restore(accountant.snapshot())

    def test_restore_rejects_overspent_snapshot(self):
        big = PrivacyAccountant(10.0, 1e-6)
        for __ in range(5):
            big.charge(1.0, 1e-8)
        small = PrivacyAccountant(1.0, 1e-6)
        with pytest.raises(ValueError, match="budget"):
            small.restore(big.snapshot())

    def test_restore_validates_each_charge(self):
        accountant = PrivacyAccountant(1.0, 1e-6)

        class Bogus:
            eps, delta, label = -0.5, 0.0, "bad"

        with pytest.raises(ValueError):
            accountant.restore([Bogus()])
