"""Confidence bands for frequency estimates."""

import numpy as np
import pytest

from repro.analysis import (
    frequency_band,
    minimum_detectable_frequency,
    z_score,
)
from repro.core import solh_variance_shuffled
from repro.frequency_oracles import SOLH


class TestZScore:
    def test_known_quantiles(self):
        assert z_score(0.95) == pytest.approx(1.95996, abs=1e-4)
        assert z_score(0.99) == pytest.approx(2.57583, abs=1e-4)
        assert z_score(0.6827) == pytest.approx(1.0, abs=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            z_score(0.0)
        with pytest.raises(ValueError):
            z_score(1.0)


class TestBand:
    def test_geometry(self):
        band = frequency_band(np.array([0.5, 0.1]), variance=0.01, confidence=0.95)
        assert band.halfwidth == pytest.approx(z_score(0.95) * 0.1)
        assert (band.upper - band.lower == pytest.approx(2 * band.halfwidth))

    def test_covers(self):
        band = frequency_band(np.array([0.5]), variance=0.0001, confidence=0.95)
        assert band.covers(np.array([0.5]))[0]
        assert not band.covers(np.array([0.9]))[0]

    def test_negative_variance_rejected(self):
        with pytest.raises(ValueError):
            frequency_band(np.zeros(3), variance=-1.0)

    def test_empirical_coverage_solh(self, rng):
        """The analytical band should cover ~95% of values on a real run."""
        n, d, eps_c, delta = 100_000, 64, 0.5, 1e-9
        histogram = rng.multinomial(n, np.full(d, 1 / d))
        truth = histogram / n
        oracle, __ = SOLH.for_central_target(d, eps_c, n, delta)
        variance = solh_variance_shuffled(eps_c, n, delta)
        coverages = []
        for __ in range(10):
            estimates = oracle.estimate_from_histogram(histogram, rng)
            band = frequency_band(estimates, variance, confidence=0.95)
            coverages.append(band.coverage(truth))
        assert np.mean(coverages) > 0.85


class TestDetectability:
    def test_formula(self):
        assert minimum_detectable_frequency(0.0001, 0.95) == pytest.approx(
            2 * z_score(0.95) * 0.01
        )

    def test_shrinks_with_variance(self):
        assert minimum_detectable_frequency(1e-8) < minimum_detectable_frequency(1e-4)

    def test_paper_headline_regime(self):
        """At the paper's IPUMS scale, SOLH's detectability threshold is in
        the 'absolute errors < 0.01%' ballpark of Section VII."""
        variance = solh_variance_shuffled(0.8, 602_325, 1e-9)
        assert minimum_detectable_frequency(variance) < 1e-3
