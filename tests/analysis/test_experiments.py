"""Experiment harness: registry and sweeps."""

import numpy as np
import pytest

from repro.analysis import (
    FIGURE3_METHODS,
    METHODS,
    SweepResult,
    UnknownMechanismError,
    build_method,
    format_sweep_table,
    run_sweep,
    run_trial,
    run_trial_plan,
    spawn_trial_seeds,
)

N, D, DELTA = 50_000, 32, 1e-9


class TestRegistry:
    def test_all_figure3_methods_registered(self):
        for name in FIGURE3_METHODS:
            assert name in METHODS

    @pytest.mark.parametrize("name", sorted(METHODS))
    def test_buildable_at_moderate_epsilon(self, name):
        method = build_method(name, D, N, 0.8, DELTA)
        assert hasattr(method, "estimate_from_histogram")

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_method("FANCY", D, N, 0.5, DELTA)

    def test_shuffle_methods_resolve_amplification(self):
        solh = build_method("SOLH", D, N, 0.8, DELTA)
        assert solh.eps > 0.8  # amplified local budget

    def test_local_methods_use_central_epsilon(self):
        olh = build_method("OLH", D, N, 0.8, DELTA)
        assert olh.eps == pytest.approx(0.8)


class TestTrials:
    def test_run_trial_returns_metric(self, rng, small_histogram):
        method = build_method("SOLH", 16, int(small_histogram.sum()), 0.8, DELTA)
        score = run_trial(method, small_histogram, rng)
        assert score >= 0.0

    def test_run_trial_custom_metric(self, rng, small_histogram):
        from repro.analysis import max_absolute_error

        method = build_method("Base", 16, int(small_histogram.sum()), 0.8, DELTA)
        score = run_trial(method, small_histogram, rng, metric=max_absolute_error)
        assert score > 0.0


class TestSweeps:
    def test_structure(self, rng, small_histogram):
        results = run_sweep(
            ["Base", "SOLH"], small_histogram, [0.4, 0.8], DELTA, rng, repeats=2
        )
        assert [r.method for r in results] == ["Base", "SOLH"]
        for result in results:
            assert result.eps_values == [0.4, 0.8]
            assert len(result.means) == 2
            assert len(result.stds) == 2

    def test_infeasible_recorded_as_nan(self, rng):
        histogram = np.full(8, 10)  # n=80: AUE infeasible at eps=0.1
        results = run_sweep(["AUE"], histogram, [0.1], DELTA, rng, repeats=1)
        assert np.isnan(results[0].means[0])

    def test_infeasible_raises_when_asked(self, rng):
        histogram = np.full(8, 10)
        with pytest.raises(ValueError):
            run_sweep(
                ["AUE"], histogram, [0.1], DELTA, rng, repeats=1, skip_errors=False
            )

    def test_shuffle_beats_local_in_sweep(self, rng):
        histogram = rng.multinomial(100_000, np.full(64, 1 / 64))
        results = run_sweep(
            ["OLH", "SOLH"], histogram, [0.5], DELTA, rng, repeats=3
        )
        olh, solh = results
        assert solh.means[0] < olh.means[0]

    def test_format_table(self, rng, small_histogram):
        results = run_sweep(["Base"], small_histogram, [0.5], DELTA, rng, repeats=1)
        table = format_sweep_table(results, caption="cap")
        assert "Base" in table and "eps=0.5" in table and "cap" in table

    def test_format_empty(self):
        assert format_sweep_table([]) == "(no results)"


class TestNameValidation:
    """Typos must abort the sweep, never become a NaN row."""

    def test_unknown_name_raises_despite_skip_errors(self, rng, small_histogram):
        with pytest.raises(UnknownMechanismError):
            run_sweep(
                ["Base", "SOHL"], small_histogram, [0.5], DELTA, rng,
                repeats=1, skip_errors=True,
            )

    def test_unknown_name_is_key_error(self, rng, small_histogram):
        with pytest.raises(KeyError):
            run_sweep(["FANCY"], small_histogram, [0.5], DELTA, rng, repeats=1)

    def test_validation_happens_before_any_trial(self, rng):
        # d=1 would explode at build time for every method; the name check
        # must fire first.
        with pytest.raises(UnknownMechanismError):
            run_sweep(["NOPE"], np.array([5]), [0.5], DELTA, rng, repeats=1)


class TestParallelDeterminism:
    """run_sweep(workers=1) must equal run_sweep(workers=4) bit for bit."""

    def _sweep(self, small_histogram, workers, backend="thread"):
        return run_sweep(
            ["Base", "SH", "SOLH", "AUE"],
            small_histogram,
            [0.1, 0.8],
            DELTA,
            np.random.default_rng(99),
            repeats=3,
            workers=workers,
            backend=backend,
        )

    def test_workers_1_equals_workers_4(self, small_histogram):
        sequential = self._sweep(small_histogram, 1)
        parallel = self._sweep(small_histogram, 4)
        for s, p in zip(sequential, parallel):
            assert s.method == p.method
            assert s.eps_values == p.eps_values
            # Bit-for-bit, not approx: the whole point of per-trial seeding.
            assert np.array_equal(s.means, p.means, equal_nan=True)
            assert np.array_equal(s.stds, p.stds, equal_nan=True)

    @pytest.mark.slow
    def test_process_backend_equals_thread_backend(self, small_histogram):
        # The engine's determinism contract extends across executors: a
        # trial's randomness is fixed by its plan position, so a spawn
        # process pool reproduces the thread pool bit for bit.
        threaded = self._sweep(small_histogram, 2)
        processed = self._sweep(small_histogram, 2, backend="process")
        for t, p in zip(threaded, processed):
            assert t.method == p.method
            assert np.array_equal(t.means, p.means, equal_nan=True)
            assert np.array_equal(t.stds, p.stds, equal_nan=True)

    def test_unknown_backend_rejected(self, rng, small_histogram):
        with pytest.raises(ValueError, match="unknown trial backend"):
            run_trial_plan([], small_histogram, 1, rng, backend="greenlet")

    def test_trial_seeds_depend_only_on_generator_state(self):
        seeds_a = spawn_trial_seeds(np.random.default_rng(5), 6)
        seeds_b = spawn_trial_seeds(np.random.default_rng(5), 6)
        for a, b in zip(seeds_a, seeds_b):
            assert a.entropy == b.entropy and a.spawn_key == b.spawn_key

    def test_run_trial_plan_skips_none_cells(self, rng, small_histogram):
        method = build_method("Base", 16, int(small_histogram.sum()), 0.8, DELTA)
        scores = run_trial_plan([None, method], small_histogram, 2, rng)
        assert np.isnan(scores[0]).all()
        assert np.isfinite(scores[1]).all()

    def test_run_trial_plan_validates_arguments(self, rng, small_histogram):
        with pytest.raises(ValueError):
            run_trial_plan([], small_histogram, 0, rng)
        with pytest.raises(ValueError):
            run_trial_plan([], small_histogram, 1, rng, workers=0)


class TestFormatTableGuards:
    """format_sweep_table must tolerate empty and ragged results."""

    def test_all_rows_empty(self):
        results = [SweepResult(method="Base"), SweepResult(method="SOLH")]
        assert format_sweep_table(results) == "(no results)"

    def test_empty_with_caption(self):
        assert "cap" in format_sweep_table([], caption="cap")

    def test_first_row_empty_others_not(self):
        # The legacy code read results[0].eps_values and rendered nothing.
        results = [
            SweepResult(method="Base"),
            SweepResult(method="SOLH", eps_values=[0.5], means=[1e-4], stds=[0.0]),
        ]
        table = format_sweep_table(results)
        assert "eps=0.5" in table
        assert "n/a" in table  # Base's missing cell is padded

    def test_rows_align_by_eps_value_not_position(self):
        # A row with a different (not just shorter) eps grid must land
        # under the matching header, not be shifted into the first column.
        results = [
            SweepResult(
                method="A",
                eps_values=[0.1, 0.8],
                means=[1.0, 2.0],
                stds=[0.0, 0.0],
            ),
            SweepResult(method="B", eps_values=[0.5], means=[3.0], stds=[0.0]),
        ]
        table = format_sweep_table(results)
        header, _, row_a, row_b = table.splitlines()
        columns = [header.index(f"eps={e}") for e in (0.1, 0.8, 0.5)]
        assert row_b[columns[0]:].startswith("n/a")
        assert row_b[columns[2]:].startswith("3.0000e+00")
        assert row_a[columns[2]:].startswith("n/a")

    def test_methods_view_uses_exact_canonical_keys(self):
        # Aliases and case-insensitivity belong to the registry, not the
        # legacy dict view: membership must agree with iteration.
        assert "SH" in METHODS
        assert "grr" not in METHODS  # registry alias of SH
        assert "solh" not in METHODS  # case variant
        assert set(METHODS) == {name for name in METHODS}
        with pytest.raises(KeyError):
            METHODS["grr"]

    def test_ragged_rows_padded(self):
        results = [
            SweepResult(
                method="Base",
                eps_values=[0.5, 0.8],
                means=[1e-4, 2e-4],
                stds=[0.0, 0.0],
            ),
            SweepResult(method="SOLH", eps_values=[0.5], means=[3e-5], stds=[0.0]),
        ]
        table = format_sweep_table(results)
        lines = table.splitlines()
        assert "eps=0.8" in lines[0]
        solh_line = next(line for line in lines if line.startswith("SOLH"))
        assert "n/a" in solh_line
