"""Experiment harness: registry and sweeps."""

import numpy as np
import pytest

from repro.analysis import (
    FIGURE3_METHODS,
    METHODS,
    build_method,
    format_sweep_table,
    run_sweep,
    run_trial,
)

N, D, DELTA = 50_000, 32, 1e-9


class TestRegistry:
    def test_all_figure3_methods_registered(self):
        for name in FIGURE3_METHODS:
            assert name in METHODS

    @pytest.mark.parametrize("name", sorted(METHODS))
    def test_buildable_at_moderate_epsilon(self, name):
        method = build_method(name, D, N, 0.8, DELTA)
        assert hasattr(method, "estimate_from_histogram")

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_method("FANCY", D, N, 0.5, DELTA)

    def test_shuffle_methods_resolve_amplification(self):
        solh = build_method("SOLH", D, N, 0.8, DELTA)
        assert solh.eps > 0.8  # amplified local budget

    def test_local_methods_use_central_epsilon(self):
        olh = build_method("OLH", D, N, 0.8, DELTA)
        assert olh.eps == pytest.approx(0.8)


class TestTrials:
    def test_run_trial_returns_metric(self, rng, small_histogram):
        method = build_method("SOLH", 16, int(small_histogram.sum()), 0.8, DELTA)
        score = run_trial(method, small_histogram, rng)
        assert score >= 0.0

    def test_run_trial_custom_metric(self, rng, small_histogram):
        from repro.analysis import max_absolute_error

        method = build_method("Base", 16, int(small_histogram.sum()), 0.8, DELTA)
        score = run_trial(method, small_histogram, rng, metric=max_absolute_error)
        assert score > 0.0


class TestSweeps:
    def test_structure(self, rng, small_histogram):
        results = run_sweep(
            ["Base", "SOLH"], small_histogram, [0.4, 0.8], DELTA, rng, repeats=2
        )
        assert [r.method for r in results] == ["Base", "SOLH"]
        for result in results:
            assert result.eps_values == [0.4, 0.8]
            assert len(result.means) == 2
            assert len(result.stds) == 2

    def test_infeasible_recorded_as_nan(self, rng):
        histogram = np.full(8, 10)  # n=80: AUE infeasible at eps=0.1
        results = run_sweep(["AUE"], histogram, [0.1], DELTA, rng, repeats=1)
        assert np.isnan(results[0].means[0])

    def test_infeasible_raises_when_asked(self, rng):
        histogram = np.full(8, 10)
        with pytest.raises(ValueError):
            run_sweep(
                ["AUE"], histogram, [0.1], DELTA, rng, repeats=1, skip_errors=False
            )

    def test_shuffle_beats_local_in_sweep(self, rng):
        histogram = rng.multinomial(100_000, np.full(64, 1 / 64))
        results = run_sweep(
            ["OLH", "SOLH"], histogram, [0.5], DELTA, rng, repeats=3
        )
        olh, solh = results
        assert solh.means[0] < olh.means[0]

    def test_format_table(self, rng, small_histogram):
        results = run_sweep(["Base"], small_histogram, [0.5], DELTA, rng, repeats=1)
        table = format_sweep_table(results, caption="cap")
        assert "Base" in table and "eps=0.5" in table and "cap" in table

    def test_format_empty(self):
        assert format_sweep_table([]) == "(no results)"
