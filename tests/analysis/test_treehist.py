"""TreeHist succinct-histogram search."""

import numpy as np
import pytest

from repro.analysis import precision_at_k, treehist
from repro.analysis.treehist import LOCAL_METHODS
from repro.data import StringDataset, aol_like


def _concentrated_dataset(rng, n=30_000, heavy=8, bits=16):
    """A 16-bit dataset where `heavy` strings own 80% of the mass."""
    heavy_values = rng.choice(1 << bits, size=heavy, replace=False).astype(np.int64)
    n_heavy = int(n * 0.8)
    values = np.concatenate(
        [
            heavy_values[rng.integers(0, heavy, n_heavy)],
            rng.integers(0, 1 << bits, n - n_heavy, dtype=np.int64),
        ]
    )
    rng.shuffle(values)
    return StringDataset("toy", values, bits), heavy_values


class TestCorrectness:
    def test_finds_heavy_hitters_easy_setting(self, rng):
        dataset, heavy = _concentrated_dataset(rng)
        result = treehist(dataset, "SOLH", 4.0, 1e-9, rng, k=8)
        assert precision_at_k(heavy, result.discovered) >= 0.75

    def test_laplace_nearly_perfect(self, rng):
        dataset, heavy = _concentrated_dataset(rng)
        result = treehist(dataset, "Lap", 1.0, 1e-9, rng, k=8)
        assert precision_at_k(heavy, result.discovered) >= 0.85

    def test_estimates_ordered(self, rng):
        dataset, __ = _concentrated_dataset(rng)
        result = treehist(dataset, "SOLH", 4.0, 1e-9, rng, k=8)
        assert (np.diff(result.estimates) <= 1e-12).all()

    def test_round_structure(self, rng):
        dataset, __ = _concentrated_dataset(rng)
        result = treehist(dataset, "SOLH", 4.0, 1e-9, rng, k=8, bits_per_round=8)
        # 16-bit strings, 8 bits per round: 2 rounds; round 1 has 256
        # candidates, round 2 at most 8 * 256.
        assert result.candidates_per_round[0] == 256
        assert result.candidates_per_round[1] <= 8 * 256

    def test_discovered_count(self, rng):
        dataset, __ = _concentrated_dataset(rng)
        result = treehist(dataset, "SOLH", 4.0, 1e-9, rng, k=8)
        assert len(result.discovered) == 8
        assert len(result.estimates) == 8


class TestBudgetAllocation:
    def test_local_methods_grouped(self):
        assert "OLH" in LOCAL_METHODS and "Had" in LOCAL_METHODS
        assert "SOLH" not in LOCAL_METHODS

    def test_local_method_runs(self, rng):
        dataset, __ = _concentrated_dataset(rng)
        result = treehist(dataset, "OLH", 4.0, 1e-9, rng, k=8)
        assert len(result.discovered) == 8

    def test_shuffle_beats_local_on_aol(self, rng):
        dataset = aol_like(rng, scale=0.3)
        truth = dataset.top_k(32)
        solh = treehist(dataset, "SOLH", 1.0, 1e-9, rng, k=32)
        olh = treehist(dataset, "OLH", 1.0, 1e-9, rng, k=32)
        assert precision_at_k(truth, solh.discovered) > (
            precision_at_k(truth, olh.discovered)
        )


class TestValidation:
    def test_rejects_unaligned_rounds(self, rng):
        dataset, __ = _concentrated_dataset(rng)
        with pytest.raises(ValueError):
            treehist(dataset, "SOLH", 1.0, 1e-9, rng, bits_per_round=5)

    def test_keep_per_round_widens_search(self, rng):
        dataset, __ = _concentrated_dataset(rng)
        result = treehist(dataset, "SOLH", 4.0, 1e-9, rng, k=8, keep_per_round=32)
        assert result.candidates_per_round[1] <= 32 * 256
