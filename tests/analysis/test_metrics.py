"""Evaluation metrics."""

import numpy as np
import pytest

from repro.analysis import (
    max_absolute_error,
    mean_absolute_error,
    mse,
    precision_at_k,
    top_k_from_estimates,
)


class TestMSE:
    def test_zero_for_perfect_estimate(self):
        truth = np.array([0.5, 0.3, 0.2])
        assert mse(truth, truth) == 0.0

    def test_known_value(self):
        assert mse(np.array([0.0, 0.0]), np.array([0.1, 0.3])) == pytest.approx(
            (0.01 + 0.09) / 2
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))


class TestAbsoluteErrors:
    def test_mean_absolute(self):
        assert mean_absolute_error(
            np.array([0.0, 0.0]), np.array([0.1, -0.3])
        ) == pytest.approx(0.2)

    def test_max_absolute(self):
        assert max_absolute_error(
            np.array([0.0, 0.0]), np.array([0.1, -0.3])
        ) == pytest.approx(0.3)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_absolute_error(np.zeros(3), np.zeros(4))


class TestPrecision:
    def test_perfect(self):
        assert precision_at_k([1, 2, 3], [3, 2, 1]) == 1.0

    def test_half(self):
        assert precision_at_k([1, 2, 3, 4], [1, 2, 9, 8]) == 0.5

    def test_empty_reported(self):
        assert precision_at_k([1, 2], []) == 0.0

    def test_numpy_inputs(self):
        assert precision_at_k(np.array([5, 6]), np.array([6, 7])) == 0.5


class TestTopK:
    def test_selects_largest(self):
        estimates = np.array([0.1, 0.5, 0.3, 0.2])
        assert top_k_from_estimates(estimates, 2).tolist() == [1, 2]

    def test_stable_ties(self):
        estimates = np.array([0.5, 0.5, 0.1])
        assert top_k_from_estimates(estimates, 2).tolist() == [0, 1]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            top_k_from_estimates(np.zeros(3), 0)
        with pytest.raises(ValueError):
            top_k_from_estimates(np.zeros(3), 4)
