"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """Deterministic numpy generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_histogram(rng):
    """A small skewed histogram: d=16, n=20000."""
    probabilities = np.array([2.0 ** (-i) for i in range(16)])
    probabilities /= probabilities.sum()
    return rng.multinomial(20_000, probabilities)


@pytest.fixture(scope="session")
def paillier_keys():
    """Session-scoped small Paillier keypair (keygen is not free)."""
    from repro.crypto import paillier

    return paillier.generate_keypair(key_bits=512, rng=2024)


@pytest.fixture(scope="session")
def dgk_keys():
    """Session-scoped DGK keypair with 32-bit plaintexts."""
    from repro.crypto import dgk

    return dgk.generate_keypair(l=32, key_bits=640, subgroup_bits=96, rng=2024)
