"""Kill-and-resume invariants for the durable-state protocol.

Each test interrupts a persisted streaming run at a chosen point in the
write-ahead protocol (after the charge commits but before any release,
between two releases, before the epoch record lands), reopens the store,
resumes, and checks the three contract clauses: the budget is never
double-spent, no flush is re-released, and the final estimates are
bit-identical to an uninterrupted run at the same seed.
"""

import numpy as np
import pytest

from repro import faults
from repro.faults import InjectedFault
from repro.data import zipf_histogram
from repro.data.synthetic import values_from_histogram
from repro.persistence import (
    MemoryStateStore,
    SqliteStateStore,
    StateStoreError,
)
from repro.service import ShardedPipeline, StreamConfig, TelemetryPipeline

D = 16
EPOCHS = 3
EPOCH_SIZE = 400
FLUSH_SIZE = 150
SEED = 42


class SimulatedCrash(RuntimeError):
    """Raised by the fault injector to model an abrupt process death."""


class FaultInjectingStore:
    """Delegate to a real store, crashing around the k-th call of a method.

    ``when="before"`` dies with the call never issued (its transaction
    never ran); ``when="after"`` dies with the transaction committed but
    the caller's in-memory follow-up lost.  Both are consistent disk
    states — mid-transaction atomicity is SQLite's guarantee, not ours.
    """

    durable = True

    def __init__(self, inner, method, call_index, when="before"):
        self._inner = inner
        self._method = method
        self._call_index = call_index
        self._when = when
        self._calls = 0

    def __getattr__(self, name):
        attr = getattr(self._inner, name)
        if name != self._method or not callable(attr):
            return attr

        def wrapped(*args, **kwargs):
            self._calls += 1
            if self._when == "before" and self._calls == self._call_index:
                raise SimulatedCrash(name)
            out = attr(*args, **kwargs)
            if self._when == "after" and self._calls == self._call_index:
                raise SimulatedCrash(name)
            return out

        return wrapped


def make_config(flush_size=FLUSH_SIZE, admitted=None):
    if admitted is None:
        # Two epochs' worth of flushes: the third epoch's are rejected,
        # so recovery is exercised on both admitted and refused charges.
        admitted = 2 * ((EPOCH_SIZE + flush_size - 1) // flush_size)
    return StreamConfig.from_targets(
        d=D, flush_size=flush_size, eps_targets=(1.0, 3.0, 6.0),
        delta=1e-9, admitted_flushes=admitted,
    )


def drive(pipeline, epochs=EPOCHS, epoch_size=EPOCH_SIZE):
    """Feed synthetic epochs exactly as the CLI does.

    The workload generator shares the pipeline's rng, so a resumed
    pipeline regenerates the interrupted epoch from the restored stream.
    One submit per epoch: if the checkpointed submit count is ahead of
    the epoch count, the open epoch is already fed — just close it.
    """
    rng = pipeline.rng
    start = pipeline.epochs_completed
    for epoch in range(start, epochs):
        if not (epoch == start and pipeline.n_submits > start):
            histogram = zipf_histogram(epoch_size, D, 1.3, rng)
            pipeline.submit(values_from_histogram(histogram, rng))
        pipeline.end_epoch()
    return pipeline.result()


@pytest.fixture
def reference():
    config = make_config()
    pipeline = TelemetryPipeline(config, np.random.default_rng(SEED))
    return drive(pipeline)


def crash_and_resume(tmp_path, method, call_index, when, reference,
                     resume_shards=None):
    path = str(tmp_path / "state.db")
    config = make_config()
    wrapped = FaultInjectingStore(
        SqliteStateStore(path), method, call_index, when
    )
    pipeline = TelemetryPipeline(
        config, np.random.default_rng(SEED), store=wrapped
    )
    with pytest.raises(SimulatedCrash):
        drive(pipeline)
    # Process death: the half-updated pipeline is abandoned, the open
    # connection dropped, and recovery starts from the file alone.
    wrapped._inner.close()

    with SqliteStateStore(path) as store:
        if resume_shards is None:
            resumed = TelemetryPipeline.resume(store)
        else:
            resumed = ShardedPipeline.resume(store, n_shards=resume_shards)
        result = drive(resumed)

        assert result.estimates.tobytes() == reference.estimates.tobytes()
        assert result.eps_spent == reference.eps_spent
        assert result.delta_spent == reference.delta_spent
        assert result.n_rejected == reference.n_rejected
        assert result.n_genuine == reference.n_genuine
        assert result.n_fake == reference.n_fake

        snapshot = store.load_run()
        statuses = [flush.status for flush in snapshot.flushes]
        assert "charged" not in statuses  # every admitted flush released
        assert len(snapshot.charges) == len(
            [s for s in statuses if s == "released"]
        )  # one charge per admitted flush: nothing double-spent
    return result


class TestCrashWindows:
    def test_crash_before_submit_persists(self, tmp_path, reference):
        # Second submit's transaction never ran: the whole epoch replays.
        crash_and_resume(tmp_path, "record_flushes", 2, "before", reference)

    def test_crash_after_charge_before_release(self, tmp_path, reference):
        # Charges committed, process died before any release: recovery
        # must replay the releases without charging again.
        crash_and_resume(tmp_path, "record_flushes", 2, "after", reference)

    def test_crash_between_releases(self, tmp_path, reference):
        # Some flushes released, one still only charged: recovery folds
        # the released counts as-is and replays just the charged one.
        crash_and_resume(tmp_path, "record_release", 3, "before", reference)

    def test_crash_before_epoch_record(self, tmp_path, reference):
        # All of the epoch's flushes landed but the epoch row didn't:
        # recovery synthesizes the single missing epoch report.
        crash_and_resume(tmp_path, "record_epoch", 1, "before", reference)

    def test_crash_at_clean_epoch_boundary(self, tmp_path, reference):
        crash_and_resume(tmp_path, "record_epoch", 2, "after", reference)

    def test_resume_under_different_shard_layout(self, tmp_path, reference):
        # The execution layout is not part of the persisted state: a run
        # begun unsharded resumes sharded with identical estimates.
        crash_and_resume(
            tmp_path, "record_release", 3, "before", reference,
            resume_shards=2,
        )


class TestShardedCrash:
    def test_sharded_run_crashes_and_resumes(self, tmp_path, reference):
        path = str(tmp_path / "state.db")
        wrapped = FaultInjectingStore(
            SqliteStateStore(path), "record_release", 4, "before"
        )
        pipeline = ShardedPipeline(
            make_config(), np.random.default_rng(SEED),
            n_shards=2, store=wrapped,
        )
        with pytest.raises(SimulatedCrash):
            drive(pipeline)
        wrapped._inner.close()

        with SqliteStateStore(path) as store:
            resumed = ShardedPipeline.resume(store, n_shards=3)
            result = drive(resumed)
        assert result.estimates.tobytes() == reference.estimates.tobytes()
        assert result.eps_spent == reference.eps_spent
        assert result.n_rejected == reference.n_rejected


class TestBufferedRemainder:
    def test_crash_with_buffered_unflushed_reports(self, tmp_path):
        # Epochs smaller than a flush: submits only buffer (checkpointed
        # via record_ingest) and every release happens at epoch close.
        config = make_config(flush_size=1000, admitted=4)
        reference = drive(
            TelemetryPipeline(config, np.random.default_rng(SEED)),
            epoch_size=80,
        )

        path = str(tmp_path / "state.db")
        wrapped = FaultInjectingStore(
            SqliteStateStore(path), "record_ingest", 2, "after"
        )
        pipeline = TelemetryPipeline(
            config, np.random.default_rng(SEED), store=wrapped
        )
        with pytest.raises(SimulatedCrash):
            drive(pipeline, epoch_size=80)
        wrapped._inner.close()

        with SqliteStateStore(path) as store:
            resumed = TelemetryPipeline.resume(store)
            # The buffered remainder survived the crash.
            assert resumed.buffer.pending == 80
            result = drive(resumed, epoch_size=80)
        assert result.estimates.tobytes() == reference.estimates.tobytes()
        assert result.eps_spent == reference.eps_spent


class TestMemoryStoreResume:
    def test_in_process_resume_from_memory_store(self, reference):
        store = MemoryStateStore()
        pipeline = TelemetryPipeline(
            make_config(), np.random.default_rng(SEED), store=store
        )
        drive(pipeline, epochs=2)  # stop at a clean boundary, abandon

        resumed = TelemetryPipeline.resume(store)
        assert resumed.epochs_completed == 2
        result = drive(resumed)
        assert result.estimates.tobytes() == reference.estimates.tobytes()
        assert result.eps_spent == reference.eps_spent

    def test_resume_of_empty_store_refused(self):
        with pytest.raises(StateStoreError, match="no run"):
            TelemetryPipeline.resume(MemoryStateStore())


class TestInjectedCommitFault:
    """The ``store.commit`` failpoint models a disk-level commit failure
    (full disk, I/O error) at the one seam the delegate-wrapping
    :class:`FaultInjectingStore` cannot reach: inside the store's own
    ``COMMIT``.  The store must roll the transaction back — leaving the
    same consistent disk state as a pre-call crash — and a resumed run
    must be bit-identical."""

    @pytest.fixture(autouse=True)
    def _clean_failpoints(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        faults.disarm()
        yield
        faults.disarm()

    def test_commit_fault_rolls_back_then_resumes(self, tmp_path, reference):
        path = str(tmp_path / "state.db")
        # begin_run commits first; every=4 lands the fault on a mid-run
        # flush transaction.
        faults.install(["store.commit:raise:every=4"], export_env=False)
        store = SqliteStateStore(path)
        pipeline = TelemetryPipeline(
            make_config(), np.random.default_rng(SEED), store=store
        )
        with pytest.raises(InjectedFault):
            drive(pipeline)
        faults.disarm()
        store.close()

        with SqliteStateStore(path) as reopened:
            resumed = TelemetryPipeline.resume(reopened)
            result = drive(resumed)
            snapshot = reopened.load_run()
        assert result.estimates.tobytes() == reference.estimates.tobytes()
        assert result.eps_spent == reference.eps_spent
        assert result.n_rejected == reference.n_rejected
        statuses = [flush.status for flush in snapshot.flushes]
        assert "charged" not in statuses  # every admitted flush released
        assert len(snapshot.charges) == len(
            [s for s in statuses if s == "released"]
        )  # the rolled-back charge was never double-spent


class TestFlushSequenceAuthority:
    def test_sequence_is_the_global_flush_counter(self, tmp_path):
        path = str(tmp_path / "state.db")
        with SqliteStateStore(path) as store:
            pipeline = TelemetryPipeline(
                make_config(), np.random.default_rng(SEED), store=store
            )
            drive(pipeline)
            snapshot = store.load_run()
        sequences = [flush.sequence for flush in snapshot.flushes]
        # Dense, zero-based, strictly increasing across epoch boundaries:
        # the sequence — not the epoch-local position — keys the release
        # RNG stream, so it must be globally unique and gap-free.
        assert sequences == list(range(len(sequences)))
        assert snapshot.next_sequence == len(sequences)
        assert pipeline.buffer.next_sequence == len(sequences)
        epochs = [flush.epoch for flush in snapshot.flushes]
        assert epochs == sorted(epochs)
        assert len(set(epochs)) == EPOCHS
