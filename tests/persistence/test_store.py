"""StateStore contract tests, parametrized over both implementations."""

import os
import sqlite3

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.persistence import (
    FlushRecord,
    IngestCheckpoint,
    MemoryStateStore,
    SCHEMA_VERSION,
    SqliteStateStore,
    StateStoreError,
)
from repro.service import StreamConfig


@pytest.fixture
def config():
    return StreamConfig.from_targets(
        d=16, flush_size=100, eps_targets=(1.0, 3.0, 6.0), delta=1e-9,
        admitted_flushes=4,
    )


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    if request.param == "memory":
        with MemoryStateStore() as handle:
            yield handle
    else:
        with SqliteStateStore(str(tmp_path / "state.db")) as handle:
            yield handle


def _checkpoint(n_submits=0, next_sequence=0, buffer_epoch=0, pending=()):
    rng = np.random.default_rng(7)
    pending = tuple(np.asarray(chunk, dtype=np.int64) for chunk in pending)
    return IngestCheckpoint(
        rng_state=rng.bit_generator.state,
        buffer_epoch=buffer_epoch,
        next_sequence=next_sequence,
        pending_chunks=pending,
        pending_count=int(sum(len(chunk) for chunk in pending)),
        n_submits=n_submits,
    )


def _begin(store, config):
    entropy = (1, 2, 3, 4, 5, 6, 7, 8)
    store.begin_run(config, entropy, _checkpoint())
    return entropy


ADMITTED = FlushRecord(
    sequence=0, epoch=0, trigger="size", n_reports=3, n_fake=2,
    reports=np.array([4, 9, 1, 0, 2], dtype=np.int64),
    charge_eps=0.5, charge_delta=1e-9, charge_label="epoch0/flush0",
    reject_reason=None,
)
REJECTED = FlushRecord(
    sequence=1, epoch=0, trigger="epoch", n_reports=2, n_fake=2,
    reports=None, charge_eps=None, charge_delta=None, charge_label=None,
    reject_reason="budget exhausted",
)


class TestStoreContract:
    def test_fresh_store_has_no_run(self, store):
        assert not store.has_run()

    def test_begin_run_round_trips_config_and_entropy(self, store, config):
        entropy = _begin(store, config)
        assert store.has_run()
        snapshot = store.load_run()
        assert snapshot.release_entropy == entropy
        assert snapshot.config == config
        assert snapshot.config.plan == config.plan
        assert snapshot.n_submits == 0
        assert snapshot.flushes == ()
        assert snapshot.charges == ()

    def test_double_begin_refused(self, store, config):
        _begin(store, config)
        with pytest.raises(StateStoreError, match="already holds a run"):
            store.begin_run(config, (0,) * 8, _checkpoint())

    def test_flush_and_charge_round_trip(self, store, config):
        _begin(store, config)
        store.record_flushes(
            [ADMITTED, REJECTED], _checkpoint(n_submits=1, next_sequence=2)
        )
        snapshot = store.load_run()
        assert snapshot.n_submits == 1
        assert snapshot.next_sequence == 2
        first, second = snapshot.flushes
        assert first.status == "charged"
        assert first.trigger == "size"
        np.testing.assert_array_equal(first.reports, ADMITTED.reports)
        assert second.status == "rejected"
        assert second.reports is None
        assert second.reject_reason == "budget exhausted"
        (charge,) = snapshot.charges
        assert (charge.eps, charge.delta, charge.label) == (
            0.5, 1e-9, "epoch0/flush0"
        )

    def test_release_transitions_charged_to_released(self, store, config):
        _begin(store, config)
        store.record_flushes([ADMITTED], _checkpoint(next_sequence=1))
        counts = np.array([1.0, 0.5, 0.25], dtype=np.float64)
        store.record_release(0, counts)
        (flush,) = store.load_run().flushes
        assert flush.status == "released"
        assert flush.reports is None  # the blob is dropped once folded
        np.testing.assert_array_equal(flush.counts, counts)

    def test_release_of_unknown_or_rejected_flush_refused(self, store, config):
        _begin(store, config)
        store.record_flushes(
            [ADMITTED, REJECTED], _checkpoint(next_sequence=2)
        )
        counts = np.zeros(2, dtype=np.float64)
        with pytest.raises(StateStoreError):
            store.record_release(99, counts)
        with pytest.raises(StateStoreError):
            store.record_release(1, counts)  # rejected, never charged
        store.record_release(0, counts)
        with pytest.raises(StateStoreError):
            store.record_release(0, counts)  # double release

    def test_checkpoint_remainder_round_trip(self, store, config):
        _begin(store, config)
        pending = [np.array([3, 1], dtype=np.int64),
                   np.array([2], dtype=np.int64)]
        store.record_ingest(
            _checkpoint(n_submits=2, buffer_epoch=1, pending=pending)
        )
        snapshot = store.load_run()
        assert snapshot.buffer_epoch == 1
        np.testing.assert_array_equal(
            snapshot.remainder, np.array([3, 1, 2], dtype=np.int64)
        )
        assert snapshot.rng_state == _checkpoint().rng_state


class TestSqliteSpecifics:
    def test_wal_and_foreign_keys_enabled(self, tmp_path):
        with SqliteStateStore(str(tmp_path / "state.db")) as store:
            mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
            fkeys = store._conn.execute("PRAGMA foreign_keys").fetchone()[0]
            assert mode == "wal"
            assert fkeys == 1

    def test_reopen_sees_persisted_run(self, tmp_path, config):
        path = str(tmp_path / "state.db")
        with SqliteStateStore(path) as store:
            entropy = _begin(store, config)
            store.record_flushes([ADMITTED], _checkpoint(next_sequence=1))
        with SqliteStateStore(path) as store:
            snapshot = store.load_run()
            assert snapshot.release_entropy == entropy
            assert snapshot.flushes[0].status == "charged"

    def test_schema_version_mismatch_refused(self, tmp_path, config):
        path = str(tmp_path / "state.db")
        with SqliteStateStore(path) as store:
            _begin(store, config)
        with sqlite3.connect(path) as raw:
            raw.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION + 1),),
            )
        with pytest.raises(StateStoreError, match="schema version"):
            SqliteStateStore(path)

    def test_missing_parent_raises_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="state_db"):
            SqliteStateStore(str(tmp_path / "no" / "such" / "state.db"))

    def test_directory_path_raises_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="state_db"):
            SqliteStateStore(str(tmp_path))

    @pytest.mark.skipif(os.geteuid() == 0,
                        reason="root bypasses permission checks")
    def test_unwritable_file_raises_config_error(self, tmp_path):
        path = tmp_path / "state.db"
        path.touch()
        path.chmod(0o400)
        with pytest.raises(ConfigError, match="state_db"):
            SqliteStateStore(str(path))

    def test_memory_store_is_not_durable(self):
        assert MemoryStateStore.durable is False
        assert SqliteStateStore.durable is True
