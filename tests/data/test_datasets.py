"""Paper-shaped dataset surrogates."""

import numpy as np
import pytest

from repro.data import aol_like, dataset_by_name, ipums_like, kosarak_like


class TestIpums:
    def test_paper_shape(self, rng):
        data = ipums_like(rng)
        assert data.n == 602_325
        assert data.d == 915

    def test_scaled(self, rng):
        data = ipums_like(rng, scale=0.1)
        assert data.n == 60_232
        assert data.d == 915

    def test_frequencies(self, rng):
        data = ipums_like(rng, scale=0.05)
        assert data.frequencies.sum() == pytest.approx(1.0)

    def test_heavy_tailed(self, rng):
        data = ipums_like(rng, scale=0.1)
        top10 = np.sort(data.histogram)[-10:].sum()
        assert top10 > 0.15 * data.n  # a real head exists

    def test_top_k(self, rng):
        data = ipums_like(rng, scale=0.05)
        top = data.top_k(10)
        assert len(top) == 10
        threshold = data.histogram[top].min()
        others = np.delete(data.histogram, top)
        assert (others <= threshold).all()

    def test_values_roundtrip(self, rng):
        data = ipums_like(rng, scale=0.01)
        values = data.values(rng)
        assert (np.bincount(values, minlength=data.d) == data.histogram).all()


class TestKosarak:
    def test_paper_shape(self, rng):
        data = kosarak_like(rng, scale=0.02)
        assert data.d == 42_178
        assert data.n == 19_800

    def test_tiny_scale_shrinks_domain(self, rng):
        data = kosarak_like(rng, scale=0.001)
        assert data.d < 42_178

    def test_sparser_than_ipums(self, rng):
        data = kosarak_like(rng, scale=0.02)
        assert (data.histogram == 0).mean() > 0.3  # long empty tail


class TestAol:
    def test_shape(self, rng):
        data = aol_like(rng, scale=0.1)
        assert data.n == 50_000
        assert data.string_bits == 48
        assert data.values.max() < (1 << 48)

    def test_distinct_ratio_realistic(self, rng):
        data = aol_like(rng, scale=0.5)
        distinct = len(np.unique(data.values))
        # The AOL log has ~24% distinct; accept a generous band.
        assert 0.10 < distinct / data.n < 0.45

    def test_prefixes(self, rng):
        data = aol_like(rng, scale=0.01)
        prefix8 = data.prefixes(8)
        assert (prefix8 == data.values >> 40).all()
        with pytest.raises(ValueError):
            data.prefixes(0)
        with pytest.raises(ValueError):
            data.prefixes(49)

    def test_top_k_by_count(self, rng):
        data = aol_like(rng, scale=0.05)
        top = data.top_k(5)
        assert len(top) == 5
        counts = {v: (data.values == v).sum() for v in top}
        assert counts[top[0]] >= counts[top[4]]

    def test_rejects_unaligned_bits(self, rng):
        with pytest.raises(ValueError):
            aol_like(rng, string_bits=47)


class TestLookup:
    def test_by_name(self, rng):
        assert dataset_by_name("ipums", rng, scale=0.01).name == "ipums"
        assert dataset_by_name("kosarak", rng, scale=0.001).name == "kosarak"
        assert dataset_by_name("unknown", rng) is None
