"""Synthetic workload generators."""

import numpy as np
import pytest

from repro.data import (
    mixture_histogram,
    uniform_histogram,
    values_from_histogram,
    zipf_histogram,
    zipf_probabilities,
)


class TestZipf:
    def test_probabilities_sum_to_one(self):
        assert zipf_probabilities(100, 1.1).sum() == pytest.approx(1.0)

    def test_probabilities_decreasing(self):
        p = zipf_probabilities(50, 1.5)
        assert (np.diff(p) <= 0).all()

    def test_exponent_controls_skew(self):
        flat = zipf_probabilities(100, 0.5)
        steep = zipf_probabilities(100, 2.0)
        assert steep[0] > flat[0]

    def test_histogram_total(self, rng):
        histogram = zipf_histogram(10_000, 64, 1.2, rng)
        assert histogram.sum() == 10_000
        assert len(histogram) == 64

    def test_shuffle_ranks_moves_head(self, rng):
        fixed = zipf_histogram(100_000, 64, 1.5, rng, shuffle_ranks=False)
        assert fixed.argmax() == 0  # head at index 0 when unshuffled

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ValueError):
            zipf_probabilities(10, 0.0)


class TestOtherGenerators:
    def test_uniform_histogram(self, rng):
        histogram = uniform_histogram(64_000, 64, rng)
        assert histogram.sum() == 64_000
        assert abs(histogram.mean() - 1000) < 1

    def test_mixture_head_mass(self, rng):
        histogram = mixture_histogram(100_000, 100, rng, head_values=5, head_mass=0.8)
        top5 = np.sort(histogram)[-5:].sum()
        assert top5 > 0.7 * 100_000

    def test_mixture_validation(self, rng):
        with pytest.raises(ValueError):
            mixture_histogram(100, 10, rng, head_mass=1.5)
        with pytest.raises(ValueError):
            mixture_histogram(100, 10, rng, head_values=11)

    def test_values_from_histogram(self, rng):
        histogram = np.array([3, 0, 2])
        values = values_from_histogram(histogram, rng)
        assert sorted(values.tolist()) == [0, 0, 0, 2, 2]
