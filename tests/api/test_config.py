"""Early, uniform configuration validation: one ConfigError, field named."""

import numpy as np
import pytest

from repro.api import (
    AUTO_MECHANISM,
    ConfigError,
    DeploymentConfig,
    PrivacyBudget,
    ShuffleSession,
)
from repro.core import plan_peos
from repro.core.registry import UnknownMechanismError
from repro.service import StreamConfig


def field_of(excinfo) -> str:
    return excinfo.value.field


class TestPrivacyBudget:
    def test_defaults(self):
        budget = PrivacyBudget(eps=0.5)
        assert budget.delta == 1e-9
        assert budget.model == "central"

    @pytest.mark.parametrize("eps", [0.0, -1.0])
    def test_bad_eps(self, eps):
        with pytest.raises(ConfigError) as excinfo:
            PrivacyBudget(eps=eps)
        assert field_of(excinfo) == "eps"

    @pytest.mark.parametrize("delta", [0.0, 1.0, -1e-9, 2.0])
    def test_bad_delta(self, delta):
        with pytest.raises(ConfigError) as excinfo:
            PrivacyBudget(eps=1.0, delta=delta)
        assert field_of(excinfo) == "delta"

    def test_bad_model(self):
        with pytest.raises(ConfigError) as excinfo:
            PrivacyBudget(eps=1.0, model="curator")
        assert field_of(excinfo) == "model"

    def test_config_error_is_value_error(self):
        with pytest.raises(ValueError):
            PrivacyBudget(eps=-1.0)


class TestDeploymentConfig:
    def test_mechanism_canonicalized(self):
        assert DeploymentConfig("solh", d=8).mechanism == "SOLH"
        assert DeploymentConfig("grr", d=8).mechanism == "SH"
        assert DeploymentConfig("AUTO", d=8).mechanism == AUTO_MECHANISM

    def test_unknown_mechanism_did_you_mean(self):
        with pytest.raises(ConfigError) as excinfo:
            DeploymentConfig("SOHL", d=8)
        assert field_of(excinfo) == "mechanism"
        assert "did you mean" in str(excinfo.value)
        assert "SOLH" in str(excinfo.value)
        # the registry's original error stays chained for programmatic use
        assert isinstance(excinfo.value.__cause__, UnknownMechanismError)

    def test_bad_domain(self):
        with pytest.raises(ConfigError) as excinfo:
            DeploymentConfig("SOLH", d=1)
        assert field_of(excinfo) == "d"

    def test_bad_population(self):
        with pytest.raises(ConfigError) as excinfo:
            DeploymentConfig("SOLH", d=8, n=0)
        assert field_of(excinfo) == "n"

    def test_bad_backend_names_registered_set(self):
        with pytest.raises(ConfigError) as excinfo:
            DeploymentConfig("SOLH", d=8, backend="plane")
        assert field_of(excinfo) == "backend"
        assert "plain" in str(excinfo.value)

    def test_bad_shuffler_count_and_composition(self):
        with pytest.raises(ConfigError):
            DeploymentConfig("SOLH", d=8, r=0)
        with pytest.raises(ConfigError):
            DeploymentConfig("SOLH", d=8, composition="naive")

    def test_auto_has_no_spec(self):
        with pytest.raises(ConfigError) as excinfo:
            DeploymentConfig("auto", d=8).spec
        assert field_of(excinfo) == "mechanism"


class TestSessionCapabilityValidation:
    def test_local_budget_refuses_central_mechanism(self):
        with pytest.raises(ConfigError) as excinfo:
            ShuffleSession(
                DeploymentConfig("SOLH", d=8),
                PrivacyBudget(eps=1.0, model="local"),
            )
        assert field_of(excinfo) == "model"

    def test_local_budget_accepts_local_mechanisms(self):
        for name in ("OLH", "Had"):
            ShuffleSession(
                DeploymentConfig(name, d=8),
                PrivacyBudget(eps=1.0, model="local"),
            )

    def test_auto_estimate_refused(self, small_histogram):
        session = ShuffleSession(
            DeploymentConfig("auto", d=len(small_histogram)),
            PrivacyBudget(eps=1.0),
        )
        with pytest.raises(ConfigError) as excinfo:
            session.estimate(small_histogram)
        assert field_of(excinfo) == "mechanism"

    def test_stream_refuses_local_budget(self):
        session = ShuffleSession(
            DeploymentConfig("OLH", d=8),
            PrivacyBudget(eps=1.0, model="local"),
        )
        with pytest.raises(ConfigError) as excinfo:
            session.stream(100)
        assert field_of(excinfo) == "model"

    def test_stream_refuses_unstreamable_mechanism(self):
        session = ShuffleSession(
            DeploymentConfig("Lap", d=8), PrivacyBudget(eps=1.0)
        )
        with pytest.raises(ConfigError) as excinfo:
            session.stream(100)
        assert field_of(excinfo) == "mechanism"


class TestVerbInputValidation:
    def session(self, d=8):
        return ShuffleSession(
            DeploymentConfig("SOLH", d=d), PrivacyBudget(eps=1.0)
        )

    def test_histogram_shape_mismatch(self):
        with pytest.raises(ConfigError) as excinfo:
            self.session(d=8).estimate(np.ones(9, dtype=int))
        assert field_of(excinfo) == "histogram"

    def test_values_out_of_domain(self):
        with pytest.raises(ConfigError) as excinfo:
            self.session(d=8).estimate(values=[0, 3, 8])
        assert field_of(excinfo) == "values"

    def test_non_integer_values_refused(self):
        # 3.7 must not silently floor-truncate to 3.
        with pytest.raises(ConfigError) as excinfo:
            self.session(d=8).estimate(values=[0.9, 1.2, 3.7])
        assert field_of(excinfo) == "values"
        # integral floats are fine (a common numpy artifact)
        self.session(d=8).estimate(values=np.array([0.0, 1.0, 3.0]), seed=0)

    def test_both_or_neither_input(self):
        with pytest.raises(ConfigError):
            self.session().estimate(np.ones(8, dtype=int), values=[1, 2])
        with pytest.raises(ConfigError):
            self.session().estimate()

    def test_empty_population(self):
        with pytest.raises(ConfigError) as excinfo:
            self.session().estimate(np.zeros(8, dtype=int))
        assert field_of(excinfo) == "histogram"

    def test_negative_counts(self):
        histogram = np.ones(8, dtype=int)
        histogram[3] = -2
        with pytest.raises(ConfigError):
            self.session().estimate(histogram)

    def test_fractional_histogram_counts_refused(self):
        histogram = np.full(8, 1.5)
        with pytest.raises(ConfigError) as excinfo:
            self.session().estimate(histogram)
        assert field_of(excinfo) == "histogram"
        # integral float counts are fine (a common numpy artifact)
        self.session().estimate(np.full(8, 20.0), seed=0)

    def test_sweep_bad_knobs(self, small_histogram):
        session = self.session(d=len(small_histogram))
        with pytest.raises(ConfigError) as excinfo:
            session.sweep(small_histogram, [0.5], repeats=0)
        assert field_of(excinfo) == "repeats"
        with pytest.raises(ConfigError):
            session.sweep(small_histogram, [0.5], workers=0)
        with pytest.raises(ConfigError):
            session.sweep(small_histogram, [])
        with pytest.raises(ConfigError):
            session.sweep(small_histogram, [0.5, -0.2])
        with pytest.raises(ConfigError) as excinfo:
            session.sweep(small_histogram, [0.5], methods=("SOLH", "SOHL"))
        assert field_of(excinfo) == "mechanism"

    def test_stream_knob_conflicts(self):
        session = self.session()
        with pytest.raises(ConfigError) as excinfo:
            session.stream(100, epoch_size=200)
        assert field_of(excinfo) == "epoch_size"
        with pytest.raises(ConfigError) as excinfo:
            session.stream(
                100, epoch_size=200, admitted_epochs=2, admitted_flushes=4
            )
        assert field_of(excinfo) == "admitted_flushes"
        with pytest.raises(ConfigError) as excinfo:
            session.stream(100, eps_targets=(1.0, 2.0))
        assert field_of(excinfo) == "eps_targets"

    def test_stream_accepts_iterator_targets(self):
        # a one-pass iterable must not be exhausted by validation
        pipeline = self.session(d=16).stream(
            100, eps_targets=iter((1.0, 3.0, 6.0)), admitted_flushes=2
        )
        assert pipeline.config.plan.eps_server <= 1.0 * (1 + 1e-9)


class TestStreamConfigValidation:
    """The service-layer config validates eagerly too (satellite task)."""

    def plan(self, d=16):
        return plan_peos(1.0, 3.0, 6.0, n=200, d=d, delta=1e-9)

    def config(self, **overrides):
        defaults = dict(
            d=16, plan=self.plan(), flush_size=100,
            eps_budget=2.0, delta_budget=1e-8,
        )
        defaults.update(overrides)
        return StreamConfig(**defaults)

    def test_valid_passes(self):
        self.config()

    @pytest.mark.parametrize("overrides,field", [
        (dict(flush_size=0), "flush_size"),
        (dict(d=1), "d"),
        (dict(eps_budget=0.0), "eps_budget"),
        (dict(eps_budget=-1.0), "eps_budget"),
        (dict(delta_budget=0.0), "delta_budget"),
        (dict(backend="plane"), "backend"),
        (dict(r=0), "r"),
        (dict(composition="naive"), "composition"),
    ])
    def test_bad_fields(self, overrides, field):
        with pytest.raises(ConfigError) as excinfo:
            self.config(**overrides)
        assert excinfo.value.field == field

    def test_plan_domain_mismatch(self):
        # A plan computed for d=32 cannot be deployed against d=16.
        with pytest.raises(ConfigError) as excinfo:
            self.config(plan=self.plan(d=32))
        assert excinfo.value.field == "d"
        assert "32" in str(excinfo.value)

    def test_from_targets_bad_admitted(self):
        with pytest.raises(ConfigError) as excinfo:
            StreamConfig.from_targets(d=16, flush_size=100, admitted_flushes=0)
        assert excinfo.value.field == "admitted_flushes"

    def test_for_epochs_bad_sizes(self):
        with pytest.raises(ConfigError) as excinfo:
            StreamConfig.for_epochs(
                d=16, flush_size=100, epoch_size=0, admitted_epochs=1
            )
        assert excinfo.value.field == "epoch_size"
        with pytest.raises(ConfigError) as excinfo:
            StreamConfig.for_epochs(
                d=16, flush_size=100, epoch_size=100, admitted_epochs=0
            )
        assert excinfo.value.field == "admitted_epochs"
