"""Result objects: provenance, analysis helpers, lossless JSON round trips."""

import json
import math

import numpy as np
import pytest

from repro.api import (
    Amplification,
    DeploymentConfig,
    EstimateResult,
    PrivacyBudget,
    ShuffleSession,
    SweepResultSet,
)
from repro.core import get_spec, solh_variance_shuffled


def session(mechanism="SOLH", d=16, eps=0.5, model="central"):
    return ShuffleSession(
        DeploymentConfig(mechanism=mechanism, d=d),
        PrivacyBudget(eps=eps, delta=1e-9, model=model),
    )


class TestEstimateResult:
    def test_carries_provenance(self, small_histogram):
        result = session(d=len(small_histogram)).estimate(
            small_histogram, seed=0
        )
        assert result.mechanism == "SOLH"
        assert result.model == "central"
        assert result.n == int(small_histogram.sum())
        amp = result.amplification
        assert amp.eps_l > 0.5  # SOLH amplifies at this n
        assert amp.amplified
        assert amp.gain == pytest.approx(amp.eps_l / 0.5)
        assert amp.d_prime >= 2

    def test_central_only_mechanisms_claim_no_local_spend(
        self, small_histogram
    ):
        # Lap stores its central budget as `.eps`; provenance must not
        # present that as a local-randomizer spend.
        result = session("Lap", d=len(small_histogram)).estimate(
            small_histogram, seed=0
        )
        assert result.amplification.eps_l is None
        assert result.amplification.d_prime is None
        assert not result.amplification.amplified

    def test_variance_matches_proposition6(self, small_histogram):
        n = int(small_histogram.sum())
        result = session(d=len(small_histogram)).estimate(
            small_histogram, seed=0
        )
        assert result.variance == pytest.approx(
            solh_variance_shuffled(0.5, n, 1e-9)
        )

    def test_confidence_band_and_coverage(self, small_histogram):
        truth = small_histogram / small_histogram.sum()
        result = session(d=len(small_histogram)).estimate(
            small_histogram, seed=0
        )
        band = result.confidence_band(0.95)
        assert band.halfwidth > 0
        assert band.coverage(truth) >= 0.5  # loose: d=16 is small
        assert result.mse(truth) < band.halfwidth**2

    def test_no_variance_raises_on_band(self, small_histogram):
        # Had has no registered closed form.
        assert get_spec("Had").variance_fn is None
        result = session("Had", d=len(small_histogram)).estimate(
            small_histogram, seed=0
        )
        assert result.variance is None
        with pytest.raises(ValueError, match="no closed-form variance"):
            result.confidence_band()

    def test_top_k(self, small_histogram):
        result = session(d=len(small_histogram)).estimate(
            small_histogram, seed=0
        )
        top = result.top_k(3)
        assert len(top) == 3
        # conftest's histogram is geometric: value 0 dominates
        assert 0 in top

    def test_json_round_trip_is_lossless(self, small_histogram):
        result = session(d=len(small_histogram)).estimate(
            small_histogram, seed=0
        )
        back = EstimateResult.from_json(result.to_json())
        assert back.estimates.tobytes() == result.estimates.tobytes()
        assert back.to_dict() == result.to_dict()
        assert back.amplification == result.amplification
        assert back.variance == result.variance

    def test_schema_tag_enforced(self):
        with pytest.raises(ValueError, match="schema"):
            EstimateResult.from_dict({"schema": "bogus/9"})


class TestSweepResultSet:
    def sweep(self, small_histogram, **kwargs):
        defaults = dict(repeats=2, seed=3, methods=("SOLH", "SH", "AUE"))
        defaults.update(kwargs)
        return session(d=len(small_histogram)).sweep(
            small_histogram, [0.05, 0.6], **defaults
        )

    def test_access_by_method(self, small_histogram):
        sweep = self.sweep(small_histogram)
        assert sweep.methods == ("SOLH", "SH", "AUE")
        assert len(sweep) == 3
        assert sweep["SH"].method == "SH"
        with pytest.raises(KeyError):
            sweep["OLH"]

    def test_table_renders(self, small_histogram):
        table = self.sweep(small_histogram).table(caption="cap")
        assert "SOLH" in table and "cap" in table

    def test_json_round_trip_with_nan_cells(self, small_histogram):
        # AUE is infeasible at eps=0.05 with this small n -> NaN cells,
        # which must survive serialization (json allows NaN literals).
        sweep = self.sweep(small_histogram)
        assert math.isnan(sweep["AUE"].means[0])
        text = sweep.to_json()
        assert "NaN" not in text  # strict RFC-8259 JSON: NaN -> null
        back = SweepResultSet.from_json(text)
        assert math.isnan(back["AUE"].means[0])
        assert back.eps_values == sweep.eps_values
        assert back.methods == sweep.methods
        for old, new in zip(sweep, back):
            assert old.means == new.means or (
                np.array_equal(old.means, new.means, equal_nan=True)
            )
        assert back.table() == sweep.table()

    def test_metadata_round_trip(self, small_histogram):
        sweep = self.sweep(small_histogram, workers=2)
        back = SweepResultSet.from_dict(sweep.to_dict())
        assert (back.delta, back.repeats, back.workers, back.metric) == (
            sweep.delta, sweep.repeats, sweep.workers, sweep.metric
        )
        assert back.d == sweep.d and back.n == sweep.n

    def test_schema_tag_enforced(self):
        with pytest.raises(ValueError, match="schema"):
            SweepResultSet.from_dict({"schema": "bogus/9"})


class TestAmplification:
    def test_gain_none_without_local_budget(self):
        amp = Amplification(eps=0.5)
        assert amp.gain is None
        assert not amp.amplified

    def test_dict_round_trip(self):
        amp = Amplification(eps=0.5, eps_l=2.5, d_prime=37)
        assert Amplification.from_dict(amp.to_dict()) == amp

    def test_json_floats_survive_exactly(self):
        amp = Amplification(eps=0.1, eps_l=2.839667798889741, d_prime=3)
        decoded = json.loads(json.dumps(amp.to_dict()))
        assert Amplification.from_dict(decoded) == amp
