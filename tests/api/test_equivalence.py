"""Golden-equivalence: the facade is bit-identical to the legacy paths.

The acceptance contract of the ``repro.api`` redesign: at a fixed seed,
``ShuffleSession.estimate`` matches the direct oracle call,
``ShuffleSession.sweep`` matches ``analysis.experiments.run_sweep``, and
``ShuffleSession.stream`` matches a hand-built ``StreamConfig`` +
``TelemetryPipeline`` — byte for byte, not approximately.
"""

import numpy as np
import pytest

from repro.analysis import run_sweep
from repro.api import DeploymentConfig, PrivacyBudget, ShuffleSession
from repro.core import build_mechanism
from repro.frequency_oracles import OLH, SOLH
from repro.service import StreamConfig, TelemetryPipeline

DELTA = 1e-9


def session(mechanism: str, d: int, model: str = "central",
            eps: float = 0.5, **kwargs) -> ShuffleSession:
    return ShuffleSession(
        DeploymentConfig(mechanism=mechanism, d=d, **kwargs),
        PrivacyBudget(eps=eps, delta=DELTA, model=model),
    )


class TestEstimateEquivalence:
    def test_solh_matches_direct_oracle(self, small_histogram):
        d, n = len(small_histogram), int(small_histogram.sum())
        oracle, __ = SOLH.for_central_target(d, 0.5, n, DELTA)
        legacy = oracle.estimate_from_histogram(
            small_histogram, np.random.default_rng(99)
        )
        result = session("SOLH", d).estimate(small_histogram, seed=99)
        assert legacy.tobytes() == result.estimates.tobytes()

    def test_olh_local_matches_direct_oracle(self, small_histogram):
        d, n = len(small_histogram), int(small_histogram.sum())
        legacy = OLH(d, 0.5).estimate_from_histogram(
            small_histogram, np.random.default_rng(7)
        )
        result = session("OLH", d, model="local").estimate(
            small_histogram, seed=7
        )
        assert legacy.tobytes() == result.estimates.tobytes()

    @pytest.mark.parametrize("name", ["SH", "RAP_R", "Lap", "AUE"])
    def test_every_registry_path_matches(self, small_histogram, name):
        d, n = len(small_histogram), int(small_histogram.sum())
        mechanism = build_mechanism(name, d, n, 0.8, DELTA)
        legacy = mechanism.estimate_from_histogram(
            small_histogram, np.random.default_rng(3)
        )
        result = session(name, d, eps=0.8).estimate(small_histogram, seed=3)
        assert legacy.tobytes() == result.estimates.tobytes()

    def test_values_input_equals_histogram_input(self, small_histogram, rng):
        d = len(small_histogram)
        values = np.repeat(np.arange(d), small_histogram)
        by_hist = session("SOLH", d).estimate(small_histogram, seed=11)
        by_values = session("SOLH", d).estimate(values=values, seed=11)
        assert by_hist.estimates.tobytes() == by_values.estimates.tobytes()

    def test_explicit_rng_wins_over_seed(self, small_histogram):
        d = len(small_histogram)
        one = session("SOLH", d).estimate(
            small_histogram, rng=np.random.default_rng(5), seed=999
        )
        two = session("SOLH", d).estimate(small_histogram, seed=5)
        assert one.estimates.tobytes() == two.estimates.tobytes()


class TestSweepEquivalence:
    def test_matches_run_sweep_bitwise(self, small_histogram):
        d = len(small_histogram)
        grid = [0.4, 0.8]
        legacy = run_sweep(
            ("SOLH", "SH"), small_histogram, grid, DELTA,
            np.random.default_rng(42), repeats=3, workers=2,
        )
        sweep = session("SOLH", d).sweep(
            small_histogram, grid, methods=("SOLH", "SH"),
            repeats=3, workers=2, seed=42,
        )
        for old, new in zip(legacy, sweep):
            assert old.method == new.method
            assert old.means == new.means  # exact, not approx
            assert old.stds == new.stds

    def test_worker_count_invariance_through_facade(self, small_histogram):
        d = len(small_histogram)
        results = [
            session("SOLH", d).sweep(
                small_histogram, [0.6], repeats=4, workers=workers, seed=1,
            )
            for workers in (1, 4)
        ]
        assert results[0]["SOLH"].means == results[1]["SOLH"].means

    def test_default_grid_is_budget_eps(self, small_histogram):
        sweep = session("SOLH", len(small_histogram)).sweep(
            small_histogram, repeats=1, seed=0
        )
        assert sweep.eps_values == (0.5,)


class TestStreamEquivalence:
    EPS_TARGETS = (1.0, 3.0, 6.0)

    def _feed(self, pipeline, seed: int):
        feed_rng = np.random.default_rng(seed)
        for __ in range(3):
            pipeline.submit(feed_rng.integers(0, 16, 150))
            pipeline.end_epoch()
        return pipeline.result()

    def test_matches_handbuilt_pipeline(self):
        config = StreamConfig.from_targets(
            d=16, flush_size=100, eps_targets=self.EPS_TARGETS,
            delta=DELTA, admitted_flushes=8,
        )
        legacy = self._feed(
            TelemetryPipeline(config, np.random.default_rng(5)), seed=77
        )
        pipeline = session("auto", 16, eps=1.0).stream(
            100, eps_targets=self.EPS_TARGETS, admitted_flushes=8, seed=5,
        )
        facade = self._feed(pipeline, seed=77)
        assert legacy.estimates.tobytes() == facade.estimates.tobytes()
        assert legacy.eps_spent == facade.eps_spent
        assert legacy.n_genuine == facade.n_genuine

    def test_epoch_budgeting_matches_for_epochs(self):
        config = StreamConfig.for_epochs(
            d=16, flush_size=100, epoch_size=150, admitted_epochs=2,
            eps_targets=self.EPS_TARGETS, delta=DELTA,
        )
        legacy = self._feed(
            TelemetryPipeline(config, np.random.default_rng(9)), seed=13
        )
        pipeline = session("auto", 16, eps=1.0).stream(
            100, eps_targets=self.EPS_TARGETS, epoch_size=150,
            admitted_epochs=2, seed=9,
        )
        facade = self._feed(pipeline, seed=13)
        assert legacy.estimates.tobytes() == facade.estimates.tobytes()
        assert legacy.n_rejected == facade.n_rejected

    def test_pinned_mechanism_restricts_planner(self):
        # At flush 500 / d 16 the free planner picks GRR; a SOLH-pinned
        # session must override that choice, and an SH-pinned one keep it.
        for name, planned in (("SOLH", "solh"), ("SH", "grr")):
            pipeline = session(name, 16, eps=1.0).stream(
                500, eps_targets=self.EPS_TARGETS, admitted_flushes=2,
            )
            assert pipeline.config.plan.mechanism == planned

    def test_infeasible_restriction_raises(self):
        from repro.core import InfeasiblePlanError

        # GRR cannot meet these targets with so little blanket noise;
        # the free planner would quietly fall back to SOLH, a pinned
        # session must refuse instead.
        with pytest.raises(InfeasiblePlanError, match="restricted to grr"):
            session("SH", 16, eps=1.0).stream(
                100, eps_targets=self.EPS_TARGETS, admitted_flushes=2,
            )

    def test_sharded_stream_matches_serial_stream(self):
        from repro.service import ShardedPipeline

        kwargs = dict(
            eps_targets=self.EPS_TARGETS, admitted_flushes=8, seed=5,
        )
        serial = self._feed(
            session("auto", 16, eps=1.0).stream(100, **kwargs), seed=77
        )
        pipeline = session("auto", 16, eps=1.0).stream(
            100, shards=3, **kwargs
        )
        assert isinstance(pipeline, ShardedPipeline)
        sharded = self._feed(pipeline, seed=77)
        assert serial.estimates.tobytes() == sharded.estimates.tobytes()
        assert serial.eps_spent == sharded.eps_spent

    def test_stream_rejects_bad_fold_options(self):
        from repro.api import ConfigError

        with pytest.raises(ConfigError, match="shards"):
            session("auto", 16, eps=1.0).stream(100, shards=0)
        with pytest.raises(ConfigError, match="fold backend"):
            session("auto", 16, eps=1.0).stream(100, backend="threads")

    def test_default_targets_derive_from_budget(self):
        pipeline = session("auto", 16, eps=1.0).stream(100, admitted_flushes=2)
        reference = StreamConfig.from_targets(
            d=16, flush_size=100, eps_targets=(1.0, 3.0, 6.0),
            delta=DELTA, admitted_flushes=2,
        )
        assert pipeline.config.plan == reference.plan
