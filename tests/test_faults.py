"""The failpoint registry: spec parsing, schedules, env round-trip."""

import os

import pytest

from repro import faults
from repro.core.errors import ConfigError
from repro.faults import (
    ENV_VAR,
    FailPointSpec,
    InjectedFault,
    fail_point,
    install,
    parse_spec,
)


@pytest.fixture(autouse=True)
def _clean_registry(monkeypatch):
    """Every test starts and ends disarmed, with no exported env."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    faults.disarm()
    yield
    faults.disarm()


class TestParseSpec:
    def test_minimal_defaults_to_once(self):
        spec = parse_spec("fold.worker:raise")
        assert spec == FailPointSpec(name="fold.worker", mode="raise")

    def test_every_schedule(self):
        spec = parse_spec("fold.worker:kill:every=3")
        assert spec.mode == "kill"
        assert spec.every == 3

    def test_at_schedule(self):
        spec = parse_spec("server.ingest:raise:at=0")
        assert spec.at == 0

    def test_delay_mode(self):
        spec = parse_spec("fold.worker:delay=0.25")
        assert spec.mode == "delay"
        assert spec.delay_s == 0.25

    @pytest.mark.parametrize("bad", [
        "",                       # empty
        "noop",                   # no mode
        "x:explode",              # unknown mode
        "x:delay=-1",             # negative delay
        "x:delay=soon",           # junk delay
        "x:raise:every=0",        # every needs >= 1
        "x:raise:at=-1",          # at needs >= 0
        "x:raise:sometimes",      # unknown schedule
        "a:b:c:d",                # too many fields
    ])
    def test_junk_is_a_named_config_error(self, bad):
        with pytest.raises(ConfigError) as err:
            parse_spec(bad)
        assert err.value.field == "fail_point"

    @pytest.mark.parametrize("text", [
        "fold.worker:raise:once",
        "fold.worker:kill:every=3",
        "server.ingest:raise:at=7",
        "fold.worker:delay=0.5:once",
    ])
    def test_render_round_trips(self, text):
        assert parse_spec(parse_spec(text).render()) == parse_spec(text)


class TestSchedules:
    def test_once_fires_exactly_once(self):
        faults.arm([parse_spec("p:raise")])
        with pytest.raises(InjectedFault):
            fail_point("p")
        fail_point("p")  # spent
        assert faults.fired_counts()["p"] == 1

    def test_every_nth_hit(self):
        faults.arm([parse_spec("p:raise:every=3")])
        fired = 0
        for __ in range(9):
            try:
                fail_point("p")
            except InjectedFault:
                fired += 1
        assert fired == 3

    def test_at_matches_sequence_only(self):
        faults.arm([parse_spec("p:raise:at=5")])
        fail_point("p", sequence=4)
        fail_point("p", sequence=6)
        with pytest.raises(InjectedFault):
            fail_point("p", sequence=5)
        fail_point("p", sequence=5)  # one-shot: spent even at the sequence

    def test_unarmed_names_no_op(self):
        faults.arm([parse_spec("p:raise")])
        fail_point("q")
        fail_point("q", sequence=3)

    def test_disarm_clears_everything(self):
        faults.arm([parse_spec("p:raise")])
        faults.disarm()
        fail_point("p")
        assert faults.active() == ()

    def test_delay_mode_returns(self):
        faults.arm([parse_spec("p:delay=0.0")])
        fail_point("p")  # sleeps 0s, then continues
        assert faults.fired_counts()["p"] == 1


class TestInstall:
    def test_install_arms_and_exports(self):
        install(["p:raise:every=2", "q:kill"])
        assert faults.active() == ("p", "q")
        exported = os.environ[ENV_VAR]
        assert "p:raise:every=2" in exported
        assert "q:kill:once" in exported

    def test_env_round_trip_rearms(self):
        install(["p:raise:at=3"])
        faults.disarm()
        faults._arm_from_env()  # what a spawned worker does at import
        assert faults.active() == ("p",)
        with pytest.raises(InjectedFault):
            fail_point("p", sequence=3)

    def test_install_without_export(self):
        install(["p:raise"], export_env=False)
        assert ENV_VAR not in os.environ
        assert faults.active() == ("p",)

    def test_rearm_resets_trigger_state(self):
        faults.arm([parse_spec("p:raise")])
        with pytest.raises(InjectedFault):
            fail_point("p")
        faults.arm([parse_spec("p:raise")])
        with pytest.raises(InjectedFault):
            fail_point("p")
