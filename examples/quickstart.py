#!/usr/bin/env python3
"""Quickstart: private frequency estimation in the shuffle model.

A server wants the histogram of a sensitive categorical attribute over
~60k users without learning any individual's value.  We compare:

* plain local DP (OLH) at the same central guarantee, and
* SOLH — the paper's shuffler-optimal mechanism — which exploits the
  shuffle model's privacy amplification to add far less noise.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import mse
from repro.core import solh_variance_shuffled
from repro.data import ipums_like
from repro.frequency_oracles import OLH, SOLH

EPS_C = 0.5     # central privacy target against the server
DELTA = 1e-9


def main() -> None:
    rng = np.random.default_rng(7)

    # A census-shaped population: 915 cities, ~60k users.
    data = ipums_like(rng, scale=0.1)
    print(f"population: n={data.n} users, d={data.d} values")
    print(f"central target: ({EPS_C}, {DELTA})-DP against the server\n")

    # --- local DP baseline -------------------------------------------------
    olh = OLH(data.d, EPS_C)
    olh_estimates = olh.estimate_from_histogram(data.histogram, rng)
    print(f"OLH  (local model)   d'={olh.d_prime:<5} eps_local={olh.eps:.3f}  "
          f"MSE={mse(data.frequencies, olh_estimates):.3e}")

    # --- SOLH in the shuffle model ------------------------------------------
    solh, amplification = SOLH.for_central_target(data.d, EPS_C, data.n, DELTA)
    solh_estimates = solh.estimate_from_histogram(data.histogram, rng)
    print(f"SOLH (shuffle model) d'={solh.d_prime:<5} eps_local={solh.eps:.3f}  "
          f"MSE={mse(data.frequencies, solh_estimates):.3e}")
    print(f"\namplification: each user spends eps_l={amplification.eps_l:.3f} "
          f"locally ({amplification.gain:.1f}x the central target) because the "
          "shuffler breaks report-user linkage")
    print(f"predicted SOLH variance (Prop. 6): "
          f"{solh_variance_shuffled(EPS_C, data.n, DELTA):.3e}")

    # --- what the server actually learns ------------------------------------
    top = np.argsort(-data.frequencies)[:5]
    print("\ntop-5 values, true vs SOLH estimate:")
    for v in top:
        print(f"  value {v:>4}: true={data.frequencies[v]:.4f}  "
              f"estimate={solh_estimates[v]:.4f}")


if __name__ == "__main__":
    main()
