#!/usr/bin/env python3
"""Quickstart: private frequency estimation through the repro.api facade.

A server wants the histogram of a sensitive categorical attribute over
~60k users without learning any individual's value.  One ``ShuffleSession``
per deployment:

* plain local DP (OLH) — the budget is spent locally (``model="local"``);
* SOLH — the paper's shuffler-optimal mechanism — at the same *central*
  guarantee, exploiting the shuffle model's privacy amplification.

Run:  python examples/quickstart.py
      REPRO_EXAMPLE_SCALE=0.05 python examples/quickstart.py   (CI smoke)
"""

import os

import numpy as np

from repro.api import DeploymentConfig, PrivacyBudget, ShuffleSession
from repro.data import ipums_like

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))
EPS_C = 0.5     # central privacy target against the server
DELTA = 1e-9


def main() -> None:
    rng = np.random.default_rng(7)

    # A census-shaped population: 915 cities, ~60k users.
    data = ipums_like(rng, scale=0.1 * SCALE)
    print(f"population: n={data.n} users, d={data.d} values")
    print(f"central target: ({EPS_C}, {DELTA})-DP against the server\n")

    # --- local DP baseline: eps is spent directly by each user --------------
    local = ShuffleSession(
        DeploymentConfig(mechanism="OLH", d=data.d),
        PrivacyBudget(eps=EPS_C, delta=DELTA, model="local"),
    ).estimate(data.histogram, rng=rng)
    print(f"OLH  (local model)   d'={local.amplification.d_prime:<5} "
          f"eps_local={local.amplification.eps_l:.3f}  "
          f"MSE={local.mse(data.frequencies):.3e}")

    # --- SOLH in the shuffle model ------------------------------------------
    session = ShuffleSession(
        DeploymentConfig(mechanism="SOLH", d=data.d),
        PrivacyBudget(eps=EPS_C, delta=DELTA),
    )
    shuffled = session.estimate(data.histogram, rng=rng)
    print(f"SOLH (shuffle model) d'={shuffled.amplification.d_prime:<5} "
          f"eps_local={shuffled.amplification.eps_l:.3f}  "
          f"MSE={shuffled.mse(data.frequencies):.3e}")
    print(f"\namplification: each user spends "
          f"eps_l={shuffled.amplification.eps_l:.3f} locally "
          f"({shuffled.amplification.gain:.1f}x the central target) because "
          "the shuffler breaks report-user linkage")
    print(f"predicted SOLH variance (Prop. 6, via the registry): "
          f"{shuffled.variance:.3e}")
    band = shuffled.confidence_band(0.95)
    print(f"95% confidence halfwidth: {band.halfwidth:.4f} "
          f"(empirical coverage here: {band.coverage(data.frequencies):.2f})")

    # --- what the server actually learns ------------------------------------
    print("\ntop-5 values, true vs SOLH estimate:")
    for v in shuffled.top_k(5):
        print(f"  value {v:>4}: true={data.frequencies[v]:.4f}  "
              f"estimate={shuffled.estimates[v]:.4f}")


if __name__ == "__main__":
    main()
