#!/usr/bin/env python3
"""Scenario: a full PEOS run with real cryptography, plus the attacks it stops.

This drives Algorithm 1 end to end at a demo scale (400 users, 3
shufflers, real Paillier / secret sharing / encrypted oblivious shuffle):

1. honest execution with per-party cost accounting (the Table III shape);
2. a data-poisoning attempt — two of three shufflers submit maximally
   biased fake-report shares — and the statistical check showing the one
   honest shuffler neutralized it;
3. the SS (sequential shuffle) baseline under a report-replacement attack,
   caught by the server's spot-check dummy accounts.

The GRR local budget is validated through the facade's ``PrivacyBudget``
(``model="local"``: under ``Adv_a`` only local randomization protects
users, exactly that model's semantics).

Run:  python examples/secure_deployment.py   (takes ~1 minute: real crypto)
      REPRO_EXAMPLE_SCALE=0.05 python examples/secure_deployment.py
"""

import os

import numpy as np

from repro.api import PrivacyBudget
from repro.costs import CostTracker
from repro.crypto import paillier
from repro.frequency_oracles import GRR
from repro.protocol import run_peos
from repro.protocol.attacks import (
    constant_share_attack,
    spot_check_detection_probability,
)
from repro.shuffle import generate_keys, sequential_shuffle

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))
N_USERS = max(60, int(400 * SCALE))
N_FAKE = max(20, int(100 * SCALE))
N_POISON_FAKE = max(200, int(800 * SCALE))
DOMAIN = 8
R = 3
# Real Paillier dominates the runtime; the CI smoke run shrinks the demo
# key (still far above the generate_keypair floor, still real crypto).
KEY_BITS = 768 if SCALE >= 1.0 else 384
LOCAL_BUDGET = PrivacyBudget(eps=3.0, model="local")


def main() -> None:
    rng = np.random.default_rng(21)
    print(f"generating server AHE keypair (Paillier, {KEY_BITS}-bit demo key)...")
    pub, priv = paillier.generate_keypair(key_bits=KEY_BITS, rng=5)

    fo = GRR(DOMAIN, LOCAL_BUDGET.eps)
    values = rng.choice(DOMAIN, size=N_USERS, p=np.linspace(2, 0.2, DOMAIN) / np.linspace(2, 0.2, DOMAIN).sum())
    truth = np.bincount(values, minlength=DOMAIN) / N_USERS

    # --- 1. honest PEOS run with cost accounting ---------------------------
    tracker = CostTracker()
    result = run_peos(
        values, fo, r=R, n_fake=N_FAKE, ahe_public=pub,
        ahe_decrypt=priv.decrypt, rng=rng, crypto_rng=9, tracker=tracker,
    )
    mse = float(np.mean((result.estimates - truth) ** 2))
    print(f"\nhonest run: {N_USERS} users + {N_FAKE} fake reports, "
          f"r={R} shufflers")
    print(f"  MSE = {mse:.2e}; estimates sum to {result.estimates.sum():.3f}")
    print("  per-party costs (demo scale):")
    for party in ["user"] + [f"shuffler:{j}" for j in range(R)] + ["server"]:
        cost = tracker.cost(party)
        print(f"    {party:<11} sent={cost.bytes_sent:>9}B  "
              f"recv={cost.bytes_received:>9}B  "
              f"compute={cost.compute_seconds:.2f}s")

    # --- 2. poisoning attempt against PEOS ---------------------------------
    print("\npoisoning attempt: shufflers 0 and 1 submit constant fake shares")
    poisoned = run_peos(
        [], fo, r=R, n_fake=N_POISON_FAKE, ahe_public=pub,
        ahe_decrypt=priv.decrypt, rng=rng, crypto_rng=9,
        malicious_fake_shares={
            0: constant_share_attack(0),
            1: constant_share_attack(5),
        },
    )
    counts = np.bincount(poisoned.shuffled_reports.astype(int), minlength=DOMAIN)
    expected = N_POISON_FAKE / DOMAIN
    chi2 = float(((counts - expected) ** 2 / expected).sum())
    print(f"  resulting fake-report histogram: {counts.tolist()}")
    print(f"  chi-square vs uniform: {chi2:.1f} "
          f"(99.9th percentile for {DOMAIN - 1} dof: 24.3)")
    print("  -> the single honest shuffler's uniform shares masked the attack"
          if chi2 < 24.3 else "  -> UNEXPECTED: bias visible")

    # --- 3. the same attack class against SS is only caught by spot checks --
    print("\nSS baseline: shuffler 0 replaces 30% of reports with its target")
    keys = generate_keys(R, rng=4)
    # Spot checking needs a large report space so the server's planted
    # reports cannot collide with genuine ones: use SOLH's (seed, value)
    # reports (the paper's 64-bit reports) rather than bare GRR values.
    from repro.frequency_oracles import SOLH
    from repro.hashing import XXHash32Family
    from repro.protocol.attacks import replacement_tamper

    solh = SOLH(DOMAIN, LOCAL_BUDGET.eps, 8, family=XXHash32Family())
    reports = solh.encode_reports(solh.privatize(values[:100], rng))
    report_width = 5  # bytes per 2^35 report group
    remaining = [kp.public for kp in keys.shufflers[1:]] + [keys.server.public]
    tamper = replacement_tamper(7, 0.3, remaining, report_width, rng, crypto_rng=6)
    spot_checks = [int(x) for x in rng.integers(0, solh.report_space, 12)]
    ss = sequential_shuffle(
        [int(x) for x in reports], solh.report_space, keys, n_fake=0,
        rng=rng, crypto_rng=6, spot_check_reports=spot_checks,
        shuffler_tamper=lambda j, batch: tamper(j, batch) if j == 0 else batch,
    )
    total = 100 + len(spot_checks)
    analytic = spot_check_detection_probability(
        total, len(spot_checks), int(0.3 * total)
    )
    print(f"  attack detected: {not ss.spot_check_passed} "
          f"(analytic detection probability {analytic:.2f})")
    print("  -> replacement is detectable, but biased *injection* in SS is")
    print("     not — which is exactly why PEOS secret-shares the fakes.")


if __name__ == "__main__":
    main()
