#!/usr/bin/env python3
"""Scenario: finding the most frequent search queries privately.

The succinct-histogram case study of Section VII-C: the domain is all
48-bit strings (2^48 values — no frequency oracle can enumerate it), so
TreeHist walks a prefix tree, pruning to the top 32 prefixes per round
with a pluggable private frequency estimator.

We run the same task with the paper's SOLH (shuffle model), plain-LDP OLH,
and the central-DP Laplace upper bound, and report top-k precision.  The
budget is validated once through the facade's ``PrivacyBudget``; the
per-round estimators are the same registry mechanisms a ``ShuffleSession``
would deploy.

Run:  python examples/heavy_hitters.py
      REPRO_EXAMPLE_SCALE=0.05 python examples/heavy_hitters.py
"""

import os

import numpy as np

from repro.analysis import precision_at_k, treehist
from repro.api import PrivacyBudget
from repro.data import aol_like

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))
BUDGET = PrivacyBudget(eps=1.0, delta=1e-9)
K = 32 if SCALE >= 0.5 else 8


def main() -> None:
    rng = np.random.default_rng(3)
    data = aol_like(rng, scale=0.4 * SCALE)
    distinct = len(np.unique(data.values))
    print(f"query log: {data.n} queries, {distinct} distinct 48-bit strings")
    print(f"task: find the top-{K} queries under "
          f"({BUDGET.eps}, {BUDGET.delta})-DP\n")

    truth = data.top_k(K)
    truth_set = {int(v) for v in truth}

    for method in ("SOLH", "OLH", "Lap"):
        result = treehist(data, method, BUDGET.eps, BUDGET.delta, rng, k=K)
        precision = precision_at_k(truth, result.discovered)
        model = {
            "SOLH": "shuffle model (every user, eps/6 per round)",
            "OLH": "local model (users split into 6 groups)",
            "Lap": "central model (trusted curator)",
        }[method]
        print(f"{method:<5} [{model}]")
        print(f"      precision@{K} = {precision:.2f}")
        hits = [
            f"0x{int(v):012x}" for v in result.discovered[:5] if int(v) in truth_set
        ]
        print(f"      first true heavy hitters found: {', '.join(hits) or '(none)'}\n")

    print("takeaway: the shuffle model makes the heavy-hitter task feasible at")
    print("budgets where plain LDP finds essentially nothing (Figure 4).")


if __name__ == "__main__":
    main()
