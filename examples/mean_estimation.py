#!/usr/bin/env python3
"""Scenario: private mean estimation of a numerical attribute.

Beyond histograms, the other canonical shuffle-model task (the related
work the paper points to in Section VIII): estimate the average of a
bounded numerical value — say, daily screen-time minutes in [0, 600] —
over 200k users.  We compare the one-bit mechanism locally vs through the
shuffler, with confidence intervals from the analytical variance bound.

The numeric estimators live outside the categorical registry, so this
workload is not (yet) a ``ShuffleSession`` verb; the facade still
supplies the validated budget types, and the local-vs-central budget
semantics match ``PrivacyBudget.model`` exactly.

Run:  python examples/mean_estimation.py
      REPRO_EXAMPLE_SCALE=0.05 python examples/mean_estimation.py
"""

import os

import numpy as np

from repro.api import PrivacyBudget
from repro.frequency_oracles import (
    OneBitMeanEstimator,
    make_shuffled_mean_estimator,
    mean_confidence_halfwidth,
)

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))
N_USERS = max(5_000, int(200_000 * SCALE))
LOW, HIGH = 0.0, 600.0   # minutes per day
BUDGET = PrivacyBudget(eps=0.3, delta=1e-9)


def main() -> None:
    rng = np.random.default_rng(13)
    # A plausible screen-time population: lognormal-ish, clipped.
    values = np.clip(rng.lognormal(mean=5.0, sigma=0.6, size=N_USERS), LOW, HIGH)
    true_mean = float(values.mean())
    print(f"population: {N_USERS} users, values in [{LOW:.0f}, {HIGH:.0f}] minutes")
    print(f"true mean: {true_mean:.2f} minutes")
    print(f"central target: ({BUDGET.eps}, {BUDGET.delta})-DP\n")

    local = OneBitMeanEstimator(LOW, HIGH, BUDGET.eps)
    local_estimate = local.run(values, rng)
    local_halfwidth = mean_confidence_halfwidth(local, N_USERS)
    print(f"local model    eps_local={local.eps:.3f}  "
          f"estimate={local_estimate:7.2f} +- {local_halfwidth:.2f} (95%)")

    shuffled, amplification = make_shuffled_mean_estimator(
        LOW, HIGH, BUDGET.eps, N_USERS, BUDGET.delta
    )
    shuffled_estimate = shuffled.run(values, rng)
    shuffled_halfwidth = mean_confidence_halfwidth(shuffled, N_USERS)
    print(f"shuffle model  eps_local={shuffled.eps:.3f}  "
          f"estimate={shuffled_estimate:7.2f} +- {shuffled_halfwidth:.2f} (95%)")

    print(f"\namplification gain: users spend "
          f"{amplification.gain:.1f}x the central budget locally")
    print(f"interval width shrinks {local_halfwidth / shuffled_halfwidth:.1f}x "
          "just by routing reports through a shuffler")


if __name__ == "__main__":
    main()
