#!/usr/bin/env python3
"""Scenario: a continuously running PEOS telemetry service, via repro.api.

A vendor collects the most-used feature (one of 200) from a population of
clients that report in daily epochs.  Security requirements per *release*
(the three adversaries of Section V):

* eps_1 = 0.5 against the server alone (``Adv``);
* eps_2 = 2.0 even if the server controls every other client (``Adv_u``);
* eps_3 = 5.0 even if the server corrupts a majority of the shufflers
  (``Adv_a`` — then only local randomization protects users).

One facade call — ``ShuffleSession.stream`` — runs the Section VI-D
planner (mechanism, local budget, hash domain, fake-report count per
flush) and wires the streaming service of :mod:`repro.service`: buffering,
per-flush fake injection, incremental aggregation, and a cross-epoch
privacy accountant that refuses releases once the lifetime budget is
spent — here the budget admits four epochs and the demo runs five, so the
last one is dropped.

Run:  python examples/private_telemetry.py
      REPRO_EXAMPLE_SCALE=0.05 python examples/private_telemetry.py
"""

import os

import numpy as np

from repro.api import DeploymentConfig, PrivacyBudget, ShuffleSession
from repro.data import zipf_histogram
from repro.data.synthetic import values_from_histogram
from repro.protocol import PEOSDeployment, ThreatReport
from repro.service import flushes_per_epoch

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))
EPOCH_SIZE = max(2_000, int(100_000 * SCALE))  # clients reporting per epoch
FLUSH_SIZE = EPOCH_SIZE // 2  # reports per release
N_FEATURES = 200
DELTA = 1e-9
EPS_TARGETS = (0.5, 2.0, 5.0)
N_SHUFFLERS = 5
EPOCHS = 5
BUDGET_EPOCHS = 4  # the lifetime budget covers four epochs of releases


def main() -> None:
    rng = np.random.default_rng(11)

    print(f"epoch size: {EPOCH_SIZE} clients, features: {N_FEATURES}, "
          f"shufflers: {N_SHUFFLERS}")
    print(f"per-release targets: Adv <= {EPS_TARGETS[0]}, "
          f"Adv_u <= {EPS_TARGETS[1]}, Adv_a <= {EPS_TARGETS[2]} "
          f"(delta={DELTA})\n")

    # --- one facade call plans the flush and sizes the lifetime budget ------
    # Epoch-based budgeting prices the *actual* flush schedule (full
    # flushes plus any epoch-end remainder), so the "admits four epochs"
    # narrative holds at any REPRO_EXAMPLE_SCALE.  The "plain" backend
    # models honest shufflers without crypto so the demo runs at full
    # population scale; examples/secure_deployment.py exercises the same
    # release path through the real PEOS crypto.
    session = ShuffleSession(
        DeploymentConfig(mechanism="auto", d=N_FEATURES, r=N_SHUFFLERS),
        PrivacyBudget(eps=EPS_TARGETS[0], delta=DELTA),
    )
    pipeline = session.stream(
        FLUSH_SIZE,
        eps_targets=EPS_TARGETS,
        epoch_size=EPOCH_SIZE,
        admitted_epochs=BUDGET_EPOCHS,
        rng=rng,
    )
    config, plan = pipeline.config, pipeline.config.plan
    admitted = BUDGET_EPOCHS * flushes_per_epoch(EPOCH_SIZE, FLUSH_SIZE)
    print("planner output (Section VI-D, per flush):")
    print(f"  mechanism     : {plan.mechanism.upper()}")
    print(f"  local budget  : eps_l = {plan.eps_l:.3f}")
    print(f"  report domain : d' = {plan.d_prime}")
    print(f"  fake reports  : n_r = {plan.n_r} "
          f"({plan.n_r / FLUSH_SIZE:.1%} of a flush)")
    print(f"  predicted variance: {plan.variance:.3e}")
    print(f"lifetime budget: eps = {config.eps_budget:.3f} "
          f"(admits {admitted} flushes = {BUDGET_EPOCHS} epochs)\n")

    # --- evaluate one release against every adversary position ---------------
    deployment = PEOSDeployment(
        mechanism=plan.mechanism,
        eps_l=plan.eps_l,
        report_domain=plan.d_prime,
        n=FLUSH_SIZE,
        n_r=plan.n_r,
        r=N_SHUFFLERS,
        delta=DELTA,
    )
    print("threat report (one release):")
    for name, eps in ThreatReport.evaluate(deployment).rows():
        print(f"  {name:<38} eps = {eps:.3f}")

    # --- run the service across epochs ----------------------------------------
    submitted = []
    print(f"\n{'epoch':>5}  {'released':>8}  {'fakes':>7}  {'latency_s':>9}  "
          f"{'reports/s':>10}  {'eps_spent':>9}")
    for __ in range(EPOCHS):
        histogram = zipf_histogram(EPOCH_SIZE, N_FEATURES, 1.3, rng)
        submitted.append(values_from_histogram(histogram, rng))
        pipeline.submit(submitted[-1])
        report = pipeline.end_epoch()
        flag = "  <- budget refused" if report.n_rejected else ""
        print(f"{report.epoch:>5}  {report.n_reports:>8}  {report.n_fake:>7}  "
              f"{report.flush_latency_s:>9.3f}  {report.reports_per_sec:>10.0f}  "
              f"{report.eps_spent:>9.4f}{flag}")

    result = pipeline.result()
    print(f"\naccountant: spent eps = {result.eps_spent:.4f} of "
          f"{config.eps_budget:.4f}; {result.n_rejected} flush(es) refused")

    released = pipeline.released_values(np.concatenate(submitted))
    truth = np.bincount(released, minlength=N_FEATURES) / result.n_genuine
    mse = float(np.mean((result.estimates - truth) ** 2))
    worst = float(np.max(np.abs(result.estimates - truth)))
    print(f"incremental estimates over {result.n_genuine} released reports: "
          f"MSE = {mse:.3e} (planner predicted {plan.variance:.3e})")
    print(f"worst per-feature absolute error: {worst:.5f} "
          f"({worst * 100:.3f} percentage points)")


if __name__ == "__main__":
    main()
