#!/usr/bin/env python3
"""Scenario: planning a PEOS deployment for app-telemetry collection.

A vendor collects the most-used feature (one of 200) from 500k clients.
Security requirements (the three adversaries of Section V):

* eps_1 = 0.5 against the server alone (``Adv``);
* eps_2 = 2.0 even if the server controls every other client (``Adv_u``);
* eps_3 = 5.0 even if the server corrupts a majority of the shufflers
  (``Adv_a`` — then only local randomization protects users).

The Section VI-D planner searches mechanism (GRR vs SOLH), local budget,
hash domain, and fake-report count, and we verify the result with the
threat-model evaluator.

Run:  python examples/private_telemetry.py
"""

import numpy as np

from repro.core import plan_peos
from repro.data import zipf_histogram
from repro.frequency_oracles import GRR, SOLH
from repro.protocol import PEOSDeployment, ThreatReport

N_CLIENTS = 500_000
N_FEATURES = 200
DELTA = 1e-9
EPS_TARGETS = (0.5, 2.0, 5.0)
N_SHUFFLERS = 5


def main() -> None:
    rng = np.random.default_rng(11)

    print(f"clients: {N_CLIENTS}, features: {N_FEATURES}, shufflers: {N_SHUFFLERS}")
    print(f"targets: Adv <= {EPS_TARGETS[0]}, Adv_u <= {EPS_TARGETS[1]}, "
          f"Adv_a <= {EPS_TARGETS[2]} (delta={DELTA})\n")

    # --- plan the deployment -------------------------------------------------
    plan = plan_peos(*EPS_TARGETS, n=N_CLIENTS, d=N_FEATURES, delta=DELTA)
    print("planner output (Section VI-D):")
    print(f"  mechanism     : {plan.mechanism.upper()}")
    print(f"  local budget  : eps_l = {plan.eps_l:.3f}")
    print(f"  report domain : d' = {plan.d_prime}")
    print(f"  fake reports  : n_r = {plan.n_r} "
          f"({plan.n_r / N_CLIENTS:.1%} of the population)")
    print(f"  predicted variance: {plan.variance:.3e}\n")

    # --- evaluate it against every adversary position ------------------------
    deployment = PEOSDeployment(
        mechanism=plan.mechanism,
        eps_l=plan.eps_l,
        report_domain=plan.d_prime,
        n=N_CLIENTS,
        n_r=plan.n_r,
        r=N_SHUFFLERS,
        delta=DELTA,
    )
    print("threat report:")
    for name, eps in ThreatReport.evaluate(deployment).rows():
        print(f"  {name:<38} eps = {eps:.3f}")

    # --- simulate one collection round ---------------------------------------
    histogram = zipf_histogram(N_CLIENTS, N_FEATURES, 1.3, rng)
    truth = histogram / N_CLIENTS
    if plan.mechanism == "solh":
        oracle = SOLH(N_FEATURES, plan.eps_l, plan.d_prime)
    else:
        oracle = GRR(N_FEATURES, plan.eps_l)
    # Statistical simulation of the mechanism noise (the full crypto
    # pipeline, fake reports included, is exercised in
    # examples/secure_deployment.py).
    estimates = oracle.estimate_from_histogram(histogram, rng)
    mse = float(np.mean((estimates - truth) ** 2))
    print(f"\nsimulated collection round (without fake-report inflation): "
          f"MSE = {mse:.3e} (planner predicted {plan.variance:.3e} incl. fakes)")
    worst = float(np.max(np.abs(estimates - truth)))
    print(f"worst per-feature absolute error: {worst:.5f} "
          f"({worst * 100:.3f} percentage points)")


if __name__ == "__main__":
    main()
