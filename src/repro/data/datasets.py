"""Paper-shaped dataset surrogates (Section VII-A).

Each factory returns a :class:`Dataset` whose ``(n, d)`` match the paper's
real dataset exactly and whose histogram is Zipf-shaped (see DESIGN.md for
the substitution argument).  ``scale`` lets tests and quick benchmark runs
shrink ``n`` (and for Kosarak ``d``) proportionally while keeping the
shape; the full-size defaults reproduce the paper's setting.

* IPUMS 1940 ``city``: n=602,325 users, d=915 cities.
* Kosarak click streams: n=990,002 users, d=42,178 items.
* AOL queries: ~0.5M six-byte (48-bit) strings with ~0.12M distinct values
  (used by the succinct-histogram case study, Section VII-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .synthetic import zipf_histogram, zipf_probabilities


@dataclass
class Dataset:
    """A categorical population: histogram over ``[d]`` plus metadata."""

    name: str
    histogram: np.ndarray

    @property
    def n(self) -> int:
        """Number of users."""
        return int(self.histogram.sum())

    @property
    def d(self) -> int:
        """Domain size."""
        return len(self.histogram)

    @property
    def frequencies(self) -> np.ndarray:
        """True frequency vector ``f_v = n_v / n``."""
        return self.histogram / self.n

    def top_k(self, k: int) -> np.ndarray:
        """Indices of the ``k`` most frequent values (ties broken by index)."""
        return np.argsort(-self.histogram, kind="stable")[:k]

    def values(self, rng: np.random.Generator) -> np.ndarray:
        """Expand to a shuffled per-user value array."""
        values = np.repeat(np.arange(self.d), self.histogram)
        rng.shuffle(values)
        return values


def ipums_like(
    rng: np.random.Generator, scale: float = 1.0, exponent: float = 1.05
) -> Dataset:
    """IPUMS-1940-shaped population: d=915 cities, n=602,325 users.

    US city populations are classically Zipf with exponent near 1; we use
    1.05 which reproduces the head/tail balance that drives Figure 3.
    """
    n = max(1, int(602_325 * scale))
    return Dataset("ipums", zipf_histogram(n, 915, exponent, rng))


def kosarak_like(
    rng: np.random.Generator, scale: float = 1.0, exponent: float = 1.5
) -> Dataset:
    """Kosarak-shaped population: d=42,178 items, n=990,002 click streams.

    Click data is more skewed than census cities; exponent 1.5 gives the
    sparse long tail that makes GRR collapse and motivates SOLH (Table II).
    ``scale`` shrinks ``n`` only — the domain size is the point of this
    dataset, so it stays at 42,178 unless ``scale < 0.01`` (then reduced
    proportionally to keep n >= d sensible for quick tests).
    """
    n = max(1, int(990_002 * scale))
    d = 42_178 if scale >= 0.01 else max(100, int(42_178 * scale * 100))
    return Dataset("kosarak", zipf_histogram(n, d, exponent, rng))


@dataclass
class StringDataset:
    """Fixed-length bit-string population for the succinct-histogram task.

    ``values`` holds one integer (< 2^string_bits) per user.  The *true*
    domain is astronomically large (2^48); only the realized support
    matters, which mirrors the AOL query log.
    """

    name: str
    values: np.ndarray
    string_bits: int

    @property
    def n(self) -> int:
        return len(self.values)

    def top_k(self, k: int) -> np.ndarray:
        """The ``k`` most frequent strings."""
        uniques, counts = np.unique(self.values, return_counts=True)
        order = np.argsort(-counts, kind="stable")
        return uniques[order[:k]]

    def prefixes(self, bits: int) -> np.ndarray:
        """Every user's leading ``bits``-bit prefix."""
        if not 0 < bits <= self.string_bits:
            raise ValueError(f"prefix bits {bits} out of range")
        return self.values >> (self.string_bits - bits)


def aol_like(
    rng: np.random.Generator,
    scale: float = 1.0,
    string_bits: int = 48,
    vocabulary: int = 200_000,
    exponent: float = 1.0,
) -> StringDataset:
    """AOL-shaped query strings: ~0.5M users, ~0.12M distinct 48-bit strings.

    A vocabulary of ``vocabulary`` distinct random 48-bit strings gets
    Zipf(``exponent``) probabilities; users sample from it.  Query logs are
    classically Zipf(~1): that puts ~8% of the mass on the top string and
    ~0.26% on rank 32 — the regime where the paper's top-32 task is
    solvable by shuffle methods but hard for plain LDP — and makes the
    realized distinct count at full scale ~0.11M, matching the AOL log.
    """
    n = max(1, int(500_000 * scale))
    if string_bits % 8:
        raise ValueError(f"string_bits must be a multiple of 8, got {string_bits}")
    vocabulary = max(64, int(vocabulary * max(scale, 0.05)))
    # Distinct random strings: sample until unique (collision odds in 2^48
    # are negligible; one dedup pass keeps it exact).
    words = rng.integers(0, 1 << string_bits, size=int(vocabulary * 1.05), dtype=np.int64)
    words = np.unique(words)[:vocabulary]
    probabilities = zipf_probabilities(len(words), exponent)
    picks = rng.choice(len(words), size=n, p=probabilities)
    return StringDataset("aol", words[picks], string_bits)


def dataset_by_name(
    name: str, rng: np.random.Generator, scale: float = 1.0
) -> Optional[Dataset]:
    """Lookup used by benchmark harnesses: "ipums" or "kosarak"."""
    factories = {"ipums": ipums_like, "kosarak": kosarak_like}
    if name not in factories:
        return None
    return factories[name](rng, scale=scale)
