"""Synthetic datasets shaped like the paper's evaluation workloads."""

from .datasets import (
    Dataset,
    StringDataset,
    aol_like,
    dataset_by_name,
    ipums_like,
    kosarak_like,
)
from .synthetic import (
    mixture_histogram,
    uniform_histogram,
    values_from_histogram,
    zipf_histogram,
    zipf_probabilities,
)

__all__ = [
    "Dataset",
    "StringDataset",
    "aol_like",
    "dataset_by_name",
    "ipums_like",
    "kosarak_like",
    "mixture_histogram",
    "uniform_histogram",
    "values_from_histogram",
    "zipf_histogram",
    "zipf_probabilities",
]
