"""Synthetic workload generators.

The paper evaluates on three real datasets we cannot redistribute offline
(IPUMS 1940 census sample, Kosarak click streams, AOL query log).  All
three are heavy-tailed categorical distributions, and every metric in the
paper (MSE of frequency estimates, top-k precision) depends only on the
histogram shape, population size, and domain size — so Zipf-shaped
synthetic populations with the papers' exact ``(n, d)`` reproduce the
experimental conditions (see DESIGN.md, "Substitutions").

All generators take an explicit ``numpy.random.Generator`` and are fully
deterministic given it.
"""

from __future__ import annotations

import numpy as np


def zipf_probabilities(d: int, exponent: float = 1.1) -> np.ndarray:
    """Zipf(``exponent``) probability vector over ``d`` ranked values."""
    if d < 1:
        raise ValueError(f"domain size must be >= 1, got d={d}")
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    weights = 1.0 / np.arange(1, d + 1, dtype=float) ** exponent
    return weights / weights.sum()


def zipf_histogram(
    n: int, d: int, exponent: float, rng: np.random.Generator,
    shuffle_ranks: bool = True,
) -> np.ndarray:
    """Draw a multinomial histogram of ``n`` users from a Zipf(``exponent``).

    ``shuffle_ranks`` randomly assigns ranks to domain indices so that the
    popular values are not always the small indices (real datasets are not
    sorted by popularity).
    """
    probabilities = zipf_probabilities(d, exponent)
    if shuffle_ranks:
        probabilities = probabilities[rng.permutation(d)]
    return rng.multinomial(n, probabilities)


def uniform_histogram(n: int, d: int, rng: np.random.Generator) -> np.ndarray:
    """Multinomial histogram from the uniform distribution (worst case for
    top-k tasks, best case for the Base baseline)."""
    return rng.multinomial(n, np.full(d, 1.0 / d))


def values_from_histogram(
    histogram: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Expand a histogram into a shuffled array of per-user values."""
    histogram = np.asarray(histogram, dtype=np.int64)
    values = np.repeat(np.arange(len(histogram)), histogram)
    rng.shuffle(values)
    return values


def mixture_histogram(
    n: int,
    d: int,
    rng: np.random.Generator,
    head_values: int = 10,
    head_mass: float = 0.5,
) -> np.ndarray:
    """A head-heavy mixture: ``head_mass`` spread over ``head_values``
    uniformly-chosen values, the rest uniform over the domain.

    Used by tests that need a known, controllable set of heavy hitters.
    """
    if not 0.0 <= head_mass <= 1.0:
        raise ValueError(f"head mass must be in [0, 1], got {head_mass}")
    if not 0 < head_values <= d:
        raise ValueError(f"invalid head size {head_values} for domain {d}")
    probabilities = np.full(d, (1.0 - head_mass) / d)
    head = rng.choice(d, size=head_values, replace=False)
    probabilities[head] += head_mass / head_values
    probabilities /= probabilities.sum()
    return rng.multinomial(n, probabilities)
