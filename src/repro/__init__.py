"""repro — reproduction of "Improving Utility and Security of the
Shuffler-based Differential Privacy" (Wang et al., VLDB 2020).

Layout:

* :mod:`repro.core` — shuffle-model accounting: amplification bounds
  (Table I, Theorems 1-3), utility analysis (Propositions 4-6, Eq. 5),
  PEOS privacy/utility (Corollaries 8-9), and the Section VI-D planner.
* :mod:`repro.frequency_oracles` — GRR, OLH, Hadamard, RAPPOR variants,
  AUE, SOLH, and central baselines.
* :mod:`repro.hashing` — seeded universal hash families.
* :mod:`repro.crypto` — Paillier, DGK, AES-128-CBC, secp256r1 ElGamal,
  additive secret sharing, onion encryption.
* :mod:`repro.shuffle` — single shuffler, sequential SS, oblivious
  shuffle, and EOS.
* :mod:`repro.protocol` — PEOS end to end, parties/adversaries, attacks,
  cost accounting.
* :mod:`repro.data` — paper-shaped synthetic workloads.
* :mod:`repro.analysis` — metrics, experiment harness, TreeHist.
* :mod:`repro.service` — streaming telemetry service: epoch buffering,
  cross-epoch budget accounting, pluggable shuffle backends, and an
  incremental analyzer.

Quick start::

    import numpy as np
    from repro.data import ipums_like
    from repro.frequency_oracles import SOLH

    rng = np.random.default_rng(0)
    data = ipums_like(rng, scale=0.1)
    oracle, amplification = SOLH.for_central_target(
        d=data.d, eps_c=0.5, n=data.n, delta=1e-9
    )
    estimates = oracle.estimate_from_histogram(data.histogram, rng)
"""

__version__ = "1.0.0"

from . import analysis, core, costs, crypto, data, frequency_oracles, hashing
from . import protocol, service, shuffle

__all__ = [
    "__version__",
    "analysis",
    "core",
    "costs",
    "crypto",
    "data",
    "frequency_oracles",
    "hashing",
    "protocol",
    "service",
    "shuffle",
]
