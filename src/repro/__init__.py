"""repro — reproduction of "Improving Utility and Security of the
Shuffler-based Differential Privacy" (Wang et al., VLDB 2020).

Layout:

* :mod:`repro.api` — **the front door**: typed configs, a
  :class:`~repro.api.ShuffleSession` with the three verbs
  (``estimate`` / ``sweep`` / ``stream``), and rich result objects.
* :mod:`repro.core` — shuffle-model accounting: amplification bounds
  (Table I, Theorems 1-3), utility analysis (Propositions 4-6, Eq. 5),
  PEOS privacy/utility (Corollaries 8-9), the Section VI-D planner, and
  the mechanism registry every layer resolves through.
* :mod:`repro.frequency_oracles` — GRR, OLH, Hadamard, RAPPOR variants,
  AUE, SOLH, and central baselines.
* :mod:`repro.hashing` — seeded universal hash families (all fully
  vectorized, including the paper's xxHash32 prototype) and the
  low-allocation support-count kernel engine behind every O(n*d)
  aggregation hot path.
* :mod:`repro.crypto` — Paillier, DGK, AES-128-CBC, secp256r1 ElGamal,
  additive secret sharing, onion encryption.
* :mod:`repro.shuffle` — single shuffler, sequential SS, oblivious
  shuffle, and EOS.
* :mod:`repro.protocol` — PEOS end to end, parties/adversaries, attacks,
  cost accounting.
* :mod:`repro.data` — paper-shaped synthetic workloads.
* :mod:`repro.analysis` — metrics, experiment harness, TreeHist.
* :mod:`repro.service` — streaming telemetry service: epoch buffering,
  cross-epoch budget accounting, pluggable shuffle backends, an
  incremental analyzer, and multi-process sharded folding
  (:class:`~repro.service.ShardedPipeline`).
* :mod:`repro.server` — the stdlib-only async HTTP front door: batched
  report ingestion with bounded-queue backpressure (429 +
  ``Retry-After``) and the paginated estimate query API.

Quick start — one session object covers one-shot, sweep, and streaming::

    import numpy as np
    from repro import DeploymentConfig, PrivacyBudget, ShuffleSession
    from repro.data import ipums_like

    data = ipums_like(np.random.default_rng(0), scale=0.1)
    session = ShuffleSession(
        DeploymentConfig(mechanism="SOLH", d=data.d),
        PrivacyBudget(eps=0.5, delta=1e-9),
    )

    result = session.estimate(data.histogram, seed=0)
    print(result.estimates[:5], result.amplification.gain, result.variance)

    sweep = session.sweep(data.histogram, [0.2, 0.5, 1.0], repeats=5, seed=0)
    print(sweep.table())

    pipeline = session.stream(flush_size=10_000)   # TelemetryPipeline
    pipeline.submit(np.random.default_rng(1).integers(0, data.d, 10_000))
    print(pipeline.end_epoch())

Streaming scales out without changing results: ``session.stream(...,
shards=4, backend="process")`` returns a
:class:`~repro.service.ShardedPipeline` that folds flushes on a
spawn-safe process pool — estimates are bit-identical to the single-shard
pipeline at the same seed, at any shard or worker count.

Serving over the network — ``repro serve`` stands the same pipeline up
behind HTTP (stdlib only; SIGTERM shuts it down cleanly, exit 0)::

    repro serve --port 8000 --d 64 --flush-size 1000 \\
        --epoch-size 4000 --budget-epochs 8 --state-db run.db
    curl -s -X POST localhost:8000/api/reports -d '{"values": [3, 0, 7, 3]}'
    curl -s -X POST localhost:8000/api/epochs
    curl -s 'localhost:8000/api/estimates?limit=50&sort=-estimate'

Uploads validate against the deployment's domain (400 names the bad
field), a full ingest queue pushes back with 429 + ``Retry-After``, and
``GET /api/estimates`` serves the released epoch log with
limit/offset plus keyset-cursor pagination.  In code:
``session.serve(flush_size, port=0, ...)`` returns an ``async with``-able
:class:`~repro.server.TelemetryServer`; estimates ingested over HTTP are
bit-identical to an in-process run fed the same arrival order at the
same seed.

The legacy entry points (direct oracle construction,
``analysis.run_sweep``, ``service.TelemetryPipeline``) remain supported
and bit-identical; the facade is a thin validated wrapper over them.
"""

__version__ = "1.1.0"

from . import analysis, api, core, costs, crypto, data, frequency_oracles
from . import hashing, protocol, server, service, shuffle
from .api import (
    Amplification,
    ConfigError,
    DeploymentConfig,
    EstimateResult,
    PrivacyBudget,
    ShuffleSession,
    SweepResultSet,
)

__all__ = [
    "__version__",
    "Amplification",
    "ConfigError",
    "DeploymentConfig",
    "EstimateResult",
    "PrivacyBudget",
    "ShuffleSession",
    "SweepResultSet",
    "analysis",
    "api",
    "core",
    "costs",
    "crypto",
    "data",
    "frequency_oracles",
    "hashing",
    "protocol",
    "server",
    "service",
    "shuffle",
]
