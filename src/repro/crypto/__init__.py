"""Cryptographic substrate: everything PEOS and SS build on.

All schemes are complete pure-Python implementations (no mocks):

* :mod:`repro.crypto.paillier` — Paillier AHE (plaintext ``Z_N``).
* :mod:`repro.crypto.dgk` — DGK-style AHE with plaintext ``Z_{2^l}`` and
  Pohlig-Hellman full decryption (Section VI-A3's requirement).
* :mod:`repro.crypto.aes` — AES-128-CBC (FIPS-197 validated).
* :mod:`repro.crypto.elgamal_ec` — secp256r1 hybrid ElGamal.
* :mod:`repro.crypto.secret_sharing` — additive sharing over ``Z_M``.
* :mod:`repro.crypto.onion` — layered encryption for the SS baseline.
"""

from . import aes, dgk, elgamal_ec, math_utils, onion, paillier, secret_sharing
from .aes import AES128CBC
from .secret_sharing import (
    add_share_vectors,
    reconstruct_value,
    reconstruct_vector,
    share_value,
    share_vector,
)

__all__ = [
    "AES128CBC",
    "add_share_vectors",
    "aes",
    "dgk",
    "elgamal_ec",
    "math_utils",
    "onion",
    "paillier",
    "reconstruct_value",
    "reconstruct_vector",
    "secret_sharing",
    "share_value",
    "share_vector",
]
