"""DGK-style additively homomorphic encryption with plaintext space ``Z_{2^l}``.

Section VI-A3 requires an AHE whose plaintext space is exactly ``Z_{2^l}``
so that secret shares wrap modulo ``2^l`` *inside* the homomorphism and
decrypted fake reports are indistinguishable from genuine ones.  The paper
instantiates this with the full-decryption variant of DGK [24] using the
Pohlig-Hellman algorithm [49]; this module implements that construction:

* ``N = p q`` with ``2^l v_p | p - 1`` and ``2^l v_q | q - 1`` for secret
  primes ``v_p, v_q``;
* generator ``g`` of order ``2^l v_p v_q`` and blinder ``h`` of order
  ``v_p v_q`` modulo ``N``;
* ``Enc(m; r) = g^m h^r mod N``;
* decryption raises to the ``v_p``-th power mod ``p`` (annihilating the
  blinder) and solves the discrete log in the order-``2^l`` subgroup with
  Pohlig-Hellman, one plaintext bit per iteration.

Addition of ciphertexts adds plaintexts modulo ``2^l`` — exactly the share
group.  Key sizes are configurable; tests use small parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from .math_utils import (
    RandomLike,
    as_random,
    crt_pair,
    invmod,
    random_prime,
    random_prime_with_factor,
)


@dataclass(frozen=True)
class DGKPublicKey:
    """Public key ``(N, g, h, l)``; plaintext space is ``Z_{2^l}``."""

    n: int
    g: int
    h: int
    l: int
    #: bit-length of blinding exponents (2.5x the subgroup size in DGK)
    blind_bits: int = 400

    @property
    def plaintext_space(self) -> int:
        return 1 << self.l

    def encrypt(self, message: int, rng: RandomLike = None) -> int:
        """``Enc(m; r) = g^m h^r mod N`` with a fresh blinding exponent."""
        message %= self.plaintext_space
        r = as_random(rng).getrandbits(self.blind_bits)
        return pow(self.g, message, self.n) * pow(self.h, r, self.n) % self.n

    def add(self, ciphertext_a: int, ciphertext_b: int) -> int:
        """Homomorphic addition modulo ``2^l``."""
        return ciphertext_a * ciphertext_b % self.n

    def add_plain(self, ciphertext: int, plain: int) -> int:
        """Add a plaintext constant."""
        return ciphertext * pow(self.g, plain % self.plaintext_space, self.n) % self.n

    def multiply_plain(self, ciphertext: int, scalar: int) -> int:
        """Multiply the plaintext by a constant."""
        return pow(ciphertext, scalar % self.plaintext_space, self.n)

    def rerandomize(self, ciphertext: int, rng: RandomLike = None) -> int:
        """Refresh the blinding without changing the plaintext."""
        r = as_random(rng).getrandbits(self.blind_bits)
        return ciphertext * pow(self.h, r, self.n) % self.n

    @property
    def ciphertext_bytes(self) -> int:
        """Serialized ciphertext size (the Table III communication unit)."""
        return (self.n.bit_length() + 7) // 8


@dataclass(frozen=True)
class DGKPrivateKey:
    """Private key: the prime ``p``, subgroup prime ``v_p``, and the
    precomputed Pohlig-Hellman tables for the order-``2^l`` subgroup."""

    public_key: DGKPublicKey
    p: int
    v_p: int
    #: g^{v_p} mod p — generator of the order-2^l subgroup
    g_hat: int
    #: inverse of g_hat mod p
    g_hat_inv: int

    def decrypt(self, ciphertext: int) -> int:
        """Full decryption via Pohlig-Hellman in the order-``2^l`` subgroup.

        ``c^{v_p} mod p = g_hat^m`` (the blinder ``h`` dies because its
        order mod ``p`` divides ``v_p``); the discrete log of a ``2^l``-order
        element is recovered bit by bit in ``l`` iterations.
        """
        l = self.public_key.l
        beta = pow(ciphertext % self.p, self.v_p, self.p)
        message = 0
        # Classic Pohlig-Hellman for the prime power 2^l: at step k, the
        # residual beta has order dividing 2^{l-k}; its 2^{l-1-k} power is
        # +-1 and reveals bit k.
        inv_power = self.g_hat_inv
        for k in range(l):
            t = pow(beta, 1 << (l - 1 - k), self.p)
            if t != 1:
                message |= 1 << k
                beta = beta * inv_power % self.p
            inv_power = inv_power * inv_power % self.p
        return message


def _element_of_order(
    p: int, order: int, prime_factors: list[int], rng: RandomLike
) -> int:
    """Random element of exact multiplicative order ``order`` modulo prime ``p``.

    ``order`` must divide ``p - 1`` and ``prime_factors`` must list its
    distinct prime divisors (known by construction at key generation: the
    orders are ``2^l * v`` or ``v`` with ``v`` prime).  Samples
    ``x^{(p-1)/order}`` until the result has full order.
    """
    rand = as_random(rng)
    cofactor = (p - 1) // order
    while True:
        x = rand.randrange(2, p - 1)
        candidate = pow(x, cofactor, p)
        if candidate == 1:
            continue
        if all(pow(candidate, order // f, p) != 1 for f in prime_factors):
            return candidate


def generate_keypair(
    l: int = 32,
    key_bits: int = 1024,
    subgroup_bits: int = 160,
    rng: RandomLike = None,
) -> tuple[DGKPublicKey, DGKPrivateKey]:
    """Generate a DGK keypair with plaintext space ``Z_{2^l}``.

    Parameters
    ----------
    l:
        Plaintext bit-length (the paper uses 32 or 64).
    key_bits:
        Modulus size; the paper's deployment uses 3072, tests use less.
    subgroup_bits:
        Size of the secret primes ``v_p, v_q`` (DGK's ``t`` parameter).
    """
    if l < 1:
        raise ValueError(f"plaintext bits must be >= 1, got {l}")
    rand = as_random(rng)
    u = 1 << l
    half = key_bits // 2
    v_p = random_prime(subgroup_bits, rand)
    v_q = random_prime(subgroup_bits, rand)
    while v_q == v_p:
        v_q = random_prime(subgroup_bits, rand)
    p = random_prime_with_factor(half, u * v_p, rand)
    q = random_prime_with_factor(key_bits - half, u * v_q, rand)
    while p == q:
        q = random_prime_with_factor(key_bits - half, u * v_q, rand)
    n = p * q

    # g has order u * v_p mod p and u * v_q mod q (hence u * v_p * v_q mod N);
    # h has order v_p mod p and v_q mod q.
    g_p = _element_of_order(p, u * v_p, [2, v_p], rand)
    g_q = _element_of_order(q, u * v_q, [2, v_q], rand)
    h_p = _element_of_order(p, v_p, [v_p], rand)
    h_q = _element_of_order(q, v_q, [v_q], rand)
    g = crt_pair(g_p, p, g_q, q)
    h = crt_pair(h_p, p, h_q, q)

    public = DGKPublicKey(n=n, g=g, h=h, l=l, blind_bits=int(2.5 * subgroup_bits))
    g_hat = pow(g, v_p, p)
    private = DGKPrivateKey(
        public_key=public,
        p=p,
        v_p=v_p,
        g_hat=g_hat,
        g_hat_inv=invmod(g_hat, p),
    )
    return public, private
