"""Elliptic-curve ElGamal (hybrid) over secp256r1 / NIST P-256.

The SS baseline (Section VII-A) encrypts each onion layer's AES key with
ElGamal over secp256r1.  We implement the curve arithmetic from the domain
parameters and a hashed-ElGamal / ECIES-style hybrid: an ephemeral scalar
``k`` yields the shared point ``k * Pub`` whose x-coordinate is hashed
(SHA-256) into the AES-128 key that encrypts the payload.  Costs match the
paper's "ElGamal encrypts the AES key" construction: one scalar
multiplication pair per layer.

Point arithmetic is affine with modular inverses — slow but simple and easy
to audit; benchmark extrapolations account for the constant factor.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from .aes import AES128CBC
from .math_utils import RandomLike, as_random, invmod

# secp256r1 (NIST P-256) domain parameters.
P = 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF
A = P - 3
B = 0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B
N = 0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551
G_X = 0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296
G_Y = 0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5


@dataclass(frozen=True)
class Point:
    """Affine point on P-256; ``None`` coordinates encode the identity."""

    x: Optional[int]
    y: Optional[int]

    @property
    def is_identity(self) -> bool:
        return self.x is None


IDENTITY = Point(None, None)
GENERATOR = Point(G_X, G_Y)


def is_on_curve(point: Point) -> bool:
    """Check the curve equation ``y^2 = x^3 + ax + b (mod p)``."""
    if point.is_identity:
        return True
    x, y = point.x, point.y
    return (y * y - (x * x * x + A * x + B)) % P == 0


def point_add(p1: Point, p2: Point) -> Point:
    """Affine point addition with the standard doubling/inverse cases."""
    if p1.is_identity:
        return p2
    if p2.is_identity:
        return p1
    if p1.x == p2.x:
        if (p1.y + p2.y) % P == 0:
            return IDENTITY
        return point_double(p1)
    slope = (p2.y - p1.y) * invmod(p2.x - p1.x, P) % P
    x3 = (slope * slope - p1.x - p2.x) % P
    y3 = (slope * (p1.x - x3) - p1.y) % P
    return Point(x3, y3)


def point_double(point: Point) -> Point:
    """Affine point doubling."""
    if point.is_identity or point.y == 0:
        return IDENTITY
    slope = (3 * point.x * point.x + A) * invmod(2 * point.y, P) % P
    x3 = (slope * slope - 2 * point.x) % P
    y3 = (slope * (point.x - x3) - point.y) % P
    return Point(x3, y3)


def _jacobian_double(x: int, y: int, z: int) -> tuple[int, int, int]:
    """Point doubling in Jacobian coordinates (a = -3 shortcut)."""
    if not y:
        return 0, 1, 0
    ysq = y * y % P
    s = 4 * x * ysq % P
    zsq = z * z % P
    # m = 3x^2 + a z^4 with a = -3: 3 (x - z^2)(x + z^2)
    m = 3 * (x - zsq) * (x + zsq) % P
    nx = (m * m - 2 * s) % P
    ny = (m * (s - nx) - 8 * ysq * ysq) % P
    nz = 2 * y * z % P
    return nx, ny, nz


def _jacobian_add(
    x1: int, y1: int, z1: int, x2: int, y2: int, z2: int
) -> tuple[int, int, int]:
    """Mixed/general Jacobian addition."""
    if not z1:
        return x2, y2, z2
    if not z2:
        return x1, y1, z1
    z1sq = z1 * z1 % P
    z2sq = z2 * z2 % P
    u1 = x1 * z2sq % P
    u2 = x2 * z1sq % P
    s1 = y1 * z2sq * z2 % P
    s2 = y2 * z1sq * z1 % P
    if u1 == u2:
        if s1 != s2:
            return 0, 1, 0
        return _jacobian_double(x1, y1, z1)
    h = (u2 - u1) % P
    rr = (s2 - s1) % P
    hsq = h * h % P
    hcube = hsq * h % P
    u1hsq = u1 * hsq % P
    nx = (rr * rr - hcube - 2 * u1hsq) % P
    ny = (rr * (u1hsq - nx) - s1 * hcube) % P
    nz = h * z1 * z2 % P
    return nx, ny, nz


def scalar_mult(scalar: int, point: Point) -> Point:
    """Scalar multiplication in Jacobian coordinates (one final inversion)."""
    scalar %= N
    if scalar == 0 or point.is_identity:
        return IDENTITY
    rx, ry, rz = 0, 1, 0
    ax, ay, az = point.x, point.y, 1
    while scalar:
        if scalar & 1:
            rx, ry, rz = _jacobian_add(rx, ry, rz, ax, ay, az)
        ax, ay, az = _jacobian_double(ax, ay, az)
        scalar >>= 1
    if not rz:
        return IDENTITY
    z_inv = invmod(rz, P)
    z_inv_sq = z_inv * z_inv % P
    return Point(rx * z_inv_sq % P, ry * z_inv_sq * z_inv % P)


@dataclass(frozen=True)
class ECKeyPair:
    """A P-256 keypair: secret scalar and public point."""

    private: int
    public: Point


def generate_keypair(rng: RandomLike = None) -> ECKeyPair:
    """Draw a uniform nonzero scalar and derive the public point."""
    rand = as_random(rng)
    private = rand.randrange(1, N)
    return ECKeyPair(private=private, public=scalar_mult(private, GENERATOR))


def _derive_key(shared: Point) -> bytes:
    """KDF: SHA-256 of the shared x-coordinate, truncated to AES-128."""
    if shared.is_identity:
        raise ValueError("shared secret is the identity point")
    return hashlib.sha256(shared.x.to_bytes(32, "big")).digest()[:16]


@dataclass(frozen=True)
class HybridCiphertext:
    """EC-ElGamal hybrid ciphertext: ephemeral point + IV + AES payload."""

    ephemeral: Point
    iv: bytes
    payload: bytes

    @property
    def size_bytes(self) -> int:
        """Wire size: 64-byte uncompressed point + IV + payload."""
        return 64 + len(self.iv) + len(self.payload)


def encrypt(
    message: bytes, public: Point, rng: RandomLike = None
) -> HybridCiphertext:
    """Hashed-ElGamal hybrid encryption of an arbitrary byte string."""
    rand = as_random(rng)
    while True:
        k = rand.randrange(1, N)
        shared = scalar_mult(k, public)
        if not shared.is_identity:
            break
    key = _derive_key(shared)
    iv = bytes(rand.getrandbits(8) for _ in range(16))
    payload = AES128CBC(key).encrypt(message, iv)
    return HybridCiphertext(
        ephemeral=scalar_mult(k, GENERATOR), iv=iv, payload=payload
    )


def decrypt(ciphertext: HybridCiphertext, private: int) -> bytes:
    """Invert :func:`encrypt` with the recipient's secret scalar."""
    shared = scalar_mult(private, ciphertext.ephemeral)
    key = _derive_key(shared)
    return AES128CBC(key).decrypt(ciphertext.payload, ciphertext.iv)
