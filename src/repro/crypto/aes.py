"""Pure-Python AES-128 with CBC mode and PKCS#7 padding.

The SS (sequential shuffle) baseline of Section VII-D encrypts each onion
layer with AES-128-CBC under a fresh key; ``pycrypto`` is unavailable
offline, so this module implements FIPS-197 AES-128 directly (validated
against the FIPS-197 and NIST SP 800-38A test vectors in
``tests/crypto/test_aes.py``).

This is a straightforward table-based implementation — fine for a protocol
reproduction, *not* hardened against timing side channels.
"""

from __future__ import annotations

# FIPS-197 S-box and its inverse.
_SBOX = bytes.fromhex(
    "637c777bf26b6fc53001672bfed7ab76ca82c97dfa5947f0add4a2af9ca472c0"
    "b7fd9326363ff7cc34a5e5f171d8311504c723c31896059a071280e2eb27b275"
    "09832c1a1b6e5aa0523bd6b329e32f8453d100ed20fcb15b6acbbe394a4c58cf"
    "d0efaafb434d338545f9027f503c9fa851a3408f929d38f5bcb6da2110fff3d2"
    "cd0c13ec5f974417c4a77e3d645d197360814fdc222a908846eeb814de5e0bdb"
    "e0323a0a4906245cc2d3ac629195e479e7c8376d8dd54ea96c56f4ea657aae08"
    "ba78252e1ca6b4c6e8dd741f4bbd8b8a703eb5664803f60e613557b986c11d9e"
    "e1f8981169d98e949b1e87e9ce5528df8ca1890dbfe6426841992d0fb054bb16"
)
_INV_SBOX = bytes.fromhex(
    "52096ad53036a538bf40a39e81f3d7fb7ce339829b2fff87348e4344c4dee9cb"
    "547b9432a6c2233dee4c950b42fac34e082ea16628d924b2765ba2496d8bd125"
    "72f8f66486689816d4a45ccc5d65b6926c704850fdedb9da5e154657a78d9d84"
    "90d8ab008cbcd30af7e45805b8b34506d02c1e8fca3f0f02c1afbd0301138a6b"
    "3a9111414f67dcea97f2cfcef0b4e67396ac7422e7ad3585e2f937e81c75df6e"
    "47f11a711d29c5896fb7620eaa18be1bfc563e4bc6d279209adbc0fe78cd5af4"
    "1fdda8338807c731b11210592780ec5f60517fa919b54a0d2de57a9f93c99cef"
    "a0e03b4dae2af5b0c8ebbb3c83539961172b047eba77d626e169146355210c7d"
)
_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def _xtime(a: int) -> int:
    """Multiply by x in GF(2^8)."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a


def _gf_mul(a: int, b: int) -> int:
    """GF(2^8) multiplication (Russian-peasant)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def expand_key(key: bytes) -> list[list[int]]:
    """AES-128 key schedule: 11 round keys of 16 bytes each."""
    if len(key) != 16:
        raise ValueError(f"AES-128 key must be 16 bytes, got {len(key)}")
    words = [list(key[i:i + 4]) for i in range(0, 16, 4)]
    for i in range(4, 44):
        word = list(words[i - 1])
        if i % 4 == 0:
            word = word[1:] + word[:1]
            word = [_SBOX[b] for b in word]
            word[0] ^= _RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], word)])
    return [sum(words[4 * r:4 * r + 4], []) for r in range(11)]


def _add_round_key(state: list[int], round_key: list[int]) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


def _sub_bytes(state: list[int], box: bytes) -> None:
    for i in range(16):
        state[i] = box[state[i]]


# State layout: state[4*c + r] is row r, column c (column-major, as in FIPS-197
# byte order of the input block).

def _shift_rows(state: list[int]) -> None:
    for r in range(1, 4):
        row = [state[4 * c + r] for c in range(4)]
        row = row[r:] + row[:r]
        for c in range(4):
            state[4 * c + r] = row[c]


def _inv_shift_rows(state: list[int]) -> None:
    for r in range(1, 4):
        row = [state[4 * c + r] for c in range(4)]
        row = row[-r:] + row[:-r]
        for c in range(4):
            state[4 * c + r] = row[c]


def _mix_columns(state: list[int]) -> None:
    for c in range(4):
        col = state[4 * c:4 * c + 4]
        state[4 * c + 0] = _gf_mul(col[0], 2) ^ _gf_mul(col[1], 3) ^ col[2] ^ col[3]
        state[4 * c + 1] = col[0] ^ _gf_mul(col[1], 2) ^ _gf_mul(col[2], 3) ^ col[3]
        state[4 * c + 2] = col[0] ^ col[1] ^ _gf_mul(col[2], 2) ^ _gf_mul(col[3], 3)
        state[4 * c + 3] = _gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ _gf_mul(col[3], 2)


def _inv_mix_columns(state: list[int]) -> None:
    for c in range(4):
        col = state[4 * c:4 * c + 4]
        state[4 * c + 0] = (_gf_mul(col[0], 14) ^ _gf_mul(col[1], 11)
                            ^ _gf_mul(col[2], 13) ^ _gf_mul(col[3], 9))
        state[4 * c + 1] = (_gf_mul(col[0], 9) ^ _gf_mul(col[1], 14)
                            ^ _gf_mul(col[2], 11) ^ _gf_mul(col[3], 13))
        state[4 * c + 2] = (_gf_mul(col[0], 13) ^ _gf_mul(col[1], 9)
                            ^ _gf_mul(col[2], 14) ^ _gf_mul(col[3], 11))
        state[4 * c + 3] = (_gf_mul(col[0], 11) ^ _gf_mul(col[1], 13)
                            ^ _gf_mul(col[2], 9) ^ _gf_mul(col[3], 14))


def encrypt_block(block: bytes, round_keys: list[list[int]]) -> bytes:
    """Encrypt one 16-byte block with an expanded AES-128 key."""
    if len(block) != 16:
        raise ValueError(f"block must be 16 bytes, got {len(block)}")
    state = list(block)
    _add_round_key(state, round_keys[0])
    for rnd in range(1, 10):
        _sub_bytes(state, _SBOX)
        _shift_rows(state)
        _mix_columns(state)
        _add_round_key(state, round_keys[rnd])
    _sub_bytes(state, _SBOX)
    _shift_rows(state)
    _add_round_key(state, round_keys[10])
    return bytes(state)


def decrypt_block(block: bytes, round_keys: list[list[int]]) -> bytes:
    """Decrypt one 16-byte block with an expanded AES-128 key."""
    if len(block) != 16:
        raise ValueError(f"block must be 16 bytes, got {len(block)}")
    state = list(block)
    _add_round_key(state, round_keys[10])
    for rnd in range(9, 0, -1):
        _inv_shift_rows(state)
        _sub_bytes(state, _INV_SBOX)
        _add_round_key(state, round_keys[rnd])
        _inv_mix_columns(state)
    _inv_shift_rows(state)
    _sub_bytes(state, _INV_SBOX)
    _add_round_key(state, round_keys[0])
    return bytes(state)


def pkcs7_pad(data: bytes, block_size: int = 16) -> bytes:
    """Append PKCS#7 padding (always adds at least one byte)."""
    pad_len = block_size - len(data) % block_size
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int = 16) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not data or len(data) % block_size:
        raise ValueError("invalid padded length")
    pad_len = data[-1]
    if not 1 <= pad_len <= block_size or data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise ValueError("invalid PKCS#7 padding")
    return data[:-pad_len]


class AES128CBC:
    """AES-128 in CBC mode with PKCS#7 padding."""

    block_size = 16

    def __init__(self, key: bytes):
        self._round_keys = expand_key(key)

    def encrypt(self, plaintext: bytes, iv: bytes) -> bytes:
        """CBC-encrypt ``plaintext`` (padded) under the 16-byte ``iv``."""
        if len(iv) != self.block_size:
            raise ValueError(f"IV must be {self.block_size} bytes, got {len(iv)}")
        data = pkcs7_pad(plaintext, self.block_size)
        out = bytearray()
        previous = iv
        for start in range(0, len(data), self.block_size):
            block = bytes(
                a ^ b for a, b in zip(data[start:start + self.block_size], previous)
            )
            previous = encrypt_block(block, self._round_keys)
            out += previous
        return bytes(out)

    def decrypt(self, ciphertext: bytes, iv: bytes) -> bytes:
        """CBC-decrypt and strip padding."""
        if len(iv) != self.block_size:
            raise ValueError(f"IV must be {self.block_size} bytes, got {len(iv)}")
        if len(ciphertext) % self.block_size:
            raise ValueError("ciphertext length not a multiple of the block size")
        out = bytearray()
        previous = iv
        for start in range(0, len(ciphertext), self.block_size):
            block = ciphertext[start:start + self.block_size]
            plain = decrypt_block(block, self._round_keys)
            out += bytes(a ^ b for a, b in zip(plain, previous))
            previous = block
        return pkcs7_unpad(bytes(out), self.block_size)

    def encrypt_block_raw(self, block: bytes) -> bytes:
        """Single-block ECB encryption (used by test vectors only)."""
        return encrypt_block(block, self._round_keys)

    def decrypt_block_raw(self, block: bytes) -> bytes:
        """Single-block ECB decryption (used by test vectors only)."""
        return decrypt_block(block, self._round_keys)
