"""Paillier additively homomorphic encryption.

The workhorse AHE of the library: plaintext space ``Z_N`` for an RSA-style
modulus ``N``, with ``Enc(a) * Enc(b) = Enc(a + b mod N)``.  PEOS uses it to
keep one secret share encrypted through the oblivious shuffle; because share
sums never approach ``N`` (shares live in a report group of at most ~2^96),
reducing the decrypted sum modulo the share group is exact.

Implementation notes:

* Standard simplification ``g = N + 1``, so ``Enc(m; r) = (1 + mN) r^N
  mod N^2`` needs one modular exponentiation.
* Decryption uses ``lambda = lcm(p-1, q-1)`` and ``mu = lambda^{-1} mod N``.
* ``key_bits`` is configurable; tests use small keys (256-512 bits) for
  speed, benchmarks report timings for the configured size.  This is a
  reproduction — do not use for actual sensitive data without a constant-
  time bignum backend.
"""

from __future__ import annotations

from dataclasses import dataclass

from .math_utils import RandomLike, as_random, invmod, lcm, random_prime


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public key: the modulus ``N`` (generator is implicitly ``N + 1``)."""

    n: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def plaintext_space(self) -> int:
        return self.n

    def encrypt(self, message: int, rng: RandomLike = None) -> int:
        """``Enc(m; r) = (1 + mN) * r^N mod N^2`` with fresh unit ``r``."""
        message %= self.n
        rand = as_random(rng)
        while True:
            r = rand.randrange(1, self.n)
            # gcd(r, N) != 1 happens with probability ~2/sqrt(N); retry.
            if _coprime(r, self.n):
                break
        return (1 + message * self.n) * pow(r, self.n, self.n_squared) % self.n_squared

    def add(self, ciphertext_a: int, ciphertext_b: int) -> int:
        """Homomorphic addition: ``Enc(a) (*) Enc(b) = Enc(a + b)``."""
        return ciphertext_a * ciphertext_b % self.n_squared

    def add_plain(self, ciphertext: int, plain: int) -> int:
        """Add a plaintext constant: ``Enc(a) (*) g^b = Enc(a + b)``."""
        plain %= self.n
        return ciphertext * (1 + plain * self.n) % self.n_squared

    def multiply_plain(self, ciphertext: int, scalar: int) -> int:
        """Multiply the plaintext by a constant: ``Enc(a)^k = Enc(k a)``."""
        return pow(ciphertext, scalar % self.n, self.n_squared)

    def rerandomize(self, ciphertext: int, rng: RandomLike = None) -> int:
        """Refresh the randomness without changing the plaintext."""
        return self.add(ciphertext, self.encrypt(0, rng))

    @property
    def ciphertext_bytes(self) -> int:
        """Serialized ciphertext size (the Table III communication unit)."""
        return (self.n_squared.bit_length() + 7) // 8


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Private key: ``lambda = lcm(p-1, q-1)`` and ``mu = lambda^{-1} mod N``."""

    public_key: PaillierPublicKey
    lam: int
    mu: int

    def decrypt(self, ciphertext: int) -> int:
        """``Dec(c) = L(c^lambda mod N^2) * mu mod N`` with ``L(x)=(x-1)/N``."""
        n = self.public_key.n
        x = pow(ciphertext, self.lam, self.public_key.n_squared)
        return (x - 1) // n * self.mu % n


def _coprime(a: int, b: int) -> bool:
    while b:
        a, b = b, a % b
    return a == 1


def generate_keypair(
    key_bits: int = 1024, rng: RandomLike = None
) -> tuple[PaillierPublicKey, PaillierPrivateKey]:
    """Generate a Paillier keypair with an RSA modulus of ``key_bits`` bits."""
    if key_bits < 64:
        raise ValueError(f"key size too small to function: {key_bits} bits")
    rand = as_random(rng)
    half = key_bits // 2
    while True:
        p = random_prime(half, rand)
        q = random_prime(key_bits - half, rand)
        if p != q and (p * q).bit_length() == key_bits:
            break
    n = p * q
    lam = lcm(p - 1, q - 1)
    public = PaillierPublicKey(n)
    private = PaillierPrivateKey(public, lam, invmod(lam, n))
    return public, private
