"""Onion encryption for the sequential-shuffle (SS) baseline.

Section VI-A1: each user wraps their LDP report in one encryption layer per
shuffler plus an innermost layer for the server.  Every hop peels one layer
(so a shuffler sees neither the report nor the remaining routing), shuffles,
and forwards.  Following the paper's prototype, each layer is a hybrid
EC-ElGamal(secp256r1) + AES-128-CBC encryption (Section VII-A).

Layer ordering convention: ``public_keys[0]`` is the *outermost* layer (the
first shuffler to touch the message) and ``public_keys[-1]`` the innermost
(the server).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from . import elgamal_ec
from .elgamal_ec import HybridCiphertext, Point
from .math_utils import RandomLike, as_random


@dataclass(frozen=True)
class OnionCiphertext:
    """One onion layer; ``inner`` is the serialized next layer or payload."""

    layer: HybridCiphertext

    @property
    def size_bytes(self) -> int:
        return self.layer.size_bytes


def _serialize(ciphertext: HybridCiphertext) -> bytes:
    """Flat wire encoding: point (64) || iv (16) || payload."""
    return (
        ciphertext.ephemeral.x.to_bytes(32, "big")
        + ciphertext.ephemeral.y.to_bytes(32, "big")
        + ciphertext.iv
        + ciphertext.payload
    )


def _deserialize(data: bytes) -> HybridCiphertext:
    if len(data) < 64 + 16:
        raise ValueError("onion layer too short")
    x = int.from_bytes(data[:32], "big")
    y = int.from_bytes(data[32:64], "big")
    return HybridCiphertext(
        ephemeral=Point(x, y), iv=data[64:80], payload=data[80:]
    )


def wrap(
    payload: bytes, public_keys: Sequence[Point], rng: RandomLike = None
) -> OnionCiphertext:
    """Encrypt ``payload`` under all layers, innermost (last key) first."""
    if not public_keys:
        raise ValueError("need at least one layer key")
    rand = as_random(rng)
    data = payload
    for public in reversed(public_keys):
        data = _serialize(elgamal_ec.encrypt(data, public, rand))
    return OnionCiphertext(layer=_deserialize(data))


def peel(onion: OnionCiphertext, private: int) -> tuple[bytes, OnionCiphertext]:
    """Remove one layer with the hop's secret key.

    Returns ``(inner_bytes, inner_onion)``; the caller uses ``inner_onion``
    when forwarding to the next hop and ``inner_bytes`` when this was the
    final (server) layer.
    """
    inner = elgamal_ec.decrypt(onion.layer, private)
    try:
        return inner, OnionCiphertext(layer=_deserialize(inner))
    except ValueError:
        # Innermost layer: the plaintext payload is shorter than a layer.
        return inner, OnionCiphertext(layer=onion.layer)


def unwrap_all(
    onion: OnionCiphertext, private_keys: Sequence[int]
) -> bytes:
    """Peel every layer in hop order and return the payload."""
    data = _serialize(onion.layer)
    for private in private_keys:
        data = elgamal_ec.decrypt(_deserialize(data), private)
    return data
