"""Additive secret sharing over an arbitrary finite group ``Z_M``.

Section II-C: a secret ``v in Z_M`` splits into ``r`` shares, ``r - 1`` of
them uniform, the last chosen so the shares sum to ``v`` modulo ``M``.  Any
``r - 1`` shares are jointly uniform, so nothing short of all ``r`` parties
reveals the secret.

PEOS shares *vectors* of encoded reports, so vectorized paths matter:

* ``M < 2^62`` — shares live in int64 numpy arrays (the common case: GRR
  reports, or SOLH with the 32-bit-seed family, report group
  ``2^32 * d'``);
* larger ``M`` — object-dtype arrays of Python ints (exact, slower), needed
  for the 64-bit-seed Carter-Wegman family.

Uniform randomness for huge ``M`` uses rejection-free modular reduction of
oversampled bits (bias ``< 2^-64``), which is standard practice.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.ordinal import INT64_SAFE_SPACE as _INT64_SAFE
from ..core.ordinal import uniform_ordinal


def uniform_array(m: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform draws from ``Z_M`` as int64 (small M) or object array.

    Alias of :func:`repro.core.ordinal.uniform_ordinal`, the codec-layer
    canonical implementation — both layers must agree on the dtype
    discipline and the oversample-and-reduce scheme for huge ``M``.
    """
    return uniform_ordinal(m, size, rng)


#: backwards-compat alias; prefer the public name
_uniform_array = uniform_array


def share_vector(
    values: np.ndarray, r: int, modulus: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Split a vector of secrets into ``r`` additive share vectors.

    Returns a list of ``r`` arrays; elementwise sums modulo ``modulus``
    reconstruct ``values``.
    """
    if r < 2:
        raise ValueError(f"need at least 2 shares, got r={r}")
    values = np.asarray(values)
    size = len(values)
    shares = [uniform_array(modulus, size, rng) for _ in range(r - 1)]
    if modulus < _INT64_SAFE:
        total = np.zeros(size, dtype=np.int64)
        for share in shares:
            total = (total + share) % modulus
        if values.dtype == object:
            # Object inputs may hold ints past int64 (e.g. unreduced group
            # elements); reduce exactly before the cast.
            values64 = np.array(
                [int(v) % modulus for v in values], dtype=np.int64
            )
        elif values.dtype == np.uint64:
            # A plain int64 cast would wrap values above 2^63; reduce in
            # uint64 first (every residue then fits: modulus < 2^62).
            values64 = (values % np.uint64(modulus)).astype(np.int64)
        else:
            values64 = np.asarray(values, dtype=np.int64) % modulus
        last = (values64 - total) % modulus
    else:
        last = np.empty(size, dtype=object)
        for i in range(size):
            total = sum(int(share[i]) for share in shares) % modulus
            last[i] = (int(values[i]) - total) % modulus
    shares.append(last)
    return shares


def reconstruct_vector(
    shares: Sequence[np.ndarray], modulus: int
) -> np.ndarray:
    """Sum share vectors modulo ``modulus`` to recover the secrets."""
    if len(shares) < 2:
        raise ValueError(f"need at least 2 share vectors, got {len(shares)}")
    size = len(shares[0])
    for share in shares:
        if len(share) != size:
            raise ValueError("share vectors have inconsistent lengths")
    if modulus < _INT64_SAFE:
        total = np.zeros(size, dtype=np.int64)
        for share in shares:
            total = (total + np.asarray(share, dtype=np.int64)) % modulus
        return total
    out = np.empty(size, dtype=object)
    for i in range(size):
        out[i] = sum(int(share[i]) for share in shares) % modulus
    return out


def share_value(
    value: int, r: int, modulus: int, rng: np.random.Generator
) -> list[int]:
    """Scalar convenience wrapper around :func:`share_vector`."""
    shares = share_vector(np.array([value], dtype=object), r, modulus, rng)
    return [int(share[0]) for share in shares]


def reconstruct_value(shares: Sequence[int], modulus: int) -> int:
    """Scalar convenience wrapper around :func:`reconstruct_vector`."""
    return sum(int(s) for s in shares) % modulus


def add_share_vectors(
    a: np.ndarray, b: np.ndarray, modulus: int
) -> np.ndarray:
    """Elementwise share addition (resharing step of the oblivious shuffle)."""
    if len(a) != len(b):
        raise ValueError("share vectors have inconsistent lengths")
    if modulus < _INT64_SAFE:
        return (np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)) % modulus
    out = np.empty(len(a), dtype=object)
    for i in range(len(a)):
        out[i] = (int(a[i]) + int(b[i])) % modulus
    return out
