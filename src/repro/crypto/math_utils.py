"""Number-theoretic utilities backing the AHE schemes.

Everything here is pure Python over arbitrary-precision integers: modular
inverses, Miller-Rabin primality testing, random prime generation (with and
without congruence constraints, the latter needed by DGK key generation),
and a two-modulus CRT combiner.

Randomness is drawn from :class:`random.Random` instances so key generation
is reproducible in tests; production callers can pass
``random.SystemRandom()``.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Optional, Union

RandomLike = Union[random.Random, int, None]

#: Deterministic Miller-Rabin witness set, sufficient for all n < 3.3 * 10^24.
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)

#: Small primes used for fast trial-division screening.
_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53,
                 59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113]


def as_random(rng: RandomLike) -> random.Random:
    """Coerce ``None`` / an int seed / a Random instance into a Random.

    ``None`` means "no replay intended", which for key-generation code
    must be OS entropy — ``SystemRandom`` — not a silently time-seeded
    ``random.Random()`` (lint rule RPL002 pins this).
    """
    if rng is None:
        return random.SystemRandom()
    if isinstance(rng, int):
        return random.Random(rng)
    return rng


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: returns ``(g, x, y)`` with ``a x + b y = g``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
        old_t, t = t, old_t - quotient * t
    return old_r, old_s, old_t


def invmod(a: int, modulus: int) -> int:
    """Modular inverse of ``a`` modulo ``modulus``; raises if not coprime."""
    g, x, _ = egcd(a % modulus, modulus)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {modulus} (gcd={g})")
    return x % modulus


def lcm(a: int, b: int) -> int:
    """Least common multiple."""
    return a // math.gcd(a, b) * b


def is_probable_prime(n: int, rng: RandomLike = None, rounds: int = 40) -> bool:
    """Miller-Rabin primality test.

    Deterministic for ``n < 3.3e24`` via fixed witnesses; otherwise uses
    ``rounds`` random witnesses (error probability <= 4^-rounds).
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    # Write n - 1 = 2^s * d with d odd.
    d = n - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1

    def witness_composite(a: int) -> bool:
        x = pow(a, d, n)
        if x in (1, n - 1):
            return False
        for _ in range(s - 1):
            x = x * x % n
            if x == n - 1:
                return False
        return True

    if n < 3_317_044_064_679_887_385_961_981:
        witnesses: Iterable[int] = (w for w in _DETERMINISTIC_WITNESSES if w < n)
    else:
        rand = as_random(rng)
        witnesses = (rand.randrange(2, n - 1) for _ in range(rounds))
    return not any(witness_composite(a) for a in witnesses)


def random_prime(bits: int, rng: RandomLike = None) -> int:
    """Uniform-ish random prime with exactly ``bits`` bits."""
    if bits < 2:
        raise ValueError(f"need at least 2 bits, got {bits}")
    rand = as_random(rng)
    while True:
        candidate = rand.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rand):
            return candidate


def random_prime_with_factor(
    bits: int, factor: int, rng: RandomLike = None, max_tries: int = 100_000
) -> int:
    """Random ``bits``-bit prime ``p`` with ``factor | p - 1``.

    Needed by DGK key generation, where the plaintext subgroup order (a
    power of two times a prime) must divide ``p - 1``.  Samples cofactors
    until ``p = factor * cofactor + 1`` is prime.
    """
    if factor < 2:
        raise ValueError(f"factor must be >= 2, got {factor}")
    rand = as_random(rng)
    cofactor_bits = bits - factor.bit_length()
    if cofactor_bits < 2:
        raise ValueError(
            f"cannot fit factor of {factor.bit_length()} bits into a "
            f"{bits}-bit prime"
        )
    for _ in range(max_tries):
        cofactor = rand.getrandbits(cofactor_bits) | (1 << (cofactor_bits - 1))
        candidate = factor * cofactor + 1
        if candidate.bit_length() != bits:
            continue
        if is_probable_prime(candidate, rand):
            return candidate
    raise RuntimeError(
        f"no {bits}-bit prime with factor {factor} found in {max_tries} tries"
    )


def crt_pair(residue_p: int, p: int, residue_q: int, q: int) -> int:
    """Chinese-remainder combination for two coprime moduli."""
    q_inv = invmod(q, p)
    diff = (residue_p - residue_q) % p
    return (residue_q + q * ((diff * q_inv) % p)) % (p * q)


def random_below(bound: int, rng: RandomLike = None) -> int:
    """Uniform integer in ``[0, bound)``."""
    if bound <= 0:
        raise ValueError(f"bound must be positive, got {bound}")
    return as_random(rng).randrange(bound)


def random_coprime(modulus: int, rng: RandomLike = None) -> int:
    """Uniform unit modulo ``modulus`` (i.e. coprime with it)."""
    rand = as_random(rng)
    while True:
        candidate = rand.randrange(1, modulus)
        if math.gcd(candidate, modulus) == 1:
            return candidate


def int_to_bytes(value: int, length: Optional[int] = None) -> bytes:
    """Big-endian byte encoding, minimally sized unless ``length`` given."""
    if value < 0:
        raise ValueError("only non-negative integers are encodable")
    if length is None:
        length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Inverse of :func:`int_to_bytes`."""
    return int.from_bytes(data, "big")
