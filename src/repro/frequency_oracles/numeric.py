"""Numerical-value aggregation in the shuffle model (mean estimation).

Besides histograms, the other canonical shuffle-model task — which the
paper's related-work section singles out ([36], [37], [10]) — is privately
estimating the *mean* of bounded numerical values.  This module implements
the standard one-bit construction so the library covers both tasks:

1. each user maps ``v in [low, high]`` to ``[0, 1]`` and stochastically
   rounds it to one bit (``Bernoulli(v_normalized)`` — already unbiased);
2. the bit is randomized-response-perturbed at local budget ``eps_l``;
3. the shuffler breaks linkage; the CSUZZ'19 binary amplification bound
   (Table I row 2) or the BBGN bound with ``d = 2`` converts a central
   target into the local budget, exactly like the histogram mechanisms.

The server debiases the bit-sum and rescales.  Variance decomposes into
the rounding term (at most ``1/(4n)``, data-dependent) plus the
randomized-response term ``p(1-p)/(n (2p-1)^2)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.amplification import ShuffleAmplification, resolve_grr
from .base import perturbation_probabilities


@dataclass
class NumericReports:
    """One perturbed bit per user."""

    bits: np.ndarray  # uint8 in {0, 1}

    def __len__(self) -> int:
        return len(self.bits)


class OneBitMeanEstimator:
    """One-bit stochastic-rounding mean estimator at local budget ``eps``."""

    name = "1bit-mean"

    def __init__(self, low: float, high: float, eps: float):
        if not high > low:
            raise ValueError(f"need high > low, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)
        self.eps = float(eps)
        # Binary randomized response: keep the bit w.p. p.
        self.p, __ = perturbation_probabilities(eps, 2)

    def __repr__(self) -> str:
        return (
            f"OneBitMeanEstimator(low={self.low}, high={self.high}, "
            f"eps={self.eps:.4f})"
        )

    def privatize(
        self, values: Sequence[float], rng: np.random.Generator
    ) -> NumericReports:
        """Stochastically round to a bit, then flip with probability 1-p."""
        values = np.asarray(values, dtype=float)
        if values.size and (values.min() < self.low or values.max() > self.high):
            raise ValueError(f"values outside [{self.low}, {self.high}]")
        normalized = (values - self.low) / (self.high - self.low)
        bits = (rng.random(len(values)) < normalized).astype(np.uint8)
        flips = (rng.random(len(values)) >= self.p).astype(np.uint8)
        return NumericReports(bits=bits ^ flips)

    def estimate(self, reports: NumericReports, n: int) -> float:
        """Debias the bit mean and rescale to the value range."""
        bit_mean = float(np.asarray(reports.bits, dtype=float).sum()) / n
        q = 1.0 - self.p
        normalized = (bit_mean - q) / (self.p - q)
        return self.low + normalized * (self.high - self.low)

    def run(self, values: Sequence[float], rng: np.random.Generator) -> float:
        """Privatize every value and estimate the mean."""
        values = np.asarray(values, dtype=float)
        return self.estimate(self.privatize(values, rng), len(values))

    def variance_bound(self, n: int) -> float:
        """Worst-case estimator variance on the normalized scale, rescaled.

        Rounding contributes at most ``1/(4n)``; randomized response adds
        ``p(1-p)/(n (2p-1)^2)`` on the debiased bit.
        """
        rounding = 1.0 / (4.0 * n)
        rr = self.p * (1.0 - self.p) / (n * (2.0 * self.p - 1.0) ** 2)
        return (rounding + rr) * (self.high - self.low) ** 2


def make_shuffled_mean_estimator(
    low: float, high: float, eps_c: float, n: int, delta: float
) -> tuple[OneBitMeanEstimator, ShuffleAmplification]:
    """Build a mean estimator for a *central* target via binary amplification.

    Uses the BBGN bound at ``d = 2`` (the strongest row of Table I for the
    binary case), with the usual no-amplification fallback.
    """
    resolution = resolve_grr(eps_c, n, 2, delta)
    return OneBitMeanEstimator(low, high, resolution.eps_l), resolution


def mean_confidence_halfwidth(
    estimator: OneBitMeanEstimator, n: int, confidence: float = 0.95
) -> float:
    """Gaussian-approximation confidence half-width for the mean estimate."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    z = _z_score(confidence)
    return z * math.sqrt(estimator.variance_bound(n))


def _z_score(confidence: float) -> float:
    """Two-sided standard-normal quantile via the inverse error function
    (Newton on erf — avoids a scipy dependency)."""
    target = confidence
    x = 1.0
    for __ in range(60):
        error = math.erf(x / math.sqrt(2.0)) - target
        derivative = math.sqrt(2.0 / math.pi) * math.exp(-(x**2) / 2.0)
        step = error / derivative
        x -= step
        if abs(step) < 1e-12:
            break
    return x
