"""Frequency-oracle framework: the encode / perturb / aggregate / estimate
pipeline shared by every mechanism in the paper.

A *frequency oracle* (FO) lets a server estimate the frequency of every
value ``v`` in a finite domain ``[d] = {0, .., d-1}`` from privatized user
reports.  The pipeline is:

1. ``privatize(values, rng)`` — each user perturbs their value locally,
   producing a *report* (mechanism-specific container).
2. ``support_counts(reports, candidates)`` — the server counts, for each
   candidate value, how many reports "support" it.
3. ``estimate(counts, n)`` — debias the counts into frequency estimates
   (Equations (2), (3) and friends).

The estimate is over whatever population produced the reports; shuffle- and
PEOS-specific recalibration (Eq. (6)) lives in
:meth:`FrequencyOracle.calibrate_with_fakes`.

Two conventions matter for the rest of the library:

* Reports of GRR and local-hashing FOs can be serialized to integers in
  ``[0, report_space)`` (``encode_report`` / ``decode_report``), which is
  what PEOS secret-shares (Section VI-A2's ordinal group).
* ``sample_support_counts(histogram, rng)`` draws the support counts
  *distributionally exactly* from the true histogram without materializing
  per-user reports — the O(d)-instead-of-O(n*d) path used by the Figure 3 /
  Table II benchmarks at paper scale.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence, Union

import numpy as np

ArrayLike = Union[Sequence[int], np.ndarray]


class FrequencyOracle(ABC):
    """Abstract frequency oracle over the domain ``[d]``."""

    #: short mechanism name used in experiment tables ("GRR", "SOLH", ...)
    name: str = "abstract"

    def __init__(self, d: int):
        if d < 2:
            raise ValueError(f"domain size must be >= 2, got d={d}")
        self.d = int(d)

    # -- local side -------------------------------------------------------

    @abstractmethod
    def privatize(self, values: ArrayLike, rng: np.random.Generator):
        """Perturb each user's value; returns a mechanism-specific report
        container with one report per input value."""

    # -- server side ------------------------------------------------------

    @abstractmethod
    def support_counts(
        self, reports, candidates: Optional[ArrayLike] = None
    ) -> np.ndarray:
        """Count supporting reports for each candidate value.

        ``candidates=None`` means the full domain ``range(d)``.  Returns a
        float array aligned with ``candidates``.
        """

    @abstractmethod
    def estimate(self, counts: np.ndarray, n: int) -> np.ndarray:
        """Debias support counts from ``n`` reports into frequency estimates."""

    # -- execution tuning --------------------------------------------------

    def configure_kernel(
        self,
        chunk_bytes: Optional[int] = None,
        seed_cache_bytes: Optional[int] = None,
    ) -> None:
        """Adopt execution tuning for the support-count hot path.

        Pure execution knobs — estimates are bit-identical at any
        setting, so this never participates in :meth:`parameter_tuple`.
        The base oracle has no tunable kernel; mechanisms that route
        through :func:`repro.hashing.kernels.support_counts_kernel`
        (the local-hashing family) override this.  ``None`` leaves a
        knob untouched.
        """

    @property
    def seed_cache(self):
        """The oracle's :class:`~repro.hashing.kernels.SeedRowCache`,
        if one is configured (local-hashing only); ``None`` otherwise."""
        return None

    # -- compatibility -----------------------------------------------------

    def parameter_tuple(self) -> tuple:
        """The parameters that decide estimator compatibility.

        Two oracles whose parameter tuples are equal debias support counts
        identically, so counts folded under one may be merged into an
        aggregate kept under the other
        (:meth:`repro.service.aggregator.IncrementalAggregator.merge`).
        The default collects the concrete type plus every public scalar
        attribute — which covers ``d``, ``eps``, ``p``/``q``, ``d_prime``
        for the built-in mechanisms; subclasses with non-scalar parameters
        (e.g. a hash family) must extend it.  Private attributes (caches,
        chunk sizes) are deliberately excluded: they tune execution, not
        the estimator.
        """
        scalars = tuple(
            (key, value)
            for key, value in sorted(vars(self).items())
            if not key.startswith("_")
            and isinstance(value, (bool, int, float, str))
        )
        return (type(self).__name__, scalars)

    def compatible_with(self, other: "FrequencyOracle") -> bool:
        """True iff ``other``'s counts may be merged into ours.

        An explicit parameter comparison — never ``repr``-based, which a
        subclass could truncate and thereby let incompatible shards merge
        silently.  The type name participates, so a subclass is never
        conflated with its parent even at identical parameters (refusing a
        sound merge is recoverable; silently biasing estimates is not).
        """
        return (
            isinstance(other, FrequencyOracle)
            and self.parameter_tuple() == other.parameter_tuple()
        )

    # -- conveniences -----------------------------------------------------

    def run(
        self,
        values: ArrayLike,
        rng: np.random.Generator,
        candidates: Optional[ArrayLike] = None,
    ) -> np.ndarray:
        """End-to-end: privatize every value, aggregate, and estimate."""
        values = np.asarray(values)
        reports = self.privatize(values, rng)
        counts = self.support_counts(reports, candidates)
        return self.estimate(counts, len(values))

    def sample_support_counts(
        self, histogram: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw full-domain support counts directly from the true histogram.

        Must be distributionally identical to privatizing ``histogram[v]``
        users per value and aggregating.  The default implementation
        actually does that (subclasses override with closed-form sampling).
        """
        values = np.repeat(np.arange(self.d), np.asarray(histogram, dtype=np.int64))
        reports = self.privatize(values, rng)
        return self.support_counts(reports)

    def estimate_from_histogram(
        self, histogram: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Simulate one mechanism run on a population given by ``histogram``."""
        histogram = np.asarray(histogram, dtype=np.int64)
        counts = self.sample_support_counts(histogram, rng)
        return self.estimate(counts, int(histogram.sum()))

    def sample_fake_support_counts(
        self, n_fake: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Full-domain support counts of ``n_fake`` uniform fake reports.

        Fake reports are uniform draws from the ordinal report space
        (Section VI-A2), so the default implementation materializes them
        through ``decode_reports``; subclasses override with closed-form
        sampling matching the exactness contract of
        :meth:`sample_support_counts`.  Used by the streaming service's
        statistical aggregation path (:mod:`repro.service.aggregator`).
        """
        from ..crypto.secret_sharing import uniform_array

        if n_fake < 0:
            raise ValueError(f"fake-report count must be >= 0, got {n_fake}")
        if n_fake == 0:
            return np.zeros(self.d)
        encoded = uniform_array(self.report_space, n_fake, rng)
        return self.support_counts(self.decode_reports(encoded))

    # -- PEOS integration ---------------------------------------------------

    @property
    def report_space(self) -> int:
        """Size of the ordinal report group {0..x} (Section VI-A2).

        Mechanisms that PEOS cannot shuffle (unary encodings, whose reports
        are vectors) raise ``NotImplementedError``.
        """
        raise NotImplementedError(f"{self.name} reports are not ordinal-encodable")

    @property
    def ordinal_codec(self):
        """The :class:`~repro.core.ordinal.OrdinalCodec` for this oracle's
        report group — the single dtype authority (int64 fast path or
        object fallback) every encode/decode/share/concat site uses.

        Raises ``NotImplementedError`` for non-ordinal mechanisms, via
        :attr:`report_space`.
        """
        from ..core.ordinal import OrdinalCodec

        codec = self.__dict__.get("_ordinal_codec")
        if codec is None or codec.space != self.report_space:
            codec = OrdinalCodec(self.report_space)
            self.__dict__["_ordinal_codec"] = codec
        return codec

    def encode_reports(self, reports) -> np.ndarray:
        """Serialize reports to integers in ``[0, report_space)``."""
        raise NotImplementedError(f"{self.name} reports are not ordinal-encodable")

    def decode_reports(self, encoded: np.ndarray):
        """Inverse of :meth:`encode_reports`."""
        raise NotImplementedError(f"{self.name} reports are not ordinal-encodable")

    def fake_report_bias(self) -> float:
        """Expected calibrated contribution of one uniform fake report.

        A fake report drawn uniformly from the report space supports a fixed
        value ``v`` with some probability ``u``; after the estimator's
        debiasing this contributes ``(u - baseline) / (p - baseline)`` to the
        frequency estimate.  GRR yields ``1/d`` (giving exactly Eq. (6));
        local hashing yields ``0`` because a uniform report matches at the
        estimator baseline ``1/d'``.
        """
        raise NotImplementedError(f"{self.name} has no fake-report analysis")

    def calibrate_with_fakes(
        self, estimates: np.ndarray, n: int, n_r: int
    ) -> np.ndarray:
        """Eq. (6): recover true-population frequencies from an estimate
        computed over ``n`` genuine plus ``n_r`` uniform fake reports."""
        if n_r < 0:
            raise ValueError(f"fake-report count must be >= 0, got {n_r}")
        if n == 0:
            # Degenerate all-fake run (used by attack analyses): there is no
            # user population to estimate.
            return np.zeros_like(np.asarray(estimates, dtype=float))
        if n_r == 0:
            # Identity; short-circuit so the no-fakes path is bit-exact.
            return np.asarray(estimates, dtype=float).copy()
        total = n + n_r
        return (total * np.asarray(estimates, dtype=float)
                - n_r * self.fake_report_bias()) / n


def perturbation_probabilities(eps: float, k: int) -> tuple[float, float]:
    """GRR keep/switch probabilities over a ``k``-ary domain (Eq. (1)):
    ``p = e^eps / (e^eps + k - 1)``, ``q = 1 / (e^eps + k - 1)``.
    """
    if eps <= 0.0:
        raise ValueError(f"epsilon must be positive, got {eps}")
    if k < 2:
        raise ValueError(f"report domain must be >= 2, got {k}")
    e = np.exp(eps)
    return float(e / (e + k - 1)), float(1.0 / (e + k - 1))


def randomized_response(
    values: np.ndarray, k: int, p: float, rng: np.random.Generator
) -> np.ndarray:
    """Vectorized k-ary randomized response.

    Each entry keeps its value with probability ``p`` and otherwise becomes
    a uniform draw from the *other* ``k - 1`` values.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size and (values.min() < 0 or values.max() >= k):
        raise ValueError(f"values outside report domain [0, {k})")
    keep = rng.random(values.shape) < p
    # Uniform over the k-1 values != v: draw from [0, k-1) and skip v.
    others = rng.integers(0, k - 1, size=values.shape, dtype=np.int64)
    others += (others >= values).astype(np.int64)
    return np.where(keep, values, others)


def normalize_estimates(estimates: np.ndarray, mode: str = "none") -> np.ndarray:
    """Optional post-processing of frequency estimates.

    ``"none"`` returns a copy; ``"clip"`` clamps to ``[0, 1]``; ``"norm"``
    clips negatives then rescales to sum to 1 (useful for downstream
    consumers that need a distribution; the paper's MSE metric uses raw
    estimates, so benchmarks default to ``"none"``).
    """
    estimates = np.asarray(estimates, dtype=float).copy()
    if mode == "none":
        return estimates
    if mode == "clip":
        return np.clip(estimates, 0.0, 1.0)
    if mode == "norm":
        estimates = np.clip(estimates, 0.0, None)
        total = estimates.sum()
        if total > 0:
            estimates /= total
        return estimates
    raise ValueError(f"unknown normalization mode: {mode!r}")
