"""Hadamard response (Had) — the communication-light LDP mechanism of [5].

Utility-wise this is OLH with ``d' = 2`` (each user reveals one perturbed
bit), but the hash family is structured: user ``i`` draws a row index
``s_i`` of the ``K x K`` Hadamard matrix (``K`` = smallest power of two
larger than ``d``) and reports ``(s_i, RR(H_K[s_i, v_i + 1]))``.

The structure buys the server a fast aggregation path: all ``d`` support
counts come from a single fast Walsh-Hadamard transform, ``O(n + K log K)``
instead of O(n*d) — exactly the server-side speedup the paper credits Had
with in Section VII-B.

Values are mapped to column ``v + 1`` so that the all-ones column 0 is never
used (it would make "agreement" carry no information).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .base import ArrayLike, FrequencyOracle, perturbation_probabilities


def next_power_of_two(value: int) -> int:
    """Smallest power of two >= ``value``."""
    if value < 1:
        raise ValueError(f"need a positive value, got {value}")
    return 1 << (value - 1).bit_length()


def hadamard_entry(row: int, col: int) -> int:
    """Entry of the Sylvester Hadamard matrix in {+1, -1}.

    ``H[row, col] = (-1)^{popcount(row & col)}``.
    """
    return 1 - 2 * (bin(row & col).count("1") & 1)


def hadamard_entries(rows: np.ndarray, col: int) -> np.ndarray:
    """Vectorized ``H[rows, col]`` in {+1, -1} via popcount parity."""
    masked = np.asarray(rows, dtype=np.uint64) & np.uint64(col)
    parity = np.zeros(masked.shape, dtype=np.uint64)
    while masked.any():
        parity ^= masked & np.uint64(1)
        masked = masked >> np.uint64(1)
    return (1 - 2 * parity.astype(np.int64)).astype(np.int64)


def fast_walsh_hadamard(vector: np.ndarray) -> np.ndarray:
    """In-place-style fast Walsh-Hadamard transform (unnormalized).

    Input length must be a power of two; returns ``H @ vector``.
    """
    vector = np.asarray(vector, dtype=np.float64).copy()
    size = len(vector)
    if size & (size - 1):
        raise ValueError(f"length must be a power of two, got {size}")
    h = 1
    while h < size:
        vector = vector.reshape(-1, 2 * h)
        left = vector[:, :h].copy()
        right = vector[:, h:].copy()
        vector[:, :h] = left + right
        vector[:, h:] = left - right
        vector = vector.reshape(-1)
        h *= 2
    return vector


@dataclass
class HadamardReports:
    """One ``(row index, +/-1 bit)`` pair per user."""

    rows: np.ndarray  # int64 row indices in [K)
    bits: np.ndarray  # int64 in {+1, -1}

    def __len__(self) -> int:
        return len(self.rows)


class HadamardResponse(FrequencyOracle):
    """Hadamard response at local budget ``eps``."""

    name = "Had"

    def __init__(self, d: int, eps: float):
        super().__init__(d)
        self.eps = float(eps)
        self.K = next_power_of_two(d + 1)
        # Binary randomized response on the +/-1 bit.
        self.p, self.q = perturbation_probabilities(eps, 2)

    def __repr__(self) -> str:
        return f"HadamardResponse(d={self.d}, eps={self.eps:.4f}, K={self.K})"

    def privatize(
        self, values: ArrayLike, rng: np.random.Generator
    ) -> HadamardReports:
        """Draw a row, evaluate the +/-1 entry at column ``v+1``, flip w.p. ``1-p``."""
        values = np.asarray(values, dtype=np.int64)
        if values.size and (values.min() < 0 or values.max() >= self.d):
            raise ValueError(f"values outside domain [0, {self.d})")
        rows = rng.integers(0, self.K, size=len(values), dtype=np.int64)
        masked = rows.astype(np.uint64) & (values + 1).astype(np.uint64)
        parity = np.zeros(masked.shape, dtype=np.uint64)
        while masked.any():
            parity ^= masked & np.uint64(1)
            masked = masked >> np.uint64(1)
        bits = (1 - 2 * parity.astype(np.int64)).astype(np.int64)
        flip = rng.random(len(values)) >= self.p
        bits = np.where(flip, -bits, bits)
        return HadamardReports(rows=rows, bits=bits)

    def support_counts(
        self, reports: HadamardReports, candidates: Optional[ArrayLike] = None
    ) -> np.ndarray:
        """Support of ``v``: reports whose bit matches ``H[s, v+1]``.

        Computed for the whole domain with one Walsh-Hadamard transform of
        the signed row-histogram ``z[s] = sum of bits of reports with row s``:
        ``C_v = (n + (H z)[v+1]) / 2``.
        """
        z = np.bincount(
            reports.rows, weights=reports.bits.astype(np.float64), minlength=self.K
        )
        agreement = fast_walsh_hadamard(z)
        counts = (len(reports) + agreement[1:self.d + 1]) / 2.0
        if candidates is None:
            return counts
        return counts[np.asarray(candidates, dtype=np.int64)]

    def estimate(self, counts: np.ndarray, n: int) -> np.ndarray:
        """Binary-RR debiasing: ``f_hat = (C/n - 1/2) / (p - 1/2)``."""
        counts = np.asarray(counts, dtype=float)
        return (counts / n - 0.5) / (self.p - 0.5)

    def sample_support_counts(
        self, histogram: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Marginally exact O(d) sampling: for column ``v+1`` a same-value
        report agrees w.p. ``p`` and any other report w.p. exactly ``1/2``
        (distinct nonzero Hadamard columns agree on half the rows)."""
        histogram = np.asarray(histogram, dtype=np.int64)
        if histogram.shape != (self.d,):
            raise ValueError(
                f"histogram must have shape ({self.d},), got {histogram.shape}"
            )
        n = int(histogram.sum())
        true_hits = rng.binomial(histogram, self.p)
        cross_hits = rng.binomial(n - histogram, 0.5)
        return (true_hits + cross_hits).astype(float)

    # -- PEOS integration --------------------------------------------------

    @property
    def report_space(self) -> int:
        """Ordinal group ``K * 2``: row index times the sign bit."""
        return self.K * 2

    def encode_reports(self, reports: HadamardReports) -> np.ndarray:
        bit01 = ((1 - reports.bits) // 2).astype(np.int64)  # +1 -> 0, -1 -> 1
        return (reports.rows * 2 + bit01).astype(np.int64)

    def decode_reports(self, encoded: np.ndarray) -> HadamardReports:
        encoded = np.asarray(encoded, dtype=np.int64)
        rows = encoded // 2
        bits = 1 - 2 * (encoded % 2)
        return HadamardReports(rows=rows, bits=bits.astype(np.int64))

    def fake_report_bias(self) -> float:
        """A uniform fake report agrees with any column w.p. 1/2, the
        estimator baseline, so it contributes nothing after calibration."""
        return 0.0
