"""Local-hashing frequency oracles: OLH (LDP-optimal) and SOLH
(shuffler-optimal), sharing one implementation.

Each user draws a seed identifying a hash function ``H : [d] -> [d']`` from
a universal family, and reports ``(seed, GRR_{d'}(H(v)))``.  The server
counts, for each candidate ``v``, the reports whose hash of ``v`` equals the
reported value, then debiases with Eq. (3).

* OLH [54] fixes ``d' = e^eps + 1`` — optimal in the *local* model.
* SOLH (Section IV-B2, the paper's contribution) fixes ``d'`` by Eq. (5)
  from the *central* target, because in the shuffle model the constraint is
  ``e^{eps_l} + d' - 1 = m`` (Theorem 3) rather than a fixed local budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.amplification import ShuffleAmplification, resolve_solh
from ..hashing import HashFamily, default_family
from ..hashing.kernels import SeedRowCache, support_counts_kernel

#: largest seed space the seed-row cache supports — beyond it seeds
#: essentially never recur and the encode path leaves the int64 fast path
_CACHEABLE_SEED_SPACE = 1 << 32
from .base import (
    ArrayLike,
    FrequencyOracle,
    perturbation_probabilities,
    randomized_response,
)


@dataclass
class LocalHashReports:
    """Reports of a local-hashing FO: one ``(seed, value)`` pair per user."""

    seeds: np.ndarray  # uint64 hash-function identifiers
    values: np.ndarray  # int64 perturbed hashed values in [d')

    def __len__(self) -> int:
        return len(self.seeds)


class LocalHashingOracle(FrequencyOracle):
    """Local hashing into ``[d']`` followed by ``GRR_{d'}`` perturbation."""

    name = "LH"

    def __init__(
        self,
        d: int,
        eps: float,
        d_prime: int,
        family: Optional[HashFamily] = None,
        chunk_bytes: Optional[int] = None,
    ):
        super().__init__(d)
        if d_prime < 2:
            raise ValueError(f"hash output domain must be >= 2, got {d_prime}")
        self.eps = float(eps)
        self.d_prime = int(d_prime)
        self.family = family if family is not None else default_family()
        self.p, self.q = perturbation_probabilities(eps, d_prime)
        #: None defers to the kernel's active (possibly calibrated) budget
        self._chunk_bytes = chunk_bytes
        self._seed_cache: Optional[SeedRowCache] = None

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(d={self.d}, eps={self.eps:.4f}, "
            f"d_prime={self.d_prime})"
        )

    def parameter_tuple(self) -> tuple:
        """Extend the scalar parameters with the hash family's identity.

        The family is part of the estimator: support counts are computed
        by re-evaluating users' hash functions, so counts collected under
        different families (or seed spaces) must never merge.
        """
        return super().parameter_tuple() + (
            ("family", self.family.name, self.family.seed_space),
        )

    @property
    def blanket_gamma(self) -> float:
        """Blanket mass ``gamma = d' q`` of the hashed-value GRR."""
        return self.d_prime * self.q

    # -- execution tuning --------------------------------------------------

    def configure_kernel(
        self,
        chunk_bytes: Optional[int] = None,
        seed_cache_bytes: Optional[int] = None,
    ) -> None:
        """Adopt kernel tuning: chunk budget and/or a seed-row cache.

        ``seed_cache_bytes > 0`` builds a fresh
        :class:`~repro.hashing.kernels.SeedRowCache` — but only for seed
        spaces up to 32 bits, where seeds actually recur; wider families
        silently keep ``seed_cache=None`` (the advertised "off outside
        the int64 fast path" default).  ``seed_cache_bytes=0`` removes an
        existing cache; ``None`` leaves either knob untouched.  Pure
        execution tuning: bit-identical counts either way.
        """
        if chunk_bytes is not None:
            self._chunk_bytes = int(chunk_bytes)
        if seed_cache_bytes is not None:
            seed_cache_bytes = int(seed_cache_bytes)
            if (
                seed_cache_bytes > 0
                and self.family.seed_space <= _CACHEABLE_SEED_SPACE
            ):
                self._seed_cache = SeedRowCache(seed_cache_bytes)
            else:
                self._seed_cache = None

    @property
    def seed_cache(self) -> Optional[SeedRowCache]:
        """The configured cross-flush seed-row cache, if any."""
        return self._seed_cache

    def privatize(
        self, values: ArrayLike, rng: np.random.Generator
    ) -> LocalHashReports:
        """Each user samples a seed, hashes, and perturbs the hashed value."""
        values = np.asarray(values, dtype=np.int64)
        if values.size and (values.min() < 0 or values.max() >= self.d):
            raise ValueError(f"values outside domain [0, {self.d})")
        seeds = self.family.sample_seeds(len(values), rng)
        hashed = self.family.hash_pairwise(seeds, values, self.d_prime)
        perturbed = randomized_response(hashed, self.d_prime, self.p, rng)
        return LocalHashReports(seeds=seeds, values=perturbed)

    def support_counts(
        self, reports: LocalHashReports, candidates: Optional[ArrayLike] = None
    ) -> np.ndarray:
        """Count reports with ``H_i(v) == y_i`` for each candidate ``v``.

        Delegates to the shared low-allocation kernel
        (:func:`repro.hashing.kernels.support_counts_kernel`): uint32
        chunks sized by ``chunk_bytes``, bincount match accumulation, and
        a unique-seed fast path for 32-bit seed spaces — bit-identical to
        the naive materialize-compare-sum evaluation on every path.  This
        is the O(n*d) server-side hot path.
        """
        # The seed cache is only sound for a fixed candidate set; the
        # default full-domain arange(d) is the one set the cache identity
        # (family, d', candidate count) pins, so explicit candidate
        # subsets bypass it.
        seed_cache = self._seed_cache if candidates is None else None
        if candidates is None:
            candidates = np.arange(self.d, dtype=np.int64)
        else:
            candidates = np.asarray(candidates, dtype=np.int64)
        counts = support_counts_kernel(
            self.family,
            reports.seeds,
            reports.values,
            candidates,
            self.d_prime,
            chunk_bytes=self._chunk_bytes,
            seed_cache=seed_cache,
        )
        return counts.astype(float)

    def estimate(self, counts: np.ndarray, n: int) -> np.ndarray:
        """Eq. (3): ``f_hat = (C/n - 1/d') / (p - 1/d')``."""
        counts = np.asarray(counts, dtype=float)
        baseline = 1.0 / self.d_prime
        return (counts / n - baseline) / (self.p - baseline)

    def sample_support_counts(
        self, histogram: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Marginally exact O(d) sampling of the support counts.

        A report from a user holding ``v`` supports ``v`` w.p. ``p`` and a
        different value w.p. exactly ``1/d'`` (2-universal hashing), so each
        ``C_v ~ Bin(n_v, p) + Bin(n - n_v, 1/d')``.  Cross-value correlation
        through shared seeds is *not* reproduced; experiments that need the
        exact joint (none of the paper's metrics do — MSE depends only on
        marginals) should use the per-user path.
        """
        histogram = np.asarray(histogram, dtype=np.int64)
        if histogram.shape != (self.d,):
            raise ValueError(
                f"histogram must have shape ({self.d},), got {histogram.shape}"
            )
        n = int(histogram.sum())
        true_hits = rng.binomial(histogram, self.p)
        cross_hits = rng.binomial(n - histogram, 1.0 / self.d_prime)
        return (true_hits + cross_hits).astype(float)

    def sample_fake_support_counts(
        self, n_fake: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Marginally exact sampling, matching :meth:`sample_support_counts`.

        A uniform fake ``(seed, y)`` supports any candidate ``v`` w.p.
        exactly ``1/d'`` (``y`` is uniform over ``[d']``), so each count is
        ``Bin(n_fake, 1/d')``; seed-induced cross-value correlation is not
        reproduced.
        """
        if n_fake < 0:
            raise ValueError(f"fake-report count must be >= 0, got {n_fake}")
        return rng.binomial(n_fake, 1.0 / self.d_prime, size=self.d).astype(float)

    # -- PEOS integration --------------------------------------------------

    @property
    def report_space(self) -> int:
        """Ordinal report group: ``seed_space * d'`` (Section VI-A2)."""
        return self.family.seed_space * self.d_prime

    def encode_reports(self, reports: LocalHashReports) -> np.ndarray:
        """Pack ``(seed, y)`` as ``seed * d' + y``.

        Vectorized int64 when the report group fits 64-bit arithmetic
        (e.g. the 32-bit xxHash seed family); one object-dtype fallback
        for 64-bit seed spaces.  The dtype choice is the codec's.
        """
        return self.ordinal_codec.pack_pairs(
            np.asarray(reports.seeds, dtype=np.uint64),
            np.asarray(reports.values, dtype=np.int64),
            self.d_prime,
        )

    def decode_reports(self, encoded: np.ndarray) -> LocalHashReports:
        seeds, values = self.ordinal_codec.unpack_pairs(encoded, self.d_prime)
        return LocalHashReports(seeds=seeds, values=values)

    def fake_report_bias(self) -> float:
        """A uniform fake report matches any ``v`` w.p. exactly the
        estimator baseline ``1/d'``, so its calibrated contribution is 0."""
        return 0.0


class OLH(LocalHashingOracle):
    """Optimized Local Hash [54]: LDP-optimal ``d' = round(e^eps) + 1``."""

    name = "OLH"

    def __init__(self, d: int, eps: float, family: Optional[HashFamily] = None):
        d_prime = max(2, int(round(math.exp(eps))) + 1)
        super().__init__(d, eps, d_prime, family=family)


class SOLH(LocalHashingOracle):
    """Shuffler-Optimal Local Hash (the paper's Section IV-B contribution).

    Construct via :meth:`for_central_target`, which resolves ``(eps_l, d')``
    from the central ``(eps_c, delta)`` target using Theorem 3 and Eq. (5).
    Direct construction with explicit ``(eps, d_prime)`` is also allowed for
    ablations (Table II's fixed-``d'`` rows).
    """

    name = "SOLH"

    @classmethod
    def for_central_target(
        cls,
        d: int,
        eps_c: float,
        n: int,
        delta: float,
        d_prime: Optional[int] = None,
        family: Optional[HashFamily] = None,
    ) -> tuple["SOLH", ShuffleAmplification]:
        """Resolve ``(eps_l, d')`` for a central target and build the oracle.

        With ``d_prime=None`` the Eq. (5) optimum is used; otherwise the
        given value (Theorem 3 still fixes ``eps_l``).  Falls back to local
        OLH parameters when no amplification is possible.
        """
        resolution, resolved_d_prime = resolve_solh(
            eps_c, n, delta, d_prime=d_prime
        )
        oracle = cls(d, resolution.eps_l, resolved_d_prime, family=family)
        return oracle, resolution
