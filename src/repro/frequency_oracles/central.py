"""Central-model baselines for the Figure 3 / Figure 4 comparisons.

* :class:`LaplaceMechanism` — the centralized-DP lower bound (``Lap`` in the
  paper's plots): the trusted curator adds ``Lap(2 / (n eps))`` noise to
  every true frequency (histogram sensitivity 2 under replacement
  neighbours).
* :class:`UniformBaseline` — ``Base``: always answers ``1/d``, the
  "random guess" floor that SH sinks below once amplification vanishes.

Both consume the *true histogram* (they model parties that see raw data),
so they implement ``estimate_from_histogram`` directly rather than the
report pipeline.
"""

from __future__ import annotations

import numpy as np


class LaplaceMechanism:
    """Centralized-DP Laplace mechanism on frequencies at budget ``eps``."""

    name = "Lap"

    def __init__(self, d: int, eps: float):
        if d < 2:
            raise ValueError(f"domain size must be >= 2, got d={d}")
        if eps <= 0.0:
            raise ValueError(f"epsilon must be positive, got {eps}")
        self.d = int(d)
        self.eps = float(eps)

    def __repr__(self) -> str:
        return f"LaplaceMechanism(d={self.d}, eps={self.eps:.4f})"

    def noise_scale(self, n: int) -> float:
        """Laplace scale on frequencies: ``2 / (n eps)``."""
        return 2.0 / (n * self.eps)

    def estimate_from_histogram(
        self, histogram: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """True frequencies plus ``Lap(2/(n eps))`` noise per value."""
        histogram = np.asarray(histogram, dtype=np.int64)
        if histogram.shape != (self.d,):
            raise ValueError(
                f"histogram must have shape ({self.d},), got {histogram.shape}"
            )
        n = int(histogram.sum())
        frequencies = histogram / n
        return frequencies + rng.laplace(0.0, self.noise_scale(n), size=self.d)


class UniformBaseline:
    """The ``Base`` method: always output the uniform distribution ``1/d``."""

    name = "Base"

    def __init__(self, d: int):
        if d < 2:
            raise ValueError(f"domain size must be >= 2, got d={d}")
        self.d = int(d)

    def __repr__(self) -> str:
        return f"UniformBaseline(d={self.d})"

    def estimate_from_histogram(
        self, histogram: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """``1/d`` for every value, ignoring the data (and the rng)."""
        histogram = np.asarray(histogram)
        if histogram.shape != (self.d,):
            raise ValueError(
                f"histogram must have shape ({self.d},), got {histogram.shape}"
            )
        return np.full(self.d, 1.0 / self.d)
