"""Unary-encoding frequency oracles: RAPPOR (RAP), removal-LDP RAPPOR
(RAP_R), and AUE (appended unary encoding, Balcer-Cheu [8]).

All three transform the value into a length-``d`` one-hot vector and
randomize per location, so each report costs O(d) communication — the price
the paper holds against them when arguing for SOLH.

* **RAP** (Section IV-B1): symmetric bit flips with probability
  ``1 / (e^{eps/2} + 1)`` (the budget halves because neighbouring one-hot
  vectors differ in two bits).  Theorem 2 gives its shuffle amplification.
* **RAP_R** ([31], Section IV-B4): same encoding under *removal* LDP, where
  the budget is not halved; at a replacement-central target ``eps_c`` it
  behaves like RAP at ``2 eps_c``.
* **AUE** ([8]): sends the exact one-hot vector and appends Bernoulli(q)
  increments per location with ``q = 200 ln(4/delta) / (eps_c^2 n)``.  It is
  *not* an LDP protocol — the true value is sent in the clear modulo the
  appended noise — which is the paper's security criticism of it.

Reports are dense uint8 matrices; the streaming ``sample_support_counts``
path (exact, O(d)) is what large-scale benchmarks use.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..core.amplification import ShuffleAmplification, resolve_unary, resolve_unary_removal
from ..core.variance import aue_noise_probability
from .base import ArrayLike, FrequencyOracle


def one_hot_matrix(values: np.ndarray, d: int) -> np.ndarray:
    """Encode values as an ``(n, d)`` one-hot uint8 matrix."""
    values = np.asarray(values, dtype=np.int64)
    if values.size and (values.min() < 0 or values.max() >= d):
        raise ValueError(f"values outside domain [0, {d})")
    matrix = np.zeros((len(values), d), dtype=np.uint8)
    matrix[np.arange(len(values)), values] = 1
    return matrix


class SymmetricUnaryEncoding(FrequencyOracle):
    """Unary encoding with symmetric per-bit flip probability ``flip_prob``.

    Base class for RAP and RAP_R, which differ only in how ``flip_prob``
    derives from the privacy budget.
    """

    name = "UE"

    def __init__(self, d: int, flip_prob: float):
        super().__init__(d)
        if not 0.0 < flip_prob < 0.5:
            raise ValueError(f"flip probability must be in (0, 0.5), got {flip_prob}")
        self.flip_prob = float(flip_prob)
        # Per-location keep/fake probabilities: a 1-bit stays 1 w.p. p,
        # a 0-bit becomes 1 w.p. q.  Coerced floats, so both always show
        # up in the default parameter_tuple() merge gate — a numpy scalar
        # passed through bare would silently drop out (RPL041).
        self.p = 1.0 - self.flip_prob
        self.q = self.flip_prob

    def __repr__(self) -> str:
        return f"{type(self).__name__}(d={self.d}, flip_prob={self.flip_prob:.6f})"

    def privatize(self, values: ArrayLike, rng: np.random.Generator) -> np.ndarray:
        """One-hot encode then flip every bit independently."""
        matrix = one_hot_matrix(np.asarray(values), self.d)
        flips = (rng.random(matrix.shape) < self.flip_prob).astype(np.uint8)
        return matrix ^ flips

    def support_counts(
        self, reports: np.ndarray, candidates: Optional[ArrayLike] = None
    ) -> np.ndarray:
        """Support of ``v`` is the number of set bits at location ``v``."""
        full = np.asarray(reports, dtype=np.int64).sum(axis=0)
        if candidates is None:
            return full.astype(float)
        return full[np.asarray(candidates, dtype=np.int64)].astype(float)

    def estimate(self, counts: np.ndarray, n: int) -> np.ndarray:
        """Per-location debiasing ``f_hat = (C/n - q) / (p - q)``."""
        counts = np.asarray(counts, dtype=float)
        return (counts / n - self.q) / (self.p - self.q)

    def sample_support_counts(
        self, histogram: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Exact O(d) sampling: locations are independent given the
        histogram, with ``C_v ~ Bin(n_v, p) + Bin(n - n_v, q)``."""
        histogram = np.asarray(histogram, dtype=np.int64)
        if histogram.shape != (self.d,):
            raise ValueError(
                f"histogram must have shape ({self.d},), got {histogram.shape}"
            )
        n = int(histogram.sum())
        ones_kept = rng.binomial(histogram, self.p)
        zeros_flipped = rng.binomial(n - histogram, self.q)
        return (ones_kept + zeros_flipped).astype(float)


class RAPPOR(SymmetricUnaryEncoding):
    """Basic RAPPOR [33] at *replacement* local budget ``eps``.

    Flip probability ``1 / (e^{eps/2} + 1)`` — the budget is split across
    the two bits that differ between neighbouring encodings.
    """

    name = "RAP"

    def __init__(self, d: int, eps: float):
        if eps <= 0.0:
            raise ValueError(f"epsilon must be positive, got {eps}")
        super().__init__(d, 1.0 / (math.exp(eps / 2.0) + 1.0))
        self.eps = float(eps)


class RemovalRAPPOR(SymmetricUnaryEncoding):
    """Removal-LDP RAPPOR (RAP_R, [31]) at removal budget ``eps``.

    The removal notion compares against the empty input, so neighbouring
    encodings differ in one bit and the budget is not halved:
    flip probability ``1 / (e^eps + 1)``.  Any ``eps``-removal-LDP algorithm
    is ``2 eps``-replacement-LDP (Section IV-B4).
    """

    name = "RAP_R"

    def __init__(self, d: int, eps: float):
        if eps <= 0.0:
            raise ValueError(f"epsilon must be positive, got {eps}")
        super().__init__(d, 1.0 / (math.exp(eps) + 1.0))
        self.eps = float(eps)

    @property
    def replacement_eps(self) -> float:
        """The equivalent replacement-LDP budget, ``2 eps``."""
        return 2.0 * self.eps


class AUE(FrequencyOracle):
    """Appended unary encoding (Balcer-Cheu [8]) for a central target.

    Each user sends their exact one-hot vector; independently, every
    location gains a Bernoulli(``noise_prob``) increment.  The aggregated
    noise ``Bin(n, noise_prob)`` per location provides the central
    ``(eps_c, delta)``-DP guarantee.  Not LDP.
    """

    name = "AUE"

    def __init__(self, d: int, eps_c: float, n: int, delta: float):
        super().__init__(d)
        self.eps_c = float(eps_c)
        self.n = int(n)
        self.delta = float(delta)
        self.noise_prob = aue_noise_probability(eps_c, n, delta)

    def __repr__(self) -> str:
        return (
            f"AUE(d={self.d}, eps_c={self.eps_c:.4f}, n={self.n}, "
            f"noise_prob={self.noise_prob:.3e})"
        )

    def privatize(self, values: ArrayLike, rng: np.random.Generator) -> np.ndarray:
        """One-hot vector plus per-location Bernoulli increments.

        Entries can reach 2 (true bit plus an increment); reports are uint8.
        """
        matrix = one_hot_matrix(np.asarray(values), self.d)
        increments = (rng.random(matrix.shape) < self.noise_prob).astype(np.uint8)
        return matrix + increments

    def support_counts(
        self, reports: np.ndarray, candidates: Optional[ArrayLike] = None
    ) -> np.ndarray:
        full = np.asarray(reports, dtype=np.int64).sum(axis=0)
        if candidates is None:
            return full.astype(float)
        return full[np.asarray(candidates, dtype=np.int64)].astype(float)

    def estimate(self, counts: np.ndarray, n: int) -> np.ndarray:
        """Subtract the expected noise: ``f_hat = C/n - noise_prob``."""
        counts = np.asarray(counts, dtype=float)
        return counts / n - self.noise_prob

    def sample_support_counts(
        self, histogram: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Exact O(d) sampling: ``C_v = n_v + Bin(n, noise_prob)``."""
        histogram = np.asarray(histogram, dtype=np.int64)
        if histogram.shape != (self.d,):
            raise ValueError(
                f"histogram must have shape ({self.d},), got {histogram.shape}"
            )
        n = int(histogram.sum())
        noise = rng.binomial(n, self.noise_prob, size=self.d)
        return (histogram + noise).astype(float)


def make_rap(
    d: int, eps_c: float, n: int, delta: float
) -> tuple[RAPPOR, ShuffleAmplification]:
    """Build shuffled RAPPOR for a central target (Theorem 2 inverted)."""
    resolution = resolve_unary(eps_c, n, delta)
    return RAPPOR(d, resolution.eps_l), resolution


def make_rap_r(
    d: int, eps_c: float, n: int, delta: float
) -> tuple[RemovalRAPPOR, ShuffleAmplification]:
    """Build shuffled removal-RAPPOR for a central target (Section IV-B4).

    The resolved ``eps_l`` is the *removal* budget; the fallback (no
    amplification) runs at removal budget ``eps_c``.
    """
    resolution = resolve_unary_removal(eps_c, n, delta)
    return RemovalRAPPOR(d, resolution.eps_l), resolution
