"""Subset selection — the other known LDP-optimal frequency oracle.

Alongside OLH, subset selection (Ye-Barg 2018 / Wang et al. 2016) attains
the optimal local-model variance: each user reports a random *subset* of
size ``k = round(d / (e^eps + 1))`` that contains the true value with
probability ``p = e^eps k / (e^eps k + d - k)`` and is otherwise uniform
among the subsets excluding it.

Included to round out the frequency-oracle family the paper builds on:
in the local model it matches OLH's variance (the test suite checks this),
and its report — a ``k``-subset — is an instructive contrast with local
hashing in the shuffle model, where its large report space makes the
blanket analysis weaker (the reason the paper's shuffle candidates are GRR
and SOLH).

Implementation notes: a report is stored as a sorted index array; the
sampling path draws "value in subset" first, then the remaining members
uniformly without replacement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..hashing.kernels import chunk_spans
from .base import ArrayLike, FrequencyOracle


@dataclass
class SubsetReports:
    """One ``(n, k)`` matrix of subset member indices per user (sorted)."""

    members: np.ndarray  # int64, shape (n, k)

    def __len__(self) -> int:
        return len(self.members)


class SubsetSelection(FrequencyOracle):
    """Subset-selection frequency oracle at local budget ``eps``."""

    name = "Subset"

    def __init__(
        self, d: int, eps: float, k: Optional[int] = None, chunk_bytes: int = 1 << 26
    ):
        super().__init__(d)
        if eps <= 0.0:
            raise ValueError(f"epsilon must be positive, got {eps}")
        self.eps = float(eps)
        self._chunk_bytes = int(chunk_bytes)
        if k is None:
            k = max(1, int(round(d / (math.exp(eps) + 1.0))))
        if not 1 <= k < d:
            raise ValueError(f"subset size {k} outside [1, {d})")
        self.k = int(k)
        e = math.exp(eps)
        # Probability the true value is in the reported subset.
        self.p_true = e * self.k / (e * self.k + self.d - self.k)
        # Probability a fixed OTHER value is in the subset.
        k, d = self.k, self.d
        self.p_other = (
            self.p_true * (k - 1) / (d - 1)
            + (1.0 - self.p_true) * k / (d - 1)
        )

    def __repr__(self) -> str:
        return f"SubsetSelection(d={self.d}, eps={self.eps:.4f}, k={self.k})"

    def privatize(self, values: ArrayLike, rng: np.random.Generator) -> SubsetReports:
        """Draw each user's subset: include the true value w.p. ``p_true``,
        fill the rest uniformly from the other values.

        Batched random-key sampling: each user draws one uniform key per
        domain value; the ``k`` smallest keys form a uniform ``k``-subset,
        and pinning the true value's key to -1 (forced in) or 2 (forced
        out) conditions on the inclusion draw.  Runs in O(n d) vectorized
        work, walked with the kernel engine's shared chunking
        (:func:`repro.hashing.kernels.chunk_spans`) so the key matrix
        stays within ``chunk_bytes``.
        """
        values = np.asarray(values, dtype=np.int64)
        if values.size and (values.min() < 0 or values.max() >= self.d):
            raise ValueError(f"values outside domain [0, {self.d})")
        n = len(values)
        members = np.empty((n, self.k), dtype=np.int64)
        include = rng.random(n) < self.p_true
        for start, stop in chunk_spans(n, self._chunk_bytes // (8 * self.d)):
            keys = rng.random((stop - start, self.d))
            rows = np.arange(stop - start)
            keys[rows, values[start:stop]] = np.where(
                include[start:stop], -1.0, 2.0
            )
            subset = np.argpartition(keys, self.k - 1, axis=1)[:, : self.k]
            subset.sort(axis=1)
            members[start:stop] = subset
        return SubsetReports(members=members)

    def support_counts(
        self, reports: SubsetReports, candidates: Optional[ArrayLike] = None
    ) -> np.ndarray:
        """Support of ``v``: reports whose subset contains ``v``."""
        flat = reports.members.reshape(-1)
        full = np.bincount(flat, minlength=self.d).astype(float)
        if candidates is None:
            return full
        return full[np.asarray(candidates, dtype=np.int64)]

    def estimate(self, counts: np.ndarray, n: int) -> np.ndarray:
        """Debias: ``f_hat = (C/n - p_other) / (p_true - p_other)``."""
        counts = np.asarray(counts, dtype=float)
        return (counts / n - self.p_other) / (self.p_true - self.p_other)

    def sample_support_counts(
        self, histogram: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Marginally exact O(d): ``C_v ~ Bin(n_v, p_true) + Bin(n - n_v,
        p_other)`` (subset membership correlations across values ignored,
        as with local hashing)."""
        histogram = np.asarray(histogram, dtype=np.int64)
        if histogram.shape != (self.d,):
            raise ValueError(
                f"histogram must have shape ({self.d},), got {histogram.shape}"
            )
        n = int(histogram.sum())
        true_hits = rng.binomial(histogram, self.p_true)
        cross_hits = rng.binomial(n - histogram, self.p_other)
        return (true_hits + cross_hits).astype(float)


def subset_variance_local(eps: float, n: int, d: int) -> float:
    """Closed-form local variance of subset selection at the optimal ``k``.

    ``Var = p_other (1 - p_other) / (n (p_true - p_other)^2)`` for rare
    values (the same rare-value convention as Propositions 4-6).
    """
    oracle = SubsetSelection(d, eps)
    p_t, p_o = oracle.p_true, oracle.p_other
    return p_o * (1.0 - p_o) / (n * (p_t - p_o) ** 2)
