"""Generalized randomized response (GRR) and its shuffle-model wrapper SH.

GRR (Section II-B, Eq. (1)): the user reports the true value with
probability ``p = e^eps / (e^eps + d - 1)`` and any other fixed value with
probability ``q = 1 / (e^eps + d - 1)``.  The server debiases with Eq. (2).

SH (Section III-B) is GRR run through a shuffler: utility-wise it is GRR at
the *amplified* local budget obtained by inverting the BBGN'19 bound for a
central target ``(eps_c, delta)``; :func:`make_sh` performs that resolution,
including the no-amplification fallback visible as the cliff in Figure 3.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.amplification import ShuffleAmplification, resolve_grr
from .base import (
    ArrayLike,
    FrequencyOracle,
    perturbation_probabilities,
    randomized_response,
)


class GRR(FrequencyOracle):
    """Generalized randomized response over ``[d]`` at local budget ``eps``."""

    name = "GRR"

    def __init__(self, d: int, eps: float):
        super().__init__(d)
        self.eps = float(eps)
        self.p, self.q = perturbation_probabilities(eps, d)

    def __repr__(self) -> str:
        return f"GRR(d={self.d}, eps={self.eps:.4f})"

    @property
    def blanket_gamma(self) -> float:
        """Blanket mass ``gamma = d q``: probability the report is uniform."""
        return self.d * self.q

    def privatize(self, values: ArrayLike, rng: np.random.Generator) -> np.ndarray:
        """Apply Eq. (1) to each value; reports are integers in ``[d]``."""
        return randomized_response(np.asarray(values), self.d, self.p, rng)

    def support_counts(
        self, reports: np.ndarray, candidates: Optional[ArrayLike] = None
    ) -> np.ndarray:
        """A report supports ``v`` iff it equals ``v`` (Eq. (2) numerator)."""
        full = np.bincount(np.asarray(reports, dtype=np.int64), minlength=self.d)
        if candidates is None:
            return full.astype(float)
        return full[np.asarray(candidates, dtype=np.int64)].astype(float)

    def estimate(self, counts: np.ndarray, n: int) -> np.ndarray:
        """Eq. (2): ``f_hat = (C/n - q) / (p - q)``."""
        counts = np.asarray(counts, dtype=float)
        return (counts / n - self.q) / (self.p - self.q)

    def sample_support_counts(
        self, histogram: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Exact O(d) sampling via the blanket decomposition.

        GRR's output is the true value w.p. ``1 - gamma`` and uniform over
        ``[d]`` w.p. ``gamma = d q`` — so the report histogram is the sum of
        per-value binomial "truthful" counts and one multinomial blanket.
        This reproduces the *joint* distribution of the counts exactly.
        """
        histogram = np.asarray(histogram, dtype=np.int64)
        if histogram.shape != (self.d,):
            raise ValueError(
                f"histogram must have shape ({self.d},), got {histogram.shape}"
            )
        truthful = rng.binomial(histogram, 1.0 - self.blanket_gamma)
        blanket_total = int(histogram.sum() - truthful.sum())
        blanket = rng.multinomial(blanket_total, np.full(self.d, 1.0 / self.d))
        return (truthful + blanket).astype(float)

    def sample_fake_support_counts(
        self, n_fake: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Exact joint sampling: uniform fakes form one multinomial."""
        if n_fake < 0:
            raise ValueError(f"fake-report count must be >= 0, got {n_fake}")
        return rng.multinomial(n_fake, np.full(self.d, 1.0 / self.d)).astype(float)

    # -- PEOS integration --------------------------------------------------

    @property
    def report_space(self) -> int:
        """A GRR report is already an ordinal value in ``[d]``."""
        return self.d

    def encode_reports(self, reports: np.ndarray) -> np.ndarray:
        return self.ordinal_codec.asarray(reports)

    def decode_reports(self, encoded: np.ndarray) -> np.ndarray:
        return self.ordinal_codec.validate(encoded, what="encoded GRR report")

    def fake_report_bias(self) -> float:
        """A uniform fake report supports ``v`` w.p. ``1/d``; calibrated
        through Eq. (2) this contributes ``(1/d - q)/(p - q) = 1/d``."""
        return 1.0 / self.d


def make_sh(
    d: int, eps_c: float, n: int, delta: float
) -> tuple[GRR, ShuffleAmplification]:
    """Build the SH mechanism (shuffled GRR, [9]) for a central target.

    Returns the GRR instance at the amplified local budget together with the
    amplification record (``amplified=False`` marks the fallback regime
    where SH gains nothing from the shuffler).
    """
    resolution = resolve_grr(eps_c, n, d, delta)
    return GRR(d, resolution.eps_l), resolution
