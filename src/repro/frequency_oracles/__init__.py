"""Frequency oracles: every mechanism evaluated in the paper.

Local-model mechanisms take a *local* budget ``eps``; shuffle-model
constructors (``make_sh``, ``make_rap``, ``make_rap_r``,
``SOLH.for_central_target``, ``AUE``) take the *central* target
``(eps_c, delta)`` plus the population size ``n`` and resolve the local
budget through the amplification bounds of :mod:`repro.core.amplification`.
"""

from .base import (
    FrequencyOracle,
    normalize_estimates,
    perturbation_probabilities,
    randomized_response,
)
from .central import LaplaceMechanism, UniformBaseline
from .grr import GRR, make_sh
from .hadamard import (
    HadamardReports,
    HadamardResponse,
    fast_walsh_hadamard,
    hadamard_entry,
    next_power_of_two,
)
from .olh import OLH, SOLH, LocalHashingOracle, LocalHashReports
from .numeric import (
    NumericReports,
    OneBitMeanEstimator,
    make_shuffled_mean_estimator,
    mean_confidence_halfwidth,
)
from .oue import OUE, oue_variance_local
from .subset import SubsetReports, SubsetSelection, subset_variance_local
from .unary import (
    AUE,
    RAPPOR,
    RemovalRAPPOR,
    SymmetricUnaryEncoding,
    make_rap,
    make_rap_r,
    one_hot_matrix,
)

__all__ = [
    "AUE",
    "FrequencyOracle",
    "GRR",
    "HadamardReports",
    "HadamardResponse",
    "LaplaceMechanism",
    "LocalHashReports",
    "LocalHashingOracle",
    "NumericReports",
    "OneBitMeanEstimator",
    "OLH",
    "OUE",
    "RAPPOR",
    "RemovalRAPPOR",
    "SOLH",
    "SubsetReports",
    "SubsetSelection",
    "SymmetricUnaryEncoding",
    "UniformBaseline",
    "fast_walsh_hadamard",
    "hadamard_entry",
    "make_rap",
    "make_rap_r",
    "make_sh",
    "make_shuffled_mean_estimator",
    "mean_confidence_halfwidth",
    "next_power_of_two",
    "normalize_estimates",
    "one_hot_matrix",
    "oue_variance_local",
    "perturbation_probabilities",
    "randomized_response",
    "subset_variance_local",
]
