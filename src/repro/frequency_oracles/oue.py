"""Optimized Unary Encoding (OUE) — the asymmetric-flip variant of [54].

The paper's unary-encoding discussion (Section IV-B1) uses *symmetric*
RAPPOR flips; Wang et al.'s USENIX'17 framework (the paper's reference
[54] for all variance formulas) additionally optimizes the two flip
probabilities separately: keep a 1-bit with ``p = 1/2`` and flip a 0-bit
with ``q = 1/(e^eps + 1)``.  In the *local* model OUE strictly dominates
symmetric RAPPOR for small ``eps``; in the shuffle model the privacy
blanket of an asymmetric method is weaker, which is exactly why the paper
sticks to symmetric flips there.  We provide OUE to make that comparison
runnable (see ``tests/frequency_oracles/test_oue.py`` and the local-model
ablation), completing the unary-encoding family.

OUE satisfies ``eps``-LDP: the worst-case ratio is attained on the flipped
one-bit, ``(p / q) * ((1 - q) / (1 - p)) = e^eps`` with ``p = 1/2``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .base import ArrayLike, FrequencyOracle
from .unary import one_hot_matrix


class OUE(FrequencyOracle):
    """Optimized unary encoding at local budget ``eps``."""

    name = "OUE"

    def __init__(self, d: int, eps: float):
        super().__init__(d)
        if eps <= 0.0:
            raise ValueError(f"epsilon must be positive, got {eps}")
        self.eps = float(eps)
        self.p = 0.5
        self.q = 1.0 / (math.exp(eps) + 1.0)

    def __repr__(self) -> str:
        return f"OUE(d={self.d}, eps={self.eps:.4f})"

    def privatize(self, values: ArrayLike, rng: np.random.Generator) -> np.ndarray:
        """One-hot encode; keep 1-bits w.p. 1/2, set 0-bits w.p. ``q``."""
        matrix = one_hot_matrix(np.asarray(values), self.d)
        uniform = rng.random(matrix.shape)
        keep_ones = (matrix == 1) & (uniform < self.p)
        flip_zeros = (matrix == 0) & (uniform < self.q)
        return (keep_ones | flip_zeros).astype(np.uint8)

    def support_counts(
        self, reports: np.ndarray, candidates: Optional[ArrayLike] = None
    ) -> np.ndarray:
        full = np.asarray(reports, dtype=np.int64).sum(axis=0)
        if candidates is None:
            return full.astype(float)
        return full[np.asarray(candidates, dtype=np.int64)].astype(float)

    def estimate(self, counts: np.ndarray, n: int) -> np.ndarray:
        """``f_hat = (C/n - q) / (p - q)`` with the asymmetric (p, q)."""
        counts = np.asarray(counts, dtype=float)
        return (counts / n - self.q) / (self.p - self.q)

    def sample_support_counts(
        self, histogram: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Exact O(d): ``C_v ~ Bin(n_v, 1/2) + Bin(n - n_v, q)``."""
        histogram = np.asarray(histogram, dtype=np.int64)
        if histogram.shape != (self.d,):
            raise ValueError(
                f"histogram must have shape ({self.d},), got {histogram.shape}"
            )
        n = int(histogram.sum())
        ones_kept = rng.binomial(histogram, self.p)
        zeros_set = rng.binomial(n - histogram, self.q)
        return (ones_kept + zeros_set).astype(float)


def oue_variance_local(eps: float, n: int) -> float:
    """OUE's local-model variance: ``4 e^eps / (n (e^eps - 1)^2)`` [54]."""
    if eps <= 0.0:
        raise ValueError(f"epsilon must be positive, got {eps}")
    e = math.exp(eps)
    return 4.0 * e / (n * (e - 1.0) ** 2)
