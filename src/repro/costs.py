"""Communication and computation cost accounting (Table III's measurements).

Every protocol in :mod:`repro.shuffle` and :mod:`repro.protocol` accepts an
optional :class:`CostTracker`.  Parties are identified by string names
("user", "shuffler:0", "server", ...); the tracker records bytes sent /
received per party and wall-clock compute time per party (via the
``compute`` context manager wrapping each party's local work).

The tracker also knows how to *extrapolate*: Table III reports costs at
``n = 10^6`` users, which pure-Python crypto cannot run directly; all
per-report costs are linear in the number of reports, so
:meth:`CostTracker.scaled` rescales a measurement taken at a smaller ``n``.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class PartyCost:
    """Accumulated costs of one party."""

    bytes_sent: int = 0
    bytes_received: int = 0
    compute_seconds: float = 0.0

    def scaled(self, factor: float) -> "PartyCost":
        """Linearly rescale all costs (for n-extrapolation)."""
        return PartyCost(
            bytes_sent=int(self.bytes_sent * factor),
            bytes_received=int(self.bytes_received * factor),
            compute_seconds=self.compute_seconds * factor,
        )

    def merged(self, other: "PartyCost") -> "PartyCost":
        return PartyCost(
            bytes_sent=self.bytes_sent + other.bytes_sent,
            bytes_received=self.bytes_received + other.bytes_received,
            compute_seconds=self.compute_seconds + other.compute_seconds,
        )


@dataclass
class CostTracker:
    """Per-party cost ledger for one protocol execution."""

    parties: dict = field(default_factory=lambda: defaultdict(PartyCost))

    def send(self, source: str, destination: str, n_bytes: int) -> None:
        """Record ``n_bytes`` moving from ``source`` to ``destination``."""
        if n_bytes < 0:
            raise ValueError(f"negative message size: {n_bytes}")
        self.parties[source].bytes_sent += n_bytes
        self.parties[destination].bytes_received += n_bytes

    @contextmanager
    def compute(self, party: str):
        """Attribute the wall-clock time of the block to ``party``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.parties[party].compute_seconds += time.perf_counter() - start

    def cost(self, party: str) -> PartyCost:
        """Cost of one party (zero if never seen)."""
        return self.parties[party]

    def group_cost(self, prefix: str) -> PartyCost:
        """Sum of costs over parties whose name starts with ``prefix``
        (e.g. ``"shuffler"`` over all shufflers)."""
        total = PartyCost()
        for name, cost in self.parties.items():
            if name.startswith(prefix):
                total = total.merged(cost)
        return total

    def max_cost(self, prefix: str) -> PartyCost:
        """Per-party maximum over a group — Table III reports *per shuffler*
        numbers, i.e. the cost of one (the busiest) shuffler."""
        best = PartyCost()
        for name, cost in self.parties.items():
            if name.startswith(prefix):
                if cost.bytes_sent + cost.bytes_received > (
                    best.bytes_sent + best.bytes_received
                ):
                    best = cost
        return best

    def scaled(self, factor: float) -> "CostTracker":
        """Rescale every party's cost (per-report-linear extrapolation)."""
        scaled = CostTracker()
        for name, cost in self.parties.items():
            scaled.parties[name] = cost.scaled(factor)
        return scaled

    def summary(self) -> dict[str, PartyCost]:
        """Plain-dict snapshot for printing."""
        return dict(self.parties)


def share_bytes(modulus: int) -> int:
    """Wire size of one additive share over ``Z_M`` (values in [0, M))."""
    return max(1, (int(modulus - 1).bit_length() + 7) // 8)
