"""``repro lint``: argument handling and the text/JSON reporters.

Exit status: 0 clean (baselined findings included), 1 actionable
findings, 2 usage error (unknown rule code, unreadable path/baseline).
Kept separate from :mod:`repro.cli` so the linter stays importable —
and runnable — without numpy.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .config import find_project_root, load_config
from .engine import Baseline, LintReport, UsageError, lint_paths
from .rules import all_rules


def build_lint_parser(parser: Optional[argparse.ArgumentParser] = None):
    """Add the lint options to ``parser`` (or a fresh standalone one)."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro lint",
            description="Statically enforce the project's invariants.",
        )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to scan (default: the [tool.repro-lint] "
             "paths in pyproject.toml)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report style; json always embeds the --stats summary",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="baseline file of grandfathered findings (default: the "
             "[tool.repro-lint] baseline, resolved against the project root)",
    )
    parser.add_argument(
        "--select", metavar="RPLXXX", action="append", default=None,
        help="run only these rule codes (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--ignore", metavar="RPLXXX", action="append", default=None,
        help="skip these rule codes (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print the files/findings/suppressions summary after the run",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline file to grandfather every current "
             "finding (each entry still needs a human justification)",
    )
    return parser


def _split_codes(values: Optional[List[str]]) -> Optional[List[str]]:
    if values is None:
        return None
    return [code for value in values for code in value.split(",") if code]


def _stats_line(report: LintReport) -> str:
    stats = report.stats
    by_rule = ", ".join(
        f"{code}={count}"
        for code, count in stats["findings_by_rule"].items()
    ) or "none"
    return (
        f"lint: {stats['files_scanned']} file(s) scanned, "
        f"{stats['findings']} finding(s) [{by_rule}], "
        f"{stats['suppressions_used']} suppression(s) used, "
        f"{stats['baselined']} baselined"
        + (
            f" ({stats['baseline_stale_entries']} stale baseline entr"
            f"{'y' if stats['baseline_stale_entries'] == 1 else 'ies'})"
            if stats["baseline_stale_entries"]
            else ""
        )
    )


def run_lint(args: argparse.Namespace, stdout=None) -> int:
    """Execute one lint run; returns the process exit status."""
    stdout = stdout if stdout is not None else sys.stdout
    try:
        root = find_project_root(Path.cwd())
        config = load_config(root)
        paths = [Path(path) for path in (args.paths or config.paths)]
        baseline_path = Path(args.baseline or config.baseline)
        if not baseline_path.is_absolute():
            baseline_path = root / baseline_path
        select = _split_codes(args.select) or config.select
        ignore = _split_codes(args.ignore) or config.ignore
        rules = all_rules()

        if args.write_baseline:
            report = lint_paths(
                paths, rules, root, select=select, ignore=ignore, baseline=None
            )
            Baseline.from_findings(
                report.findings, justification="TODO: justify this exception"
            ).dump(baseline_path)
            print(
                f"wrote {len(report.findings)} entr"
                f"{'y' if len(report.findings) == 1 else 'ies'} to "
                f"{baseline_path}; fill in each justification",
                file=stdout,
            )
            return 0

        baseline = Baseline.load(baseline_path)
        report = lint_paths(
            paths, rules, root, select=select, ignore=ignore, baseline=baseline
        )
    except UsageError as invalid:
        print(f"error: {invalid}", file=sys.stderr)
        return 2
    except RecursionError:
        print("error: source too deeply nested to analyze", file=sys.stderr)
        return 2

    if args.format == "json":
        json.dump(report.to_dict(), stdout, indent=2, sort_keys=True)
        stdout.write("\n")
    else:
        for finding in report.findings:
            print(
                f"{finding.path}:{finding.line}: {finding.rule} "
                f"{finding.message}",
                file=stdout,
            )
        if args.stats or report.findings:
            print(_stats_line(report), file=stdout)
    return 0 if report.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.devtools.cli``)."""
    parser = build_lint_parser()
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
