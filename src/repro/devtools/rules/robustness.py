"""Robustness rules: retry loops must be attempt-bounded with backoff.

PR 10 built the fault-tolerance layer on one discipline: every retry is
a *budgeted* bet — a capped number of attempts with capped exponential
backoff — never an unbounded spin.  An unbounded ``while True: ...
sleep(...)`` retry hides a permanently-failed dependency as liveness:
the process looks healthy while making no progress forever, which is
exactly the failure mode supervised folds and server self-healing were
built to surface.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..engine import Finding, ModuleSource, Rule
from .common import dotted_name, walk_with_stack

#: the sleep callables a retry loop parks on
_SLEEPS = ("time.sleep", "asyncio.sleep", "sleep")


def _nearest_loop(ancestors: Tuple[ast.AST, ...]) -> Optional[ast.AST]:
    """The innermost loop enclosing a node, or None."""
    for node in reversed(ancestors):
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            return node
    return None


def _constant_truthy(test: ast.AST) -> bool:
    """True for ``while True`` / ``while 1`` — a loop only break exits."""
    return isinstance(test, ast.Constant) and bool(test.value)


class UnboundedRetrySleepRule(Rule):
    """RPL050: no sleeping inside an unbounded ``while True`` retry loop."""

    code = "RPL050"
    summary = "retry sleeps must be attempt-bounded (no `while True: sleep`)"
    rationale = (
        "A sleep inside `while True` is an unbounded retry: a dependency "
        "that never recovers turns the process into a silent zombie that "
        "burns its deadline without ever failing.  Bound the attempts "
        "(`for attempt in range(n)`) with capped exponential backoff and "
        "surface exhaustion to the caller, as the fold supervisor and "
        "the server's recovery loop do.  Event loops that *wait* rather "
        "than retry (a queue consumer parked on `await queue.get()`) "
        "don't sleep, so they are not flagged."
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node, ancestors in walk_with_stack(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func) not in _SLEEPS:
                continue
            loop = _nearest_loop(ancestors)
            if loop is None or not isinstance(loop, ast.While):
                continue
            if not _constant_truthy(loop.test):
                continue
            yield self.finding(
                module, node,
                "sleep inside `while True` is an unbounded retry; bound "
                "the attempts (`for attempt in range(n)`) with capped "
                "exponential backoff and report exhaustion",
            )
