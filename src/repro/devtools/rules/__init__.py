"""The rule catalog: every invariant the linter enforces.

Codes are grouped by theme — RPL00x determinism, RPL01x ownership,
RPL02x resources, RPL03x error discipline, RPL04x structure, RPL05x
robustness.  Adding a rule means: implement it in the matching module,
register it here, add one positive + one negative fixture in
``tests/devtools/``, and document it in DESIGN.md's "Static invariants"
section.
"""

from __future__ import annotations

from typing import Dict, List

from ..engine import Rule
from .determinism import GlobalRngRule, UnseededRngRule, WallClockRule
from .discipline import BareValueErrorRule, SwallowedExceptionRule
from .ownership import StoredAliasRule, ViewReturnRule
from .resources import SharedMemoryScopeRule, UnmanagedResourceRule
from .robustness import UnboundedRetrySleepRule
from .structure import ImportCycleRule, OracleParameterTupleRule

_RULE_CLASSES = (
    GlobalRngRule,
    UnseededRngRule,
    WallClockRule,
    ViewReturnRule,
    StoredAliasRule,
    SharedMemoryScopeRule,
    UnmanagedResourceRule,
    BareValueErrorRule,
    SwallowedExceptionRule,
    ImportCycleRule,
    OracleParameterTupleRule,
    UnboundedRetrySleepRule,
)


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in code order."""
    return sorted((cls() for cls in _RULE_CLASSES), key=lambda rule: rule.code)


def rule_catalog() -> Dict[str, Dict[str, str]]:
    """``{code: {summary, rationale}}`` for docs and ``--help`` output."""
    return {
        rule.code: {"summary": rule.summary, "rationale": rule.rationale}
        for rule in all_rules()
    }
