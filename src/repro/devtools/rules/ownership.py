"""Ownership rules: no aliasing of caller arrays across API boundaries.

PR 4 exists because ``ReportBuffer`` once handed out ``FlushBatch``
views of caller arrays — a later in-place edit by the caller silently
corrupted batches already queued for release.  The fix (owned read-only
copies) is a convention the type system cannot enforce; these rules
pin it where it matters most, the ``service/`` layer.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from ..engine import Finding, ModuleSource, Rule
from .common import dotted_name, function_params, walk_with_stack

#: ndarray methods that return views of the receiver
VIEW_METHODS = frozenset({
    "view", "reshape", "transpose", "swapaxes", "diagonal",
})

_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _innermost_function(
    ancestors: Tuple[ast.AST, ...]
) -> Optional[ast.AST]:
    for node in reversed(ancestors):
        if isinstance(node, _FUNCTIONS):
            return node
    return None


def _has_slice(subscript: ast.Subscript) -> bool:
    index = subscript.slice
    if isinstance(index, ast.Slice):
        return True
    return isinstance(index, ast.Tuple) and any(
        isinstance(element, ast.Slice) for element in index.elts
    )


class ViewReturnRule(Rule):
    """RPL010: never return a slice/view of a parameter array."""

    code = "RPL010"
    summary = "service/ functions must not return views of parameters"
    rationale = (
        "A returned slice shares memory with the caller's array: the "
        "caller mutates, the retained batch changes, estimates silently "
        "corrupt (the exact PR-4 ReportBuffer bug).  Return an owned "
        "``.copy()`` — or np.array(...) — instead."
    )

    def applies_to(self, path: str) -> bool:
        return "/service/" in path

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node, ancestors in walk_with_stack(module.tree):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            function = _innermost_function(ancestors)
            if function is None:
                continue
            params = function_params(function)
            value = node.value
            if (
                isinstance(value, ast.Subscript)
                and isinstance(value.value, ast.Name)
                and value.value.id in params
                and _has_slice(value)
            ):
                yield self.finding(
                    module, node,
                    f"returns a slice of parameter {value.value.id!r} — a "
                    f"view sharing the caller's memory; return "
                    f"{value.value.id}[...].copy() to transfer ownership",
                )
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in VIEW_METHODS
                and isinstance(value.func.value, ast.Name)
                and value.func.value.id in params
            ):
                yield self.finding(
                    module, node,
                    f"returns {value.func.value.id}.{value.func.attr}(...) — "
                    f"a view of a parameter array; copy before returning",
                )


def _asarray_of_param(value: ast.AST, params: Set[str]) -> Optional[str]:
    """The parameter name when ``value`` is ``np.asarray(<param>, ...)``."""
    if not isinstance(value, ast.Call) or not value.args:
        return None
    name = dotted_name(value.func)
    if name is None or name.rpartition(".")[2] != "asarray":
        return None
    first = value.args[0]
    if isinstance(first, ast.Name) and first.id in params:
        return first.id
    return None


def _setflags_targets(function: ast.AST) -> Set[str]:
    """Attributes frozen via ``self.<attr>.setflags(...)`` in this body."""
    frozen: Set[str] = set()
    for node in ast.walk(function):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "setflags"
            and isinstance(node.func.value, ast.Attribute)
            and isinstance(node.func.value.value, ast.Name)
            and node.func.value.value.id == "self"
        ):
            frozen.add(node.func.value.attr)
    return frozen


class StoredAliasRule(Rule):
    """RPL011: don't store caller arrays on ``self`` via bare asarray."""

    code = "RPL011"
    summary = "no self.<attr> = np.asarray(param) without copy/freeze"
    rationale = (
        "np.asarray is a no-op on an ndarray input, so the object retains "
        "a writable alias of the caller's buffer for its whole lifetime. "
        "Copy (np.array / .copy()) to own it, or setflags(writeable=False) "
        "to freeze the shared view visibly."
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for function in ast.walk(module.tree):
            if not isinstance(function, _FUNCTIONS):
                continue
            params = function_params(function)
            if not params:
                continue
            frozen = _setflags_targets(function)
            for node in ast.walk(function):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                param = _asarray_of_param(node.value, params)
                if param is None:
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr not in frozen
                    ):
                        yield self.finding(
                            module, node,
                            f"self.{target.attr} = np.asarray({param}) "
                            f"retains a writable alias of the caller's "
                            f"array; use np.array({param}) (a copy) or "
                            f"freeze it with setflags(writeable=False)",
                        )
