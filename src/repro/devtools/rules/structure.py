"""Structural rules: package layering and oracle merge compatibility.

The ``repro.*`` subpackages form a deliberate DAG (core at the bottom,
api/server at the top); a top-level import cycle turns import order into
behavior.  And ``IncrementalAggregator.merge`` gates shard merges on
``FrequencyOracle.parameter_tuple()`` — an oracle that changes how
counts are computed without extending that tuple lets incompatible
shards merge into silently biased estimates (the PR-4/5 lesson).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..engine import Finding, ModuleSource, ProjectRule, Rule


def _repro_module_name(path: str) -> Optional[str]:
    """``src/repro/service/pipeline.py`` -> ``repro.service.pipeline``."""
    parts = path.split("/")
    if "repro" not in parts:
        return None
    parts = parts[parts.index("repro"):]
    if not parts[-1].endswith(".py"):
        return None
    parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _top_package(module_name: str) -> str:
    """The cycle-graph node: ``repro.<first component>``."""
    parts = module_name.split(".")
    return ".".join(parts[:2]) if len(parts) > 1 else parts[0]


def _resolve_relative(
    module_name: str, is_package: bool, level: int, target: Optional[str]
) -> Optional[str]:
    """Absolute module named by ``from <level dots><target> import ...``."""
    package = module_name.split(".") if is_package else module_name.split(".")[:-1]
    if level - 1 > len(package):
        return None
    base = package[: len(package) - (level - 1)]
    if target:
        base = base + target.split(".")
    return ".".join(base) if base else None


class ImportCycleRule(ProjectRule):
    """RPL040: no top-level import cycles across repro.* subpackages."""

    code = "RPL040"
    summary = "repro.* subpackages must stay an import DAG"
    rationale = (
        "A cross-package cycle makes behavior depend on which module "
        "imported first (half-initialized packages, lazy-import "
        "workarounds that rot); the layering core -> oracles/hashing -> "
        "service -> api/server is what keeps every layer testable alone."
    )

    def check_project(
        self, modules: Sequence[ModuleSource]
    ) -> Iterator[Finding]:
        #: package -> imported package -> first (module, import node)
        edges: Dict[str, Dict[str, Tuple[ModuleSource, ast.stmt]]] = {}
        for module in modules:
            name = _repro_module_name(module.path)
            if name is None:
                continue
            is_package = module.path.endswith("__init__.py")
            source_pkg = _top_package(name)
            for statement in module.tree.body:
                targets: List[str] = []
                if isinstance(statement, ast.Import):
                    targets = [
                        alias.name for alias in statement.names
                        if alias.name.split(".")[0] == "repro"
                    ]
                elif isinstance(statement, ast.ImportFrom):
                    if statement.level:
                        resolved = _resolve_relative(
                            name, is_package, statement.level, statement.module
                        )
                        if resolved and resolved.split(".")[0] == "repro":
                            targets = [resolved]
                    elif (
                        statement.module
                        and statement.module.split(".")[0] == "repro"
                    ):
                        targets = [statement.module]
                for target in targets:
                    target_pkg = _top_package(target)
                    if target_pkg == source_pkg:
                        continue
                    edges.setdefault(source_pkg, {}).setdefault(
                        target_pkg, (module, statement)
                    )

        for cycle in _cycles({k: set(v) for k, v in edges.items()}):
            loop = " -> ".join(cycle + (cycle[0],))
            for index, source_pkg in enumerate(cycle):
                target_pkg = cycle[(index + 1) % len(cycle)]
                witness = edges.get(source_pkg, {}).get(target_pkg)
                if witness is None:
                    continue
                module, statement = witness
                yield self.finding(
                    module, statement,
                    f"top-level import of {target_pkg} closes the package "
                    f"cycle {loop}; move the import inside the function "
                    f"that needs it or push the shared code down a layer",
                )


def _cycles(graph: Dict[str, Set[str]]) -> List[Tuple[str, ...]]:
    """Strongly connected components of size > 1, as ordered cycles."""
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[Tuple[str, ...]] = []
    counter = [0]

    def strongconnect(node: str) -> None:
        index_of[node] = lowlink[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for neighbor in sorted(graph.get(node, ())):
            if neighbor not in graph and neighbor not in index_of:
                continue
            if neighbor not in index_of:
                strongconnect(neighbor)
                lowlink[node] = min(lowlink[node], lowlink[neighbor])
            elif neighbor in on_stack:
                lowlink[node] = min(lowlink[node], index_of[neighbor])
        if lowlink[node] == index_of[node]:
            component: List[str] = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            if len(component) > 1:
                sccs.append(tuple(reversed(component)))

    for node in sorted(graph):
        if node not in index_of:
            strongconnect(node)
    return sccs


def _suspicious_init_attrs(init: ast.FunctionDef) -> List[str]:
    """Public ``self.<attr>`` assignments that look non-scalar.

    The base ``parameter_tuple`` collects only public *scalar*
    attributes, so anything else stored on ``self`` — a bare parameter
    pass-through, a constructed object (capitalized call), a container
    literal, an array — silently drops out of merge gating.  Scalar
    coercions (``int(...)``, ``float(...)``, arithmetic, lowercase
    helper calls) are assumed safe.
    """

    def suspicious(value: ast.AST) -> bool:
        if isinstance(value, ast.Name):
            return True  # bare pass-through: scalarness is the caller's whim
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.Tuple)):
            return True
        if isinstance(value, ast.Call):
            func = value.func
            tail = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else ""
            )
            if tail[:1].isupper():
                return True  # constructor: an object lands on self
            if tail in ("asarray", "array", "zeros", "ones", "empty", "full"):
                return True
            return False
        if isinstance(value, ast.IfExp):
            return suspicious(value.body) or suspicious(value.orelse)
        if isinstance(value, ast.BoolOp):
            return any(suspicious(operand) for operand in value.values)
        return False

    attrs: List[str] = []
    for node in ast.walk(init):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and not target.attr.startswith("_")
            and suspicious(node.value)
        ):
            attrs.append(target.attr)
    return attrs


class OracleParameterTupleRule(Rule):
    """RPL041: support_counts overriders with object state must extend
    parameter_tuple."""

    code = "RPL041"
    summary = "support_counts override + object state needs parameter_tuple"
    rationale = (
        "merge() refuses incompatible shards by comparing "
        "parameter_tuple(); the default tuple sees only public scalars, "
        "so an oracle that counts differently because of a stored object "
        "(hash family, lookup table) merges with a mismatched twin and "
        "biases estimates without an error."
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = [
                base.id if isinstance(base, ast.Name) else (
                    base.attr if isinstance(base, ast.Attribute) else ""
                )
                for base in node.bases
            ]
            if not any(name.endswith("Oracle") for name in base_names):
                continue
            methods = {
                stmt.name
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "support_counts" not in methods or "parameter_tuple" in methods:
                continue
            init = next(
                (
                    stmt for stmt in node.body
                    if isinstance(stmt, ast.FunctionDef)
                    and stmt.name == "__init__"
                ),
                None,
            )
            if init is None:
                continue
            attrs = _suspicious_init_attrs(init)
            if attrs:
                yield self.finding(
                    module, node,
                    f"{node.name} overrides support_counts and stores "
                    f"non-scalar state ({', '.join(sorted(set(attrs)))}) "
                    f"but not parameter_tuple; extend parameter_tuple so "
                    f"merge() can refuse incompatible shards",
                )
