"""Error-discipline rules: the front door speaks ConfigError, nothing
swallows exceptions silently.

PR 3 unified every misconfiguration behind ``ConfigError(field=...)`` so
CLIs and web layers can point at the exact knob to fix; a bare
``ValueError`` raised from a front-door module regresses that contract
three layers away from where anyone notices.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from ..engine import Finding, ModuleSource, Rule
from .common import dotted_name, handler_catches, walk_with_stack


def _locally_caught(
    raise_node: ast.Raise, ancestors: Tuple[ast.AST, ...], exception: str
) -> bool:
    """True when the raise is inside a ``try`` whose handlers catch it.

    That is the parse-and-reject idiom (``int(text)`` + ``raise
    ValueError`` + ``except ValueError: raise HttpError(...)``) — local
    control flow, not an escaping exception.  A raise *inside one of the
    handlers* does escape, so the walk stops crediting a Try once an
    ExceptHandler sits between it and the raise.
    """
    chain = ancestors + (raise_node,)
    for index, node in enumerate(chain):
        if not isinstance(node, ast.Try):
            continue
        successor = chain[index + 1] if index + 1 < len(chain) else None
        if successor is None or not any(
            successor is statement for statement in node.body
        ):
            # In a handler / else / finally of this try: escapes it.
            continue
        if any(handler_catches(handler, exception) for handler in node.handlers):
            return True
    return False


class BareValueErrorRule(Rule):
    """RPL030: front-door modules raise ConfigError, not bare ValueError."""

    code = "RPL030"
    summary = "api//cli.py/server/ raise ConfigError(field=...), not ValueError"
    rationale = (
        "ConfigError names the offending field, so every surface (CLI "
        "exit 2, HTTP 400 payloads) stays actionable; a bare ValueError "
        "from a front-door module surfaces as an anonymous 500 or a "
        "traceback.  Locally-caught parse-helper raises are exempt."
    )

    def applies_to(self, path: str) -> bool:
        return (
            "/api/" in path
            or "/server/" in path
            or path.endswith("cli.py")
        )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node, ancestors in walk_with_stack(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                name = dotted_name(exc.func)
            else:
                name = dotted_name(exc)
            if name != "ValueError":
                continue
            if _locally_caught(node, ancestors, "ValueError"):
                continue
            yield self.finding(
                module, node,
                "bare ValueError escaping a front-door module; raise "
                "ConfigError(field=..., message=...) so callers can name "
                "the knob to fix",
            )


class SwallowedExceptionRule(Rule):
    """RPL031: no except-and-swallow of broad exception classes."""

    code = "RPL031"
    summary = "no `except Exception: pass`"
    rationale = (
        "Swallowing Exception hides budget-accounting and persistence "
        "failures until estimates are silently wrong; narrow the type "
        "(an `except TypeError: pass` probe is fine) or record the "
        "failure before continuing."
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                broad = True
            else:
                candidates = (
                    node.type.elts
                    if isinstance(node.type, ast.Tuple)
                    else [node.type]
                )
                broad = any(
                    dotted_name(candidate) in ("Exception", "BaseException")
                    for candidate in candidates
                )
            if not broad:
                continue
            body_is_noop = all(
                isinstance(statement, ast.Pass)
                or (
                    isinstance(statement, ast.Expr)
                    and isinstance(statement.value, ast.Constant)
                )
                for statement in node.body
            )
            if body_is_noop:
                caught = (
                    dotted_name(node.type) if node.type is not None else "all"
                )
                yield self.finding(
                    module, node,
                    f"except {caught}: pass swallows every failure on this "
                    f"path; catch the specific exception or handle it",
                )
