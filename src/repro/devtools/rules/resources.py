"""Resource rules: nothing heavyweight leaks when a code path dies.

PR 7's shared-memory pool earns an empty ``/dev/shm`` even after a
worker SIGKILL because every segment is created inside a pool whose
``close()`` unlinks unconditionally; PR 6's sqlite store and PR 4's
process pool have the same shape.  These rules keep new call sites from
quietly regressing that discipline.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..engine import Finding, ModuleSource, Rule
from .common import dotted_name, walk_with_stack

_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef)
_MANAGED_METHODS = frozenset({"shutdown", "close", "terminate"})


def _enclosing(
    ancestors: Tuple[ast.AST, ...], kinds
) -> Optional[ast.AST]:
    for node in reversed(ancestors):
        if isinstance(node, kinds):
            return node
    return None


def _in_try_finally(ancestors: Tuple[ast.AST, ...]) -> bool:
    return any(
        isinstance(node, ast.Try) and node.finalbody for node in ancestors
    )


def _in_with(ancestors: Tuple[ast.AST, ...]) -> bool:
    return any(isinstance(node, ast.withitem) for node in ancestors)


def _self_attr_method_called(scope: ast.AST, attr: str) -> bool:
    """``self.<attr>.close()`` / ``.shutdown()`` anywhere in ``scope``."""
    for node in ast.walk(scope):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MANAGED_METHODS
            and isinstance(node.func.value, ast.Attribute)
            and node.func.value.attr == attr
            and isinstance(node.func.value.value, ast.Name)
            and node.func.value.value.id == "self"
        ):
            return True
    return False


def _name_method_called(scope: ast.AST, name: str) -> bool:
    """``<name>.close()`` / ``.shutdown()`` or ``closing(<name>)``."""
    for node in ast.walk(scope):
        if not isinstance(node, ast.Call):
            continue
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _MANAGED_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        ):
            return True
        called = dotted_name(node.func)
        if (
            called is not None
            and called.rpartition(".")[2] == "closing"
            and any(
                isinstance(arg, ast.Name) and arg.id == name
                for arg in node.args
            )
        ):
            return True
    return False


def _assignment_target(
    node: ast.Call, ancestors: Tuple[ast.AST, ...]
) -> Optional[ast.AST]:
    """The single assignment target when the call is an Assign's value."""
    parent = ancestors[-1] if ancestors else None
    if (
        isinstance(parent, ast.Assign)
        and parent.value is node
        and len(parent.targets) == 1
    ):
        return parent.targets[0]
    return None


class SharedMemoryScopeRule(Rule):
    """RPL020: SharedMemory(create=True) only in managed scopes."""

    code = "RPL020"
    summary = "SharedMemory(create=True) needs try/finally or a pool"
    rationale = (
        "A created segment survives the process in /dev/shm until "
        "someone unlinks it; PR 7's leak-regression test only holds "
        "because creation happens inside SharedMemoryPool, whose close() "
        "unlinks every segment ever created.  Create segments through "
        "the pool, or at minimum inside try/finally."
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node, ancestors in walk_with_stack(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or name.rpartition(".")[2] != "SharedMemory":
                continue
            creates = any(
                keyword.arg == "create"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in node.keywords
            )
            if not creates:
                continue
            owner_class = _enclosing(ancestors, ast.ClassDef)
            pool_managed = owner_class is not None and "Pool" in owner_class.name
            if pool_managed or _in_try_finally(ancestors) or _in_with(ancestors):
                continue
            yield self.finding(
                module, node,
                "SharedMemory(create=True) outside a try/finally, with "
                "block, or *Pool class — the segment outlives a crash in "
                "/dev/shm; allocate through SharedMemoryPool instead",
            )


class UnmanagedResourceRule(Rule):
    """RPL021: executors and sqlite connections must be closed on all paths."""

    code = "RPL021"
    summary = "ProcessPoolExecutor/sqlite3.connect need with/shutdown/close"
    rationale = (
        "A leaked executor strands spawn workers past interpreter exit; "
        "a leaked sqlite connection holds the WAL and blocks the next "
        "writer for busy_timeout.  Use a context manager, or store the "
        "handle somewhere a close()/shutdown() call demonstrably reaches."
    )

    _TRACKED_SUFFIXES = ("ProcessPoolExecutor",)
    _TRACKED_DOTTED = ("sqlite3.connect",)

    def _tracked(self, name: Optional[str]) -> Optional[str]:
        if name is None:
            return None
        tail = name.rpartition(".")[2]
        if tail in self._TRACKED_SUFFIXES:
            return tail
        if name in self._TRACKED_DOTTED:
            return name
        return None

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node, ancestors in walk_with_stack(module.tree):
            if not isinstance(node, ast.Call):
                continue
            label = self._tracked(dotted_name(node.func))
            if label is None:
                continue
            if _in_with(ancestors):
                continue
            target = _assignment_target(node, ancestors)
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                owner = _enclosing(ancestors, ast.ClassDef)
                if owner is not None and _self_attr_method_called(
                    owner, target.attr
                ):
                    continue
                holder = f"self.{target.attr}"
            elif isinstance(target, ast.Name):
                scope = _enclosing(ancestors, _FUNCTIONS) or module.tree
                if _name_method_called(scope, target.id):
                    continue
                holder = target.id
            else:
                holder = None
            where = f" stored in {holder}" if holder else ""
            yield self.finding(
                module, node,
                f"{label}(...){where} has no reachable close()/shutdown() "
                f"— use a with block or close it explicitly on every path",
            )
