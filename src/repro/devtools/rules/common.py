"""Shared AST helpers for the rule catalog.

Everything works on syntax alone — no imports of the scanned code, no
type inference.  The helpers encode the project's idioms (``import numpy
as np``, ``from ..core.errors import ConfigError``) so individual rules
stay readable.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_with_stack(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, Tuple[ast.AST, ...]]]:
    """Yield ``(node, ancestors)`` pairs, outermost ancestor first."""
    stack: List[Tuple[ast.AST, Tuple[ast.AST, ...]]] = [(tree, ())]
    while stack:
        node, ancestors = stack.pop()
        yield node, ancestors
        child_ancestors = ancestors + (node,)
        for child in ast.iter_child_nodes(node):
            stack.append((child, child_ancestors))


_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def in_function(ancestors: Tuple[ast.AST, ...]) -> bool:
    return any(isinstance(node, _SCOPES) for node in ancestors)


def numpy_random_prefixes(tree: ast.Module) -> Set[str]:
    """Dotted prefixes that reach ``numpy.random`` in this module.

    Covers ``import numpy``, ``import numpy as np``, and
    ``from numpy import random [as nr]``.
    """
    prefixes: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    prefixes.add(f"{alias.asname or 'numpy'}.random")
                elif alias.name == "numpy.random" and alias.asname:
                    prefixes.add(alias.asname)
        elif isinstance(node, ast.ImportFrom) and node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    prefixes.add(alias.asname or "random")
    return prefixes


def stdlib_random_names(tree: ast.Module) -> Set[str]:
    """Names bound to the stdlib ``random`` module by a plain import."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    names.add(alias.asname or "random")
    return names


def imported_from(tree: ast.Module, module: str, name: str) -> Set[str]:
    """Local names bound by ``from <module> import <name> [as alias]``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                if alias.name == name:
                    names.add(alias.asname or name)
    return names


def call_name(node: ast.Call) -> Optional[str]:
    return dotted_name(node.func)


def function_params(func: ast.AST) -> Set[str]:
    """All parameter names of a FunctionDef/AsyncFunctionDef/Lambda."""
    args = func.args
    params = [arg.arg for arg in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        params.append(args.vararg.arg)
    if args.kwarg:
        params.append(args.kwarg.arg)
    return {name for name in params if name not in ("self", "cls")}


def handler_catches(handler: ast.ExceptHandler, exception: str) -> bool:
    """True if an ``except`` clause names ``exception`` (directly or in a
    tuple), or is a bare/``Exception``/``BaseException`` catch-all."""
    node = handler.type
    if node is None:
        return True
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    for candidate in candidates:
        name = dotted_name(candidate)
        if name in (exception, "Exception", "BaseException"):
            return True
    return False
