"""Determinism rules: all randomness flows from injected generators.

The whole stack's replay story — bit-identical sharded estimates, crash
recovery that re-synthesizes epochs, seed-cache transparency — rests on
one discipline: every random draw comes from a ``numpy`` ``Generator``
(or a seeded ``random.Random``) that the caller injected, never from
process-global state, ambient entropy, or the wall clock.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, ModuleSource, Rule
from .common import (
    call_name,
    imported_from,
    in_function,
    numpy_random_prefixes,
    stdlib_random_names,
    walk_with_stack,
)

#: numpy.random module-level samplers — the legacy global-state API
NUMPY_GLOBAL_SAMPLERS = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_integers",
    "random_sample", "ranf", "sample", "choice", "shuffle", "permutation",
    "bytes", "normal", "uniform", "binomial", "poisson", "exponential",
    "standard_normal", "standard_exponential", "beta", "gamma", "laplace",
    "geometric", "hypergeometric", "multinomial", "lognormal", "get_state",
    "set_state",
})

#: stdlib random module-level functions backed by the hidden global Random
STDLIB_GLOBAL_SAMPLERS = frozenset({
    "seed", "random", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "getrandbits", "randbytes", "triangular", "vonmisesvariate",
})

#: wall-clock reads; ``time.monotonic``/``perf_counter`` stay legal for
#: latency metrics because they never leak into estimate payloads
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today", "datetime.date.today",
})


class GlobalRngRule(Rule):
    """RPL001: no process-global RNG state, no module-scope RNG calls."""

    code = "RPL001"
    summary = "randomness must flow from an injected Generator"
    rationale = (
        "A single np.random.* or random.* global-state call breaks replay "
        "identity silently: sharded, resumed, and one-shot runs only stay "
        "bit-identical because every draw comes from a seeded, injected "
        "generator (see the two-stream RNG discipline, PR 4)."
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        np_random = numpy_random_prefixes(module.tree)
        std_random = stdlib_random_names(module.tree)
        for node, ancestors in walk_with_stack(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None or "." not in name:
                continue
            prefix, _, attr = name.rpartition(".")
            hits_numpy = prefix in np_random
            hits_stdlib = prefix in std_random
            if not (hits_numpy or hits_stdlib):
                continue
            module_label = "np.random" if hits_numpy else "random"
            if (hits_numpy and attr in NUMPY_GLOBAL_SAMPLERS) or (
                hits_stdlib and attr in STDLIB_GLOBAL_SAMPLERS
            ):
                yield self.finding(
                    module, node,
                    f"{module_label}.{attr}() draws from process-global RNG "
                    f"state; take an injected np.random.Generator instead",
                )
            elif not in_function(ancestors):
                # Even a seeded default_rng() at module scope is ambient
                # state: import order decides what downstream code sees.
                yield self.finding(
                    module, node,
                    f"module-level {module_label}.{attr}() call creates "
                    f"ambient RNG state at import time; construct "
                    f"generators inside the code path that owns them",
                )


class UnseededRngRule(Rule):
    """RPL002: no unseeded generator construction outside tests."""

    code = "RPL002"
    summary = "no unseeded default_rng() / random.Random()"
    rationale = (
        "An unseeded generator is seeded from OS entropy, so the run can "
        "never be replayed; write the intent down — pass a seed, or use "
        "random.SystemRandom() where nondeterminism is the point (crypto "
        "key generation)."
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        np_random = numpy_random_prefixes(module.tree)
        std_random = stdlib_random_names(module.tree)
        bare_default_rng = imported_from(
            module.tree, "numpy.random", "default_rng"
        )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or node.args or node.keywords:
                continue
            name = call_name(node)
            if name is None:
                continue
            prefix, _, attr = name.rpartition(".")
            if attr == "default_rng" and (
                prefix in np_random or name in bare_default_rng
            ):
                yield self.finding(
                    module, node,
                    "default_rng() without a seed cannot be replayed; "
                    "thread the caller's Generator or seed through",
                )
            elif attr == "Random" and prefix in std_random:
                yield self.finding(
                    module, node,
                    "random.Random() without a seed cannot be replayed; "
                    "pass a seed, or random.SystemRandom() if OS entropy "
                    "is intended",
                )


class WallClockRule(Rule):
    """RPL003: no wall-clock reads in library code."""

    code = "RPL003"
    summary = "no wall clock in estimate/bench-envelope paths"
    rationale = (
        "Estimates, flush records, and bench envelopes must be functions "
        "of (seed, inputs) alone; wall-clock values smuggled into them "
        "break the replay-identity tests only at comparison time.  Use "
        "time.perf_counter() for durations — it measures, it never "
        "labels data."
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in WALL_CLOCK_CALLS:
                yield self.finding(
                    module, node,
                    f"{name}() reads the wall clock; derive labels from "
                    f"the run's inputs and measure durations with "
                    f"time.perf_counter()",
                )
