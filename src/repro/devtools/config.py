"""``[tool.repro-lint]`` configuration from ``pyproject.toml``.

Recognized keys::

    [tool.repro-lint]
    paths = ["src", "benchmarks", "examples"]   # default scan set
    baseline = ".repro-lint-baseline.json"      # grandfathered findings
    select = ["RPL001"]                         # run only these rules
    ignore = ["RPL003"]                         # never run these rules

CLI flags override every key.  Parsing uses :mod:`tomllib` where the
interpreter has it (3.11+); on older interpreters a minimal line-based
reader handles exactly the flat string/string-list shape above — the
zero-new-deps constraint rules out a full TOML dependency.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

try:
    import tomllib
except ImportError:  # Python < 3.11
    tomllib = None

_TABLE = "repro-lint"

_KEY_RE = re.compile(r"^([A-Za-z0-9_-]+)\s*=\s*(.+)$")


@dataclass
class LintConfig:
    """Resolved configuration with the project defaults filled in."""

    paths: List[str] = field(
        default_factory=lambda: ["src", "benchmarks", "examples"]
    )
    baseline: str = ".repro-lint-baseline.json"
    select: Optional[List[str]] = None
    ignore: Optional[List[str]] = None


def find_project_root(start: Path) -> Path:
    """Nearest ancestor of ``start`` containing ``pyproject.toml``."""
    current = start.resolve()
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return current


def _parse_minimal_toml_table(text: str, table: str) -> dict:
    """Flat ``key = "str"`` / ``key = ["a", "b"]`` pairs of one table.

    Just enough TOML for the shape this project commits; anything fancier
    (multi-line arrays, nested tables) is silently ignored rather than
    misread.
    """
    values: dict = {}
    in_table = False
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("["):
            in_table = line == f"[tool.{table}]"
            continue
        if not in_table:
            continue
        match = _KEY_RE.match(line)
        if not match:
            continue
        key, literal = match.group(1), match.group(2).strip()
        if literal.startswith("["):
            values[key] = re.findall(r'"([^"]*)"', literal)
        elif literal.startswith('"') and literal.endswith('"'):
            values[key] = literal[1:-1]
    return values


def load_config(root: Path) -> LintConfig:
    """The ``[tool.repro-lint]`` table of ``<root>/pyproject.toml``."""
    pyproject = root / "pyproject.toml"
    config = LintConfig()
    if not pyproject.is_file():
        return config
    text = pyproject.read_text(encoding="utf-8")
    if tomllib is not None:
        try:
            table = tomllib.loads(text).get("tool", {}).get(_TABLE, {})
        except tomllib.TOMLDecodeError:
            table = {}
    else:
        table = _parse_minimal_toml_table(text, _TABLE)
    if isinstance(table.get("paths"), list):
        config.paths = [str(path) for path in table["paths"]]
    if isinstance(table.get("baseline"), str):
        config.baseline = table["baseline"]
    if isinstance(table.get("select"), list):
        config.select = [str(code) for code in table["select"]]
    if isinstance(table.get("ignore"), list):
        config.ignore = [str(code) for code in table["ignore"]]
    return config
