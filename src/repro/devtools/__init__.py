"""Developer tooling: the project's static invariant linter.

Eight PRs of growth accreted load-bearing invariants that existed only as
prose in DESIGN.md and as spot-check tests: the two-stream RNG discipline
behind bit-identical sharded estimates, owned read-only flush batches,
shared-memory segments that must never outlive their pool, the
``ConfigError(field=...)`` taxonomy at every front-door layer, and the
charge-before-release write-ahead ordering.  ``repro.devtools`` turns
those contracts into tooling: a pure-stdlib (``ast`` + ``tokenize``)
linter with project-specific rules, runnable as ``repro lint``.

Layout:

* :mod:`~repro.devtools.engine` — rule registry, file walker,
  :class:`Finding` records, inline ``# repro-lint: disable=RPLxxx``
  suppressions, and the committed-baseline mechanism.
* :mod:`~repro.devtools.rules` — the rule catalog (determinism,
  ownership, resources, error discipline, structure).
* :mod:`~repro.devtools.config` — the ``[tool.repro-lint]`` table in
  ``pyproject.toml``.
* :mod:`~repro.devtools.cli` — argument parsing and the text/JSON
  reporters behind ``repro lint``.

The linter deliberately has **zero dependencies beyond the stdlib** so it
can gate CI before numpy-heavy test jobs even start, and so it never
imports the code it scans (analysis is purely syntactic).
"""

from __future__ import annotations

from .engine import (
    Baseline,
    Finding,
    LintReport,
    lint_paths,
    lint_sources,
)
from .rules import all_rules, rule_catalog

__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "all_rules",
    "lint_paths",
    "lint_sources",
    "rule_catalog",
]
