"""Rule engine: file walking, suppressions, baselines, reporting.

The engine is deliberately dumb about *what* to check — every invariant
lives in :mod:`repro.devtools.rules` — and smart about the workflow
around findings:

* **Findings** are stable records (rule code, path, line, message) whose
  fingerprint excludes the line number, so a committed baseline survives
  unrelated edits above a grandfathered site.
* **Inline suppressions** — ``# repro-lint: disable=RPL001`` (or a
  comma-separated list, or ``all``) on the offending line — silence a
  finding at the source, visibly.  Use them for deliberate exceptions
  and pair each with a justifying comment.
* **Baselines** grandfather findings that are deliberate but too noisy
  to annotate inline; each entry carries a ``justification`` string so
  the exception is documented where it is granted.

Two entry points: :func:`lint_paths` walks real files (the CLI path) and
:func:`lint_sources` lints in-memory sources (the test path — rule
fixtures never depend on repository state).
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: pseudo-rule for files the parser rejects; always active
SYNTAX_RULE = "RPL000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)


class UsageError(Exception):
    """Invalid linter invocation (unknown rule code, bad path, ...).

    The CLI maps this to exit status 2, distinct from "findings exist"
    (1) and "clean" (0).
    """


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str
    col: int = 0

    def fingerprint(self) -> Tuple[str, str, str]:
        """Identity for baseline matching: rule + path + message.

        The line number is deliberately excluded so grandfathered
        findings do not churn when unrelated code moves them around.
        """
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class ModuleSource:
    """One parsed file handed to every applicable rule."""

    path: str  # posix path relative to the project root
    source: str
    tree: ast.Module

    #: line -> rule codes suppressed there ("all" suppresses every rule)
    line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule codes suppressed for the whole file
    file_suppressions: Set[str] = field(default_factory=set)

    @classmethod
    def parse(cls, path: str, source: str) -> "ModuleSource":
        tree = ast.parse(source, filename=path)
        module = cls(path=path, source=source, tree=tree)
        module._scan_suppressions()
        return module

    def _scan_suppressions(self) -> None:
        """Collect ``# repro-lint: disable[-file]=...`` comments.

        Tokenize-based so a matching string literal never counts; files
        tokenize fails on (it is stricter than ``ast.parse`` about
        encodings) fall back to a per-line scan.
        """
        comments: List[Tuple[int, str]] = []
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    comments.append((token.start[0], token.string))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            for lineno, text in enumerate(self.source.splitlines(), start=1):
                if "#" in text:
                    comments.append((lineno, text[text.index("#"):]))
        for lineno, text in comments:
            match = _SUPPRESS_RE.search(text)
            if not match:
                continue
            codes = {
                code.strip().upper() if code.strip().lower() != "all" else "all"
                for code in match.group(2).split(",")
                if code.strip()
            }
            if match.group(1) == "disable-file":
                self.file_suppressions |= codes
            else:
                self.line_suppressions.setdefault(lineno, set()).update(codes)


class Rule:
    """Base class for per-file rules.

    Subclasses set ``code`` / ``summary`` / ``rationale`` and implement
    :meth:`check`; override :meth:`applies_to` to scope the rule to a
    subtree (paths are posix, relative to the project root).
    """

    code: str = "RPL???"
    summary: str = ""
    rationale: str = ""

    def applies_to(self, path: str) -> bool:
        return True

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleSource, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.code,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class ProjectRule(Rule):
    """A rule that needs every scanned module at once (e.g. import cycles)."""

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, modules: Sequence[ModuleSource]
    ) -> Iterator[Finding]:
        raise NotImplementedError


@dataclass
class Baseline:
    """Committed record of grandfathered findings.

    JSON shape::

        {"schema": "repro.lint-baseline/1",
         "entries": [{"rule": "RPL030", "path": "src/...", "message": "...",
                      "justification": "why this one is deliberate"}]}
    """

    entries: List[dict] = field(default_factory=list)

    SCHEMA = "repro.lint-baseline/1"

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as broken:
            raise UsageError(f"unreadable baseline {path}: {broken}") from None
        if payload.get("schema") != cls.SCHEMA:
            raise UsageError(
                f"baseline {path} has schema {payload.get('schema')!r}, "
                f"expected {cls.SCHEMA!r}"
            )
        return cls(entries=list(payload.get("entries", [])))

    def _keys(self) -> Dict[Tuple[str, str, str], dict]:
        return {
            (entry["rule"], entry["path"], entry["message"]): entry
            for entry in self.entries
        }

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[dict]]:
        """Partition into (actionable, baselined, stale-entries)."""
        keys = self._keys()
        actionable: List[Finding] = []
        baselined: List[Finding] = []
        used: Set[Tuple[str, str, str]] = set()
        for finding in findings:
            key = finding.fingerprint()
            if key in keys:
                baselined.append(finding)
                used.add(key)
            else:
                actionable.append(finding)
        stale = [entry for key, entry in keys.items() if key not in used]
        return actionable, baselined, stale

    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], justification: str
    ) -> "Baseline":
        entries = [
            {
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
                "justification": justification,
            }
            for finding in findings
        ]
        return cls(entries=entries)

    def dump(self, path: Path) -> None:
        payload = {"schema": self.SCHEMA, "entries": self.entries}
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@dataclass
class LintReport:
    """Everything one lint run produced, pre-rendered for both formats."""

    findings: List[Finding]
    baselined: List[Finding]
    stats: dict

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "schema": "repro.lint/1",
            "findings": [finding.to_dict() for finding in self.findings],
            "baselined": [finding.to_dict() for finding in self.baselined],
            "stats": self.stats,
        }


def _validate_codes(
    codes: Optional[Iterable[str]], known: Set[str], option: str
) -> Optional[Set[str]]:
    if codes is None:
        return None
    normalized = {code.strip().upper() for code in codes if code.strip()}
    unknown = sorted(normalized - known - {SYNTAX_RULE})
    if unknown:
        raise UsageError(
            f"{option}: unknown rule code(s) {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})"
        )
    return normalized


def _apply_suppressions(
    module: ModuleSource, findings: Iterable[Finding]
) -> Tuple[List[Finding], int]:
    """Drop findings silenced inline; count the suppressions that fired."""
    kept: List[Finding] = []
    used = 0
    for finding in findings:
        codes = module.line_suppressions.get(finding.line, set())
        if (
            "all" in module.file_suppressions
            or finding.rule in module.file_suppressions
            or "all" in codes
            or finding.rule in codes
        ):
            used += 1
        else:
            kept.append(finding)
    return kept, used


def lint_sources(
    sources: Dict[str, str],
    rules: Sequence[Rule],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint in-memory sources — the engine core (and the test seam).

    ``sources`` maps project-relative posix paths to file contents; path
    scoping (``Rule.applies_to``) works exactly as it does on disk.
    """
    known = {rule.code for rule in rules}
    selected = _validate_codes(select, known, "--select")
    ignored = _validate_codes(ignore, known, "--ignore") or set()

    def active(code: str) -> bool:
        if code in ignored:
            return False
        return selected is None or code in selected

    modules: List[ModuleSource] = []
    findings: List[Finding] = []
    suppressions_used = 0
    for path in sorted(sources):
        try:
            module = ModuleSource.parse(path, sources[path])
        except SyntaxError as broken:
            if active(SYNTAX_RULE):
                findings.append(Finding(
                    rule=SYNTAX_RULE,
                    path=path,
                    line=broken.lineno or 1,
                    message=f"file does not parse: {broken.msg}",
                ))
            continue
        modules.append(module)
        per_file: List[Finding] = []
        for rule in rules:
            if isinstance(rule, ProjectRule):
                continue
            if active(rule.code) and rule.applies_to(path):
                per_file.extend(rule.check(module))
        kept, used = _apply_suppressions(module, per_file)
        findings.extend(kept)
        suppressions_used += used

    by_path = {module.path: module for module in modules}
    for rule in rules:
        if not isinstance(rule, ProjectRule) or not active(rule.code):
            continue
        project_findings: Dict[str, List[Finding]] = {}
        for finding in rule.check_project(modules):
            project_findings.setdefault(finding.path, []).append(finding)
        for path, batch in project_findings.items():
            module = by_path.get(path)
            if module is None:
                findings.extend(batch)
                continue
            kept, used = _apply_suppressions(module, batch)
            findings.extend(kept)
            suppressions_used += used

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    actionable, baselined, stale = (
        baseline.split(findings) if baseline is not None else (findings, [], [])
    )

    by_rule: Dict[str, int] = {}
    for finding in actionable:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    stats = {
        "files_scanned": len(sources),
        "findings": len(actionable),
        "findings_by_rule": dict(sorted(by_rule.items())),
        "suppressions_used": suppressions_used,
        "baselined": len(baselined),
        "baseline_stale_entries": len(stale),
    }
    return LintReport(findings=actionable, baselined=baselined, stats=stats)


def discover_files(paths: Sequence[Path], root: Path) -> Dict[str, Path]:
    """Expand files/directories into ``{relative posix path: file}``."""
    discovered: Dict[str, Path] = {}
    for raw in paths:
        path = raw if raw.is_absolute() else root / raw
        if path.is_file():
            candidates: Iterable[Path] = [path]
        elif path.is_dir():
            candidates = sorted(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
                and not any(part.startswith(".") for part in candidate.parts)
            )
        else:
            raise UsageError(f"no such file or directory: {raw}")
        for candidate in candidates:
            try:
                key = candidate.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                key = candidate.resolve().as_posix()
            discovered[key] = candidate
    return discovered


def lint_paths(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    root: Path,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Walk ``paths`` under ``root`` and lint every ``*.py`` found."""
    files = discover_files(paths, root)
    sources: Dict[str, str] = {}
    for key, path in files.items():
        try:
            sources[key] = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as unreadable:
            raise UsageError(f"cannot read {path}: {unreadable}") from None
    return lint_sources(
        sources, rules, select=select, ignore=ignore, baseline=baseline
    )
