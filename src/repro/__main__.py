"""``python -m repro`` — identical to ``python -m repro.cli`` / ``repro``."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
