"""The system model of Section V: parties, adversaries, and what each sees.

Three kinds of parties (Figure 1): ``n`` users, ``r`` auxiliary servers
(shufflers), and the server.  The paper's security analysis names three
adversary positions:

* ``Adv``   — the server alone;
* ``Adv_u`` — the server colluding with all users except the victim;
* ``Adv_a`` — the server colluding with auxiliary servers.

:class:`Adversary` encodes a position; :func:`privacy_against` evaluates
the ``(eps, delta)`` guarantee a PEOS configuration gives against it,
implementing the Section VI-B case analysis:

* more than ``floor(r/2)`` corrupted shufflers -> raw LDP only (``eps_l``);
* colluding users -> only the fake reports blanket (Cor. 8/9 ``eps_s``);
* server alone -> users' blanket + fake reports (Cor. 8/9 ``eps_c``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.peos_analysis import (
    peos_epsilon_collusion_grr,
    peos_epsilon_collusion_solh,
    peos_epsilon_server_grr,
    peos_epsilon_server_solh,
)


@dataclass(frozen=True)
class Adversary:
    """An adversary position in the shuffle-model system.

    The server is always part of the adversary (it is the party the DP
    guarantee is argued against); flags add colluding parties.
    """

    colluding_users: bool = False
    corrupted_shufflers: int = 0

    @classmethod
    def server(cls) -> "Adversary":
        """``Adv``: the honest-but-curious server alone."""
        return cls()

    @classmethod
    def with_users(cls) -> "Adversary":
        """``Adv_u``: server plus every user except the victim."""
        return cls(colluding_users=True)

    @classmethod
    def with_shufflers(cls, count: int) -> "Adversary":
        """``Adv_a``: server plus ``count`` corrupted auxiliary servers."""
        if count < 0:
            raise ValueError(f"corrupted shuffler count must be >= 0, got {count}")
        return cls(corrupted_shufflers=count)

    def describe(self) -> str:
        parts = ["server"]
        if self.colluding_users:
            parts.append("all non-victim users")
        if self.corrupted_shufflers:
            parts.append(f"{self.corrupted_shufflers} shuffler(s)")
        return " + ".join(parts)


@dataclass(frozen=True)
class PEOSDeployment:
    """A concrete PEOS configuration whose guarantees can be evaluated."""

    mechanism: str  # "grr" or "solh"
    eps_l: float
    report_domain: int  # d for GRR, d' for SOLH
    n: int
    n_r: int
    r: int
    delta: float

    def __post_init__(self) -> None:
        if self.mechanism not in ("grr", "solh"):
            raise ValueError(f"unknown mechanism {self.mechanism!r}")
        if self.r < 2:
            raise ValueError(f"PEOS needs at least 2 shufflers, got r={self.r}")

    @property
    def honest_majority_threshold(self) -> int:
        """Corrupting more than ``floor(r/2)`` shufflers breaks EOS privacy."""
        return self.r // 2


def privacy_against(deployment: PEOSDeployment, adversary: Adversary) -> float:
    """The epsilon guarantee of a PEOS deployment against an adversary.

    Implements the Section VI-B case analysis; returns ``math.inf`` only
    if no mechanism-level noise protects the victim at all (never the case
    while ``eps_l`` is finite).
    """
    if adversary.corrupted_shufflers > deployment.honest_majority_threshold:
        # EOS broken: the server sees each user's LDP report. Raw LDP only.
        return deployment.eps_l
    if adversary.colluding_users:
        # Only the fake reports stand between the victim and the adversary.
        if deployment.mechanism == "solh":
            return min(
                deployment.eps_l,
                peos_epsilon_collusion_solh(
                    deployment.report_domain, deployment.n_r, deployment.delta
                ),
            )
        return min(
            deployment.eps_l,
            peos_epsilon_collusion_grr(
                deployment.report_domain, deployment.n_r, deployment.delta
            ),
        )
    # Server alone: the other users' blanket plus the fake reports.
    if deployment.mechanism == "solh":
        return min(
            deployment.eps_l,
            peos_epsilon_server_solh(
                deployment.eps_l,
                deployment.report_domain,
                deployment.n,
                deployment.n_r,
                deployment.delta,
            ),
        )
    return min(
        deployment.eps_l,
        peos_epsilon_server_grr(
            deployment.eps_l,
            deployment.report_domain,
            deployment.n,
            deployment.n_r,
            deployment.delta,
        ),
    )


@dataclass
class ThreatReport:
    """Guarantees of one deployment against the three canonical adversaries."""

    deployment: PEOSDeployment
    guarantees: dict = field(default_factory=dict)

    @classmethod
    def evaluate(cls, deployment: PEOSDeployment) -> "ThreatReport":
        adversaries = {
            "Adv (server)": Adversary.server(),
            "Adv_u (server + users)": Adversary.with_users(),
            "Adv_a (server + minority shufflers)": Adversary.with_shufflers(
                deployment.honest_majority_threshold
            ),
            "Adv_a (server + majority shufflers)": Adversary.with_shufflers(
                deployment.honest_majority_threshold + 1
            ),
        }
        report = cls(deployment=deployment)
        for name, adversary in adversaries.items():
            report.guarantees[name] = privacy_against(deployment, adversary)
        return report

    def rows(self) -> list[tuple[str, float]]:
        """(adversary, epsilon) rows for printing."""
        return sorted(self.guarantees.items())


def ldp_fallback_epsilon(deployment: PEOSDeployment) -> float:
    """What remains when everything but LDP fails: the local budget."""
    return deployment.eps_l


def is_meaningful(epsilon: float, ceiling: float = 20.0) -> bool:
    """Crude check that a guarantee is not vacuous (used in examples)."""
    return math.isfinite(epsilon) and epsilon <= ceiling
