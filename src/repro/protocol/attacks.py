"""Attack analyses of Section V-C and VI: what adversaries see and do.

Three families of attack, each with a simulation the tests verify:

* **User collusion** (``Adv_u``): the server knows every non-victim user's
  LDP report and subtracts them from the shuffled multiset; what remains is
  the victim's report hidden among the fake reports.
  :func:`residual_multiset` computes that residual view.
* **Data poisoning in SS**: a sequential-shuffle shuffler can (a) inject
  fake reports from a *skewed* distribution to bias the estimate —
  undetectable, since randomness cannot be proven — or (b) replace users'
  reports, detectable by spot-check dummy accounts.
  :func:`biased_fake_distribution` and :func:`replacement_tamper` build the
  corresponding tamper hooks; :func:`spot_check_detection_probability`
  gives the analytical detection rate.
* **Data poisoning in PEOS**: a malicious shuffler biases its fake-report
  *shares*; because the fake report is the mod-``M`` sum over all
  shufflers' shares, a single honest shuffler's uniform share makes the sum
  uniform.  :func:`simulate_fake_reports` produces the resulting fake
  reports under any corruption pattern so the uniformity can be tested.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Optional, Sequence

import numpy as np

from ..crypto.secret_sharing import uniform_array
from ..crypto import onion
from ..crypto.onion import OnionCiphertext
from ..crypto.math_utils import RandomLike, as_random


# ---------------------------------------------------------------------------
# User collusion (Adv_u)
# ---------------------------------------------------------------------------

def residual_multiset(
    shuffled_reports: Sequence[int], known_reports: Sequence[int]
) -> Counter:
    """The colluding server's residual view after subtracting known reports.

    With all non-victim users colluding, ``known_reports`` holds their LDP
    outputs; the residual is the victim's report plus the fake reports —
    exactly the view Corollary 8's ``eps_s`` bounds.

    Raises if a known report is missing (would indicate tampering upstream).
    """
    residual = Counter(int(v) for v in shuffled_reports)
    for report in known_reports:
        report = int(report)
        if residual[report] <= 0:
            raise ValueError(
                f"known report {report} absent from the shuffled multiset"
            )
        residual[report] -= 1
    return +residual  # drop zero entries


# ---------------------------------------------------------------------------
# Data poisoning against SS
# ---------------------------------------------------------------------------

def biased_fake_distribution(
    target_value: int,
    n_extra: int,
    remaining_public_keys,
    report_width: int,
    crypto_rng: RandomLike = None,
) -> Callable[[int, list[OnionCiphertext]], list[OnionCiphertext]]:
    """Tamper hook: a shuffler injects ``n_extra`` fakes all voting for one
    target report — the undetectable skewed-noise attack of Section VI-A1."""
    crypto_rand = as_random(crypto_rng)

    def tamper(
        shuffler_index: int, batch: list[OnionCiphertext]
    ) -> list[OnionCiphertext]:
        payload = int(target_value).to_bytes(report_width, "big")
        extra = [
            onion.wrap(payload, remaining_public_keys, crypto_rand)
            for _ in range(n_extra)
        ]
        return batch + extra

    return tamper


def replacement_tamper(
    replacement_value: int,
    fraction: float,
    remaining_public_keys,
    report_width: int,
    rng: np.random.Generator,
    crypto_rng: RandomLike = None,
) -> Callable[[int, list[OnionCiphertext]], list[OnionCiphertext]]:
    """Tamper hook: replace a fraction of the batch with a chosen report.

    Unlike injection, replacement destroys genuine reports — including,
    possibly, the server's spot-check dummies, which is what makes it
    detectable.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    crypto_rand = as_random(crypto_rng)

    def tamper(
        shuffler_index: int, batch: list[OnionCiphertext]
    ) -> list[OnionCiphertext]:
        n_replace = int(round(fraction * len(batch)))
        victims = rng.choice(len(batch), size=n_replace, replace=False)
        payload = int(replacement_value).to_bytes(report_width, "big")
        out = list(batch)
        for index in victims:
            out[index] = onion.wrap(payload, remaining_public_keys, crypto_rand)
        return out

    return tamper


def spot_check_detection_probability(
    n_total: int, n_spot: int, n_replaced: int
) -> float:
    """Probability at least one of ``n_spot`` planted reports is destroyed
    when ``n_replaced`` of ``n_total`` messages are replaced uniformly.

    ``1 - C(n_total - n_spot, n_replaced) / C(n_total, n_replaced)``.
    """
    if n_spot < 0 or n_replaced < 0 or n_total < n_spot + 0:
        raise ValueError("invalid spot-check parameters")
    if n_replaced > n_total:
        raise ValueError("cannot replace more messages than exist")
    survive = 1.0
    for i in range(n_replaced):
        survive *= (n_total - n_spot - i) / (n_total - i)
    return 1.0 - survive


# ---------------------------------------------------------------------------
# Data poisoning against PEOS
# ---------------------------------------------------------------------------

def constant_share_attack(value: int) -> Callable[[int, np.ndarray], np.ndarray]:
    """Malicious share generator: always contribute ``value`` (maximally
    skewed — a would-be vote for one report)."""

    def attack(n_fake: int, honest_shares: np.ndarray) -> np.ndarray:
        out = np.empty(n_fake, dtype=honest_shares.dtype)
        out[:] = value
        return out

    return attack


def low_entropy_share_attack(
    support: Sequence[int], rng: np.random.Generator
) -> Callable[[int, np.ndarray], np.ndarray]:
    """Malicious share generator drawing from a tiny support set."""
    support = list(support)

    def attack(n_fake: int, honest_shares: np.ndarray) -> np.ndarray:
        picks = rng.integers(0, len(support), size=n_fake)
        return np.array([support[int(i)] for i in picks], dtype=honest_shares.dtype)

    return attack


def simulate_fake_reports(
    r: int,
    n_fake: int,
    modulus: int,
    rng: np.random.Generator,
    malicious: Optional[dict[int, Callable[[int, np.ndarray], np.ndarray]]] = None,
) -> np.ndarray:
    """Fake reports as reconstructed by the server under a corruption pattern.

    Each shuffler contributes one share vector; entries of ``malicious``
    replace the named shuffler's honest (uniform) shares.  Returns the
    elementwise sum mod ``modulus`` — uniform as long as at least one
    shuffler stayed honest, the property PEOS's poisoning resistance rests
    on (statistically verified in the test suite).
    """
    if r < 1:
        raise ValueError(f"need at least one shuffler, got r={r}")
    malicious = malicious or {}
    total = np.zeros(n_fake, dtype=object)
    for j in range(r):
        honest = uniform_array(modulus, n_fake, rng)
        shares = malicious[j](n_fake, honest) if j in malicious else honest
        for i in range(n_fake):
            total[i] = (int(total[i]) + int(shares[i])) % modulus
    if modulus < (1 << 62):
        return total.astype(np.int64)
    return total


# ---------------------------------------------------------------------------
# The averaging attack (Section V-C)
# ---------------------------------------------------------------------------

def averaging_attack_posterior(
    fo,
    true_value: int,
    repetitions: int,
    rng: np.random.Generator,
    memoize: bool = False,
) -> np.ndarray:
    """Simulate re-running a collection and the server averaging the victim.

    Section V-C: if the auxiliary server denies service and the protocol is
    redone, users must *remember* (memoize) their first report — otherwise
    each rerun draws fresh LDP noise and the server, which can link the
    victim's reports across reruns (it knows which runs happened), averages
    the noise away.

    Returns the support-count vector the server accumulates for the victim
    across ``repetitions`` runs: with ``memoize=False`` it concentrates on
    the true value as repetitions grow; with ``memoize=True`` it stays at a
    single report's worth of information.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    value = np.array([true_value])
    if memoize:
        reports = fo.privatize(value, rng)
        counts = fo.support_counts(reports)
        return counts * repetitions
    total = np.zeros(fo.d, dtype=float)
    for __ in range(repetitions):
        total += fo.support_counts(fo.privatize(value, rng))
    return total


def averaging_attack_success_rate(
    fo,
    repetitions: int,
    rng: np.random.Generator,
    trials: int = 50,
    memoize: bool = False,
) -> float:
    """Fraction of trials where averaging pins the victim's true value.

    The adversary guesses the value with the largest accumulated support.
    Without memoization this tends to 1 as ``repetitions`` grows — the
    quantitative form of the paper's warning.
    """
    hits = 0
    for trial in range(trials):
        true_value = int(rng.integers(0, fo.d))
        counts = averaging_attack_posterior(
            fo, true_value, repetitions, rng, memoize=memoize
        )
        if int(np.argmax(counts)) == true_value:
            hits += 1
    return hits / trials
