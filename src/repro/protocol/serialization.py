"""Wire formats: byte-exact serialization of protocol messages.

The cost accounting of Table III charges parties for bytes on the wire;
this module defines the actual encodings so those numbers are grounded in
real message layouts rather than estimates:

* ``encode_share_vector`` — fixed-width big-endian residues mod ``M``;
* ``encode_ciphertext_vector`` — length-prefixed big integers (AHE
  ciphertexts vary a few bytes below the modulus size);
* ``encode_report_batch`` — fixed-width encoded FO reports;
* a tiny framing layer (magic + type + count) so streams are
  self-describing and truncation is detected.

Every encoder has an exact inverse; round-trips are property-tested.
"""

from __future__ import annotations

import struct
from typing import Sequence

import numpy as np

from ..costs import share_bytes

#: Frame magic: "SDP" (shuffle-DP) + format version 1.
_MAGIC = b"SDP1"

#: Message type tags.
TYPE_SHARES = 1
TYPE_CIPHERTEXTS = 2
TYPE_REPORTS = 3


class WireFormatError(ValueError):
    """Raised on malformed or truncated wire data."""


def _frame(type_tag: int, count: int, payload: bytes) -> bytes:
    return _MAGIC + struct.pack(">BI", type_tag, count) + payload


def _unframe(data: bytes, expected_tag: int) -> tuple[int, bytes]:
    if len(data) < len(_MAGIC) + 5:
        raise WireFormatError("message shorter than the frame header")
    if data[:4] != _MAGIC:
        raise WireFormatError(f"bad magic {data[:4]!r}")
    tag, count = struct.unpack(">BI", data[4:9])
    if tag != expected_tag:
        raise WireFormatError(f"expected message type {expected_tag}, got {tag}")
    return count, data[9:]


def encode_share_vector(shares: Sequence[int], modulus: int) -> bytes:
    """Fixed-width encoding of additive shares over ``Z_M``."""
    width = share_bytes(modulus)
    payload = bytearray()
    for share in shares:
        value = int(share)
        if not 0 <= value < modulus:
            raise WireFormatError(f"share {value} outside [0, {modulus})")
        payload += value.to_bytes(width, "big")
    return _frame(TYPE_SHARES, len(shares), bytes(payload))


def decode_share_vector(data: bytes, modulus: int) -> np.ndarray:
    """Inverse of :func:`encode_share_vector`."""
    count, payload = _unframe(data, TYPE_SHARES)
    width = share_bytes(modulus)
    if len(payload) != count * width:
        raise WireFormatError(
            f"expected {count * width} payload bytes, got {len(payload)}"
        )
    values = [
        int.from_bytes(payload[i * width:(i + 1) * width], "big")
        for i in range(count)
    ]
    if any(v >= modulus for v in values):
        raise WireFormatError("decoded share outside the group")
    if modulus < (1 << 62):
        return np.array(values, dtype=np.int64)
    return np.array(values, dtype=object)


def encode_ciphertext_vector(ciphertexts: Sequence[int]) -> bytes:
    """Length-prefixed encoding of AHE ciphertexts (arbitrary big ints)."""
    payload = bytearray()
    for ciphertext in ciphertexts:
        value = int(ciphertext)
        if value < 0:
            raise WireFormatError("ciphertexts must be non-negative")
        blob = value.to_bytes(max(1, (value.bit_length() + 7) // 8), "big")
        payload += struct.pack(">I", len(blob)) + blob
    return _frame(TYPE_CIPHERTEXTS, len(ciphertexts), bytes(payload))


def decode_ciphertext_vector(data: bytes) -> list[int]:
    """Inverse of :func:`encode_ciphertext_vector`."""
    count, payload = _unframe(data, TYPE_CIPHERTEXTS)
    out = []
    offset = 0
    for __ in range(count):
        if offset + 4 > len(payload):
            raise WireFormatError("truncated ciphertext length prefix")
        (length,) = struct.unpack(">I", payload[offset:offset + 4])
        offset += 4
        if offset + length > len(payload):
            raise WireFormatError("truncated ciphertext body")
        out.append(int.from_bytes(payload[offset:offset + length], "big"))
        offset += length
    if offset != len(payload):
        raise WireFormatError("trailing bytes after the last ciphertext")
    return out


def encode_report_batch(reports: Sequence[int], report_space: int) -> bytes:
    """Fixed-width encoding of ordinal FO reports."""
    width = share_bytes(report_space)
    payload = bytearray()
    for report in reports:
        value = int(report)
        if not 0 <= value < report_space:
            raise WireFormatError(f"report {value} outside [0, {report_space})")
        payload += value.to_bytes(width, "big")
    return _frame(TYPE_REPORTS, len(reports), bytes(payload))


def decode_report_batch(data: bytes, report_space: int) -> np.ndarray:
    """Inverse of :func:`encode_report_batch`."""
    count, payload = _unframe(data, TYPE_REPORTS)
    width = share_bytes(report_space)
    if len(payload) != count * width:
        raise WireFormatError(
            f"expected {count * width} payload bytes, got {len(payload)}"
        )
    values = [
        int.from_bytes(payload[i * width:(i + 1) * width], "big")
        for i in range(count)
    ]
    if any(v >= report_space for v in values):
        raise WireFormatError("decoded report outside the report space")
    if report_space < (1 << 62):
        return np.array(values, dtype=np.int64)
    return np.array(values, dtype=object)


def share_vector_wire_size(count: int, modulus: int) -> int:
    """Exact on-the-wire size of a share-vector message."""
    return len(_MAGIC) + 5 + count * share_bytes(modulus)


def ciphertext_vector_wire_size(ciphertexts: Sequence[int]) -> int:
    """Exact on-the-wire size of a ciphertext-vector message."""
    return len(_MAGIC) + 5 + sum(
        4 + max(1, (int(c).bit_length() + 7) // 8) for c in ciphertexts
    )
