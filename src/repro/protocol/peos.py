"""PEOS — Private Encrypted Oblivious Shuffle (Algorithm 1), end to end.

The full protocol over ``n`` users, ``r`` shufflers, and one server:

1. every user runs the agreed frequency oracle (GRR or SOLH per the
   Section IV-B3 comparison), encodes the report into the ordinal group
   ``Z_M`` (Section VI-A2), splits it into ``r`` additive shares, encrypts
   the ``r``-th share under the server's AHE key, and uploads share ``j``
   to shuffler ``j``;
2. shufflers ``1..r-1`` draw plaintext shares of ``n_r`` fake reports;
   shuffler ``r`` draws its fake shares and encrypts them;
3. the shufflers run EOS (:mod:`repro.shuffle.eos`);
4. the server collects the final shares, decrypts the encrypted vector,
   reconstructs the shuffled report multiset, estimates frequencies over
   ``n + n_r`` reports, and removes the fake-report mass with Eq. (6).

Because each fake report is the mod-``M`` sum of one share from *every*
shuffler, a single honest shuffler makes all fake reports uniform — the
data-poisoning resistance PEOS is designed for (validated statistically in
``tests/protocol/test_attacks.py``).

Performance note: the protocol is exact at any scale, but pure-Python AHE
makes per-report costs milliseconds; benchmarks run reduced ``n`` and
extrapolate (see DESIGN.md and Table III bench).  For protocol runs prefer
the 32-bit-seed hash family (:class:`repro.hashing.XXHash32Family`) so the
report group fits in 64-bit arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.ordinal import OrdinalCodec
from ..crypto.math_utils import RandomLike, as_random
from ..crypto.secret_sharing import share_vector
from ..frequency_oracles.base import FrequencyOracle
from ..shuffle.eos import EOSState, encrypted_oblivious_shuffle, server_reconstruct
from ..costs import CostTracker, share_bytes


@dataclass
class PEOSResult:
    """Outcome of one PEOS execution."""

    #: calibrated frequency estimates over the value domain (Eq. (6))
    estimates: np.ndarray
    #: the shuffled, decoded report multiset the server saw (n + n_r entries)
    shuffled_reports: np.ndarray
    #: the EOS state (for transcript inspection in tests / attacks)
    eos_state: EOSState
    n_users: int
    n_fake: int


def peos_shuffle_encoded(
    encoded: Sequence[int],
    report_space: int,
    r: int,
    n_fake: int,
    ahe_public,
    ahe_decrypt: Callable[[int], int],
    rng: np.random.Generator,
    crypto_rng: RandomLike = None,
    tracker: Optional[CostTracker] = None,
    malicious_fake_shares: Optional[dict[int, Callable[[int, np.ndarray], np.ndarray]]] = None,
    rerandomize: bool = True,
) -> tuple[np.ndarray, EOSState]:
    """Steps 1b-4a of Algorithm 1 over already-encoded reports.

    Runs secret sharing, fake-share drawing, EOS, and the server-side
    reconstruction for a batch of ordinal-encoded reports, returning the
    shuffled report multiset (``n + n_fake`` entries mod ``report_space``)
    together with the EOS transcript.  :func:`run_peos` wraps this with the
    frequency-oracle privatize/estimate steps; the streaming service
    (:mod:`repro.service`) calls it directly on each flushed buffer batch.
    """
    if r < 2:
        raise ValueError(f"PEOS needs at least 2 shufflers, got r={r}")
    n = len(encoded)
    codec = OrdinalCodec(report_space)
    modulus = codec.space
    width = share_bytes(modulus)
    crypto_rand = as_random(crypto_rng)

    # ---- 1. users: share the encoded report, encrypt the last share -----
    def _user_phase():
        shares = share_vector(codec.asarray(encoded), r, modulus, rng)
        encrypted_last = [
            ahe_public.encrypt(int(s) % modulus, crypto_rand) for s in shares[r - 1]
        ]
        return shares, encrypted_last

    if tracker is None:
        shares, encrypted_last = _user_phase()
    else:
        with tracker.compute("user"):
            shares, encrypted_last = _user_phase()
        for j in range(r - 1):
            tracker.send("user", f"shuffler:{j}", n * width)
        tracker.send("user", f"shuffler:{r - 1}", n * ahe_public.ciphertext_bytes)

    # ---- 2. shufflers draw shares of the fake reports --------------------
    plain_vectors: list[np.ndarray] = []
    for j in range(r - 1):
        def _draw(j: int = j) -> np.ndarray:
            fake = codec.uniform(n_fake, rng)
            if malicious_fake_shares and j in malicious_fake_shares:
                fake = malicious_fake_shares[j](n_fake, fake)
            return codec.concat(shares[j], fake)

        if tracker is None:
            plain_vectors.append(_draw())
        else:
            with tracker.compute(f"shuffler:{j}"):
                plain_vectors.append(_draw())

    def _draw_encrypted() -> list[int]:
        fake = codec.uniform(n_fake, rng)
        if malicious_fake_shares and (r - 1) in malicious_fake_shares:
            fake = malicious_fake_shares[r - 1](n_fake, fake)
        return encrypted_last + [
            ahe_public.encrypt(int(f) % modulus, crypto_rand) for f in fake
        ]

    if tracker is None:
        encrypted_vector = _draw_encrypted()
    else:
        with tracker.compute(f"shuffler:{r - 1}"):
            encrypted_vector = _draw_encrypted()

    # The holder's plaintext slot is zero (its share arrived encrypted).
    total = n + n_fake
    zero_holder = codec.zeros(total)
    plain_shares = [
        codec.pad_check(vec, total) for vec in plain_vectors
    ] + [zero_holder]

    # ---- 3. EOS -----------------------------------------------------------
    state = encrypted_oblivious_shuffle(
        plain_shares,
        encrypted_vector,
        holder=r - 1,
        modulus=modulus,
        ahe=ahe_public,
        rng=rng,
        crypto_rng=crypto_rand,
        tracker=tracker,
        rerandomize=rerandomize,
    )

    # ---- 4a. server reconstructs the shuffled multiset -------------------
    def _reconstruct() -> np.ndarray:
        return np.asarray(
            server_reconstruct(
                state,
                modulus,
                ahe_decrypt,
                tracker=tracker,
                ciphertext_bytes=ahe_public.ciphertext_bytes,
            )
        )

    if tracker is None:
        shuffled = _reconstruct()
    else:
        with tracker.compute("server"):
            shuffled = _reconstruct()
    return shuffled, state


def run_peos(
    values: Sequence[int],
    fo: FrequencyOracle,
    r: int,
    n_fake: int,
    ahe_public,
    ahe_decrypt: Callable[[int], int],
    rng: np.random.Generator,
    crypto_rng: RandomLike = None,
    tracker: Optional[CostTracker] = None,
    malicious_fake_shares: Optional[dict[int, Callable[[int, np.ndarray], np.ndarray]]] = None,
    rerandomize: bool = True,
) -> PEOSResult:
    """Execute Algorithm 1.

    Parameters
    ----------
    values:
        The users' private values in ``[0, fo.d)``.
    fo:
        The frequency oracle (must be ordinal-encodable: GRR or a
        local-hashing oracle).
    r:
        Number of shufflers (honest majority assumed: the server must not
        corrupt more than ``floor(r/2)`` of them).
    n_fake:
        Total fake reports ``n_r`` injected by the shufflers.
    ahe_public / ahe_decrypt:
        The server's AHE public key (Paillier or DGK) and decryption
        callable.
    malicious_fake_shares:
        Optional map ``shuffler index -> f(n_fake, honest_shares) -> shares``
        letting attack analyses replace a shuffler's fake-share vector with
        a biased one.  Honest shufflers still mask it (PEOS's guarantee).
    """
    if r < 2:
        raise ValueError(f"PEOS needs at least 2 shufflers, got r={r}")
    values = np.asarray(values)
    n = len(values)
    total = n + n_fake
    crypto_rand = as_random(crypto_rng)

    # ---- 1a. users run the frequency oracle locally ----------------------
    def _privatize() -> np.ndarray:
        return fo.encode_reports(fo.privatize(values, rng))

    if tracker is None:
        encoded = _privatize()
    else:
        with tracker.compute("user"):
            encoded = _privatize()

    # ---- 1b-4a. share, inject fakes, EOS, reconstruct --------------------
    shuffled, state = peos_shuffle_encoded(
        encoded,
        fo.report_space,
        r,
        n_fake,
        ahe_public,
        ahe_decrypt,
        rng,
        crypto_rng=crypto_rand,
        tracker=tracker,
        malicious_fake_shares=malicious_fake_shares,
        rerandomize=rerandomize,
    )

    # ---- 4b. server estimates and calibrates -----------------------------
    def _estimate() -> np.ndarray:
        decoded = fo.decode_reports(fo.ordinal_codec.asarray(shuffled))
        counts = fo.support_counts(decoded)
        raw = fo.estimate(counts, total)
        return fo.calibrate_with_fakes(raw, n, n_fake)

    if tracker is None:
        estimates = _estimate()
    else:
        with tracker.compute("server"):
            estimates = _estimate()

    return PEOSResult(
        estimates=estimates,
        shuffled_reports=shuffled,
        eos_state=state,
        n_users=n,
        n_fake=n_fake,
    )


def concat_encoded(a: np.ndarray, b: np.ndarray, modulus: int) -> np.ndarray:
    """Concatenate two encoded-report arrays in the group's codec dtype.

    Backwards-compatible wrapper over
    :meth:`repro.core.ordinal.OrdinalCodec.concat`, which is where the
    int64-fast-path / object-fallback decision now lives.
    """
    return OrdinalCodec(modulus).concat(a, b)
