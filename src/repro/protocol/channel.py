"""Re-export of :mod:`repro.costs` under its historical protocol-layer name."""

from ..costs import CostTracker, PartyCost, share_bytes

__all__ = ["CostTracker", "PartyCost", "share_bytes"]
