"""Protocol layer: parties, cost accounting, PEOS execution, and attacks."""

from . import attacks, serialization
from .channel import CostTracker, PartyCost, share_bytes
from .parties import (
    Adversary,
    PEOSDeployment,
    ThreatReport,
    privacy_against,
)
from .peos import PEOSResult, peos_shuffle_encoded, run_peos

__all__ = [
    "Adversary",
    "CostTracker",
    "PEOSDeployment",
    "PEOSResult",
    "PartyCost",
    "ThreatReport",
    "attacks",
    "serialization",
    "peos_shuffle_encoded",
    "privacy_against",
    "run_peos",
    "share_bytes",
]
