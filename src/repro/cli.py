"""Command-line interface: run any of the paper's experiments directly.

``python -m repro.cli <experiment> [options]`` regenerates one table or
figure without going through pytest — convenient for parameter sweeps:

.. code-block:: bash

    python -m repro.cli fig3 --scale 0.2 --repeats 10
    python -m repro.cli table2 --eps 0.2 0.4 0.6 0.8
    python -m repro.cli fig4 --scale 0.5
    python -m repro.cli plan --eps1 0.5 --eps2 2.0 --eps3 5.0 --n 500000 --d 200
    python -m repro.cli table1

The heavy protocol benchmark (Table III) stays in
``benchmarks/bench_table3_overhead.py`` because its timing harness needs
pytest-benchmark.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.core import (
        csuzz_amplified_epsilon,
        efmrtt_amplified_epsilon,
        grr_amplified_epsilon,
    )

    print(f"{'eps_l':>6}  {'EFMRTT19':>10}  {'CSUZZ19':>10}  {'BBGN19':>10}")
    for eps_l in args.eps:
        try:
            efmrtt = f"{efmrtt_amplified_epsilon(eps_l, args.n, args.delta):10.4f}"
        except ValueError:
            efmrtt = f"{'n/a':>10}"
        csuzz = csuzz_amplified_epsilon(eps_l, args.n, args.delta)
        bbgn = grr_amplified_epsilon(eps_l, args.n, 2, args.delta)
        print(f"{eps_l:6.2f}  {efmrtt}  {csuzz:10.4f}  {bbgn:10.4f}")
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro.analysis import FIGURE3_METHODS, format_sweep_table, run_sweep
    from repro.data import ipums_like

    rng = np.random.default_rng(args.seed)
    data = ipums_like(rng, scale=args.scale)
    results = run_sweep(
        FIGURE3_METHODS, data.histogram, args.eps, args.delta, rng,
        repeats=args.repeats,
    )
    print(format_sweep_table(
        results, caption=f"IPUMS-like n={data.n}, d={data.d}, MSE"
    ))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.analysis import mse
    from repro.core import solh_optimal_d_prime
    from repro.data import kosarak_like
    from repro.frequency_oracles import SOLH, make_rap_r

    rng = np.random.default_rng(args.seed)
    data = kosarak_like(rng, scale=args.scale)
    truth = data.frequencies
    print(f"Kosarak-like n={data.n}, d={data.d}")
    print(f"{'eps_c':>6}  {'d-prime':>8}  {'SOLH MSE':>12}  {'RAP_R MSE':>12}")
    for eps_c in args.eps:
        d_prime = solh_optimal_d_prime(eps_c, data.n, args.delta)
        solh, __ = SOLH.for_central_target(data.d, eps_c, data.n, args.delta)
        rap_r, __ = make_rap_r(data.d, eps_c, data.n, args.delta)
        solh_mse = np.mean([
            mse(truth, solh.estimate_from_histogram(data.histogram, rng))
            for __ in range(args.repeats)
        ])
        rap_r_mse = np.mean([
            mse(truth, rap_r.estimate_from_histogram(data.histogram, rng))
            for __ in range(args.repeats)
        ])
        print(f"{eps_c:>6.2f}  {d_prime:>8}  {solh_mse:>12.3e}  {rap_r_mse:>12.3e}")
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.analysis import precision_at_k, treehist
    from repro.data import aol_like

    rng = np.random.default_rng(args.seed)
    data = aol_like(rng, scale=args.scale)
    truth = data.top_k(args.k)
    print(f"AOL-like n={data.n}; top-{args.k} precision")
    print(f"{'method':<7}" + "".join(f"  eps={e:<6}" for e in args.eps))
    for method in args.methods:
        cells = []
        for eps in args.eps:
            try:
                result = treehist(
                    data, method, eps, args.delta, rng, k=args.k,
                    composition=args.composition,
                )
                cells.append(f"{precision_at_k(truth, result.discovered):<10.2f}")
            except ValueError:
                cells.append(f"{'n/a':<10}")
        print(f"{method:<7}  " + "  ".join(cells))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.core import plan_peos

    plan = plan_peos(
        args.eps1, args.eps2, args.eps3, args.n, args.d, args.delta
    )
    print(f"mechanism : {plan.mechanism}")
    print(f"eps_l     : {plan.eps_l:.4f}")
    print(f"d'        : {plan.d_prime}")
    print(f"n_r       : {plan.n_r}")
    print(f"variance  : {plan.variance:.3e}")
    print(f"achieved  : Adv={plan.eps_server:.4f}  Adv_u={plan.eps_collusion:.4f}  "
          f"Adv_a={plan.eps_local:.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from the shuffle-DP paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=2020)
        p.add_argument("--delta", type=float, default=1e-9)
        p.add_argument("--scale", type=float, default=0.1,
                       help="population scale vs the paper's n")
        p.add_argument("--repeats", type=int, default=5)

    p = sub.add_parser("table1", help="amplification-bound comparison")
    p.add_argument("--eps", type=float, nargs="+",
                   default=[0.1, 0.25, 0.49, 1.0, 2.0])
    p.add_argument("--n", type=int, default=602_325)
    p.add_argument("--delta", type=float, default=1e-9)
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("fig3", help="MSE vs eps_c on IPUMS")
    common(p)
    p.add_argument("--eps", type=float, nargs="+",
                   default=[0.1, 0.2, 0.4, 0.6, 0.8, 1.0])
    p.set_defaults(func=_cmd_fig3)

    p = sub.add_parser("table2", help="SOLH vs RAP_R on Kosarak")
    common(p)
    p.add_argument("--eps", type=float, nargs="+", default=[0.2, 0.4, 0.6, 0.8])
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("fig4", help="succinct-histogram precision on AOL")
    common(p)
    p.add_argument("--eps", type=float, nargs="+", default=[0.2, 0.6, 1.0])
    p.add_argument("--k", type=int, default=32)
    p.add_argument("--methods", nargs="+",
                   default=["OLH", "SH", "SOLH", "RAP_R", "Lap"])
    p.add_argument("--composition", choices=["basic", "advanced"],
                   default="basic")
    p.set_defaults(func=_cmd_fig4)

    p = sub.add_parser("plan", help="Section VI-D PEOS planner")
    p.add_argument("--eps1", type=float, required=True)
    p.add_argument("--eps2", type=float, required=True)
    p.add_argument("--eps3", type=float, required=True)
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--d", type=int, required=True)
    p.add_argument("--delta", type=float, default=1e-9)
    p.set_defaults(func=_cmd_plan)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
