"""Command-line interface: run any of the paper's experiments directly.

``python -m repro <experiment> [options]`` (equivalently ``python -m
repro.cli`` or the installed ``repro`` script) regenerates one table or
figure without going through pytest — convenient for parameter sweeps:

.. code-block:: bash

    python -m repro fig3 --scale 0.2 --repeats 10
    python -m repro table2 --eps 0.2 0.4 0.6 0.8
    python -m repro fig4 --scale 0.5
    python -m repro plan --eps1 0.5 --eps2 2.0 --eps3 5.0 --n 500000 --d 200
    python -m repro table1
    python -m repro stream --epochs 4 --epoch-size 2000 --d 32
    python -m repro stream --epochs 4 --epoch-size 20000 --shards 4 \
        --fold-backend process
    python -m repro serve --port 8000 --max-pending 64 --state-db run.db

The pipeline-shaped commands (``fig3``, ``table2``, ``stream``) are thin
clients of the :mod:`repro.api` facade — the same ``ShuffleSession``
verbs any library consumer uses.

``stream`` runs the continuous telemetry service of :mod:`repro.service`
on a synthetic Zipf workload: per-epoch metrics, cross-epoch budget
accounting, and (by default) one epoch more than the budget admits so the
accountant's flush rejection is visible.

The heavy protocol benchmark (Table III) stays in
``benchmarks/bench_table3_overhead.py`` because its timing harness needs
pytest-benchmark.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.core import (
        csuzz_amplified_epsilon,
        efmrtt_amplified_epsilon,
        grr_amplified_epsilon,
    )

    print(f"{'eps_l':>6}  {'EFMRTT19':>10}  {'CSUZZ19':>10}  {'BBGN19':>10}")
    for eps_l in args.eps:
        try:
            efmrtt = f"{efmrtt_amplified_epsilon(eps_l, args.n, args.delta):10.4f}"
        except ValueError:
            efmrtt = f"{'n/a':>10}"
        csuzz = csuzz_amplified_epsilon(eps_l, args.n, args.delta)
        bbgn = grr_amplified_epsilon(eps_l, args.n, 2, args.delta)
        print(f"{eps_l:6.2f}  {efmrtt}  {csuzz:10.4f}  {bbgn:10.4f}")
    return 0


def _session(args: argparse.Namespace, mechanism: str, d: int):
    """One facade session per CLI experiment (the single front door)."""
    from repro.api import DeploymentConfig, PrivacyBudget, ShuffleSession

    eps = min(args.eps) if getattr(args, "eps", None) else args.eps1
    return ShuffleSession(
        DeploymentConfig(
            mechanism=mechanism,
            d=d,
            backend=getattr(args, "backend", "plain"),
            r=getattr(args, "shufflers", 3),
            composition=getattr(args, "composition", "basic"),
        ),
        PrivacyBudget(eps=eps, delta=args.delta),
    )


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro.analysis import FIGURE3_METHODS
    from repro.data import ipums_like

    rng = np.random.default_rng(args.seed)
    data = ipums_like(rng, scale=args.scale)
    sweep = _session(args, "SOLH", data.d).sweep(
        data.histogram, args.eps, methods=FIGURE3_METHODS,
        repeats=args.repeats, workers=args.workers, rng=rng,
    )
    print(sweep.table(caption=f"IPUMS-like n={data.n}, d={data.d}, MSE"))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.core import solh_optimal_d_prime
    from repro.data import kosarak_like

    rng = np.random.default_rng(args.seed)
    data = kosarak_like(rng, scale=args.scale)
    sweep = _session(args, "SOLH", data.d).sweep(
        data.histogram, args.eps, methods=("SOLH", "RAP_R"),
        repeats=args.repeats, workers=args.workers, rng=rng,
    )
    solh_row, rap_r_row = sweep["SOLH"].means, sweep["RAP_R"].means
    print(f"Kosarak-like n={data.n}, d={data.d}")
    print(f"{'eps_c':>6}  {'d-prime':>8}  {'SOLH MSE':>12}  {'RAP_R MSE':>12}")
    for i, eps_c in enumerate(args.eps):
        d_prime = solh_optimal_d_prime(eps_c, data.n, args.delta)
        print(f"{eps_c:>6.2f}  {d_prime:>8}  {solh_row[i]:>12.3e}  "
              f"{rap_r_row[i]:>12.3e}")
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.analysis import precision_at_k, treehist
    from repro.data import aol_like

    rng = np.random.default_rng(args.seed)
    data = aol_like(rng, scale=args.scale)
    truth = data.top_k(args.k)
    print(f"AOL-like n={data.n}; top-{args.k} precision")
    print(f"{'method':<7}" + "".join(f"  eps={e:<6}" for e in args.eps))
    for method in args.methods:
        cells = []
        for eps in args.eps:
            try:
                result = treehist(
                    data, method, eps, args.delta, rng, k=args.k,
                    composition=args.composition,
                )
                cells.append(f"{precision_at_k(truth, result.discovered):<10.2f}")
            except ValueError:
                cells.append(f"{'n/a':<10}")
        print(f"{method:<7}  " + "  ".join(cells))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools.cli import run_lint

    return run_lint(args)


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.core import plan_peos

    plan = plan_peos(
        args.eps1, args.eps2, args.eps3, args.n, args.d, args.delta
    )
    print(f"mechanism : {plan.mechanism}")
    print(f"eps_l     : {plan.eps_l:.4f}")
    print(f"d'        : {plan.d_prime}")
    print(f"n_r       : {plan.n_r}")
    print(f"variance  : {plan.variance:.3e}")
    print(f"achieved  : Adv={plan.eps_server:.4f}  Adv_u={plan.eps_collusion:.4f}  "
          f"Adv_a={plan.eps_local:.4f}")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.api import ConfigError
    from repro.core import InfeasiblePlanError
    from repro.data import zipf_histogram
    from repro.data.synthetic import values_from_histogram
    from repro.persistence import SqliteStateStore, StateStoreError
    from repro.service import flushes_per_epoch

    if args.flush_size < 1 or args.epoch_size < 1:
        print("error: --flush-size and --epoch-size must be >= 1",
              file=sys.stderr)
        return 2
    if args.budget_epochs is not None and args.budget_epochs < 1:
        print("error: --budget-epochs must be >= 1", file=sys.stderr)
        return 2
    if args.resume and args.state_db is None:
        print("error: --resume requires --state-db", file=sys.stderr)
        return 2
    if args.crash_after_epoch is not None and args.crash_after_epoch < 1:
        print("error: --crash-after-epoch must be >= 1", file=sys.stderr)
        return 2
    if args.chunk_bytes is not None and args.chunk_bytes != "auto":
        try:
            if int(args.chunk_bytes) < 1:
                raise ValueError
        except ValueError:
            print("error: --chunk-bytes must be a positive byte count or "
                  "'auto'", file=sys.stderr)
            return 2
    if args.seed_cache_bytes is not None and args.seed_cache_bytes < 0:
        print("error: --seed-cache-bytes must be >= 0", file=sys.stderr)
        return 2
    if args.fail_point:
        from repro.faults import install

        # Arms this process and exports REPRO_FAIL_POINTS so spawned
        # fold workers self-arm; ConfigError -> main()'s exit 2.
        install(args.fail_point)
    budget_epochs = (
        args.budget_epochs
        if args.budget_epochs is not None
        else max(1, args.epochs - 1)
    )
    admitted = budget_epochs * flushes_per_epoch(args.epoch_size, args.flush_size)
    # Raises ConfigError naming state_db on a missing parent directory or
    # an unwritable path — main() turns that into a clean exit 2.
    store = SqliteStateStore(args.state_db) if args.state_db else None
    pipeline = None
    try:
        if args.resume:
            try:
                pipeline = _resume_stream_pipeline(args, store)
            except StateStoreError as broken:
                print(f"error: {broken}", file=sys.stderr)
                return 2
            print(f"resumed from {args.state_db}: "
                  f"{pipeline.epochs_completed} epoch(s) and "
                  f"{pipeline.n_submits} submission(s) already applied")
        else:
            try:
                # The facade plans the deployment ("auto" lets Section VI-D
                # pick the mechanism) and returns the wired pipeline —
                # sharded across fold processes when --shards/--fold-backend
                # say so.
                pipeline = _session(args, "auto", args.d).stream(
                    args.flush_size,
                    eps_targets=(args.eps1, args.eps2, args.eps3),
                    epoch_size=args.epoch_size,
                    admitted_epochs=budget_epochs,
                    shards=args.shards,
                    backend=args.fold_backend,
                    fold_workers=args.fold_workers,
                    transport="pickle" if args.no_shm else "shm",
                    chunk_bytes=args.chunk_bytes,
                    seed_cache_bytes=args.seed_cache_bytes or 0,
                    fold_timeout=args.fold_timeout,
                    fold_retries=args.fold_retries,
                    degrade=not args.no_degrade,
                    rng=np.random.default_rng(args.seed),
                    crypto_rng=args.seed,
                    store=store,
                )
            except InfeasiblePlanError as infeasible:
                print(f"error: {infeasible}", file=sys.stderr)
                print("hint: relax the eps targets or enlarge --flush-size",
                      file=sys.stderr)
                return 2
            except ConfigError as invalid:
                print(f"error: {invalid}", file=sys.stderr)
                return 2
        config = pipeline.config
        plan = config.plan
        # The workload generator and the pipeline's ingest share one rng
        # (restored from the checkpoint on resume), so a resumed run's
        # synthetic epochs continue the uninterrupted run's exact stream.
        rng = pipeline.rng

        sharding = (
            f", {args.shards} shard(s) folded via {args.fold_backend}"
            if args.shards > 1 or args.fold_backend != "serial"
            else ""
        )
        print(f"plan (per flush of {config.flush_size} reports): "
              f"mechanism={plan.mechanism.upper()}  eps_l={plan.eps_l:.3f}  "
              f"d'={plan.d_prime}  n_r={plan.n_r}")
        print(f"per-flush release: eps={plan.eps_server:.4f}  delta={plan.delta:.2g}")
        print(f"lifetime budget  : eps={config.eps_budget:.4f}  "
              f"delta={config.delta_budget:.2g}  "
              f"({args.composition} composition, admits {admitted} flushes; "
              f"backend={args.backend}{sharding})\n")

        submitted: list[np.ndarray] = []
        print(f"{'epoch':>5}  {'flushes':>7}  {'rejected':>8}  {'released':>8}  "
              f"{'fakes':>7}  {'latency_s':>9}  {'reports/s':>10}  {'eps_spent':>9}")
        start_epoch = pipeline.epochs_completed if args.resume else 0
        for epoch in range(start_epoch, args.epochs):
            # The submit cursor: one submission per epoch, so a crash
            # between a submit's commit and its epoch close resumes with
            # the epoch already fed — close it without re-submitting.
            if not (epoch == start_epoch
                    and pipeline.n_submits > start_epoch):
                histogram = zipf_histogram(
                    args.epoch_size, args.d, args.exponent, rng
                )
                values = values_from_histogram(histogram, rng)
                submitted.append(values)
                pipeline.submit(values)
            report = pipeline.end_epoch()
            print(f"{report.epoch:>5}  {report.n_flushes:>7}  "
                  f"{report.n_rejected:>8}  "
                  f"{report.n_reports:>8}  {report.n_fake:>7}  "
                  f"{report.flush_latency_s:>9.3f}  {report.reports_per_sec:>10.0f}  "
                  f"{report.eps_spent:>9.4f}")
            if (args.crash_after_epoch is not None
                    and pipeline.epochs_completed >= args.crash_after_epoch):
                # Honest kill semantics: no flush, no close, no atexit —
                # exactly what the crash-recovery protocol must survive.
                print(f"simulated crash after epoch {report.epoch}",
                      file=sys.stderr)
                sys.stdout.flush()
                sys.stderr.flush()
                os._exit(3)

        result = pipeline.result()
        if result.rejections:
            first = result.rejections[0]
            print(f"\nbudget refusals: {result.n_rejected} flush(es) dropped "
                  f"(first at epoch {first.epoch}, flush {first.sequence}):")
            print(f"  {first.reason}")

        print(f"\nfinal estimates over {result.n_genuine} released reports "
              f"(+{result.n_fake} fakes):")
        if result.n_genuine > 0 and not args.resume:
            released = pipeline.released_values(np.concatenate(submitted))
            truth = np.bincount(released, minlength=args.d) / result.n_genuine
            mse = float(np.mean((result.estimates - truth) ** 2))
            top = np.argsort(truth)[::-1][:5]
            print(f"  MSE vs released-population truth: {mse:.3e}")
            for v in top:
                print(f"  value {v:>4}: true {truth[v]:.4f}  "
                      f"estimated {result.estimates[v]:.4f}")
        elif result.n_genuine > 0:
            # The crashed run's raw values died with it — by design, the
            # store persists only privatized reports and counts.
            print("  (MSE vs truth unavailable on resume: raw workload "
                  "values are never persisted)")
        else:
            print("  (no flush was admitted)")

        # Transport / cache telemetry, so operators see PR-7 behavior
        # without running benches. Serial pipelines have neither method.
        transport_stats = getattr(pipeline, "transport_stats", None)
        if transport_stats is not None:
            stats = transport_stats()
            print(f"\ntransport ({stats['transport']}): "
                  f"{stats['bytes_moved']:,} payload bytes moved, "
                  f"shm peak {stats['shm_peak_bytes']:,} bytes")
        seed_cache_stats = getattr(pipeline, "seed_cache_stats", None)
        if seed_cache_stats is not None:
            stats = seed_cache_stats()
            if stats["lookups"]:
                print(f"seed cache: {stats['hits']:,}/{stats['lookups']:,} "
                      f"row hits ({stats['hit_rate']:.1%})")
        fault_stats = getattr(pipeline, "fault_stats", None)
        if fault_stats is not None:
            stats = fault_stats()
            if any(stats[k] for k in ("fold_retries", "fold_timeouts",
                                      "worker_deaths", "pool_rebuilds",
                                      "degradations")):
                print(f"faults absorbed: {stats['fold_retries']} retried "
                      f"fold(s), {stats['fold_timeouts']} timeout(s), "
                      f"{stats['worker_deaths']} worker death(s), "
                      f"{stats['pool_rebuilds']} pool rebuild(s)")
                for hop in stats["degradations"]:
                    print(f"  transport degraded {hop['from']} -> "
                          f"{hop['to']}: {hop['reason']}")

        if args.estimates_out:
            payload = {
                "estimates": [float(x) for x in result.estimates],
                "eps_spent": result.eps_spent,
                "delta_spent": result.delta_spent,
                "n_genuine": result.n_genuine,
                "n_fake": result.n_fake,
                "n_rejected": result.n_rejected,
                "epochs": len(result.epochs),
            }
            with open(args.estimates_out, "w") as sink:
                json.dump(payload, sink, indent=2)
                sink.write("\n")
    finally:
        # A sharded pipeline may hold a process pool; never leak it.
        close = getattr(pipeline, "close", None)
        if close is not None:
            close()
        if store is not None:
            store.close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core import InfeasiblePlanError

    if args.flush_size < 1 or args.epoch_size < 1:
        print("error: --flush-size and --epoch-size must be >= 1",
              file=sys.stderr)
        return 2
    if args.budget_epochs < 1:
        print("error: --budget-epochs must be >= 1", file=sys.stderr)
        return 2
    if args.chunk_bytes is not None and args.chunk_bytes != "auto":
        try:
            if int(args.chunk_bytes) < 1:
                raise ValueError
        except ValueError:
            print("error: --chunk-bytes must be a positive byte count or "
                  "'auto'", file=sys.stderr)
            return 2
    if args.seed_cache_bytes is not None and args.seed_cache_bytes < 0:
        print("error: --seed-cache-bytes must be >= 0", file=sys.stderr)
        return 2

    if args.fail_point:
        from repro.faults import install

        install(args.fail_point)

    store_factory = None
    if args.state_db:
        from repro.persistence import SqliteStateStore

        state_db = args.state_db

        def store_factory():
            # Runs on the server's ingest thread, so the SQLite
            # connection is owned by the thread that uses it.
            return SqliteStateStore(state_db)

    # ConfigError (bad --port/--max-pending/... with the field named)
    # propagates to main()'s uniform exit 2.
    server = _session(args, "auto", args.d).serve(
        args.flush_size,
        host=args.host,
        port=args.port,
        max_pending=args.max_pending,
        max_body_bytes=args.max_body_bytes,
        retry_after_s=args.retry_after,
        store=store_factory,
        eps_targets=(args.eps1, args.eps2, args.eps3),
        epoch_size=args.epoch_size,
        admitted_epochs=args.budget_epochs,
        shards=args.shards,
        backend=args.fold_backend,
        fold_workers=args.fold_workers,
        transport="pickle" if args.no_shm else "shm",
        chunk_bytes=args.chunk_bytes,
        seed_cache_bytes=args.seed_cache_bytes or 0,
        fold_timeout=args.fold_timeout,
        fold_retries=args.fold_retries,
        degrade=not args.no_degrade,
        max_recoveries=args.max_recoveries,
        seed=args.seed,
        crypto_rng=args.seed,
    )
    try:
        return asyncio.run(_serve_until_signal(server))
    except InfeasiblePlanError as infeasible:
        print(f"error: {infeasible}", file=sys.stderr)
        print("hint: relax the eps targets or enlarge --flush-size",
              file=sys.stderr)
        return 2


async def _serve_until_signal(server) -> int:
    """Run the front door until SIGTERM/SIGINT, then shut down cleanly.

    Clean shutdown is the contract CI pins: drain accepted uploads into
    the pipeline, close it (releasing fold workers and unlinking every
    shared-memory segment), close the state store, exit 0.
    """
    import asyncio
    import signal

    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop.set)
    try:
        await server.start()
        plan = server.pipeline.config.plan
        print(f"serving on http://{server.config.host}:{server.port}  "
              f"(mechanism={plan.mechanism.upper()}, d'={plan.d_prime}, "
              f"max_pending={server.config.max_pending})", flush=True)
        print("endpoints: POST /api/reports  POST /api/epochs  "
              "GET /api/health  GET /api/config  GET /api/estimates",
              flush=True)
        await stop.wait()
        print("signal received; draining the ingest queue", flush=True)
    finally:
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.remove_signal_handler(signum)
        await server.stop()
    print("shutdown complete", flush=True)
    return 0


def _resume_stream_pipeline(args: argparse.Namespace, store):
    """Rebuild the persisted run under the requested execution layout.

    The layout — shards, transport, kernel tuning — is chosen fresh on
    every resume (it never affects estimates); ``--chunk-bytes auto``
    reuses the calibration persisted in the store when one exists.
    """
    from repro.hashing.calibrate import resolve_chunk_bytes
    from repro.service import ShardedPipeline, TelemetryPipeline

    chunk_bytes = resolve_chunk_bytes(args.chunk_bytes, store=store)
    seed_cache_bytes = args.seed_cache_bytes or 0
    if args.shards > 1 or args.fold_backend != "serial":
        return ShardedPipeline.resume(
            store,
            n_shards=args.shards,
            fold_backend=args.fold_backend,
            workers=args.fold_workers,
            transport="pickle" if args.no_shm else "shm",
            chunk_bytes=chunk_bytes,
            seed_cache_bytes=seed_cache_bytes,
            fold_timeout=args.fold_timeout,
            max_fold_retries=args.fold_retries,
            degrade=not args.no_degrade,
        )
    return TelemetryPipeline.resume(
        store, chunk_bytes=chunk_bytes, seed_cache_bytes=seed_cache_bytes
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from the shuffle-DP paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=2020)
        p.add_argument("--delta", type=float, default=1e-9)
        p.add_argument("--scale", type=float, default=0.1,
                       help="population scale vs the paper's n")
        p.add_argument("--repeats", type=int, default=5)

    p = sub.add_parser("table1", help="amplification-bound comparison")
    p.add_argument("--eps", type=float, nargs="+",
                   default=[0.1, 0.25, 0.49, 1.0, 2.0])
    p.add_argument("--n", type=int, default=602_325)
    p.add_argument("--delta", type=float, default=1e-9)
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("fig3", help="MSE vs eps_c on IPUMS")
    common(p)
    p.add_argument("--eps", type=float, nargs="+",
                   default=[0.1, 0.2, 0.4, 0.6, 0.8, 1.0])
    p.add_argument("--workers", type=int, default=1,
                   help="trial-plan worker threads (results are "
                        "bit-identical at any worker count)")
    p.set_defaults(func=_cmd_fig3)

    p = sub.add_parser("table2", help="SOLH vs RAP_R on Kosarak")
    common(p)
    p.add_argument("--eps", type=float, nargs="+", default=[0.2, 0.4, 0.6, 0.8])
    p.add_argument("--workers", type=int, default=1,
                   help="trial-plan worker threads (results are "
                        "bit-identical at any worker count)")
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("fig4", help="succinct-histogram precision on AOL")
    common(p)
    p.add_argument("--eps", type=float, nargs="+", default=[0.2, 0.6, 1.0])
    p.add_argument("--k", type=int, default=32)
    p.add_argument("--methods", nargs="+",
                   default=["OLH", "SH", "SOLH", "RAP_R", "Lap"])
    p.add_argument("--composition", choices=["basic", "advanced"],
                   default="basic")
    p.set_defaults(func=_cmd_fig4)

    p = sub.add_parser("stream", help="streaming telemetry service demo")
    p.add_argument("--seed", type=int, default=2020)
    p.add_argument("--delta", type=float, default=1e-9)
    p.add_argument("--epochs", type=int, default=4)
    p.add_argument("--epoch-size", type=int, default=2000)
    p.add_argument("--flush-size", type=int, default=1000)
    p.add_argument("--d", type=int, default=32)
    p.add_argument("--eps1", type=float, default=1.0)
    p.add_argument("--eps2", type=float, default=3.0)
    p.add_argument("--eps3", type=float, default=6.0)
    p.add_argument("--budget-epochs", type=int, default=None,
                   help="epochs the lifetime budget admits (default one "
                        "fewer than --epochs, so a rejection is shown)")
    p.add_argument("--backend", choices=["plain", "sequential", "peos"],
                   default="plain")
    p.add_argument("--shufflers", type=int, default=3)
    p.add_argument("--composition", choices=["basic", "advanced"],
                   default="basic")
    p.add_argument("--exponent", type=float, default=1.3,
                   help="Zipf exponent of the synthetic workload")
    p.add_argument("--shards", type=int, default=1,
                   help="fold-aggregator shards (estimates are "
                        "bit-identical at any shard count)")
    p.add_argument("--fold-backend", choices=["serial", "process"],
                   default="serial",
                   help="fold executor: inline, or a spawn-safe process "
                        "pool (requires --backend plain)")
    p.add_argument("--chunk-bytes", default=None, metavar="BYTES",
                   help="support-count kernel chunk budget in bytes, or "
                        "'auto' to run the one-shot timed calibration "
                        "(reused from --state-db when one is given)")
    p.add_argument("--seed-cache-bytes", type=int, default=None,
                   metavar="BYTES",
                   help="enable the cross-flush seed-row cache at this "
                        "byte budget (0 disables; estimates are "
                        "bit-identical either way)")
    p.add_argument("--no-shm", action="store_true",
                   help="ship process-fold batches by pickling instead of "
                        "zero-copy shared memory (bit-identical, slower)")
    p.add_argument("--fold-workers", type=int, default=None,
                   help="fold worker processes (default: min(shards, cores))")
    p.add_argument("--fold-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="treat a process fold exceeding this wall time as "
                        "hung and retry it (default: no timeout)")
    p.add_argument("--fold-retries", type=int, default=2,
                   help="consecutive retries of a failed fold before the "
                        "transport degrades one rung "
                        "(shm -> pickle -> serial)")
    p.add_argument("--no-degrade", action="store_true",
                   help="fail hard when the fold retry budget is spent "
                        "instead of degrading the transport")
    p.add_argument("--fail-point", action="append", default=None,
                   metavar="SPEC",
                   help="chaos testing: arm a failpoint, e.g. "
                        "'fold.worker:kill:every=3' or "
                        "'store.commit:raise:once' (repeatable; estimates "
                        "stay bit-identical when the run survives)")
    p.add_argument("--state-db", default=None, metavar="PATH",
                   help="persist budget charges, the flush log, and epoch "
                        "snapshots to this SQLite file (crash-safe; "
                        "requires --backend plain)")
    p.add_argument("--resume", action="store_true",
                   help="resume the run stored in --state-db instead of "
                        "starting fresh (pass the same flags as the "
                        "original run)")
    p.add_argument("--crash-after-epoch", type=int, default=None,
                   metavar="N",
                   help="testing hook: hard-exit (os._exit, status 3) once "
                        "N epochs have completed")
    p.add_argument("--estimates-out", default=None, metavar="PATH",
                   help="write final estimates and spend totals as JSON")
    p.set_defaults(func=_cmd_stream)

    p = sub.add_parser("serve", help="HTTP front door over the pipeline")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8000,
                   help="listen port (0 picks a free one, printed at start)")
    p.add_argument("--max-pending", type=int, default=64,
                   help="ingest-queue bound; beyond it uploads get HTTP "
                        "429 with a Retry-After header")
    p.add_argument("--max-body-bytes", type=int, default=None,
                   metavar="BYTES",
                   help="per-request body cap (HTTP 413 beyond it; "
                        "default 8 MiB)")
    p.add_argument("--retry-after", type=float, default=1.0,
                   metavar="SECONDS",
                   help="delay advertised in the 429 Retry-After header")
    p.add_argument("--seed", type=int, default=2020)
    p.add_argument("--delta", type=float, default=1e-9)
    p.add_argument("--d", type=int, default=32)
    p.add_argument("--flush-size", type=int, default=1000)
    p.add_argument("--epoch-size", type=int, default=2000,
                   help="expected reports per epoch (prices the lifetime "
                        "budget together with --budget-epochs)")
    p.add_argument("--budget-epochs", type=int, default=4,
                   help="epochs the lifetime budget admits")
    p.add_argument("--eps1", type=float, default=1.0)
    p.add_argument("--eps2", type=float, default=3.0)
    p.add_argument("--eps3", type=float, default=6.0)
    p.add_argument("--backend", choices=["plain", "sequential", "peos"],
                   default="plain")
    p.add_argument("--shufflers", type=int, default=3)
    p.add_argument("--composition", choices=["basic", "advanced"],
                   default="basic")
    p.add_argument("--shards", type=int, default=1,
                   help="fold-aggregator shards (estimates are "
                        "bit-identical at any shard count)")
    p.add_argument("--fold-backend", choices=["serial", "process"],
                   default="serial")
    p.add_argument("--fold-workers", type=int, default=None)
    p.add_argument("--fold-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="treat a process fold exceeding this wall time as "
                        "hung and retry it (default: no timeout)")
    p.add_argument("--fold-retries", type=int, default=2,
                   help="consecutive retries of a failed fold before the "
                        "transport degrades one rung")
    p.add_argument("--no-degrade", action="store_true",
                   help="fail hard when the fold retry budget is spent")
    p.add_argument("--max-recoveries", type=int, default=3,
                   help="ingest-crash recovery attempts from --state-db "
                        "before the server fails hard (0 disables "
                        "self-healing)")
    p.add_argument("--fail-point", action="append", default=None,
                   metavar="SPEC",
                   help="chaos testing: arm a failpoint, e.g. "
                        "'server.ingest:raise:at=1' (repeatable)")
    p.add_argument("--no-shm", action="store_true",
                   help="ship process-fold batches by pickling instead of "
                        "zero-copy shared memory")
    p.add_argument("--chunk-bytes", default=None, metavar="BYTES",
                   help="support-count kernel chunk budget, or 'auto'")
    p.add_argument("--seed-cache-bytes", type=int, default=None,
                   metavar="BYTES")
    p.add_argument("--state-db", default=None, metavar="PATH",
                   help="journal durable state to this SQLite file "
                        "(opened on the server's ingest thread)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "lint",
        help="static invariant linter (determinism, ownership, resources, "
             "error discipline; see repro.devtools)",
    )
    from repro.devtools.cli import build_lint_parser

    build_lint_parser(p)
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("plan", help="Section VI-D PEOS planner")
    p.add_argument("--eps1", type=float, required=True)
    p.add_argument("--eps2", type=float, required=True)
    p.add_argument("--eps3", type=float, required=True)
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--d", type=int, required=True)
    p.add_argument("--delta", type=float, default=1e-9)
    p.set_defaults(func=_cmd_plan)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    from repro.api import ConfigError

    try:
        return args.func(args)
    except ConfigError as invalid:
        # Uniform exit for any misconfiguration the facade rejects
        # (e.g. a non-positive --eps value argparse cannot know about).
        print(f"error: {invalid}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
