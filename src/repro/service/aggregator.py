"""Incremental frequency estimation over a stream of flushed batches.

The one-shot pipeline computes ``estimate(support_counts(reports), n)``
over all reports at once.  Support counts are additive and the Eq. (2)/(3)
estimators are affine in the counts, so a running sum of per-batch counts
reproduces the one-shot estimate *exactly* — bit for bit — which is what
makes streaming aggregation possible without storing reports.

:class:`IncrementalAggregator` keeps three scalars of state besides the
``d``-vector of counts: genuine reports folded, fake reports folded, and
the number of batches.  :meth:`estimates` applies the estimator over
``n + n_r`` reports and then the Eq. (6) fake-report recalibration.

Two fold paths mirror the one-shot code:

* the **materialized** path (:meth:`fold_reports`) counts real decoded
  reports via the oracle's ``support_counts`` — which for the
  local-hashing oracles is the shared low-allocation kernel
  (:func:`repro.hashing.kernels.support_counts_kernel`) — used with the
  crypto backends;
* the **statistical** path (:meth:`fold_histogram`) draws the counts
  directly from a per-epoch value histogram via ``sample_support_counts``
  plus ``sample_fake_support_counts`` — the O(d) no-materialization path
  used by throughput benchmarks at paper scale.

``merge`` combines aggregators from disjoint shards (same additivity
argument) — the seam :class:`repro.service.sharded.ShardedPipeline`
folds its per-shard state through to produce global estimates.
"""

from __future__ import annotations

import numpy as np

from ..frequency_oracles.base import FrequencyOracle


class IncrementalAggregator:
    """Running support counts and calibrated estimates for one oracle."""

    def __init__(self, fo: FrequencyOracle):
        self.fo = fo
        self._counts = np.zeros(fo.d)
        self.n_genuine = 0
        self.n_fake = 0
        self.n_batches = 0

    def __repr__(self) -> str:
        return (
            f"IncrementalAggregator({self.fo!r}, batches={self.n_batches}, "
            f"n={self.n_genuine}, n_r={self.n_fake})"
        )

    @property
    def support_counts(self) -> np.ndarray:
        """Copy of the running full-domain support counts."""
        return self._counts.copy()

    @property
    def total_reports(self) -> int:
        return self.n_genuine + self.n_fake

    # -- folding -----------------------------------------------------------

    def fold_counts(
        self, counts: np.ndarray, n_genuine: int, n_fake: int
    ) -> None:
        """Add one batch's full-domain support counts to the running sum."""
        counts = np.asarray(counts, dtype=float)
        if counts.shape != (self.fo.d,):
            raise ValueError(
                f"counts must have shape ({self.fo.d},), got {counts.shape}"
            )
        if not np.all(np.isfinite(counts)):
            bad = int(np.flatnonzero(~np.isfinite(counts))[0])
            raise ValueError(
                f"batch {self.n_batches} has a non-finite support count "
                f"({counts[bad]}) at value {bad}; folding it would silently "
                f"poison every later estimate"
            )
        if n_genuine < 0 or n_fake < 0:
            raise ValueError(
                f"report counts must be >= 0, got n={n_genuine}, n_r={n_fake}"
            )
        self._counts += counts
        self.n_genuine += int(n_genuine)
        self.n_fake += int(n_fake)
        self.n_batches += 1

    def fold_reports(
        self, decoded_reports, n_genuine: int, n_fake: int
    ) -> None:
        """Count and fold one shuffled batch (genuine + fake, mixed)."""
        if len(decoded_reports) != n_genuine + n_fake:
            raise ValueError(
                f"batch has {len(decoded_reports)} reports but claims "
                f"{n_genuine} genuine + {n_fake} fake"
            )
        counts = self.fo.support_counts(decoded_reports)
        self.fold_counts(counts, n_genuine, n_fake)

    def fold_histogram(
        self, histogram: np.ndarray, n_fake: int, rng: np.random.Generator
    ) -> None:
        """Statistical path: sample one batch's counts from a histogram."""
        histogram = np.asarray(histogram, dtype=np.int64)
        counts = self.fo.sample_support_counts(histogram, rng)
        counts = counts + self.fo.sample_fake_support_counts(n_fake, rng)
        self.fold_counts(counts, int(histogram.sum()), n_fake)

    def merge(self, other: "IncrementalAggregator") -> None:
        """Absorb another shard's state.

        The shards' oracles must match in *every* parameter (mechanism,
        domain, local budget, hash domain) — the counts are debiased with
        this aggregator's ``p``/``q`` at estimate time, so folding counts
        sampled under different perturbation probabilities would silently
        bias the result.  Compatibility is decided by
        :meth:`~repro.frequency_oracles.base.FrequencyOracle.compatible_with`
        on the oracles' parameter tuples — never by ``repr``, which a
        subclass may truncate without surfacing every parameter.

        Because support counts are integer-valued (float storage
        notwithstanding) their float sums are exact below ``2**53``
        reports, so merging shards in any order or grouping produces
        bit-identical state — the property the sharded pipeline's
        determinism contract rests on.
        """
        if not self.fo.compatible_with(other.fo):
            raise ValueError(
                f"cannot merge {other.fo!r} into {self.fo!r}: oracle "
                f"parameter mismatch ({other.fo.parameter_tuple()} vs "
                f"{self.fo.parameter_tuple()})"
            )
        self._counts += other._counts
        self.n_genuine += other.n_genuine
        self.n_fake += other.n_fake
        self.n_batches += other.n_batches

    # -- estimation --------------------------------------------------------

    def estimates(self) -> np.ndarray:
        """Calibrated frequency estimates over everything folded so far.

        Identical (bit for bit) to a one-shot ``estimate`` +
        ``calibrate_with_fakes`` over the concatenation of every folded
        batch's reports.
        """
        if self.total_reports == 0:
            return np.zeros(self.fo.d)
        raw = self.fo.estimate(self._counts, self.total_reports)
        return self.fo.calibrate_with_fakes(raw, self.n_genuine, self.n_fake)
