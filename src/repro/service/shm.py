"""Pooled shared-memory segments for zero-copy shard traffic.

Process folding ships each carved flush's encoded reports to a worker.
Pickling them costs a serialize-copy in the parent, a pipe write, a pipe
read, and a deserialize-copy in the worker — four traversals of a buffer
the parent already owns.  :class:`SharedMemoryPool` replaces that with
one write into a pooled ``multiprocessing.shared_memory`` segment: the
parent copies the batch in (the only copy), the worker maps the segment
and reads the reports in place, and the segment returns to the pool for
the next flush.

Two CPython sharp edges shape the implementation:

* **Resource-tracker double-unlink.**  Before 3.13 (``track=False``),
  *every* ``SharedMemory`` attach registers the segment with the
  attaching process's resource tracker — so a fold worker that dies (or
  simply exits at pool shutdown) would have its tracker unlink segments
  the parent still owns, tearing memory out from under in-flight folds
  and spraying "leaked shared_memory" warnings.  :func:`attach_segment`
  suppresses the registration on attach: the *pool* (in the parent) is
  the single owner, and its :meth:`~SharedMemoryPool.close` is the
  single unlink site.
* **``BufferError`` on close.**  A ``memoryview``-backed numpy array
  keeps the mapping pinned; closing a segment while a view is alive
  raises.  Every consumer therefore drops its views before ``close()``
  (the fold worker does this in a ``finally``), and the pool's own
  bookkeeping never holds views.

Ownership protocol: :meth:`SharedMemoryPool.acquire` hands out a
ref-counted :class:`SegmentLease` (count 1).  Holders ``retain()`` /
``release()``; at zero the segment goes back to the pool's free list
for reuse.  The pool remembers every segment it ever created —
including ones still leased — so ``close()`` unlinks them all even when
a worker crash means a lease is never released.  Nothing survives in
``/dev/shm`` after ``close()``.
"""

from __future__ import annotations

import os
import secrets
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional

from ..faults import fail_point

__all__ = [
    "SEGMENT_PREFIX",
    "SegmentLease",
    "SharedMemoryPool",
    "attach_segment",
    "leaked_segments",
]

#: every pool segment's name starts with this — the CI leak check and the
#: worker-kill regression test scan ``/dev/shm`` for it
SEGMENT_PREFIX = "repro_shm"

#: smallest segment the pool allocates; rounding small batches up to one
#: size class makes leases reusable across uneven flush sizes
_MIN_SEGMENT_BYTES = 1 << 12


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment *without* resource-tracker registration.

    Python 3.13+ supports this directly (``track=False``); earlier
    versions unconditionally register on attach, so the registration is
    suppressed by stubbing ``resource_tracker.register`` for the duration
    of the constructor call.  The stub is process-local and reentrant-safe
    here: fold workers attach segments one at a time from their single
    task thread.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass  # pre-3.13: no track parameter
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def leaked_segments() -> List[str]:
    """Names of pool segments currently visible in ``/dev/shm``.

    Empty on platforms without a scannable ``/dev/shm`` (the leak
    regression test skips there).
    """
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(SEGMENT_PREFIX))


def _size_class(nbytes: int) -> int:
    """Round a payload size up to the pool's allocation granularity."""
    size = max(int(nbytes), _MIN_SEGMENT_BYTES)
    return 1 << (size - 1).bit_length()


class SegmentLease:
    """A ref-counted hold on one pooled segment.

    ``shm.buf[:nbytes]`` is the payload window the holder asked for; the
    underlying segment may be larger (size-class rounding).  The lease is
    created held once; ``release()`` past zero is a no-op, so a cleanup
    path that races normal collection cannot double-free.
    """

    __slots__ = ("_pool", "shm", "nbytes", "_refs")

    def __init__(self, pool: "SharedMemoryPool", shm, nbytes: int):
        self._pool = pool
        self.shm = shm
        self.nbytes = int(nbytes)
        self._refs = 1

    @property
    def name(self) -> str:
        """The segment name a worker passes to :func:`attach_segment`."""
        return self.shm.name

    @property
    def refs(self) -> int:
        return self._refs

    def retain(self) -> "SegmentLease":
        if self._refs <= 0:
            raise ValueError(f"lease on {self.shm.name} already released")
        self._refs += 1
        return self

    def release(self) -> None:
        if self._refs <= 0:
            return
        self._refs -= 1
        if self._refs == 0:
            self._pool._reclaim(self)


class SharedMemoryPool:
    """Create, lease, reuse, and reliably unlink shared-memory segments.

    Single-owner discipline: one pool lives in the pipeline parent; fold
    workers only ever *attach* (see :func:`attach_segment`) and never
    create or unlink.  Segment names embed the parent pid plus a random
    token, so concurrent pipelines on one host cannot collide.
    """

    def __init__(self) -> None:
        self._prefix = (
            f"{SEGMENT_PREFIX}_{os.getpid()}_{secrets.token_hex(4)}"
        )
        self._counter = 0
        #: every segment ever created, by name — the close() unlink set
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        #: segments with no outstanding lease, largest last
        self._free: List[shared_memory.SharedMemory] = []
        self._closed = False
        self.created_segments = 0
        self.total_bytes = 0
        #: high-water mark of total allocated segment bytes — the
        #: ``shm_peak_bytes`` the throughput bench records
        self.peak_bytes = 0

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def leased_count(self) -> int:
        return len(self._segments) - len(self._free)

    def acquire(self, nbytes: int) -> SegmentLease:
        """Lease a segment with at least ``nbytes`` of payload room."""
        if self._closed:
            raise ValueError("shared-memory pool is closed")
        if nbytes < 1:
            raise ValueError(f"segment payload must be >= 1 byte, got {nbytes}")
        # Chaos seam: simulates shm exhaustion / segment-creation failure,
        # which the pipeline must absorb by degrading to the pickle
        # transport (the payload still lives in the batch's own buffer).
        fail_point("shm.write")
        needed = _size_class(nbytes)
        for index, segment in enumerate(self._free):
            if segment.size >= needed:
                del self._free[index]
                return SegmentLease(self, segment, nbytes)
        name = f"{self._prefix}_{self._counter}"
        self._counter += 1
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=needed
        )
        self._segments[segment.name] = segment
        self.created_segments += 1
        self.total_bytes += segment.size
        self.peak_bytes = max(self.peak_bytes, self.total_bytes)
        return SegmentLease(self, segment, nbytes)

    def dev_shm_divergence(self) -> Dict[str, List[str]]:
        """Mid-run consistency of ``/dev/shm`` against the pool's books.

        ``missing`` — segments the pool tracks that vanished from
        ``/dev/shm`` (a foreign unlink, e.g. a resource tracker the
        attach suppression failed to stop; re-attaching them would fail).
        ``orphaned`` — pool-prefixed entries the pool does not track
        (should be impossible: the pool is the only creator).  Both
        empty on a healthy run *at any moment*, not just after
        ``close()`` — the supervision layer checks this on every pool
        rebuild, and the worker-kill regression test pins it.  Empty on
        platforms without a scannable ``/dev/shm``.
        """
        try:
            entries = os.listdir("/dev/shm")
        except OSError:
            return {"missing": [], "orphaned": []}
        visible = {e for e in entries if e.startswith(self._prefix)}
        tracked = set(self._segments)
        return {
            "missing": sorted(tracked - visible),
            "orphaned": sorted(visible - tracked),
        }

    def _reclaim(self, lease: SegmentLease) -> None:
        if self._closed or lease.shm.name not in self._segments:
            # A lease released after close(): the segment is already
            # unlinked; nothing to return.
            return
        self._free.append(lease.shm)
        self._free.sort(key=lambda segment: segment.size)

    def close(self) -> None:
        """Close and unlink every segment this pool ever created.

        Covers leased segments too: a worker killed mid-fold leaves its
        lease unreleased forever, and the parent must still be able to
        guarantee an empty ``/dev/shm``.  Best-effort per segment — one
        failed unmap must not leak the rest — with the first failure
        re-raised once everything has been attempted.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        first_failure: Optional[BaseException] = None
        for segment in self._segments.values():
            try:
                segment.close()
            except BaseException as failure:  # pragma: no cover - defensive
                first_failure = first_failure or failure
            try:
                segment.unlink()
            except FileNotFoundError:
                pass  # already gone (e.g. an external cleanup raced us)
            except BaseException as failure:  # pragma: no cover - defensive
                first_failure = first_failure or failure
        self._segments.clear()
        self._free.clear()
        if first_failure is not None:  # pragma: no cover - defensive
            raise first_failure

    def __enter__(self) -> "SharedMemoryPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
