"""Streaming shuffle-DP telemetry service.

Turns the one-shot reproduction pipeline into a continuously running
collection system: clients report in epochs, a shuffler-side buffer
releases size- or epoch-triggered flushes through a pluggable shuffle
backend, a cross-epoch accountant enforces the lifetime privacy budget,
and an incremental analyzer folds each released batch into running
estimates that match a one-shot run bit for bit.

* :mod:`repro.service.buffer` — report accumulation and flush carving.
* :mod:`repro.service.accountant` — composition-based budget ledger.
* :mod:`repro.service.aggregator` — incremental support counts + Eq. (6).
* :mod:`repro.service.backends` — plain / SS / PEOS release paths.
* :mod:`repro.service.pipeline` — the orchestrator and its metrics.
* :mod:`repro.service.sharded` — multi-shard (optionally multi-process)
  folding behind the same interface, bit-identical at any shard count.

Both pipelines journal budget charges, the flush log, and epoch
snapshots through a pluggable :mod:`repro.persistence` ``StateStore``
(in-memory by default; SQLite for crash-safe runs that resume via
``TelemetryPipeline.resume(store)`` / ``ShardedPipeline.resume(store)``).

Quick start::

    import numpy as np
    from repro.service import StreamConfig, TelemetryPipeline

    rng = np.random.default_rng(0)
    config = StreamConfig.from_targets(d=64, flush_size=1000)
    pipeline = TelemetryPipeline(config, rng)
    for epoch_values in value_stream:          # one array per epoch
        pipeline.submit(epoch_values)
        print(pipeline.end_epoch())
    print(pipeline.estimates())

To spread the fold work over several processes (same estimates, bit for
bit), swap in the sharded pipeline::

    from repro.service import ShardedPipeline

    with ShardedPipeline(config, np.random.default_rng(0), n_shards=4,
                         fold_backend="process") as pipeline:
        for epoch_values in value_stream:
            pipeline.submit(epoch_values)
            pipeline.end_epoch()
        print(pipeline.estimates())
"""

from .accountant import BudgetCharge, BudgetExceededError, PrivacyAccountant
from .aggregator import IncrementalAggregator
from .backends import (
    BACKEND_NAMES,
    PeosShuffleBackend,
    PlainShuffleBackend,
    SequentialShuffleBackend,
    ShuffleBackend,
    make_backend,
)
from .buffer import FlushBatch, ReportBuffer
from .pipeline import (
    EpochReport,
    FlushRejection,
    StreamConfig,
    StreamResult,
    TelemetryPipeline,
    check_replay_support,
    epoch_release_epsilon,
    flush_release_epsilon,
    flush_rng,
    flushes_per_epoch,
    oracle_from_plan,
    release_entropy,
)
from .sharded import FOLD_BACKENDS, TRANSPORTS, ShardedPipeline
from .shm import SegmentLease, SharedMemoryPool, attach_segment

__all__ = [
    "BACKEND_NAMES",
    "BudgetCharge",
    "BudgetExceededError",
    "EpochReport",
    "FOLD_BACKENDS",
    "FlushBatch",
    "FlushRejection",
    "IncrementalAggregator",
    "PeosShuffleBackend",
    "PlainShuffleBackend",
    "PrivacyAccountant",
    "ReportBuffer",
    "SegmentLease",
    "SequentialShuffleBackend",
    "ShardedPipeline",
    "SharedMemoryPool",
    "ShuffleBackend",
    "StreamConfig",
    "StreamResult",
    "TRANSPORTS",
    "TelemetryPipeline",
    "attach_segment",
    "check_replay_support",
    "epoch_release_epsilon",
    "flush_release_epsilon",
    "flush_rng",
    "flushes_per_epoch",
    "make_backend",
    "oracle_from_plan",
    "release_entropy",
]
