"""Shuffler-side report buffering with size- and epoch-triggered flushes.

The streaming service decouples report *arrival* from report *release*:
clients privatize and upload continuously, but the shufflers only release
reports to the server in batches ("flushes") large enough to carry the
planned anonymity and fake-report noise.  :class:`ReportBuffer` implements
the accumulation side:

* a **size trigger** — as soon as ``flush_size`` reports are pending, a
  full batch is carved off (repeatedly, if a large submission crosses the
  threshold several times);
* an **epoch trigger** — at the end of each collection epoch the remainder
  is drained so that no report waits longer than one epoch.

Every :class:`FlushBatch` carries the number of fake reports the shufflers
must inject for it.  Corollary 8's collusion guarantee ``eps_s`` depends
only on the *absolute* fake count ``n_r`` and the report domain — not on
how many genuine reports ride along — so the buffer attaches the full
per-flush ``n_r`` from the Section VI-D plan to every batch, including
short epoch-end remainders.  The *server* guarantee does weaken with a
smaller batch (less genuine blanket noise), which is why the pipeline
prices every release at its own size
(:func:`repro.service.pipeline.flush_release_epsilon`) rather than at the
plan's full-flush ``eps_server``.  The actual injection happens inside
the shuffle backend, which is the party holding the randomness.

Memory ownership contract: every :class:`FlushBatch` *owns* its report
array (``reports.base is None``, marked read-only), and the buffer never
retains a reference into a caller's submission.  Callers may therefore
reuse or mutate their upload buffers immediately after :meth:`submit`
returns, flushed batches can outlive (or cross process boundaries ahead
of) the arrays they were carved from, and a short epoch-end remainder
never pins a large merged submission in memory.  This owned copy is also
the *last* copy a flush pays on the zero-copy release path: the sharded
pipeline's shm transport writes ``batch.reports`` straight into a pooled
shared-memory segment (:mod:`repro.service.shm`) that fold workers map
read-only — no pickle, no per-hop reserialization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.ordinal import OrdinalCodec
from ..core.params import PeosPlan


@dataclass(frozen=True)
class FlushBatch:
    """One buffer flush: genuine encoded reports plus a fake-count order."""

    #: collection epoch the batch belongs to
    epoch: int
    #: global flush sequence number (0-based, monotone across epochs).
    #: This is THE authoritative flush counter: it keys the flush's
    #: release RNG stream (:func:`repro.service.pipeline.flush_rng`) and
    #: identifies its persisted record in a
    #: :class:`~repro.persistence.store.StateStore`, so replaying a
    #: persisted flush reproduces the original release bit for bit.
    sequence: int
    #: what drained the buffer: ``"size"`` or ``"epoch"``
    trigger: str
    #: ordinal-encoded privatized reports (genuine only); always an owned,
    #: read-only array — never a view into a caller's submission
    reports: np.ndarray
    #: fake reports the shufflers must inject when releasing this batch
    n_fake: int

    @property
    def n_reports(self) -> int:
        return len(self.reports)


class ReportBuffer:
    """Accumulate encoded reports and carve them into :class:`FlushBatch` es."""

    def __init__(
        self,
        flush_size: int,
        fakes_per_flush: int,
        flush_empty: bool = False,
        codec: Optional[OrdinalCodec] = None,
    ):
        """``flush_size`` reports trigger a flush; each flush orders
        ``fakes_per_flush`` fake reports.  ``flush_empty`` controls whether
        an epoch with no pending reports still emits an all-fake batch
        (hiding traffic volume at the cost of pure noise).  ``codec`` fixes
        the dtype of empty batches to the oracle's ordinal discipline
        (int64 fast path or object fallback); without one, empty batches
        default to int64."""
        if flush_size < 1:
            raise ValueError(f"flush size must be >= 1, got {flush_size}")
        if fakes_per_flush < 0:
            raise ValueError(
                f"fake-report count must be >= 0, got {fakes_per_flush}"
            )
        self.flush_size = int(flush_size)
        self.fakes_per_flush = int(fakes_per_flush)
        self.flush_empty = bool(flush_empty)
        self.codec = codec
        self.epoch = 0
        self._sequence = 0
        self._pending: List[np.ndarray] = []
        self._pending_count = 0

    @classmethod
    def from_plan(
        cls,
        plan: PeosPlan,
        flush_size: int,
        flush_empty: bool = False,
        codec: Optional[OrdinalCodec] = None,
    ) -> "ReportBuffer":
        """Size the per-flush fake injection from a Section VI-D plan."""
        return cls(flush_size, plan.n_r, flush_empty=flush_empty, codec=codec)

    @property
    def pending(self) -> int:
        """Reports accumulated but not yet flushed."""
        return self._pending_count

    @property
    def next_sequence(self) -> int:
        """The sequence number the next carved flush will get."""
        return self._sequence

    def pending_chunks(self) -> tuple:
        """The pending chunks, by reference, for checkpointing.

        Cheap by design: the buffer never mutates a chunk in place (only
        rebinds ``_pending``), so handing out references is safe and a
        checkpoint costs O(chunks), not O(pending reports).
        """
        return tuple(self._pending)

    def restore_state(
        self, epoch: int, next_sequence: int, remainder
    ) -> None:
        """Adopt a checkpointed (epoch, sequence counter, remainder).

        Restoring ``next_sequence`` is what keeps the global flush
        counter authoritative across a crash: the first flush carved
        after resume continues the original numbering, so its release
        RNG stream and persisted record agree with the uninterrupted run.
        """
        epoch = int(epoch)
        next_sequence = int(next_sequence)
        if epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {epoch}")
        if next_sequence < 0:
            raise ValueError(
                f"sequence counter must be >= 0, got {next_sequence}"
            )
        remainder = np.asarray(remainder)
        if remainder.ndim != 1:
            raise ValueError(
                f"expected a flat remainder, got shape {remainder.shape}"
            )
        if len(remainder) >= self.flush_size:
            raise ValueError(
                f"remainder of {len(remainder)} reports should have been "
                f"flushed at flush_size={self.flush_size}"
            )
        self.epoch = epoch
        self._sequence = next_sequence
        self._pending = [remainder.copy()] if len(remainder) else []
        self._pending_count = len(remainder)

    def submit(
        self, encoded_reports: np.ndarray, owned: bool = False
    ) -> List[FlushBatch]:
        """Append reports; return the size-triggered flushes they caused.

        Carving merges the pending chunks once and copies full batches off
        by offset, so a submission of ``n`` reports costs O(n) regardless
        of how many flushes it triggers.  Every carved batch, the retained
        remainder, and any retained input chunk are copied: a batch handed
        to downstream release must not alias memory the caller can mutate,
        and a 1-element remainder must not pin the whole merged array.

        ``owned=True`` transfers ownership of ``encoded_reports`` to the
        buffer — the caller promises nothing else references or mutates
        it — skipping the retain-copy.  The pipelines pass it for their
        freshly encoded arrays; callers reusing an upload buffer must not.
        """
        encoded_reports = np.asarray(encoded_reports)
        if encoded_reports.ndim != 1:
            raise ValueError(
                f"expected a flat report array, got shape {encoded_reports.shape}"
            )
        if len(encoded_reports):
            self._pending.append(encoded_reports)
            self._pending_count += len(encoded_reports)
        batches: List[FlushBatch] = []
        if self._pending_count >= self.flush_size:
            merged = self._merged()
            offset = 0
            while self._pending_count - offset >= self.flush_size:
                batches.append(
                    self._make_batch(
                        merged[offset:offset + self.flush_size], "size"
                    )
                )
                offset += self.flush_size
            remainder = merged[offset:]
            self._pending = [remainder.copy()] if len(remainder) else []
            self._pending_count = len(remainder)
        elif len(encoded_reports) and not owned:
            # Not carved this call, so the chunk is *retained*: copy it now
            # — everything left in _pending must be buffer-owned.  (When a
            # carve happened, _pending was rebuilt from an owned remainder
            # and the caller's array was only read.)
            self._pending[-1] = encoded_reports.copy()
        return batches

    def end_epoch(self) -> List[FlushBatch]:
        """Drain the remainder (epoch trigger) and advance the epoch."""
        batches: List[FlushBatch] = []
        if self._pending_count > 0:
            batches.append(self._make_batch(self._merged(), "epoch"))
            self._pending = []
            self._pending_count = 0
        elif self.flush_empty:
            empty = (
                self.codec.zeros(0)
                if self.codec is not None
                else np.empty(0, dtype=np.int64)
            )
            batches.append(self._make_batch(empty, "epoch"))
        self.epoch += 1
        return batches

    def _merged(self) -> np.ndarray:
        return (
            self._pending[0]
            if len(self._pending) == 1
            else np.concatenate(self._pending)
        )

    def _make_batch(self, reports: np.ndarray, trigger: str) -> FlushBatch:
        # The batch owns its memory (base is None) and is read-only: it may
        # be queued, shipped to a fold worker process, or folded long after
        # the array it was carved from has been reused by the caller.  A
        # view (a size-carved slice) is copied; an already-owned array (an
        # epoch drain of buffer-owned chunks) is adopted as-is.
        if reports.base is not None:
            reports = reports.copy()
        reports.setflags(write=False)
        batch = FlushBatch(
            epoch=self.epoch,
            sequence=self._sequence,
            trigger=trigger,
            reports=reports,
            n_fake=self.fakes_per_flush,
        )
        self._sequence += 1
        return batch
