"""Cross-epoch privacy-budget accounting for the streaming service.

Each flush the server observes is one ``(eps, delta)``-DP release of the
same users' data, so a continuously running deployment degrades over time
by DP composition.  :class:`PrivacyAccountant` holds the deployment's
lifetime budget and is consulted *before* every flush: a flush whose
charge would push the composed spend past the budget raises
:class:`BudgetExceededError` and must not be released (the pipeline drops
the batch — refusing release is the only safe response once the budget is
gone).

Accounting builds on :mod:`repro.core.composition`:

* ``method="basic"`` — sequential composition, ``eps_total = sum(eps_i)``,
  ``delta_total = sum(delta_i)`` (what the paper's evaluation uses);
* ``method="advanced"`` — the Dwork-Rothblum-Vadhan bound.  For
  homogeneous charges this is exactly
  :func:`repro.core.composition.advanced_composition_total`; the
  heterogeneous generalization used here is
  ``eps_total = sqrt(2 ln(1/delta') sum(eps_i^2))
  + sum(eps_i (e^{eps_i} - 1))`` with slack ``delta' =
  slack_fraction * delta_budget`` reserved up front.  The accountant
  always reports ``min(basic, advanced)`` — both are valid bounds.

:meth:`PrivacyAccountant.for_flushes` inverts the direction: given a
budget and a planned number of flushes, it uses
:func:`repro.core.composition.split_budget` to suggest the per-flush
allowance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ..core.composition import BudgetSplit, advanced_composition_total, split_budget

#: relative slack absorbing float round-off when a budget is an exact
#: multiple of the per-flush charge
_REL_TOL = 1e-9


class BudgetExceededError(RuntimeError):
    """A flush was refused because it would overrun the privacy budget."""

    def __init__(
        self,
        message: str,
        *,
        requested_eps: float,
        requested_delta: float,
        spent_eps: float,
        spent_delta: float,
    ):
        super().__init__(message)
        self.requested_eps = requested_eps
        self.requested_delta = requested_delta
        self.spent_eps = spent_eps
        self.spent_delta = spent_delta


@dataclass(frozen=True)
class BudgetCharge:
    """One admitted flush charge."""

    eps: float
    delta: float
    label: str


class PrivacyAccountant:
    """Lifetime ``(eps, delta)`` ledger over a stream of flush charges."""

    def __init__(
        self,
        eps_budget: float,
        delta_budget: float,
        method: str = "basic",
        slack_fraction: float = 0.5,
    ):
        if eps_budget <= 0.0:
            raise ValueError(f"eps budget must be positive, got {eps_budget}")
        if not 0.0 < delta_budget < 1.0:
            raise ValueError(f"delta budget must be in (0, 1), got {delta_budget}")
        if method not in ("basic", "advanced"):
            raise ValueError(f"unknown composition method: {method!r}")
        if not 0.0 < slack_fraction < 1.0:
            raise ValueError(f"slack fraction must be in (0, 1), got {slack_fraction}")
        self.eps_budget = float(eps_budget)
        self.delta_budget = float(delta_budget)
        self.method = method
        self.slack_fraction = float(slack_fraction)
        self.charges: List[BudgetCharge] = []

    @classmethod
    def for_flushes(
        cls,
        eps_budget: float,
        delta_budget: float,
        flushes: int,
        method: str = "basic",
    ) -> Tuple["PrivacyAccountant", BudgetSplit]:
        """Accountant plus the per-flush allowance for ``flushes`` releases."""
        split = split_budget(eps_budget, delta_budget, flushes, method=method)
        return cls(eps_budget, delta_budget, method=method), split

    # -- ledger state ------------------------------------------------------

    @property
    def n_charges(self) -> int:
        return len(self.charges)

    def spent(self) -> Tuple[float, float]:
        """Composed ``(eps, delta)`` of every admitted charge."""
        return self._compose(self.charges)

    def remaining_eps(self) -> float:
        return max(0.0, self.eps_budget - self.spent()[0])

    def _compose(self, charges: List[BudgetCharge]) -> Tuple[float, float]:
        if not charges:
            return 0.0, 0.0
        basic_eps = math.fsum(charge.eps for charge in charges)
        basic_delta = math.fsum(charge.delta for charge in charges)
        if self.method == "basic":
            return basic_eps, basic_delta
        delta_slack = self.slack_fraction * self.delta_budget
        eps_values = [charge.eps for charge in charges]
        if len(set(eps_values)) == 1:
            advanced = advanced_composition_total(
                eps_values[0], len(charges), delta_slack
            )
        else:
            advanced = math.sqrt(
                2.0
                * math.log(1.0 / delta_slack)
                * math.fsum(eps * eps for eps in eps_values)
            ) + math.fsum(eps * (math.exp(eps) - 1.0) for eps in eps_values)
        # Both (basic_eps, basic_delta) and (advanced, basic_delta + slack)
        # are valid bounds; report the one with the smaller eps among those
        # whose delta still fits the budget, so reserving the slack never
        # refuses a flush the basic bound would admit.
        pairs = [(basic_eps, basic_delta), (advanced, basic_delta + delta_slack)]
        fitting = [
            pair
            for pair in pairs
            if pair[1] <= self.delta_budget * (1.0 + _REL_TOL)
        ]
        return min(fitting or pairs, key=lambda pair: pair[0])

    # -- serialization -----------------------------------------------------

    def snapshot(self) -> Tuple[BudgetCharge, ...]:
        """The admitted ledger, in charge order — the unit of persistence.

        :class:`BudgetCharge` is a frozen dataclass of plain floats and a
        label, so the snapshot is trivially serializable; composed spend
        is deliberately *not* part of it (it is derived state that
        :meth:`restore` recomputes with the same ``math.fsum`` path, so a
        round trip preserves ``spent()`` bit for bit).
        """
        return tuple(self.charges)

    def restore(self, charges) -> None:
        """Adopt a previously snapshotted ledger into a fresh accountant.

        Validates what it adopts: every charge must be individually legal
        and the composed total must fit this accountant's budget (within
        the same ``_REL_TOL`` slack :meth:`admits` grants), so a snapshot
        from a different — larger — deployment budget cannot smuggle in
        spend the ledger would never have admitted.  Refuses to run on a
        non-empty ledger: restore rebuilds state, it does not merge it.
        """
        if self.charges:
            raise ValueError(
                f"cannot restore into a ledger holding {self.n_charges} "
                f"charges; restore only a fresh accountant"
            )
        restored = [
            BudgetCharge(float(c.eps), float(c.delta), str(c.label))
            for c in charges
        ]
        for charge in restored:
            self._validate_charge(charge.eps, charge.delta)
        total_eps, total_delta = self._compose(restored)
        if (
            total_eps > self.eps_budget * (1.0 + _REL_TOL)
            or total_delta > self.delta_budget * (1.0 + _REL_TOL)
        ):
            raise ValueError(
                f"snapshot spends (eps={total_eps:.4g}, "
                f"delta={total_delta:.3g}), exceeding the budget "
                f"(eps={self.eps_budget:.4g}, delta={self.delta_budget:.3g})"
            )
        self.charges = restored

    # -- charging ----------------------------------------------------------

    def admits(self, eps: float, delta: float = 0.0) -> bool:
        """Would a ``(eps, delta)`` charge fit in the remaining budget?"""
        self._validate_charge(eps, delta)
        tentative = self.charges + [BudgetCharge(eps, delta, "tentative")]
        total_eps, total_delta = self._compose(tentative)
        return (
            total_eps <= self.eps_budget * (1.0 + _REL_TOL)
            and total_delta <= self.delta_budget * (1.0 + _REL_TOL)
        )

    def charge(self, eps: float, delta: float = 0.0, label: str = "flush") -> BudgetCharge:
        """Record a flush charge, or raise :class:`BudgetExceededError`.

        A refused charge leaves the ledger untouched: the caller must drop
        the flush (its reports are never released).
        """
        if not self.admits(eps, delta):
            spent_eps, spent_delta = self.spent()
            raise BudgetExceededError(
                f"flush {label!r} charging (eps={eps:.4g}, delta={delta:.3g}) "
                f"would exceed the budget (eps={self.eps_budget:.4g}, "
                f"delta={self.delta_budget:.3g}); already spent "
                f"(eps={spent_eps:.4g}, delta={spent_delta:.3g}) "
                f"over {self.n_charges} flushes",
                requested_eps=eps,
                requested_delta=delta,
                spent_eps=spent_eps,
                spent_delta=spent_delta,
            )
        charge = BudgetCharge(float(eps), float(delta), label)
        self.charges.append(charge)
        return charge

    @staticmethod
    def _validate_charge(eps: float, delta: float) -> None:
        if eps <= 0.0:
            raise ValueError(f"charge eps must be positive, got {eps}")
        if not 0.0 <= delta < 1.0:
            raise ValueError(f"charge delta must be in [0, 1), got {delta}")
