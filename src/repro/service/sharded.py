"""Sharded streaming: many fold shards, one carver, one accountant.

The paper's deployment story is many shufflers feeding one analyzer.
:class:`ShardedPipeline` realizes it: client submissions are privatized
and carved into flush batches exactly like the single-shard
:class:`~repro.service.pipeline.TelemetryPipeline`, but the expensive
release work — fake injection, shuffling, decoding, support counting —
fans out across ``n_shards`` independent
:class:`~repro.service.aggregator.IncrementalAggregator` shards, folded
either inline (``fold_backend="serial"``) or on a spawn-safe
``ProcessPoolExecutor`` (``fold_backend="process"``), which overlaps the
per-flush shuffle/decode/count work — the support-count kernel
(:func:`repro.hashing.kernels.support_counts_kernel`) is vectorized
numpy for every family, and process folding runs those kernels on
multiple cores at once.

Determinism contract (bit-identical estimates at any shard/worker count,
and to ``TelemetryPipeline`` at the same seed):

* **Carving is global.**  One :class:`~repro.service.buffer.ReportBuffer`
  carves the stream, so flush boundaries — and therefore batch sizes,
  fake-noise draws, and budget charges — cannot depend on ``n_shards``.
  (Per-shard buffers would each drain their own epoch-end remainder: the
  flush schedule, the total fake count, and the spend would all vary
  with the shard count.)  Batch ``sequence % n_shards`` picks the shard,
  a deterministic round-robin partition of the flush stream.
* **Release randomness is per-flush.**  Every flush draws from
  :func:`~repro.service.pipeline.flush_rng`, keyed by the deployment's
  :func:`~repro.service.pipeline.release_entropy` and the flush's global
  sequence number — never from a stream another worker also consumes.
* **The accountant is singular.**  One shared
  :class:`~repro.service.accountant.PrivacyAccountant` is charged in
  global carve order, *before* a batch is handed to any shard: the
  privacy ledger is a property of the deployment, not of a shard, and
  admitting a flush must not race another shard's charge.
* **Merging is exact.**  Support counts are integer-valued, so per-shard
  float sums and the final
  :meth:`~repro.service.aggregator.IncrementalAggregator.merge` are
  exact below ``2**53`` reports — grouping by shard cannot change a bit.

The process path is why flush batches must *own* their memory
(``FlushBatch.reports.base is None``): a view into a caller's upload
buffer could neither be pickled to a worker safely nor survive the
caller reusing the buffer while the fold is still in flight.

Restrictions in ``fold_backend="process"`` mode: the shuffle backend
must be ``"plain"`` (the crypto backends draw from one shared
``crypto_rng`` stream that cannot be split deterministically across
processes) and ``keep_reports`` is unavailable (released reports stay in
the workers; only their counts come back).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context
from typing import Iterable, List, Optional

import numpy as np

from ..core.errors import ConfigError
from ..persistence import MemoryStateStore, RunSnapshot, StateStore, StoredFlush
from ..persistence.records import generator_from_state
from .accountant import PrivacyAccountant
from .aggregator import IncrementalAggregator
from .backends import ShuffleBackend, make_backend
from .buffer import FlushBatch, ReportBuffer
from .pipeline import (
    EpochReport,
    FlushRejection,
    PipelinePersistenceMixin,
    StreamConfig,
    StreamResult,
    check_replay_support,
    flush_rng,
    oracle_from_plan,
    release_entropy,
)

#: fold-execution backends of :class:`ShardedPipeline`
FOLD_BACKENDS = ("serial", "process")

#: per-process (oracle, shuffle backend) pair built by the pool initializer
_WORKER_STATE = None


def _init_fold_worker(d: int, plan, backend_name: str, r: int) -> None:
    """Build one fold worker's oracle and backend (spawn-safe, runs once).

    Workers receive only picklable specs — the domain size, the
    :class:`~repro.core.params.PeosPlan`, and backend parameters — and
    rebuild the oracle through the same
    :func:`~repro.service.pipeline.oracle_from_plan` registry path the
    parent used, so both sides hold identical estimators.
    """
    global _WORKER_STATE
    fo = oracle_from_plan(d, plan)
    backend = make_backend(backend_name, r=r)
    backend.prepare(fo, np.random.default_rng(0))
    _WORKER_STATE = (fo, backend)


def _worker_ready() -> bool:
    """No-op task used by :meth:`ShardedPipeline.warmup`."""
    return _WORKER_STATE is not None


def _fold_block(sequence: int, reports: np.ndarray, n_fake: int, entropy: tuple):
    """Release one flush batch in a worker; return its folded counts.

    The parent already charged the accountant; this is pure computation:
    shuffle (fake injection + permutation) under the flush's own stream,
    decode, and count.  Returns ``(support_counts, elapsed_seconds)``.
    """
    fo, backend = _WORKER_STATE
    started = time.perf_counter()
    shuffled = backend.shuffle(reports, n_fake, fo, flush_rng(entropy, sequence))
    counts = fo.support_counts(fo.decode_reports(shuffled))
    return counts, time.perf_counter() - started


class ShardedPipeline(PipelinePersistenceMixin):
    """Multi-shard streaming collection with a shared privacy ledger.

    Drop-in shaped like :class:`~repro.service.pipeline.TelemetryPipeline`
    (``submit`` / ``end_epoch`` / ``run`` / ``estimates`` / ``result``),
    plus :meth:`drain` (collect outstanding process folds),
    :meth:`warmup` (pre-spawn the pool), and :meth:`close`.  Use as a
    context manager to guarantee the worker pool is shut down.

    Durable state rides the same write-ahead protocol as the serial
    pipeline (the charge commits in global carve order before a batch
    reaches any shard; a process fold's counts commit when the parent
    collects them in :meth:`drain`), and because the execution layout is
    not part of the persisted state, :meth:`resume` may pick a different
    shard or worker count than the crashed run — estimates stay
    bit-identical either way.
    """

    def __init__(
        self,
        config: StreamConfig,
        rng: np.random.Generator,
        n_shards: int = 1,
        fold_backend: str = "serial",
        workers: Optional[int] = None,
        backend: Optional[ShuffleBackend] = None,
        clock=time.perf_counter,
        store: Optional[StateStore] = None,
        _snapshot: Optional[RunSnapshot] = None,
    ):
        if n_shards < 1:
            raise ConfigError("n_shards", f"must be >= 1, got {n_shards}")
        if fold_backend not in FOLD_BACKENDS:
            raise ConfigError(
                "fold_backend",
                f"unknown fold backend {fold_backend!r} "
                f"(registered: {', '.join(FOLD_BACKENDS)})",
            )
        if workers is not None and workers < 1:
            raise ConfigError("workers", f"must be >= 1, got {workers}")
        if fold_backend == "process":
            if config.backend != "plain":
                raise ConfigError(
                    "fold_backend",
                    f"process folding supports only the 'plain' shuffle "
                    f"backend, not {config.backend!r}: the crypto backends "
                    f"draw key material from one shared crypto_rng stream "
                    f"that cannot be split deterministically across "
                    f"processes",
                )
            if config.keep_reports:
                raise ConfigError(
                    "keep_reports",
                    "released reports stay inside the fold workers under "
                    "fold_backend='process'; use 'serial' to retain them",
                )
            if backend is not None:
                raise ConfigError(
                    "backend",
                    "a shared backend instance cannot cross process "
                    "boundaries; process folding builds one per worker",
                )
        self.config = config
        self.rng = rng
        self.clock = clock
        self.n_shards = int(n_shards)
        self.fold_backend = fold_backend
        if _snapshot is None:
            # Drawn first, before any other use of rng (see release_entropy)
            # — the same order TelemetryPipeline follows, which is what makes
            # the two pipelines' ingest and release streams line up at a
            # fixed seed.
            self.release_entropy = release_entropy(rng)
        else:
            # Resume: rng already carries the checkpointed state; the
            # entropy was drawn by the original run and persisted.
            self.release_entropy = tuple(
                int(word) for word in _snapshot.release_entropy
            )
        self.fo = oracle_from_plan(config.d, config.plan)
        self.store = store if store is not None else MemoryStateStore()
        if self.store.durable:
            check_replay_support(config, self.fo)
        self.buffer = ReportBuffer.from_plan(
            config.plan,
            config.flush_size,
            flush_empty=config.flush_empty,
            codec=self.fo.ordinal_codec,
        )
        self.accountant = PrivacyAccountant(
            config.eps_budget, config.delta_budget, method=config.composition
        )
        self.shards: List[IncrementalAggregator] = [
            IncrementalAggregator(self.fo) for _ in range(self.n_shards)
        ]
        self.backend = backend if backend is not None else make_backend(
            config.backend, r=config.r
        )
        self.backend.prepare(self.fo, rng)
        self._requested_workers = workers
        self._executor: Optional[ProcessPoolExecutor] = None
        #: outstanding process folds: (future, shard index, batch)
        self._pending: List[tuple] = []
        self.epoch_reports: List[EpochReport] = []
        self.rejections: List[FlushRejection] = []
        self.n_rejected = 0
        self.released_batches: List = []
        #: [start, stop) index ranges into the submitted-report order that
        #: were actually released (rejected flushes leave gaps)
        self.released_spans: List[tuple] = []
        self._consumed = 0
        self._n_submits = 0
        self._epoch_flushes = 0
        self._epoch_rejected = 0
        self._epoch_reports_released = 0
        self._epoch_fakes = 0
        self._epoch_latency = 0.0
        if _snapshot is None:
            self.store.begin_run(config, self.release_entropy, self._checkpoint())
        else:
            self._restore(_snapshot)

    @classmethod
    def resume(
        cls,
        store: StateStore,
        n_shards: int = 1,
        fold_backend: str = "serial",
        workers: Optional[int] = None,
        backend: Optional[ShuffleBackend] = None,
        clock=time.perf_counter,
    ) -> "ShardedPipeline":
        """Rebuild the run persisted in ``store`` and continue it sharded.

        Same recovery invariants as
        :meth:`~repro.service.pipeline.TelemetryPipeline.resume`; the
        execution layout (``n_shards``, ``fold_backend``, ``workers``)
        is chosen fresh — it never affects estimates.
        """
        snapshot = store.load_run()
        rng = generator_from_state(snapshot.rng_state)
        return cls(
            snapshot.config,
            rng,
            n_shards=n_shards,
            fold_backend=fold_backend,
            workers=workers,
            backend=backend,
            clock=clock,
            store=store,
            _snapshot=snapshot,
        )

    # -- executor lifecycle ------------------------------------------------

    @property
    def workers(self) -> int:
        """Fold worker processes the process backend uses."""
        if self._requested_workers is not None:
            return self._requested_workers
        return max(1, min(self.n_shards, os.cpu_count() or 1))

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=get_context("spawn"),
                initializer=_init_fold_worker,
                initargs=(
                    self.config.d,
                    self.config.plan,
                    self.config.backend,
                    self.config.r,
                ),
            )
        return self._executor

    def warmup(self) -> None:
        """Spawn and initialize the fold workers before the first flush.

        Spawn start-up costs hundreds of milliseconds per worker;
        latency-sensitive callers (and fair benchmarks) pay it up front
        instead of inside the first epoch.  No-op for serial folding.
        """
        if self.fold_backend != "process":
            return
        executor = self._ensure_executor()
        ready = [executor.submit(_worker_ready) for __ in range(self.workers)]
        for future in ready:
            future.result()

    def close(self) -> None:
        """Collect outstanding folds and shut the worker pool down.

        The pool is shut down even when collecting a fold fails — a dead
        worker must not leak the surviving processes.
        """
        try:
            self.drain()
        finally:
            if self._executor is not None:
                self._executor.shutdown()
                self._executor = None

    def __enter__(self) -> "ShardedPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- ingestion ---------------------------------------------------------

    def submit(self, values) -> int:
        """Privatize and buffer one client batch; dispatch size flushes.

        Returns the number of flushes triggered (admitted or rejected).
        Ingestion is the parent's job — privatization consumes the ingest
        generator in arrival order, which must not depend on shard layout.
        """
        values = np.asarray(values)
        if len(values) == 0:
            return 0
        encoded = self.fo.encode_reports(self.fo.privatize(values, self.rng))
        # owned=True: `encoded` is freshly allocated and never touched again.
        batches = self.buffer.submit(encoded, owned=True)
        self._n_submits += 1
        self._persist_and_release(batches)
        return len(batches)

    def end_epoch(self) -> EpochReport:
        """Drain the carver, collect every fold, and close the epoch."""
        batches = self.buffer.end_epoch()
        if batches:
            self._persist_and_release(batches)
        self.drain()
        eps_spent, delta_spent = self.accountant.spent()
        report = EpochReport(
            epoch=self.buffer.epoch - 1,
            n_flushes=self._epoch_flushes,
            n_rejected=self._epoch_rejected,
            n_reports=self._epoch_reports_released,
            n_fake=self._epoch_fakes,
            flush_latency_s=self._epoch_latency,
            reports_per_sec=(
                self._epoch_reports_released / self._epoch_latency
                if self._epoch_latency > 0.0
                else 0.0
            ),
            eps_spent=eps_spent,
            delta_spent=delta_spent,
        )
        self.epoch_reports.append(report)
        self.store.record_epoch(report, self.estimates(), self._checkpoint())
        self._epoch_flushes = 0
        self._epoch_rejected = 0
        self._epoch_reports_released = 0
        self._epoch_fakes = 0
        self._epoch_latency = 0.0
        return report

    def run(self, epoch_batches: Iterable) -> StreamResult:
        """Feed one value batch per epoch and return the final result."""
        for values in epoch_batches:
            self.submit(values)
            self.end_epoch()
        return self.result()

    # -- flush processing --------------------------------------------------

    def _release(self, batch: FlushBatch) -> None:
        """Hand one admitted (already charged and journaled) batch to its
        shard — inline for serial folding, as a future for process
        folding, whose counts are committed when :meth:`drain` collects
        them."""
        shard = batch.sequence % self.n_shards
        if self.fold_backend == "process":
            future = self._ensure_executor().submit(
                _fold_block,
                batch.sequence,
                batch.reports,
                batch.n_fake,
                self.release_entropy,
            )
            self._pending.append((future, shard, batch))
            return
        started = self.clock()
        shuffled = self.backend.shuffle(
            batch.reports, batch.n_fake, self.fo,
            flush_rng(self.release_entropy, batch.sequence),
        )
        decoded = self.fo.decode_reports(shuffled)
        if len(decoded) != batch.n_reports + batch.n_fake:
            raise ValueError(
                f"batch has {len(decoded)} reports but claims "
                f"{batch.n_reports} genuine + {batch.n_fake} fake"
            )
        counts = self.fo.support_counts(decoded)
        self.shards[shard].fold_counts(counts, batch.n_reports, batch.n_fake)
        self._epoch_latency += self.clock() - started
        if self.config.keep_reports:
            self.released_batches.append(decoded)
        self.store.record_release(batch.sequence, counts)

    def _fold_restored(self, flush: StoredFlush, counts: np.ndarray) -> None:
        """A recovered flush folds into the shard its sequence picks."""
        self.shards[flush.sequence % self.n_shards].fold_counts(
            counts, flush.n_reports, flush.n_fake
        )

    def drain(self) -> int:
        """Fold every outstanding worker result into its shard.

        Collection order does not matter: counts are summed exactly, and
        each fold's randomness was fixed by its flush sequence at dispatch
        time.  Returns the number of folds collected.

        If a worker fold fails (e.g. a killed process), the failed entry
        and everything after it *stay* in the pending queue and the error
        propagates: the accountant already charged those flushes, so
        silently dropping them would leave estimates missing releases the
        ledger paid for.  A later drain re-raises (or, for folds that did
        complete, collects) from where it stopped.
        """
        collected = 0
        while self._pending:
            future, shard, batch = self._pending[0]
            counts, elapsed = future.result()  # re-raises a worker failure
            self._pending.pop(0)
            self.shards[shard].fold_counts(
                counts, batch.n_reports, batch.n_fake
            )
            self.store.record_release(batch.sequence, counts)
            self._epoch_latency += elapsed
            collected += 1
        return collected

    # -- results -----------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        """True once no positive charge can ever be admitted again."""
        return self.accountant.remaining_eps() <= 0.0

    def aggregate(self) -> IncrementalAggregator:
        """Merge every shard into one global aggregator (fresh instance)."""
        self.drain()
        merged = IncrementalAggregator(self.fo)
        for shard in self.shards:
            merged.merge(shard)
        return merged

    def estimates(self) -> np.ndarray:
        """Current calibrated global frequency estimates (Eq. (6))."""
        return self.aggregate().estimates()

    def released_values(self, submitted_values: np.ndarray) -> np.ndarray:
        """The subset of ``submitted_values`` that was actually released.

        Same demo/metric helper as
        :meth:`~repro.service.pipeline.TelemetryPipeline.released_values`.
        """
        submitted_values = np.asarray(submitted_values)
        if len(submitted_values) < self._consumed:
            raise ValueError(
                f"expected at least {self._consumed} submitted values, "
                f"got {len(submitted_values)}"
            )
        if not self.released_spans:
            return submitted_values[:0]
        return np.concatenate(
            [submitted_values[start:stop] for start, stop in self.released_spans]
        )

    def result(self) -> StreamResult:
        aggregate = self.aggregate()
        eps_spent, delta_spent = self.accountant.spent()
        return StreamResult(
            estimates=aggregate.estimates(),
            epochs=list(self.epoch_reports),
            n_genuine=aggregate.n_genuine,
            n_fake=aggregate.n_fake,
            eps_spent=eps_spent,
            delta_spent=delta_spent,
            n_rejected=self.n_rejected,
            rejections=list(self.rejections),
        )
