"""Sharded streaming: many fold shards, one carver, one accountant.

The paper's deployment story is many shufflers feeding one analyzer.
:class:`ShardedPipeline` realizes it: client submissions are privatized
and carved into flush batches exactly like the single-shard
:class:`~repro.service.pipeline.TelemetryPipeline`, but the expensive
release work — fake injection, shuffling, decoding, support counting —
fans out across ``n_shards`` independent
:class:`~repro.service.aggregator.IncrementalAggregator` shards, folded
either inline (``fold_backend="serial"``) or on a spawn-safe
``ProcessPoolExecutor`` (``fold_backend="process"``), which overlaps the
per-flush shuffle/decode/count work — the support-count kernel
(:func:`repro.hashing.kernels.support_counts_kernel`) is vectorized
numpy for every family, and process folding runs those kernels on
multiple cores at once.

Determinism contract (bit-identical estimates at any shard/worker count,
and to ``TelemetryPipeline`` at the same seed):

* **Carving is global.**  One :class:`~repro.service.buffer.ReportBuffer`
  carves the stream, so flush boundaries — and therefore batch sizes,
  fake-noise draws, and budget charges — cannot depend on ``n_shards``.
  (Per-shard buffers would each drain their own epoch-end remainder: the
  flush schedule, the total fake count, and the spend would all vary
  with the shard count.)  Batch ``sequence % n_shards`` picks the shard,
  a deterministic round-robin partition of the flush stream.
* **Release randomness is per-flush.**  Every flush draws from
  :func:`~repro.service.pipeline.flush_rng`, keyed by the deployment's
  :func:`~repro.service.pipeline.release_entropy` and the flush's global
  sequence number — never from a stream another worker also consumes.
* **The accountant is singular.**  One shared
  :class:`~repro.service.accountant.PrivacyAccountant` is charged in
  global carve order, *before* a batch is handed to any shard: the
  privacy ledger is a property of the deployment, not of a shard, and
  admitting a flush must not race another shard's charge.
* **Merging is exact.**  Support counts are integer-valued, so per-shard
  float sums and the final
  :meth:`~repro.service.aggregator.IncrementalAggregator.merge` are
  exact below ``2**53`` reports — grouping by shard cannot change a bit.

Shard traffic is **zero-copy by default** (``transport="shm"``): the
parent writes each admitted batch's encoded reports into a pooled
``multiprocessing.shared_memory`` segment
(:class:`~repro.service.shm.SharedMemoryPool`) and ships only the
segment name; the worker maps the segment, folds straight out of a
read-only view, and the parent returns the lease to the pool when
:meth:`~ShardedPipeline.drain` collects the counts.  Because
:class:`~repro.service.buffer.FlushBatch` already owns its memory
(``reports.base is None``), that pool write is the *only* copy a flush
pays between carving and the worker's fold — no pickle serialization,
no pipe traversal.  ``transport="pickle"`` keeps the legacy
pickle-over-pipe path (bit-identical, just slower), and the pipeline
falls back to it automatically when the oracle's ordinal codec is not
the int64 fast path (object-dtype reports cannot live in flat shared
memory).  The pool is owned solely by the parent: workers attach
without resource-tracker registration
(:func:`~repro.service.shm.attach_segment`), so a worker killed
mid-fold can neither unlink a live segment nor leak one —
:meth:`~ShardedPipeline.close` unlinks every segment the pool ever
created, even those a dead worker never finished with.

Restrictions in ``fold_backend="process"`` mode: the shuffle backend
must be ``"plain"`` (the crypto backends draw from one shared
``crypto_rng`` stream that cannot be split deterministically across
processes) and ``keep_reports`` is unavailable (released reports stay in
the workers; only their counts come back).
"""

from __future__ import annotations

import logging
import os
import signal
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from multiprocessing import get_context
from typing import Iterable, List, Optional

import numpy as np

from ..core.errors import ConfigError
from ..faults import fail_point
from ..persistence import MemoryStateStore, RunSnapshot, StateStore, StoredFlush
from ..persistence.records import generator_from_state
from .accountant import PrivacyAccountant
from .aggregator import IncrementalAggregator
from .backends import ShuffleBackend, make_backend
from .buffer import FlushBatch, ReportBuffer
from .pipeline import (
    EpochReport,
    FlushRejection,
    PipelinePersistenceMixin,
    StreamConfig,
    StreamResult,
    check_replay_support,
    flush_rng,
    oracle_from_plan,
    release_entropy,
)
from .shm import SharedMemoryPool, attach_segment

#: fold-execution backends of :class:`ShardedPipeline`
FOLD_BACKENDS = ("serial", "process")

#: how process folds receive their report payloads
TRANSPORTS = ("shm", "pickle")

#: capped exponential backoff between supervised pool rebuilds
_RETRY_BACKOFF_BASE_S = 0.05
_RETRY_BACKOFF_CAP_S = 1.0

#: the graceful degradation ladder :meth:`ShardedPipeline.drain` walks
#: once ``max_fold_retries`` consecutive failures exhaust the retry
#: budget: zero-copy shm -> pickle-over-pipe -> inline serial folding
#: in the parent (which always completes because the parent holds every
#: batch's own buffer and a prepared backend)
_DEGRADE_LADDER = {"shm": "pickle", "pickle": "serial"}

_log = logging.getLogger(__name__)

#: per-process (oracle, shuffle backend) pair built by the pool initializer
_WORKER_STATE = None


def _init_fold_worker(
    d: int,
    plan,
    backend_name: str,
    r: int,
    chunk_bytes: Optional[int] = None,
    seed_cache_bytes: int = 0,
) -> None:
    """Build one fold worker's oracle and backend (spawn-safe, runs once).

    Workers receive only picklable specs — the domain size, the
    :class:`~repro.core.params.PeosPlan`, backend parameters, and the
    kernel tuning knobs — and rebuild the oracle through the same
    :func:`~repro.service.pipeline.oracle_from_plan` registry path the
    parent used, so both sides hold identical estimators.  Each worker
    owns its own seed-row cache (caches are per-process working sets,
    never shared or persisted).
    """
    global _WORKER_STATE
    fo = oracle_from_plan(d, plan)
    fo.configure_kernel(
        chunk_bytes=chunk_bytes, seed_cache_bytes=seed_cache_bytes
    )
    backend = make_backend(backend_name, r=r)
    backend.prepare(fo, np.random.default_rng(0))
    _WORKER_STATE = (fo, backend)


def _worker_ready() -> bool:
    """No-op task used by :meth:`ShardedPipeline.warmup`."""
    return _WORKER_STATE is not None


def _fold_payload(
    fo, backend, sequence: int, reports: np.ndarray, n_fake: int, entropy: tuple
):
    """The shared fold body: shuffle, decode, count, meter the cache.

    The parent already charged the accountant; this is pure computation
    under the flush's own sequence-keyed stream.  Returns
    ``(support_counts, elapsed_seconds, (cache_hit_delta,
    cache_lookup_delta))`` — deltas, not totals, because one long-lived
    worker folds batches for many shards and the parent sums per-fold.
    """
    # Chaos seam: fires *before* any work, so an injected kill/raise can
    # never half-fold — a retry recomputes the identical pure function.
    fail_point("fold.worker", sequence=sequence)
    cache = fo.seed_cache
    hits_before = cache.hits if cache is not None else 0
    lookups_before = cache.lookups if cache is not None else 0
    started = time.perf_counter()
    shuffled = backend.shuffle(reports, n_fake, fo, flush_rng(entropy, sequence))
    counts = fo.support_counts(fo.decode_reports(shuffled))
    elapsed = time.perf_counter() - started
    if cache is not None:
        cache_delta = (
            cache.hits - hits_before, cache.lookups - lookups_before
        )
    else:
        cache_delta = (0, 0)
    return counts, elapsed, cache_delta


def _fold_block(sequence: int, reports: np.ndarray, n_fake: int, entropy: tuple):
    """Release one pickled flush batch in a worker (legacy transport)."""
    fo, backend = _WORKER_STATE
    return _fold_payload(fo, backend, sequence, reports, n_fake, entropy)


def _fold_block_shm(
    sequence: int,
    segment_name: str,
    n_reports: int,
    n_fake: int,
    entropy: tuple,
):
    """Release one flush batch straight out of a shared-memory segment.

    The worker maps the parent's segment read-only and folds in place;
    the first allocation the reports see worker-side is the shuffle's
    own concat.  The view must die before the mapping closes
    (``BufferError`` otherwise), and the attach never registers with the
    worker's resource tracker — the parent's pool is the sole owner, so
    this worker dying (even SIGKILL mid-fold) cannot unlink or leak the
    segment.
    """
    fo, backend = _WORKER_STATE
    segment = attach_segment(segment_name)
    try:
        reports = np.frombuffer(
            segment.buf, dtype=np.int64, count=n_reports
        )
        reports.setflags(write=False)
        try:
            return _fold_payload(
                fo, backend, sequence, reports, n_fake, entropy
            )
        finally:
            del reports
    finally:
        try:
            segment.close()
        except BufferError:
            # A propagating fold error pins the view in its traceback
            # frame; never let the unmap mask that error.  The parent's
            # pool still unlinks the segment at close().
            pass


class ShardedPipeline(PipelinePersistenceMixin):
    """Multi-shard streaming collection with a shared privacy ledger.

    Drop-in shaped like :class:`~repro.service.pipeline.TelemetryPipeline`
    (``submit`` / ``end_epoch`` / ``run`` / ``estimates`` / ``result``),
    plus :meth:`drain` (collect outstanding process folds),
    :meth:`warmup` (pre-spawn the pool), and :meth:`close`.  Use as a
    context manager to guarantee the worker pool is shut down.

    Durable state rides the same write-ahead protocol as the serial
    pipeline (the charge commits in global carve order before a batch
    reaches any shard; a process fold's counts commit when the parent
    collects them in :meth:`drain`), and because the execution layout is
    not part of the persisted state, :meth:`resume` may pick a different
    shard or worker count than the crashed run — estimates stay
    bit-identical either way.
    """

    def __init__(
        self,
        config: StreamConfig,
        rng: np.random.Generator,
        n_shards: int = 1,
        fold_backend: str = "serial",
        workers: Optional[int] = None,
        backend: Optional[ShuffleBackend] = None,
        clock=time.perf_counter,
        store: Optional[StateStore] = None,
        transport: str = "shm",
        chunk_bytes: Optional[int] = None,
        seed_cache_bytes: int = 0,
        fold_timeout: Optional[float] = None,
        max_fold_retries: int = 2,
        degrade: bool = True,
        _snapshot: Optional[RunSnapshot] = None,
    ):
        if n_shards < 1:
            raise ConfigError("n_shards", f"must be >= 1, got {n_shards}")
        if fold_backend not in FOLD_BACKENDS:
            raise ConfigError(
                "fold_backend",
                f"unknown fold backend {fold_backend!r} "
                f"(registered: {', '.join(FOLD_BACKENDS)})",
            )
        if workers is not None and workers < 1:
            raise ConfigError("workers", f"must be >= 1, got {workers}")
        if transport not in TRANSPORTS:
            raise ConfigError(
                "transport",
                f"unknown fold transport {transport!r} "
                f"(registered: {', '.join(TRANSPORTS)})",
            )
        if chunk_bytes is not None and int(chunk_bytes) < 1:
            raise ConfigError(
                "chunk_bytes", f"must be >= 1, got {chunk_bytes}"
            )
        if int(seed_cache_bytes) < 0:
            raise ConfigError(
                "seed_cache_bytes", f"must be >= 0, got {seed_cache_bytes}"
            )
        if fold_timeout is not None and not float(fold_timeout) > 0.0:
            raise ConfigError(
                "fold_timeout",
                f"must be positive seconds (or None for no timeout), "
                f"got {fold_timeout}",
            )
        if int(max_fold_retries) < 0:
            raise ConfigError(
                "max_fold_retries",
                f"must be >= 0, got {max_fold_retries}",
            )
        if fold_backend == "process":
            if config.backend != "plain":
                raise ConfigError(
                    "fold_backend",
                    f"process folding supports only the 'plain' shuffle "
                    f"backend, not {config.backend!r}: the crypto backends "
                    f"draw key material from one shared crypto_rng stream "
                    f"that cannot be split deterministically across "
                    f"processes",
                )
            if config.keep_reports:
                raise ConfigError(
                    "keep_reports",
                    "released reports stay inside the fold workers under "
                    "fold_backend='process'; use 'serial' to retain them",
                )
            if backend is not None:
                raise ConfigError(
                    "backend",
                    "a shared backend instance cannot cross process "
                    "boundaries; process folding builds one per worker",
                )
        self.config = config
        self.rng = rng
        self.clock = clock
        self.n_shards = int(n_shards)
        self.fold_backend = fold_backend
        self.transport = transport
        self.chunk_bytes = None if chunk_bytes is None else int(chunk_bytes)
        self.seed_cache_bytes = int(seed_cache_bytes)
        self.fold_timeout = (
            None if fold_timeout is None else float(fold_timeout)
        )
        self.max_fold_retries = int(max_fold_retries)
        self.degrade = bool(degrade)
        if _snapshot is None:
            # Drawn first, before any other use of rng (see release_entropy)
            # — the same order TelemetryPipeline follows, which is what makes
            # the two pipelines' ingest and release streams line up at a
            # fixed seed.
            self.release_entropy = release_entropy(rng)
        else:
            # Resume: rng already carries the checkpointed state; the
            # entropy was drawn by the original run and persisted.
            self.release_entropy = tuple(
                int(word) for word in _snapshot.release_entropy
            )
        self.fo = oracle_from_plan(config.d, config.plan)
        self.fo.configure_kernel(
            chunk_bytes=self.chunk_bytes,
            seed_cache_bytes=self.seed_cache_bytes,
        )
        # Shared memory carries flat int64 buffers only; the object-dtype
        # ordinal fallback (report spaces past 2^62) keeps the pickle
        # transport, bit-identically.
        self._use_shm = (
            self.transport == "shm" and self.fo.ordinal_codec.fast
        )
        self._shm_pool: Optional[SharedMemoryPool] = None
        self._bytes_moved = 0
        self._worker_cache_hits = 0
        self._worker_cache_lookups = 0
        #: once True, admitted batches fold inline in the parent — the
        #: terminal rung of the degradation ladder
        self._serial_fallback = False
        self._fault_stats = {
            "fold_retries": 0,
            "fold_timeouts": 0,
            "worker_deaths": 0,
            "pool_rebuilds": 0,
            "degradations": [],
        }
        self.store = store if store is not None else MemoryStateStore()
        if self.store.durable:
            check_replay_support(config, self.fo)
        self.buffer = ReportBuffer.from_plan(
            config.plan,
            config.flush_size,
            flush_empty=config.flush_empty,
            codec=self.fo.ordinal_codec,
        )
        self.accountant = PrivacyAccountant(
            config.eps_budget, config.delta_budget, method=config.composition
        )
        self.shards: List[IncrementalAggregator] = [
            IncrementalAggregator(self.fo) for _ in range(self.n_shards)
        ]
        self.backend = backend if backend is not None else make_backend(
            config.backend, r=config.r
        )
        self.backend.prepare(self.fo, rng)
        self._requested_workers = workers
        self._executor: Optional[ProcessPoolExecutor] = None
        #: outstanding process folds:
        #: (future, shard index, batch, shm lease or None)
        self._pending: List[tuple] = []
        self.epoch_reports: List[EpochReport] = []
        self.rejections: List[FlushRejection] = []
        self.n_rejected = 0
        self.released_batches: List = []
        #: [start, stop) index ranges into the submitted-report order that
        #: were actually released (rejected flushes leave gaps)
        self.released_spans: List[tuple] = []
        self._consumed = 0
        self._n_submits = 0
        self._epoch_flushes = 0
        self._epoch_rejected = 0
        self._epoch_reports_released = 0
        self._epoch_fakes = 0
        self._epoch_latency = 0.0
        if _snapshot is None:
            self.store.begin_run(config, self.release_entropy, self._checkpoint())
        else:
            self._restore(_snapshot)

    @classmethod
    def resume(
        cls,
        store: StateStore,
        n_shards: int = 1,
        fold_backend: str = "serial",
        workers: Optional[int] = None,
        backend: Optional[ShuffleBackend] = None,
        clock=time.perf_counter,
        transport: str = "shm",
        chunk_bytes: Optional[int] = None,
        seed_cache_bytes: int = 0,
        fold_timeout: Optional[float] = None,
        max_fold_retries: int = 2,
        degrade: bool = True,
    ) -> "ShardedPipeline":
        """Rebuild the run persisted in ``store`` and continue it sharded.

        Same recovery invariants as
        :meth:`~repro.service.pipeline.TelemetryPipeline.resume`; the
        execution layout (``n_shards``, ``fold_backend``, ``workers``,
        ``transport``, and the kernel tuning knobs) is chosen fresh — it
        never affects estimates, and a seed-row cache in particular is a
        process-local working set that is rebuilt from scratch, never
        persisted (so it can never be stale relative to the recovered
        run).
        """
        snapshot = store.load_run()
        rng = generator_from_state(snapshot.rng_state)
        return cls(
            snapshot.config,
            rng,
            n_shards=n_shards,
            fold_backend=fold_backend,
            workers=workers,
            backend=backend,
            clock=clock,
            store=store,
            transport=transport,
            chunk_bytes=chunk_bytes,
            seed_cache_bytes=seed_cache_bytes,
            fold_timeout=fold_timeout,
            max_fold_retries=max_fold_retries,
            degrade=degrade,
            _snapshot=snapshot,
        )

    # -- executor lifecycle ------------------------------------------------

    @property
    def workers(self) -> int:
        """Fold worker processes the process backend uses."""
        if self._requested_workers is not None:
            return self._requested_workers
        return max(1, min(self.n_shards, os.cpu_count() or 1))

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=get_context("spawn"),
                initializer=_init_fold_worker,
                initargs=(
                    self.config.d,
                    self.config.plan,
                    self.config.backend,
                    self.config.r,
                    self.chunk_bytes,
                    self.seed_cache_bytes,
                ),
            )
        return self._executor

    def _pool(self) -> SharedMemoryPool:
        if self._shm_pool is None:
            self._shm_pool = SharedMemoryPool()
        return self._shm_pool

    def warmup(self) -> None:
        """Spawn and initialize the fold workers before the first flush.

        Spawn start-up costs hundreds of milliseconds per worker;
        latency-sensitive callers (and fair benchmarks) pay it up front
        instead of inside the first epoch.  No-op for serial folding.
        """
        if self.fold_backend != "process":
            return
        executor = self._ensure_executor()
        ready = [executor.submit(_worker_ready) for __ in range(self.workers)]
        for future in ready:
            future.result()

    def close(self) -> None:
        """Collect outstanding folds, shut the pool down, unlink all shm.

        Exception-safe by construction: each cleanup stage runs even
        when the previous one fails.  A worker killed mid-fold makes
        :meth:`drain` raise (the charged flushes must not silently
        vanish), but the executor is still shut down — a dead worker
        must not leak the surviving processes — and the shared-memory
        pool still unlinks every segment it ever created, including
        those whose leases the dead worker orphaned, so nothing survives
        in ``/dev/shm`` and the resource tracker never stalls on
        segments nobody owns.  The executor stops first: no worker can
        be attaching a segment while it is being unlinked.
        """
        try:
            self.drain()
        finally:
            try:
                if self._executor is not None:
                    self._executor.shutdown()
                    self._executor = None
            finally:
                if self._shm_pool is not None:
                    self._shm_pool.close()
                    self._shm_pool = None

    def __enter__(self) -> "ShardedPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- ingestion ---------------------------------------------------------

    def submit(self, values) -> int:
        """Privatize and buffer one client batch; dispatch size flushes.

        Returns the number of flushes triggered (admitted or rejected).
        Ingestion is the parent's job — privatization consumes the ingest
        generator in arrival order, which must not depend on shard layout.
        """
        values = np.asarray(values)
        if len(values) == 0:
            return 0
        encoded = self.fo.encode_reports(self.fo.privatize(values, self.rng))
        # owned=True: `encoded` is freshly allocated and never touched again.
        batches = self.buffer.submit(encoded, owned=True)
        self._n_submits += 1
        self._persist_and_release(batches)
        return len(batches)

    def end_epoch(self) -> EpochReport:
        """Drain the carver, collect every fold, and close the epoch."""
        batches = self.buffer.end_epoch()
        if batches:
            self._persist_and_release(batches)
        self.drain()
        eps_spent, delta_spent = self.accountant.spent()
        report = EpochReport(
            epoch=self.buffer.epoch - 1,
            n_flushes=self._epoch_flushes,
            n_rejected=self._epoch_rejected,
            n_reports=self._epoch_reports_released,
            n_fake=self._epoch_fakes,
            flush_latency_s=self._epoch_latency,
            reports_per_sec=(
                self._epoch_reports_released / self._epoch_latency
                if self._epoch_latency > 0.0
                else 0.0
            ),
            eps_spent=eps_spent,
            delta_spent=delta_spent,
        )
        self.epoch_reports.append(report)
        self.store.record_epoch(report, self.estimates(), self._checkpoint())
        self._epoch_flushes = 0
        self._epoch_rejected = 0
        self._epoch_reports_released = 0
        self._epoch_fakes = 0
        self._epoch_latency = 0.0
        return report

    def run(self, epoch_batches: Iterable) -> StreamResult:
        """Feed one value batch per epoch and return the final result."""
        for values in epoch_batches:
            self.submit(values)
            self.end_epoch()
        return self.result()

    # -- flush processing --------------------------------------------------

    def _release(self, batch: FlushBatch) -> None:
        """Hand one admitted (already charged and journaled) batch to its
        shard — inline for serial folding (and after a degradation to the
        serial fallback), as a future for process folding, whose counts
        are committed when :meth:`drain` collects them."""
        shard = batch.sequence % self.n_shards
        if self.fold_backend == "process" and not self._serial_fallback:
            # An all-fake empty batch has no payload to ship; POSIX shm
            # segments cannot be zero-sized, so it rides the pickle path.
            if self._use_shm and batch.n_reports > 0:
                try:
                    lease = self._pool().acquire(batch.reports.nbytes)
                except Exception as failure:
                    # Graceful transport degradation at the write site: a
                    # failed segment acquire (exhausted /dev/shm, an
                    # injected "shm.write" fault) must not lose a charged
                    # flush — the payload still lives in the batch's own
                    # buffer, so ship it pickled from here on.
                    self._degrade_transport(
                        "pickle", f"shm write failed: {failure!r}"
                    )
                else:
                    window = np.frombuffer(
                        lease.shm.buf, dtype=np.int64, count=batch.n_reports
                    )
                    window[:] = batch.reports
                    del window  # views must die before the segment closes
                    self._bytes_moved += batch.reports.nbytes
                    future = self._submit_supervised(
                        _fold_block_shm,
                        batch.sequence,
                        lease.name,
                        batch.n_reports,
                        batch.n_fake,
                        self.release_entropy,
                    )
                    self._pending.append((future, shard, batch, lease))
                    return
            self._bytes_moved += batch.reports.nbytes
            future = self._submit_supervised(
                _fold_block,
                batch.sequence,
                batch.reports,
                batch.n_fake,
                self.release_entropy,
            )
            self._pending.append((future, shard, batch, None))
            return
        self._fold_inline(shard, batch)

    def _fold_inline(self, shard: int, batch: FlushBatch) -> None:
        """Fold one batch in the parent: the serial path and the terminal
        rung of the degradation ladder (always available — the parent
        holds a prepared backend and every batch owns its buffer)."""
        started = self.clock()
        shuffled = self.backend.shuffle(
            batch.reports, batch.n_fake, self.fo,
            flush_rng(self.release_entropy, batch.sequence),
        )
        decoded = self.fo.decode_reports(shuffled)
        if len(decoded) != batch.n_reports + batch.n_fake:
            raise ValueError(
                f"batch has {len(decoded)} reports but claims "
                f"{batch.n_reports} genuine + {batch.n_fake} fake"
            )
        counts = self.fo.support_counts(decoded)
        self.shards[shard].fold_counts(counts, batch.n_reports, batch.n_fake)
        self._epoch_latency += self.clock() - started
        if self.config.keep_reports:
            self.released_batches.append(decoded)
        self.store.record_release(batch.sequence, counts)

    def _fold_restored(self, flush: StoredFlush, counts: np.ndarray) -> None:
        """A recovered flush folds into the shard its sequence picks."""
        self.shards[flush.sequence % self.n_shards].fold_counts(
            counts, flush.n_reports, flush.n_fake
        )

    def drain(self) -> int:
        """Fold every outstanding worker result into its shard, supervised.

        Collection order does not matter: counts are summed exactly, and
        each fold's randomness was fixed by its flush sequence at dispatch
        time.  Returns the number of folds collected.

        Supervision: a fold that times out (``fold_timeout``), raises, or
        dies with its worker (``BrokenProcessPool``) is *retried*, not
        dropped — the accountant already charged those flushes, and
        because folds are pure given ``(sequence, reports, n_fake,
        entropy)`` a retry recomputes bit-identical counts.  The broken
        executor is rebuilt (shm leases survive — the payloads still live
        in the parent-owned segments) and every outstanding fold is
        redispatched after a capped exponential backoff.  After
        ``max_fold_retries`` *consecutive* failures the transport
        degrades one rung (shm -> pickle -> serial inline folding, see
        ``_DEGRADE_LADDER``) instead of raising; with ``degrade=False``
        (or once the serial rung itself fails) the failure propagates and
        the pending queue keeps the uncollected folds for a later drain.
        """
        collected = 0
        consecutive = 0
        while self._pending:
            future, shard, batch, lease = self._pending[0]
            try:
                counts, elapsed, cache_delta = future.result(
                    timeout=self.fold_timeout
                )
            except _FutureTimeout as failure:
                self._fault_stats["fold_timeouts"] += 1
                consecutive = self._recover_folds(
                    consecutive + 1, failure, hung=True
                )
                continue
            except Exception as failure:
                consecutive = self._recover_folds(
                    consecutive + 1, failure, hung=False
                )
                continue
            consecutive = 0
            self._pending.pop(0)
            if lease is not None:
                # The worker is done with the segment; back to the pool
                # for the next flush.
                lease.release()
            self._worker_cache_hits += cache_delta[0]
            self._worker_cache_lookups += cache_delta[1]
            self.shards[shard].fold_counts(
                counts, batch.n_reports, batch.n_fake
            )
            self.store.record_release(batch.sequence, counts)
            self._epoch_latency += elapsed
            collected += 1
        return collected

    # -- fold supervision --------------------------------------------------

    def _submit_supervised(self, fn, *args):
        """Dispatch one fold, absorbing a pool that broke *between* folds.

        ``ProcessPoolExecutor.submit`` raises ``BrokenExecutor``
        synchronously when the workers died while the pipeline was
        idle — outside :meth:`drain`'s supervision.  The batch is
        already charged, so rebuild the pool, redispatch any
        outstanding folds onto it, and submit this one to the fresh
        pool; a second synchronous failure means new workers cannot
        even spawn, which is environmental, and propagates.
        """
        try:
            return self._ensure_executor().submit(fn, *args)
        except BrokenExecutor:
            self._fault_stats["worker_deaths"] += 1
            self._abandon_executor()
            self._redispatch_pending()
            return self._ensure_executor().submit(fn, *args)

    def _recover_folds(self, consecutive: int, failure: BaseException, hung: bool) -> int:
        """Absorb one fold failure: rebuild, maybe degrade, redispatch.

        Returns the new consecutive-failure count (0 after a
        degradation — each rung gets a fresh retry budget).  Raises
        ``failure`` when the retry budget is spent and no rung is left
        (or degradation is disabled): charged flushes must never vanish
        silently, so an unrecoverable failure propagates with the
        pending queue intact.
        """
        if isinstance(failure, BrokenExecutor):
            self._fault_stats["worker_deaths"] += 1
        # A hung worker is still alive holding the job; shutdown(wait=)
        # would block on it, so the rebuild SIGKILLs the pool first.
        self._abandon_executor(kill=hung)
        if self._use_shm and self._shm_pool is not None:
            divergence = self._shm_pool.dev_shm_divergence()
            if divergence["missing"]:
                # Segments vanished under us (foreign unlink): the leases
                # cannot be re-attached, but every batch still owns its
                # buffer — ship pickled from here on.
                self._degrade_transport(
                    "pickle",
                    f"shm segments vanished mid-run: "
                    f"{', '.join(divergence['missing'])}",
                )
                consecutive = 0
        if consecutive > self.max_fold_retries:
            target = _DEGRADE_LADDER.get(self._effective_transport())
            if not self.degrade or target is None:
                raise failure
            self._degrade_transport(
                target,
                f"{consecutive - 1} consecutive fold failures "
                f"(last: {failure!r})",
            )
            consecutive = 0
        else:
            self._fault_stats["fold_retries"] += 1
            time.sleep(
                min(
                    _RETRY_BACKOFF_CAP_S,
                    _RETRY_BACKOFF_BASE_S * 2.0 ** (consecutive - 1),
                )
            )
        self._redispatch_pending()
        return consecutive

    def _abandon_executor(self, kill: bool = False) -> None:
        """Tear down the (possibly broken or hung) pool without blocking."""
        executor, self._executor = self._executor, None
        if executor is None:
            return
        self._fault_stats["pool_rebuilds"] += 1
        if kill:
            for pid in list(getattr(executor, "_processes", None) or {}):
                try:
                    os.kill(pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass  # already dead / not ours — shutdown handles it
        executor.shutdown(wait=False, cancel_futures=True)

    def _redispatch_pending(self) -> None:
        """Resubmit every uncollected fold on the current rung.

        Folds that completed cleanly before the pool broke keep their
        finished futures (their results are valid — the fold already
        happened).  Everything else is resubmitted: shm folds reuse
        their live lease (the payload is still in the parent-owned
        segment); after a degradation to pickle the lease is released
        and the batch's own buffer ships instead; on the serial rung
        the parent folds inline.  ``bytes_moved`` is not re-counted —
        retries re-ship, they do not re-measure.
        """
        entries, self._pending = self._pending, []
        if self._serial_fallback:
            for future, shard, batch, lease in entries:
                try:
                    if (
                        future.done()
                        and not future.cancelled()
                        and future.exception() is None
                    ):
                        counts, elapsed, cache_delta = future.result()
                        self._worker_cache_hits += cache_delta[0]
                        self._worker_cache_lookups += cache_delta[1]
                        self.shards[shard].fold_counts(
                            counts, batch.n_reports, batch.n_fake
                        )
                        self.store.record_release(batch.sequence, counts)
                        self._epoch_latency += elapsed
                    else:
                        self._fold_inline(shard, batch)
                finally:
                    if lease is not None:
                        lease.release()
            return
        executor = self._ensure_executor()
        for future, shard, batch, lease in entries:
            if (
                future.done()
                and not future.cancelled()
                and future.exception() is None
            ):
                # Completed before the failure: the result is a pure
                # function of the batch — keep it, collect it in drain.
                self._pending.append((future, shard, batch, lease))
                continue
            if lease is not None and self._use_shm:
                replacement = executor.submit(
                    _fold_block_shm,
                    batch.sequence,
                    lease.name,
                    batch.n_reports,
                    batch.n_fake,
                    self.release_entropy,
                )
                self._pending.append((replacement, shard, batch, lease))
                continue
            if lease is not None:
                # Degraded shm -> pickle mid-flight: the batch's own
                # buffer ships from now on; the segment goes back to the
                # pool.
                lease.release()
            replacement = executor.submit(
                _fold_block,
                batch.sequence,
                batch.reports,
                batch.n_fake,
                self.release_entropy,
            )
            self._pending.append((replacement, shard, batch, None))

    def _effective_transport(self) -> str:
        """The rung of the degradation ladder folds currently ride."""
        if self._serial_fallback:
            return "serial"
        return "shm" if self._use_shm else "pickle"

    def _degrade_transport(self, level: str, reason: str) -> None:
        """Drop one rung down the ladder (shm -> pickle -> serial)."""
        previous = self._effective_transport()
        if level == "serial":
            self._serial_fallback = True
        self._use_shm = False
        self._fault_stats["degradations"].append(
            {"from": previous, "to": level, "reason": reason}
        )
        _log.warning(
            "fold transport degraded %s -> %s: %s", previous, level, reason
        )

    # -- observability -----------------------------------------------------

    def transport_stats(self) -> dict:
        """How fold payloads moved: transport, bytes, shm high-water mark.

        ``transport`` is the *effective* transport (``"shm"`` degrades
        to ``"pickle"`` for object-dtype codecs, and supervision may
        have walked the ladder further — see :meth:`fault_stats`),
        ``bytes_moved`` the total report payload shipped to workers on
        either transport, and ``shm_peak_bytes`` the pool's peak
        allocated segment bytes (0 until the first shm fold).
        """
        pool = self._shm_pool
        return {
            "transport": self._effective_transport(),
            "bytes_moved": self._bytes_moved,
            "shm_peak_bytes": pool.peak_bytes if pool is not None else 0,
        }

    def fault_stats(self) -> dict:
        """What the fold supervisor absorbed: retries, rebuilds, ladder.

        ``fold_retries`` — failed folds redispatched (after backoff);
        ``fold_timeouts`` — folds that exceeded ``fold_timeout``;
        ``worker_deaths`` — ``BrokenProcessPool`` detections;
        ``pool_rebuilds`` — executors torn down and respawned;
        ``degradations`` — every rung walked, with from/to/reason.
        All zeros (and an empty list) on a healthy run.
        """
        stats = dict(self._fault_stats)
        stats["degradations"] = list(self._fault_stats["degradations"])
        return stats

    def seed_cache_stats(self) -> dict:
        """Aggregate seed-row-cache effectiveness across every fold site.

        Sums the parent oracle's cache (serial folds) with the per-fold
        deltas the process workers report back through :meth:`drain`.
        All zeros when ``seed_cache_bytes=0``.
        """
        cache = self.fo.seed_cache
        hits = self._worker_cache_hits + (
            cache.hits if cache is not None else 0
        )
        lookups = self._worker_cache_lookups + (
            cache.lookups if cache is not None else 0
        )
        return {
            "hits": hits,
            "lookups": lookups,
            "hit_rate": hits / lookups if lookups else 0.0,
        }

    # -- results -----------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        """True once no positive charge can ever be admitted again."""
        return self.accountant.remaining_eps() <= 0.0

    def aggregate(self) -> IncrementalAggregator:
        """Merge every shard into one global aggregator (fresh instance)."""
        self.drain()
        merged = IncrementalAggregator(self.fo)
        for shard in self.shards:
            merged.merge(shard)
        return merged

    def estimates(self) -> np.ndarray:
        """Current calibrated global frequency estimates (Eq. (6))."""
        return self.aggregate().estimates()

    def released_values(self, submitted_values: np.ndarray) -> np.ndarray:
        """The subset of ``submitted_values`` that was actually released.

        Same demo/metric helper as
        :meth:`~repro.service.pipeline.TelemetryPipeline.released_values`.
        """
        submitted_values = np.asarray(submitted_values)
        if len(submitted_values) < self._consumed:
            raise ValueError(
                f"expected at least {self._consumed} submitted values, "
                f"got {len(submitted_values)}"
            )
        if not self.released_spans:
            # Owned empty result, not a zero-length view that would pin
            # the caller's buffer alive (RPL010).
            return submitted_values[:0].copy()
        return np.concatenate(
            [submitted_values[start:stop] for start, stop in self.released_spans]
        )

    def result(self) -> StreamResult:
        aggregate = self.aggregate()
        eps_spent, delta_spent = self.accountant.spent()
        return StreamResult(
            estimates=aggregate.estimates(),
            epochs=list(self.epoch_reports),
            n_genuine=aggregate.n_genuine,
            n_fake=aggregate.n_fake,
            eps_spent=eps_spent,
            delta_spent=delta_spent,
            n_rejected=self.n_rejected,
            rejections=list(self.rejections),
        )
