"""The streaming telemetry pipeline: batcher -> buffer -> backend -> analyzer.

:class:`TelemetryPipeline` wires the service together around a Section
VI-D plan (:func:`repro.core.params.plan_peos`):

1. clients arrive in vectorized batches; :meth:`TelemetryPipeline.submit`
   privatizes and ordinal-encodes them in one numpy pass and hands the
   encoded reports to the :class:`~repro.service.buffer.ReportBuffer`;
2. every size- or epoch-triggered flush is first priced at the plan's
   per-release guarantee ``(eps_server, delta)`` against the
   :class:`~repro.service.accountant.PrivacyAccountant` — a refused flush
   is *dropped*, never released;
3. admitted flushes go through the configured
   :class:`~repro.service.backends.ShuffleBackend` (fake injection +
   shuffle) and the released multiset is folded into the
   :class:`~repro.service.aggregator.IncrementalAggregator`;
4. :meth:`TelemetryPipeline.end_epoch` drains the buffer and emits an
   :class:`EpochReport` with the epoch's operational metrics
   (reports/sec, flush latency, cumulative budget spend).

Estimates are available at any time via :meth:`TelemetryPipeline.estimates`
and are bit-identical to a one-shot run over the same released reports.

Randomness discipline (the sharding determinism contract): the pipeline
consumes its generator for *ingestion only* (privatizing submissions, in
arrival order).  Release-side randomness — fake-report draws and the
shuffle permutation — comes from an independent per-flush stream derived
via :func:`release_entropy` / :func:`flush_rng` and keyed by the flush's
global sequence number.  Because a flush's noise depends only on the
deployment seed and its own sequence number — never on which thread,
process, or shard releases it — :class:`~repro.service.sharded.
ShardedPipeline` reproduces this pipeline's estimates bit for bit at any
shard or worker count.  (This changed the sampled noise at a fixed seed
relative to the pre-sharding pipeline, which interleaved ingest and
release draws on one stream; same documented trade as the sweep engine's
per-trial seeding, see DESIGN.md.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

import numpy as np

from ..core.errors import (
    ConfigError,
    validate_backend_name,
    validate_composition,
    validate_domain_size,
    validate_shuffler_count,
)
from ..core.params import PeosPlan, plan_peos
from ..core.peos_analysis import (
    peos_epsilon_collusion_grr,
    peos_epsilon_collusion_solh,
    peos_epsilon_server_grr,
    peos_epsilon_server_solh,
)
from ..core.registry import UnknownMechanismError, get_spec
from ..frequency_oracles.base import FrequencyOracle
from ..persistence import (
    FlushRecord,
    IngestCheckpoint,
    MemoryStateStore,
    RunSnapshot,
    StateStore,
    StateStoreError,
    StoredFlush,
)
from ..persistence.records import generator_from_state
from .accountant import BudgetExceededError, PrivacyAccountant
from .aggregator import IncrementalAggregator
from .backends import BACKEND_NAMES, ShuffleBackend, make_backend
from .buffer import FlushBatch, ReportBuffer

#: detailed FlushRejection records kept per pipeline; further refusals only
#: increment the counter so an exhausted long-running service stays O(1)
MAX_REJECTION_RECORDS = 64


@dataclass(frozen=True)
class StreamConfig:
    """Static configuration of one streaming deployment."""

    #: value-domain size
    d: int
    #: the Section VI-D plan (mechanism, eps_l, d', n_r, guarantees)
    plan: PeosPlan
    #: genuine reports per size-triggered flush
    flush_size: int
    #: lifetime privacy budget across all flushes
    eps_budget: float
    delta_budget: float
    #: shuffle backend registry name: "plain", "sequential", or "peos"
    backend: str = "plain"
    #: shuffler count for the protocol backends
    r: int = 3
    #: accountant composition method: "basic" or "advanced"
    composition: str = "basic"
    #: emit an all-fake batch for epochs with no pending reports (hides
    #: traffic volume; each such release is priced at its fakes-only eps)
    flush_empty: bool = False
    #: retain each flush's decoded released reports (tests / audits)
    keep_reports: bool = False

    def __post_init__(self):
        """Validate the whole configuration up front.

        Every inconsistency raises :class:`~repro.core.errors.ConfigError`
        naming the offending field — instead of a numpy shape/broadcast
        error surfacing later from deep inside the buffer or aggregator.
        """
        validate_domain_size(self.d)
        if self.flush_size < 1:
            raise ConfigError(
                "flush_size", f"must be >= 1, got {self.flush_size}"
            )
        if not self.eps_budget > 0.0:
            raise ConfigError(
                "eps_budget", f"must be positive, got {self.eps_budget}"
            )
        if not 0.0 < self.delta_budget < 1.0:
            raise ConfigError(
                "delta_budget", f"must be in (0, 1), got {self.delta_budget}"
            )
        validate_backend_name(self.backend, BACKEND_NAMES)
        validate_shuffler_count(self.r)
        validate_composition(self.composition)
        plan_d = getattr(self.plan, "d", None)
        if plan_d is not None and plan_d != self.d:
            raise ConfigError(
                "d",
                f"plan was computed for d={plan_d} but the deployment "
                f"declares d={self.d}; re-plan for the actual domain",
            )
        if self.plan.mechanism == "grr" and self.plan.d_prime != self.d:
            raise ConfigError(
                "plan",
                f"a GRR plan reports over the value domain itself, but "
                f"plan.d_prime={self.plan.d_prime} != d={self.d}",
            )
        if self.plan.n_r < 0:
            raise ConfigError(
                "plan", f"fake-report count must be >= 0, got {self.plan.n_r}"
            )

    @classmethod
    def from_targets(
        cls,
        d: int,
        flush_size: int,
        eps_targets: tuple = (1.0, 3.0, 6.0),
        delta: float = 1e-9,
        admitted_flushes: int = 6,
        mechanism: Optional[str] = None,
        **kwargs,
    ) -> "StreamConfig":
        """Plan per-flush parameters and size the budget for a flush count.

        The plan is computed for a population of ``flush_size`` so each
        release individually meets the three adversary targets; the
        lifetime budget then admits exactly ``admitted_flushes`` *full*
        releases under basic composition.  If the workload produces
        epoch-end remainder flushes (epoch size not divisible by
        ``flush_size``), use :meth:`for_epochs`, which prices the actual
        schedule.  ``mechanism`` ("grr"/"solh") restricts the planner's
        choice; None keeps the paper's free variance-optimal pick.
        """
        if admitted_flushes < 1:
            raise ConfigError(
                "admitted_flushes",
                f"must admit at least 1 flush, got {admitted_flushes}",
            )
        plan = plan_peos(
            *eps_targets, n=flush_size, d=d, delta=delta, mechanism=mechanism
        )
        return cls(
            d=d,
            plan=plan,
            flush_size=flush_size,
            eps_budget=plan.eps_server * admitted_flushes,
            delta_budget=_delta_budget(
                plan.delta * admitted_flushes, kwargs.get("composition", "basic")
            ),
            **kwargs,
        )

    @classmethod
    def for_epochs(
        cls,
        d: int,
        flush_size: int,
        epoch_size: int,
        admitted_epochs: int,
        eps_targets: tuple = (1.0, 3.0, 6.0),
        delta: float = 1e-9,
        mechanism: Optional[str] = None,
        **kwargs,
    ) -> "StreamConfig":
        """Size the budget for ``admitted_epochs`` epochs of ``epoch_size``.

        Unlike :meth:`from_targets`, this prices the actual per-epoch flush
        schedule — full flushes plus the (more expensive) epoch-end
        remainder when ``epoch_size`` is not a multiple of ``flush_size``.
        ``mechanism`` ("grr"/"solh") restricts the planner's choice.
        """
        if admitted_epochs < 1:
            raise ConfigError(
                "admitted_epochs",
                f"must admit at least 1 epoch, got {admitted_epochs}",
            )
        if epoch_size < 1:
            raise ConfigError(
                "epoch_size", f"must be >= 1, got {epoch_size}"
            )
        plan = plan_peos(
            *eps_targets, n=flush_size, d=d, delta=delta, mechanism=mechanism
        )
        flushes = admitted_epochs * flushes_per_epoch(epoch_size, flush_size)
        return cls(
            d=d,
            plan=plan,
            flush_size=flush_size,
            eps_budget=admitted_epochs
            * epoch_release_epsilon(d, plan, epoch_size, flush_size),
            delta_budget=_delta_budget(
                plan.delta * flushes, kwargs.get("composition", "basic")
            ),
            **kwargs,
        )


@dataclass(frozen=True)
class FlushRejection:
    """Record of a flush the accountant refused."""

    epoch: int
    sequence: int
    n_reports: int
    reason: str


@dataclass(frozen=True)
class EpochReport:
    """Operational metrics of one collection epoch."""

    epoch: int
    n_flushes: int
    n_rejected: int
    n_reports: int
    n_fake: int
    flush_latency_s: float
    reports_per_sec: float
    #: cumulative composed spend after this epoch
    eps_spent: float
    delta_spent: float


@dataclass
class StreamResult:
    """Final state of a pipeline run."""

    estimates: np.ndarray
    epochs: List[EpochReport]
    n_genuine: int
    n_fake: int
    eps_spent: float
    delta_spent: float
    #: total refused flushes (detail records are capped, the count is not)
    n_rejected: int = 0
    #: first ``MAX_REJECTION_RECORDS`` refusals, with reasons
    rejections: List[FlushRejection] = field(default_factory=list)


def flush_release_epsilon(
    d: int, plan: PeosPlan, n_reports: int, n_fake: int
) -> float:
    """Actual Corollary 8/9 ``eps_c`` of releasing one batch.

    The plan's ``eps_server`` holds for a full flush of ``flush_size``
    genuine reports; a shorter batch (an epoch-end remainder) carries less
    genuine blanket noise, so its guarantee is *weaker* and must be priced
    at its own ``n``.  For ``n <= 1`` the genuine blanket vanishes and the
    bound degenerates to the fakes-only (collusion-style) form, which also
    prices an all-fake ``flush_empty`` batch — and returns ``inf`` when
    there are no fakes either, so the accountant refuses such a release
    outright.
    """
    if n_reports < 0 or n_fake < 0:
        raise ValueError(
            f"report counts must be >= 0, got n={n_reports}, n_r={n_fake}"
        )
    if plan.mechanism == "grr":
        if n_reports >= 2:
            return peos_epsilon_server_grr(
                plan.eps_l, d, n_reports, n_fake, plan.delta
            )
        return peos_epsilon_collusion_grr(d, n_fake, plan.delta)
    if n_reports >= 2:
        return peos_epsilon_server_solh(
            plan.eps_l, plan.d_prime, n_reports, n_fake, plan.delta
        )
    return peos_epsilon_collusion_solh(plan.d_prime, n_fake, plan.delta)


def flushes_per_epoch(epoch_size: int, flush_size: int) -> int:
    """Releases one epoch produces: full flushes plus any remainder."""
    if epoch_size < 1 or flush_size < 1:
        raise ValueError(
            f"sizes must be >= 1, got epoch={epoch_size}, flush={flush_size}"
        )
    return -(-epoch_size // flush_size)


def _delta_budget(charged_delta: float, composition: str) -> float:
    """Size the lifetime delta budget for the charged per-flush deltas.

    Under basic composition the ledger should bind exactly at the planned
    flush count.  Under advanced composition the accountant reserves half
    the budget as the DRV slack and the point of the method is to admit
    *more* flushes on the eps axis, so leave 4x headroom (2x for the
    slack, 2x for extra admissions) — the eps budget then governs.
    """
    if composition == "advanced":
        return charged_delta * 4.0
    return charged_delta


def epoch_release_epsilon(
    d: int, plan: PeosPlan, epoch_size: int, flush_size: int
) -> float:
    """Total ``eps_c`` one epoch's releases cost: full flushes plus the
    epoch-end remainder, each priced at its own size."""
    full, remainder = divmod(epoch_size, flush_size)
    total = full * flush_release_epsilon(d, plan, flush_size, plan.n_r)
    if remainder:
        total += flush_release_epsilon(d, plan, remainder, plan.n_r)
    return total


def release_entropy(rng: np.random.Generator) -> tuple:
    """Derive the deployment's release-stream root entropy from ``rng``.

    Called exactly once, immediately after a pipeline binds its ingest
    generator and before any other draw — both :class:`TelemetryPipeline`
    and :class:`~repro.service.sharded.ShardedPipeline` follow this order,
    which is what makes their streams line up at a fixed seed.
    """
    return tuple(int(word) for word in rng.integers(0, 1 << 32, size=8))


def flush_rng(entropy: tuple, sequence: int) -> np.random.Generator:
    """The release stream of the flush with global sequence ``sequence``.

    Children are keyed by ``spawn_key`` (equivalent to
    ``SeedSequence(entropy).spawn(...)`` but order-independent), so any
    execution layout — the serial pipeline, a sharded fold, a process
    pool, even out-of-order collection — draws identical fake-report and
    shuffle randomness for the same flush.
    """
    return np.random.default_rng(
        np.random.SeedSequence(entropy, spawn_key=(int(sequence),))
    )


def oracle_from_plan(d: int, plan: PeosPlan) -> FrequencyOracle:
    """Instantiate the planned mechanism through the registry.

    The plan's lowercase mechanism id ("grr", "solh") resolves to a
    :class:`~repro.core.registry.MechanismSpec` whose ``plan_factory``
    builds the streaming oracle — SOLH with the 32-bit-seed hash family so
    the ordinal report group fits in 64-bit arithmetic (the
    protocol-backend requirement noted in :mod:`repro.protocol.peos`).
    """
    try:
        spec = get_spec(plan.mechanism)
    except UnknownMechanismError as unknown:
        raise ValueError(f"unknown planned mechanism: {plan.mechanism!r}") from unknown
    if not spec.streamable:
        raise ValueError(f"mechanism {spec.name!r} is not streamable")
    return spec.build_from_plan(d, plan)


def check_replay_support(config: StreamConfig, fo: FrequencyOracle) -> None:
    """Refuse configurations whose releases cannot be replayed after a
    crash (raised for durable stores at construction and on any resume).

    The crypto backends hold cryptographic generator state that is not
    checkpointable, so their releases are not reproducible from a flush
    record; ``keep_reports`` retains decoded batches the store
    deliberately drops at release; and the ordinal object-dtype fallback
    has no stable byte serialization.
    """
    if config.backend != "plain":
        raise ConfigError(
            "backend",
            f"durable persistence requires the 'plain' backend: the "
            f"{config.backend!r} backend holds cryptographic RNG state "
            f"that cannot be checkpointed, so its releases are not "
            f"replayable after a crash",
        )
    if config.keep_reports:
        raise ConfigError(
            "keep_reports",
            "durable persistence drops raw reports at release and cannot "
            "rebuild retained batches on resume; disable keep_reports",
        )
    if not fo.ordinal_codec.fast:
        raise ConfigError(
            "plan",
            "durable persistence requires the int64 ordinal fast path; "
            "this plan's report domain exceeds 64-bit arithmetic",
        )


class PipelinePersistenceMixin:
    """The write-ahead persistence protocol and recovery walk.

    Shared by :class:`TelemetryPipeline` and
    :class:`~repro.service.sharded.ShardedPipeline`, which expose
    identical state attributes (``store``, ``buffer``, ``accountant``,
    ``rng``, rejection/span/epoch counters) and per-class
    ``_charge_batch`` follow-ups: ``_release`` (how an admitted batch is
    executed) and ``_fold_restored`` (where a recovered flush's counts
    land).
    """

    def _checkpoint(self) -> IngestCheckpoint:
        """The ingest-side mutable state, for the store to commit."""
        return IngestCheckpoint(
            rng_state=self.rng.bit_generator.state,
            buffer_epoch=self.buffer.epoch,
            next_sequence=self.buffer.next_sequence,
            pending_chunks=self.buffer.pending_chunks(),
            pending_count=self.buffer.pending,
            n_submits=self._n_submits,
        )

    def _persist_and_release(self, batches: List[FlushBatch]) -> None:
        """The write-ahead protocol step for one submission.

        Every carved batch is priced first; all verdicts (charges and
        rejections) plus the post-submit ingest checkpoint commit in one
        store transaction *before* any release happens.  Only then are
        the admitted batches released, each committing its counts as it
        folds.  A crash between the two commits leaves 'charged' rows a
        resume replays deterministically — the spend is never lost.
        """
        if not batches:
            self.store.record_ingest(self._checkpoint())
            return
        records = [self._charge_batch(batch) for batch in batches]
        self.store.record_flushes(records, self._checkpoint())
        for batch, record in zip(batches, records):
            if record.admitted:
                self._release(batch)

    def _charge_batch(self, batch: FlushBatch) -> FlushRecord:
        """Price one batch against the ledger; never releases."""
        plan = self.config.plan
        self._epoch_flushes += 1
        span = (self._consumed, self._consumed + batch.n_reports)
        self._consumed = span[1]
        # Price the batch at its own size: an epoch-end remainder carries
        # less genuine blanket than a full flush, so it costs more.
        price = flush_release_epsilon(
            self.config.d, plan, batch.n_reports, batch.n_fake
        )
        try:
            charge = self.accountant.charge(
                price,
                plan.delta,
                label=f"epoch{batch.epoch}/flush{batch.sequence}",
            )
        except BudgetExceededError as refusal:
            self._epoch_rejected += 1
            self.n_rejected += 1
            if len(self.rejections) < MAX_REJECTION_RECORDS:
                self.rejections.append(
                    FlushRejection(
                        epoch=batch.epoch,
                        sequence=batch.sequence,
                        n_reports=batch.n_reports,
                        reason=str(refusal),
                    )
                )
            return FlushRecord(
                sequence=batch.sequence,
                epoch=batch.epoch,
                trigger=batch.trigger,
                n_reports=batch.n_reports,
                n_fake=batch.n_fake,
                reports=batch.reports,
                charge_eps=None,
                charge_delta=None,
                charge_label=None,
                reject_reason=str(refusal),
            )
        self._epoch_reports_released += batch.n_reports
        self._epoch_fakes += batch.n_fake
        self.released_spans.append(span)
        return FlushRecord(
            sequence=batch.sequence,
            epoch=batch.epoch,
            trigger=batch.trigger,
            n_reports=batch.n_reports,
            n_fake=batch.n_fake,
            reports=batch.reports,
            charge_eps=charge.eps,
            charge_delta=charge.delta,
            charge_label=charge.label,
            reject_reason=None,
        )

    # -- recovery ----------------------------------------------------------

    def _restore(self, snapshot: RunSnapshot) -> None:
        """Rebuild mutable state from a snapshot; replay pending flushes."""
        check_replay_support(self.config, self.fo)
        self.accountant.restore(snapshot.charges)
        self.buffer.restore_state(
            snapshot.buffer_epoch, snapshot.next_sequence, snapshot.remainder
        )
        self._n_submits = snapshot.n_submits
        self.epoch_reports = list(snapshot.epoch_reports)
        offset = 0
        for flush in snapshot.flushes:
            span = (offset, offset + flush.n_reports)
            offset = span[1]
            if flush.status == "rejected":
                self.n_rejected += 1
                if len(self.rejections) < MAX_REJECTION_RECORDS:
                    self.rejections.append(
                        FlushRejection(
                            epoch=flush.epoch,
                            sequence=flush.sequence,
                            n_reports=flush.n_reports,
                            reason=flush.reject_reason or "rejected",
                        )
                    )
                continue
            self.released_spans.append(span)
            if flush.status == "released":
                # Never re-release: fold the committed counts as-is.
                self._fold_restored(flush, flush.counts)
            else:
                self._replay_release(flush)
        self._consumed = offset
        if len(self.epoch_reports) < self.buffer.epoch:
            self._synthesize_epoch(snapshot)
        # Partial counters of the epoch that was open at the crash; its
        # release latency is lost with the process (metrics only — the
        # determinism contract covers estimates and spend, not timings).
        current = [
            flush for flush in snapshot.flushes
            if flush.epoch == self.buffer.epoch
        ]
        released = [f for f in current if f.status != "rejected"]
        self._epoch_flushes = len(current)
        self._epoch_rejected = len(current) - len(released)
        self._epoch_reports_released = sum(f.n_reports for f in released)
        self._epoch_fakes = sum(f.n_fake for f in released)
        self._epoch_latency = 0.0

    def _fold_restored(self, flush: StoredFlush, counts: np.ndarray) -> None:
        """Where a recovered flush's counts land (shards override this)."""
        self.aggregator.fold_counts(counts, flush.n_reports, flush.n_fake)

    def _replay_release(self, flush: StoredFlush) -> None:
        """Deterministically redo a charged-but-unreleased flush.

        The release stream is keyed by the flush's persisted sequence
        number, so the fakes and permutation — hence the folded counts —
        are bit-identical to what the crashed process would have
        produced.  The charge is already on the restored ledger; nothing
        is charged again.
        """
        rng = flush_rng(self.release_entropy, flush.sequence)
        shuffled = self.backend.shuffle(
            flush.reports, flush.n_fake, self.fo, rng
        )
        decoded = self.fo.decode_reports(shuffled)
        counts = self.fo.support_counts(decoded)
        self._fold_restored(flush, counts)
        self.store.record_release(flush.sequence, counts)

    def _synthesize_epoch(self, snapshot: RunSnapshot) -> None:
        """Close the epoch whose flushes committed but whose report didn't.

        Only the crash epoch can be in flight: an epoch's report commits
        before any later submission, so a gap deeper than one record
        means the store was tampered with.
        """
        missing = self.buffer.epoch - len(self.epoch_reports)
        if missing != 1:
            raise StateStoreError(
                f"snapshot is missing {missing} epoch records; only the "
                f"epoch in flight at the crash can lack one"
            )
        epoch = self.buffer.epoch - 1
        rows = [f for f in snapshot.flushes if f.epoch == epoch]
        released = [f for f in rows if f.status != "rejected"]
        eps_spent, delta_spent = self.accountant.spent()
        report = EpochReport(
            epoch=epoch,
            n_flushes=len(rows),
            n_rejected=len(rows) - len(released),
            n_reports=sum(f.n_reports for f in released),
            n_fake=sum(f.n_fake for f in released),
            flush_latency_s=0.0,
            reports_per_sec=0.0,
            eps_spent=eps_spent,
            delta_spent=delta_spent,
        )
        self.epoch_reports.append(report)
        self.store.record_epoch(report, self.estimates(), self._checkpoint())

    @property
    def n_submits(self) -> int:
        """Non-empty submissions applied — a feeder's resume cursor."""
        return self._n_submits

    @property
    def epochs_completed(self) -> int:
        """Epochs closed so far (resume-synthesized ones included)."""
        return len(self.epoch_reports)


class TelemetryPipeline(PipelinePersistenceMixin):
    """Continuously running shuffle-DP collection for one deployment.

    All privacy-relevant state changes are journaled through a
    :class:`~repro.persistence.store.StateStore` under a write-ahead
    protocol: a flush's budget charge (or rejection) commits *before*
    its release, the folded counts commit after, and every closed epoch
    commits its report plus an estimate snapshot.  With the default
    :class:`~repro.persistence.store.MemoryStateStore` this costs a few
    reference assignments per submit; with a
    :class:`~repro.persistence.sqlite.SqliteStateStore` the run survives
    a crash and :meth:`resume` rebuilds it — never double-spending a
    charge, never re-releasing a flushed batch, and continuing
    bit-identical to an uninterrupted run at the same seed (pending
    releases are replayed from their persisted reports and sequence-keyed
    RNG streams).
    """

    def __init__(
        self,
        config: StreamConfig,
        rng: np.random.Generator,
        backend: Optional[ShuffleBackend] = None,
        clock: Callable[[], float] = time.perf_counter,
        store: Optional[StateStore] = None,
        chunk_bytes: Optional[int] = None,
        seed_cache_bytes: int = 0,
        _snapshot: Optional[RunSnapshot] = None,
    ):
        # Kernel tuning is execution layout, not deployment identity:
        # deliberately constructor kwargs rather than StreamConfig fields,
        # so persisted runs carry no tuning and resume may retune freely.
        if chunk_bytes is not None and int(chunk_bytes) < 1:
            raise ConfigError(
                "chunk_bytes", f"must be >= 1, got {chunk_bytes}"
            )
        if int(seed_cache_bytes) < 0:
            raise ConfigError(
                "seed_cache_bytes", f"must be >= 0, got {seed_cache_bytes}"
            )
        self.config = config
        self.rng = rng
        self.clock = clock
        if _snapshot is None:
            # Drawn first, before any other use of rng (see release_entropy).
            self.release_entropy = release_entropy(rng)
        else:
            # Resume: rng already carries the checkpointed state; the
            # entropy was drawn by the original run and persisted.
            self.release_entropy = tuple(
                int(word) for word in _snapshot.release_entropy
            )
        self.fo = oracle_from_plan(config.d, config.plan)
        self.fo.configure_kernel(
            chunk_bytes=chunk_bytes, seed_cache_bytes=seed_cache_bytes
        )
        self.store = store if store is not None else MemoryStateStore()
        if self.store.durable:
            check_replay_support(config, self.fo)
        self.buffer = ReportBuffer.from_plan(
            config.plan,
            config.flush_size,
            flush_empty=config.flush_empty,
            codec=self.fo.ordinal_codec,
        )
        self.accountant = PrivacyAccountant(
            config.eps_budget, config.delta_budget, method=config.composition
        )
        self.aggregator = IncrementalAggregator(self.fo)
        self.backend = backend if backend is not None else make_backend(
            config.backend, r=config.r
        )
        self.backend.prepare(self.fo, rng)
        self.epoch_reports: List[EpochReport] = []
        self.rejections: List[FlushRejection] = []
        self.n_rejected = 0
        self.released_batches: List[np.ndarray] = []
        #: [start, stop) index ranges into the submitted-report order that
        #: were actually released (rejected flushes leave gaps)
        self.released_spans: List[tuple] = []
        self._consumed = 0
        self._n_submits = 0
        self._epoch_flushes = 0
        self._epoch_rejected = 0
        self._epoch_reports_released = 0
        self._epoch_fakes = 0
        self._epoch_latency = 0.0
        if _snapshot is None:
            self.store.begin_run(config, self.release_entropy, self._checkpoint())
        else:
            self._restore(_snapshot)

    @classmethod
    def resume(
        cls,
        store: StateStore,
        backend: Optional[ShuffleBackend] = None,
        clock: Callable[[], float] = time.perf_counter,
        chunk_bytes: Optional[int] = None,
        seed_cache_bytes: int = 0,
    ) -> "TelemetryPipeline":
        """Rebuild the run persisted in ``store`` and continue it.

        Recovery invariants (pinned by ``tests/persistence/``):

        * **no double-spend** — the ledger is exactly the persisted
          charges; replaying a pending flush never charges again;
        * **no re-release** — a flush whose counts were committed is
          folded from those counts, its release randomness is never
          redrawn;
        * **bit-identical continuation** — pending (charged, unreleased)
        flushes are replayed from their persisted reports with the same
        sequence-keyed RNG streams, and the restored ingest generator /
        buffer remainder / flush counter make every subsequent draw
        match an uninterrupted run at the same seed.
        """
        snapshot = store.load_run()
        rng = generator_from_state(snapshot.rng_state)
        return cls(
            snapshot.config,
            rng,
            backend=backend,
            clock=clock,
            store=store,
            chunk_bytes=chunk_bytes,
            seed_cache_bytes=seed_cache_bytes,
            _snapshot=snapshot,
        )

    # -- ingestion ---------------------------------------------------------

    def submit(self, values) -> int:
        """Privatize and buffer one client batch; process any size flushes.

        Returns the number of flushes triggered (admitted or rejected).
        """
        values = np.asarray(values)
        if len(values) == 0:
            return 0
        encoded = self.fo.encode_reports(self.fo.privatize(values, self.rng))
        # owned=True: `encoded` is freshly allocated and never touched again.
        batches = self.buffer.submit(encoded, owned=True)
        self._n_submits += 1
        self._persist_and_release(batches)
        return len(batches)

    def end_epoch(self) -> EpochReport:
        """Drain the buffer, close the epoch, and report its metrics."""
        batches = self.buffer.end_epoch()
        if batches:
            self._persist_and_release(batches)
        eps_spent, delta_spent = self.accountant.spent()
        report = EpochReport(
            epoch=self.buffer.epoch - 1,
            n_flushes=self._epoch_flushes,
            n_rejected=self._epoch_rejected,
            n_reports=self._epoch_reports_released,
            n_fake=self._epoch_fakes,
            flush_latency_s=self._epoch_latency,
            reports_per_sec=(
                self._epoch_reports_released / self._epoch_latency
                if self._epoch_latency > 0.0
                else 0.0
            ),
            eps_spent=eps_spent,
            delta_spent=delta_spent,
        )
        self.epoch_reports.append(report)
        self.store.record_epoch(report, self.estimates(), self._checkpoint())
        self._epoch_flushes = 0
        self._epoch_rejected = 0
        self._epoch_reports_released = 0
        self._epoch_fakes = 0
        self._epoch_latency = 0.0
        return report

    def run(self, epoch_batches: Iterable) -> StreamResult:
        """Feed one value batch per epoch and return the final result."""
        for values in epoch_batches:
            self.submit(values)
            self.end_epoch()
        return self.result()

    # -- flush processing --------------------------------------------------

    def _release(self, batch: FlushBatch) -> None:
        """Release one admitted batch and commit its folded counts."""
        started = self.clock()
        shuffled = self.backend.shuffle(
            batch.reports, batch.n_fake, self.fo,
            flush_rng(self.release_entropy, batch.sequence),
        )
        decoded = self.fo.decode_reports(shuffled)
        if len(decoded) != batch.n_reports + batch.n_fake:
            raise ValueError(
                f"batch has {len(decoded)} reports but claims "
                f"{batch.n_reports} genuine + {batch.n_fake} fake"
            )
        counts = self.fo.support_counts(decoded)
        self.aggregator.fold_counts(counts, batch.n_reports, batch.n_fake)
        self._epoch_latency += self.clock() - started
        if self.config.keep_reports:
            self.released_batches.append(decoded)
        self.store.record_release(batch.sequence, counts)

    # -- results -----------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        """True once no positive charge can ever be admitted again.

        A long-running feeder should consult this and stop submitting:
        the pipeline keeps pricing and refusing flushes either way (so
        refusals stay visible in the epoch metrics), but past this point
        every privatize pass is wasted work.
        """
        return self.accountant.remaining_eps() <= 0.0

    def estimates(self) -> np.ndarray:
        """Current calibrated frequency estimates (Eq. (6))."""
        return self.aggregator.estimates()

    def released_values(self, submitted_values: np.ndarray) -> np.ndarray:
        """The subset of ``submitted_values`` that was actually released.

        ``submitted_values`` must be every value fed to :meth:`submit`, in
        order; rejected flushes leave gaps, which this selects around via
        ``released_spans``.  Demo/metric helper — a real deployment never
        holds raw values server-side.
        """
        submitted_values = np.asarray(submitted_values)
        if len(submitted_values) < self._consumed:
            raise ValueError(
                f"expected at least {self._consumed} submitted values, "
                f"got {len(submitted_values)}"
            )
        if not self.released_spans:
            # Owned empty result, not a zero-length view that would pin
            # the caller's buffer alive (RPL010).
            return submitted_values[:0].copy()
        return np.concatenate(
            [submitted_values[start:stop] for start, stop in self.released_spans]
        )

    def result(self) -> StreamResult:
        eps_spent, delta_spent = self.accountant.spent()
        return StreamResult(
            estimates=self.estimates(),
            epochs=list(self.epoch_reports),
            n_genuine=self.aggregator.n_genuine,
            n_fake=self.aggregator.n_fake,
            eps_spent=eps_spent,
            delta_spent=delta_spent,
            n_rejected=self.n_rejected,
            rejections=list(self.rejections),
        )
