"""The streaming telemetry pipeline: batcher -> buffer -> backend -> analyzer.

:class:`TelemetryPipeline` wires the service together around a Section
VI-D plan (:func:`repro.core.params.plan_peos`):

1. clients arrive in vectorized batches; :meth:`TelemetryPipeline.submit`
   privatizes and ordinal-encodes them in one numpy pass and hands the
   encoded reports to the :class:`~repro.service.buffer.ReportBuffer`;
2. every size- or epoch-triggered flush is first priced at the plan's
   per-release guarantee ``(eps_server, delta)`` against the
   :class:`~repro.service.accountant.PrivacyAccountant` — a refused flush
   is *dropped*, never released;
3. admitted flushes go through the configured
   :class:`~repro.service.backends.ShuffleBackend` (fake injection +
   shuffle) and the released multiset is folded into the
   :class:`~repro.service.aggregator.IncrementalAggregator`;
4. :meth:`TelemetryPipeline.end_epoch` drains the buffer and emits an
   :class:`EpochReport` with the epoch's operational metrics
   (reports/sec, flush latency, cumulative budget spend).

Estimates are available at any time via :meth:`TelemetryPipeline.estimates`
and are bit-identical to a one-shot run over the same released reports.

Randomness discipline (the sharding determinism contract): the pipeline
consumes its generator for *ingestion only* (privatizing submissions, in
arrival order).  Release-side randomness — fake-report draws and the
shuffle permutation — comes from an independent per-flush stream derived
via :func:`release_entropy` / :func:`flush_rng` and keyed by the flush's
global sequence number.  Because a flush's noise depends only on the
deployment seed and its own sequence number — never on which thread,
process, or shard releases it — :class:`~repro.service.sharded.
ShardedPipeline` reproduces this pipeline's estimates bit for bit at any
shard or worker count.  (This changed the sampled noise at a fixed seed
relative to the pre-sharding pipeline, which interleaved ingest and
release draws on one stream; same documented trade as the sweep engine's
per-trial seeding, see DESIGN.md.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

import numpy as np

from ..core.errors import (
    ConfigError,
    validate_backend_name,
    validate_composition,
    validate_domain_size,
    validate_shuffler_count,
)
from ..core.params import PeosPlan, plan_peos
from ..core.peos_analysis import (
    peos_epsilon_collusion_grr,
    peos_epsilon_collusion_solh,
    peos_epsilon_server_grr,
    peos_epsilon_server_solh,
)
from ..core.registry import UnknownMechanismError, get_spec
from ..frequency_oracles.base import FrequencyOracle
from .accountant import BudgetExceededError, PrivacyAccountant
from .aggregator import IncrementalAggregator
from .backends import BACKEND_NAMES, ShuffleBackend, make_backend
from .buffer import FlushBatch, ReportBuffer

#: detailed FlushRejection records kept per pipeline; further refusals only
#: increment the counter so an exhausted long-running service stays O(1)
MAX_REJECTION_RECORDS = 64


@dataclass(frozen=True)
class StreamConfig:
    """Static configuration of one streaming deployment."""

    #: value-domain size
    d: int
    #: the Section VI-D plan (mechanism, eps_l, d', n_r, guarantees)
    plan: PeosPlan
    #: genuine reports per size-triggered flush
    flush_size: int
    #: lifetime privacy budget across all flushes
    eps_budget: float
    delta_budget: float
    #: shuffle backend registry name: "plain", "sequential", or "peos"
    backend: str = "plain"
    #: shuffler count for the protocol backends
    r: int = 3
    #: accountant composition method: "basic" or "advanced"
    composition: str = "basic"
    #: emit an all-fake batch for epochs with no pending reports (hides
    #: traffic volume; each such release is priced at its fakes-only eps)
    flush_empty: bool = False
    #: retain each flush's decoded released reports (tests / audits)
    keep_reports: bool = False

    def __post_init__(self):
        """Validate the whole configuration up front.

        Every inconsistency raises :class:`~repro.core.errors.ConfigError`
        naming the offending field — instead of a numpy shape/broadcast
        error surfacing later from deep inside the buffer or aggregator.
        """
        validate_domain_size(self.d)
        if self.flush_size < 1:
            raise ConfigError(
                "flush_size", f"must be >= 1, got {self.flush_size}"
            )
        if not self.eps_budget > 0.0:
            raise ConfigError(
                "eps_budget", f"must be positive, got {self.eps_budget}"
            )
        if not 0.0 < self.delta_budget < 1.0:
            raise ConfigError(
                "delta_budget", f"must be in (0, 1), got {self.delta_budget}"
            )
        validate_backend_name(self.backend, BACKEND_NAMES)
        validate_shuffler_count(self.r)
        validate_composition(self.composition)
        plan_d = getattr(self.plan, "d", None)
        if plan_d is not None and plan_d != self.d:
            raise ConfigError(
                "d",
                f"plan was computed for d={plan_d} but the deployment "
                f"declares d={self.d}; re-plan for the actual domain",
            )
        if self.plan.mechanism == "grr" and self.plan.d_prime != self.d:
            raise ConfigError(
                "plan",
                f"a GRR plan reports over the value domain itself, but "
                f"plan.d_prime={self.plan.d_prime} != d={self.d}",
            )
        if self.plan.n_r < 0:
            raise ConfigError(
                "plan", f"fake-report count must be >= 0, got {self.plan.n_r}"
            )

    @classmethod
    def from_targets(
        cls,
        d: int,
        flush_size: int,
        eps_targets: tuple = (1.0, 3.0, 6.0),
        delta: float = 1e-9,
        admitted_flushes: int = 6,
        mechanism: Optional[str] = None,
        **kwargs,
    ) -> "StreamConfig":
        """Plan per-flush parameters and size the budget for a flush count.

        The plan is computed for a population of ``flush_size`` so each
        release individually meets the three adversary targets; the
        lifetime budget then admits exactly ``admitted_flushes`` *full*
        releases under basic composition.  If the workload produces
        epoch-end remainder flushes (epoch size not divisible by
        ``flush_size``), use :meth:`for_epochs`, which prices the actual
        schedule.  ``mechanism`` ("grr"/"solh") restricts the planner's
        choice; None keeps the paper's free variance-optimal pick.
        """
        if admitted_flushes < 1:
            raise ConfigError(
                "admitted_flushes",
                f"must admit at least 1 flush, got {admitted_flushes}",
            )
        plan = plan_peos(
            *eps_targets, n=flush_size, d=d, delta=delta, mechanism=mechanism
        )
        return cls(
            d=d,
            plan=plan,
            flush_size=flush_size,
            eps_budget=plan.eps_server * admitted_flushes,
            delta_budget=_delta_budget(
                plan.delta * admitted_flushes, kwargs.get("composition", "basic")
            ),
            **kwargs,
        )

    @classmethod
    def for_epochs(
        cls,
        d: int,
        flush_size: int,
        epoch_size: int,
        admitted_epochs: int,
        eps_targets: tuple = (1.0, 3.0, 6.0),
        delta: float = 1e-9,
        mechanism: Optional[str] = None,
        **kwargs,
    ) -> "StreamConfig":
        """Size the budget for ``admitted_epochs`` epochs of ``epoch_size``.

        Unlike :meth:`from_targets`, this prices the actual per-epoch flush
        schedule — full flushes plus the (more expensive) epoch-end
        remainder when ``epoch_size`` is not a multiple of ``flush_size``.
        ``mechanism`` ("grr"/"solh") restricts the planner's choice.
        """
        if admitted_epochs < 1:
            raise ConfigError(
                "admitted_epochs",
                f"must admit at least 1 epoch, got {admitted_epochs}",
            )
        if epoch_size < 1:
            raise ConfigError(
                "epoch_size", f"must be >= 1, got {epoch_size}"
            )
        plan = plan_peos(
            *eps_targets, n=flush_size, d=d, delta=delta, mechanism=mechanism
        )
        flushes = admitted_epochs * flushes_per_epoch(epoch_size, flush_size)
        return cls(
            d=d,
            plan=plan,
            flush_size=flush_size,
            eps_budget=admitted_epochs
            * epoch_release_epsilon(d, plan, epoch_size, flush_size),
            delta_budget=_delta_budget(
                plan.delta * flushes, kwargs.get("composition", "basic")
            ),
            **kwargs,
        )


@dataclass(frozen=True)
class FlushRejection:
    """Record of a flush the accountant refused."""

    epoch: int
    sequence: int
    n_reports: int
    reason: str


@dataclass(frozen=True)
class EpochReport:
    """Operational metrics of one collection epoch."""

    epoch: int
    n_flushes: int
    n_rejected: int
    n_reports: int
    n_fake: int
    flush_latency_s: float
    reports_per_sec: float
    #: cumulative composed spend after this epoch
    eps_spent: float
    delta_spent: float


@dataclass
class StreamResult:
    """Final state of a pipeline run."""

    estimates: np.ndarray
    epochs: List[EpochReport]
    n_genuine: int
    n_fake: int
    eps_spent: float
    delta_spent: float
    #: total refused flushes (detail records are capped, the count is not)
    n_rejected: int = 0
    #: first ``MAX_REJECTION_RECORDS`` refusals, with reasons
    rejections: List[FlushRejection] = field(default_factory=list)


def flush_release_epsilon(
    d: int, plan: PeosPlan, n_reports: int, n_fake: int
) -> float:
    """Actual Corollary 8/9 ``eps_c`` of releasing one batch.

    The plan's ``eps_server`` holds for a full flush of ``flush_size``
    genuine reports; a shorter batch (an epoch-end remainder) carries less
    genuine blanket noise, so its guarantee is *weaker* and must be priced
    at its own ``n``.  For ``n <= 1`` the genuine blanket vanishes and the
    bound degenerates to the fakes-only (collusion-style) form, which also
    prices an all-fake ``flush_empty`` batch — and returns ``inf`` when
    there are no fakes either, so the accountant refuses such a release
    outright.
    """
    if n_reports < 0 or n_fake < 0:
        raise ValueError(
            f"report counts must be >= 0, got n={n_reports}, n_r={n_fake}"
        )
    if plan.mechanism == "grr":
        if n_reports >= 2:
            return peos_epsilon_server_grr(
                plan.eps_l, d, n_reports, n_fake, plan.delta
            )
        return peos_epsilon_collusion_grr(d, n_fake, plan.delta)
    if n_reports >= 2:
        return peos_epsilon_server_solh(
            plan.eps_l, plan.d_prime, n_reports, n_fake, plan.delta
        )
    return peos_epsilon_collusion_solh(plan.d_prime, n_fake, plan.delta)


def flushes_per_epoch(epoch_size: int, flush_size: int) -> int:
    """Releases one epoch produces: full flushes plus any remainder."""
    if epoch_size < 1 or flush_size < 1:
        raise ValueError(
            f"sizes must be >= 1, got epoch={epoch_size}, flush={flush_size}"
        )
    return -(-epoch_size // flush_size)


def _delta_budget(charged_delta: float, composition: str) -> float:
    """Size the lifetime delta budget for the charged per-flush deltas.

    Under basic composition the ledger should bind exactly at the planned
    flush count.  Under advanced composition the accountant reserves half
    the budget as the DRV slack and the point of the method is to admit
    *more* flushes on the eps axis, so leave 4x headroom (2x for the
    slack, 2x for extra admissions) — the eps budget then governs.
    """
    if composition == "advanced":
        return charged_delta * 4.0
    return charged_delta


def epoch_release_epsilon(
    d: int, plan: PeosPlan, epoch_size: int, flush_size: int
) -> float:
    """Total ``eps_c`` one epoch's releases cost: full flushes plus the
    epoch-end remainder, each priced at its own size."""
    full, remainder = divmod(epoch_size, flush_size)
    total = full * flush_release_epsilon(d, plan, flush_size, plan.n_r)
    if remainder:
        total += flush_release_epsilon(d, plan, remainder, plan.n_r)
    return total


def release_entropy(rng: np.random.Generator) -> tuple:
    """Derive the deployment's release-stream root entropy from ``rng``.

    Called exactly once, immediately after a pipeline binds its ingest
    generator and before any other draw — both :class:`TelemetryPipeline`
    and :class:`~repro.service.sharded.ShardedPipeline` follow this order,
    which is what makes their streams line up at a fixed seed.
    """
    return tuple(int(word) for word in rng.integers(0, 1 << 32, size=8))


def flush_rng(entropy: tuple, sequence: int) -> np.random.Generator:
    """The release stream of the flush with global sequence ``sequence``.

    Children are keyed by ``spawn_key`` (equivalent to
    ``SeedSequence(entropy).spawn(...)`` but order-independent), so any
    execution layout — the serial pipeline, a sharded fold, a process
    pool, even out-of-order collection — draws identical fake-report and
    shuffle randomness for the same flush.
    """
    return np.random.default_rng(
        np.random.SeedSequence(entropy, spawn_key=(int(sequence),))
    )


def oracle_from_plan(d: int, plan: PeosPlan) -> FrequencyOracle:
    """Instantiate the planned mechanism through the registry.

    The plan's lowercase mechanism id ("grr", "solh") resolves to a
    :class:`~repro.core.registry.MechanismSpec` whose ``plan_factory``
    builds the streaming oracle — SOLH with the 32-bit-seed hash family so
    the ordinal report group fits in 64-bit arithmetic (the
    protocol-backend requirement noted in :mod:`repro.protocol.peos`).
    """
    try:
        spec = get_spec(plan.mechanism)
    except UnknownMechanismError as unknown:
        raise ValueError(f"unknown planned mechanism: {plan.mechanism!r}") from unknown
    if not spec.streamable:
        raise ValueError(f"mechanism {spec.name!r} is not streamable")
    return spec.build_from_plan(d, plan)


class TelemetryPipeline:
    """Continuously running shuffle-DP collection for one deployment."""

    def __init__(
        self,
        config: StreamConfig,
        rng: np.random.Generator,
        backend: Optional[ShuffleBackend] = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.config = config
        self.rng = rng
        self.clock = clock
        # Drawn first, before any other use of rng (see release_entropy).
        self.release_entropy = release_entropy(rng)
        self.fo = oracle_from_plan(config.d, config.plan)
        self.buffer = ReportBuffer.from_plan(
            config.plan,
            config.flush_size,
            flush_empty=config.flush_empty,
            codec=self.fo.ordinal_codec,
        )
        self.accountant = PrivacyAccountant(
            config.eps_budget, config.delta_budget, method=config.composition
        )
        self.aggregator = IncrementalAggregator(self.fo)
        self.backend = backend if backend is not None else make_backend(
            config.backend, r=config.r
        )
        self.backend.prepare(self.fo, rng)
        self.epoch_reports: List[EpochReport] = []
        self.rejections: List[FlushRejection] = []
        self.n_rejected = 0
        self.released_batches: List[np.ndarray] = []
        #: [start, stop) index ranges into the submitted-report order that
        #: were actually released (rejected flushes leave gaps)
        self.released_spans: List[tuple] = []
        self._consumed = 0
        self._epoch_flushes = 0
        self._epoch_rejected = 0
        self._epoch_reports_released = 0
        self._epoch_fakes = 0
        self._epoch_latency = 0.0

    # -- ingestion ---------------------------------------------------------

    def submit(self, values) -> int:
        """Privatize and buffer one client batch; process any size flushes.

        Returns the number of flushes triggered (admitted or rejected).
        """
        values = np.asarray(values)
        if len(values) == 0:
            return 0
        encoded = self.fo.encode_reports(self.fo.privatize(values, self.rng))
        # owned=True: `encoded` is freshly allocated and never touched again.
        batches = self.buffer.submit(encoded, owned=True)
        for batch in batches:
            self._process_flush(batch)
        return len(batches)

    def end_epoch(self) -> EpochReport:
        """Drain the buffer, close the epoch, and report its metrics."""
        for batch in self.buffer.end_epoch():
            self._process_flush(batch)
        eps_spent, delta_spent = self.accountant.spent()
        report = EpochReport(
            epoch=self.buffer.epoch - 1,
            n_flushes=self._epoch_flushes,
            n_rejected=self._epoch_rejected,
            n_reports=self._epoch_reports_released,
            n_fake=self._epoch_fakes,
            flush_latency_s=self._epoch_latency,
            reports_per_sec=(
                self._epoch_reports_released / self._epoch_latency
                if self._epoch_latency > 0.0
                else 0.0
            ),
            eps_spent=eps_spent,
            delta_spent=delta_spent,
        )
        self.epoch_reports.append(report)
        self._epoch_flushes = 0
        self._epoch_rejected = 0
        self._epoch_reports_released = 0
        self._epoch_fakes = 0
        self._epoch_latency = 0.0
        return report

    def run(self, epoch_batches: Iterable) -> StreamResult:
        """Feed one value batch per epoch and return the final result."""
        for values in epoch_batches:
            self.submit(values)
            self.end_epoch()
        return self.result()

    # -- flush processing --------------------------------------------------

    def _process_flush(self, batch: FlushBatch) -> None:
        plan = self.config.plan
        self._epoch_flushes += 1
        span = (self._consumed, self._consumed + batch.n_reports)
        self._consumed = span[1]
        # Price the batch at its own size: an epoch-end remainder carries
        # less genuine blanket than a full flush, so it costs more.
        charge = flush_release_epsilon(
            self.config.d, plan, batch.n_reports, batch.n_fake
        )
        try:
            self.accountant.charge(
                charge,
                plan.delta,
                label=f"epoch{batch.epoch}/flush{batch.sequence}",
            )
        except BudgetExceededError as refusal:
            self._epoch_rejected += 1
            self.n_rejected += 1
            if len(self.rejections) < MAX_REJECTION_RECORDS:
                self.rejections.append(
                    FlushRejection(
                        epoch=batch.epoch,
                        sequence=batch.sequence,
                        n_reports=batch.n_reports,
                        reason=str(refusal),
                    )
                )
            return
        started = self.clock()
        shuffled = self.backend.shuffle(
            batch.reports, batch.n_fake, self.fo,
            flush_rng(self.release_entropy, batch.sequence),
        )
        decoded = self.fo.decode_reports(shuffled)
        self.aggregator.fold_reports(decoded, batch.n_reports, batch.n_fake)
        self._epoch_latency += self.clock() - started
        self._epoch_reports_released += batch.n_reports
        self._epoch_fakes += batch.n_fake
        self.released_spans.append(span)
        if self.config.keep_reports:
            self.released_batches.append(decoded)

    # -- results -----------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        """True once no positive charge can ever be admitted again.

        A long-running feeder should consult this and stop submitting:
        the pipeline keeps pricing and refusing flushes either way (so
        refusals stay visible in the epoch metrics), but past this point
        every privatize pass is wasted work.
        """
        return self.accountant.remaining_eps() <= 0.0

    def estimates(self) -> np.ndarray:
        """Current calibrated frequency estimates (Eq. (6))."""
        return self.aggregator.estimates()

    def released_values(self, submitted_values: np.ndarray) -> np.ndarray:
        """The subset of ``submitted_values`` that was actually released.

        ``submitted_values`` must be every value fed to :meth:`submit`, in
        order; rejected flushes leave gaps, which this selects around via
        ``released_spans``.  Demo/metric helper — a real deployment never
        holds raw values server-side.
        """
        submitted_values = np.asarray(submitted_values)
        if len(submitted_values) < self._consumed:
            raise ValueError(
                f"expected at least {self._consumed} submitted values, "
                f"got {len(submitted_values)}"
            )
        if not self.released_spans:
            return submitted_values[:0]
        return np.concatenate(
            [submitted_values[start:stop] for start, stop in self.released_spans]
        )

    def result(self) -> StreamResult:
        eps_spent, delta_spent = self.accountant.spent()
        return StreamResult(
            estimates=self.estimates(),
            epochs=list(self.epoch_reports),
            n_genuine=self.aggregator.n_genuine,
            n_fake=self.aggregator.n_fake,
            eps_spent=eps_spent,
            delta_spent=delta_spent,
            n_rejected=self.n_rejected,
            rejections=list(self.rejections),
        )
