"""Pluggable shuffle backends for the streaming pipeline.

Every backend exposes the same contract: given one flush's ordinal-encoded
genuine reports and a fake-report order, return the released multiset
(genuine + fake, shuffled) as encoded integers.  Three implementations
trade security for throughput:

* ``"plain"`` — an in-process honest-shuffler model: vectorized uniform
  fake injection and one permutation, no crypto.  This is the throughput
  reference and what benchmarks and large demos use.
* ``"sequential"`` — the SS protocol of Section VI-A1
  (:func:`repro.shuffle.sequential.sequential_shuffle`): an onion-encrypted
  shuffler chain.  Real crypto, but a malicious shuffler can skew its fake
  reports undetected.
* ``"peos"`` — full PEOS (:func:`repro.protocol.peos.peos_shuffle_encoded`):
  secret-shared reports, EOS, AHE — fake reports are uniform as long as one
  shuffler is honest.  Milliseconds per report in pure Python; use small
  flushes.

Backends are constructed unprepared and lazily generate key material on
:meth:`ShuffleBackend.prepare`, so a pipeline can be configured before any
expensive keygen happens.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from ..crypto.math_utils import RandomLike, as_random
from ..frequency_oracles.base import FrequencyOracle


class ShuffleBackend(ABC):
    """Releases one flush batch: inject fakes, shuffle, return the multiset."""

    #: registry name ("plain", "sequential", "peos")
    name: str = "abstract"

    def prepare(self, fo: FrequencyOracle, rng: np.random.Generator) -> None:
        """One-time setup (key generation); idempotent."""

    @abstractmethod
    def shuffle(
        self,
        encoded: np.ndarray,
        n_fake: int,
        fo: FrequencyOracle,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return the shuffled encoded multiset of ``len(encoded) + n_fake``."""


class PlainShuffleBackend(ShuffleBackend):
    """Honest-shuffler model without crypto: the throughput path."""

    name = "plain"

    def shuffle(
        self,
        encoded: np.ndarray,
        n_fake: int,
        fo: FrequencyOracle,
        rng: np.random.Generator,
    ) -> np.ndarray:
        codec = fo.ordinal_codec
        fakes = codec.uniform(n_fake, rng)
        merged = codec.concat(encoded, fakes)
        return merged[rng.permutation(len(merged))]


class SequentialShuffleBackend(ShuffleBackend):
    """SS chain: onion encryption through ``r`` shufflers."""

    name = "sequential"

    def __init__(self, r: int = 3, crypto_rng: RandomLike = None):
        if r < 1:
            raise ValueError(f"need at least 1 shuffler, got r={r}")
        self.r = int(r)
        # Coerce once so repeated flushes keep drawing from one stream
        # (an int seed must not be re-seeded per flush).
        self.crypto_rng = as_random(crypto_rng)
        self._keys = None

    def prepare(self, fo: FrequencyOracle, rng: np.random.Generator) -> None:
        from ..shuffle.sequential import generate_keys

        if self._keys is None:
            self._keys = generate_keys(self.r, self.crypto_rng)

    def shuffle(
        self,
        encoded: np.ndarray,
        n_fake: int,
        fo: FrequencyOracle,
        rng: np.random.Generator,
    ) -> np.ndarray:
        from ..shuffle.sequential import sequential_shuffle

        self.prepare(fo, rng)
        result = sequential_shuffle(
            [int(x) for x in encoded],
            fo.report_space,
            self._keys,
            n_fake,
            rng,
            crypto_rng=self.crypto_rng,
        )
        return result.reports


class PeosShuffleBackend(ShuffleBackend):
    """Full PEOS: secret shares, EOS, AHE reconstruction."""

    name = "peos"

    def __init__(
        self,
        r: int = 3,
        key_bits: int = 512,
        crypto_rng: RandomLike = None,
        rerandomize: bool = True,
    ):
        if r < 2:
            raise ValueError(f"PEOS needs at least 2 shufflers, got r={r}")
        self.r = int(r)
        self.key_bits = int(key_bits)
        # Coerce once: re-seeding an int per flush would reuse the same
        # encryption randomness for every release.
        self.crypto_rng = as_random(crypto_rng)
        self.rerandomize = bool(rerandomize)
        self._public = None
        self._decrypt = None

    def prepare(self, fo: FrequencyOracle, rng: np.random.Generator) -> None:
        from ..crypto import paillier

        if self._public is None:
            public, private = paillier.generate_keypair(
                key_bits=self.key_bits, rng=self.crypto_rng
            )
            self._public = public
            self._decrypt = private.decrypt

    def shuffle(
        self,
        encoded: np.ndarray,
        n_fake: int,
        fo: FrequencyOracle,
        rng: np.random.Generator,
    ) -> np.ndarray:
        from ..protocol.peos import peos_shuffle_encoded

        self.prepare(fo, rng)
        shuffled, __ = peos_shuffle_encoded(
            encoded,
            fo.report_space,
            self.r,
            n_fake,
            self._public,
            self._decrypt,
            rng,
            crypto_rng=self.crypto_rng,
            rerandomize=self.rerandomize,
        )
        return shuffled


#: backend constructors by registry name, in security order (weakest
#: first); BACKEND_NAMES derives from this dict so name validation
#: (facade + StreamConfig) can never drift from what make_backend builds
_BACKENDS = {
    "plain": lambda r, crypto_rng, key_bits: PlainShuffleBackend(),
    "sequential": lambda r, crypto_rng, key_bits: SequentialShuffleBackend(
        r=r, crypto_rng=crypto_rng
    ),
    "peos": lambda r, crypto_rng, key_bits: PeosShuffleBackend(
        r=r, key_bits=key_bits, crypto_rng=crypto_rng
    ),
}

#: the registered backend names
BACKEND_NAMES = tuple(_BACKENDS)


def make_backend(
    name: str,
    r: int = 3,
    crypto_rng: RandomLike = None,
    key_bits: int = 512,
) -> ShuffleBackend:
    """Build a backend by registry name (one of :data:`BACKEND_NAMES`)."""
    factory = _BACKENDS.get(name)
    if factory is None:
        raise ValueError(
            f"unknown shuffle backend: {name!r} "
            f"(registered: {', '.join(BACKEND_NAMES)})"
        )
    return factory(r, crypto_rng, key_bits)
