"""Shuffling substrates: single shuffler, sequential (SS) chain, oblivious
shuffle, and the encrypted oblivious shuffle (EOS) inside PEOS."""

from .eos import EOSState, encrypted_oblivious_shuffle, server_reconstruct
from .oblivious import (
    ShuffleRound,
    ShuffleTranscript,
    hider_count,
    oblivious_shuffle,
    shuffle_rounds,
)
from .sequential import SSKeys, SSResult, generate_keys, sequential_shuffle
from .single import SingleShuffleResult, single_shuffle

__all__ = [
    "EOSState",
    "SSKeys",
    "SSResult",
    "ShuffleRound",
    "ShuffleTranscript",
    "SingleShuffleResult",
    "encrypted_oblivious_shuffle",
    "generate_keys",
    "hider_count",
    "oblivious_shuffle",
    "sequential_shuffle",
    "server_reconstruct",
    "shuffle_rounds",
    "single_shuffle",
]
