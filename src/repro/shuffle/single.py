"""The plain single-shuffler pipeline of the SH baseline (Section III-B).

One auxiliary server receives users' (hybrid-encrypted) LDP reports,
shuffles them, and forwards to the server.  Privacy rests entirely on this
shuffler neither colluding with the server nor deviating — the trust
assumption the paper sets out to weaken.

Utility-wise shuffling is the identity on aggregate statistics, so the
frequency-estimation benchmarks use the FO layer directly; this module
exists for the protocol-level comparisons and the attack analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..crypto import elgamal_ec
from ..crypto.math_utils import RandomLike, as_random
from ..costs import CostTracker


@dataclass
class SingleShuffleResult:
    """Outcome of a single-shuffler run."""

    reports: np.ndarray
    permutation: np.ndarray  # known ONLY to the shuffler


def single_shuffle(
    reports: Sequence[int],
    report_space: int,
    server_keypair: elgamal_ec.ECKeyPair,
    rng: np.random.Generator,
    crypto_rng: RandomLike = None,
    tracker: Optional[CostTracker] = None,
) -> SingleShuffleResult:
    """Encrypt-to-server, shuffle at one auxiliary party, decrypt at server.

    The shuffler sees ciphertexts only (content hidden); the server sees
    shuffled reports only (linkage hidden) — the SH trust model.
    """
    width = max(1, (int(report_space) - 1).bit_length() + 7 >> 3)
    crypto_rand = as_random(crypto_rng)

    ciphertexts = []
    for report in reports:
        payload = int(report).to_bytes(width, "big")
        if tracker is None:
            ct = elgamal_ec.encrypt(payload, server_keypair.public, crypto_rand)
        else:
            with tracker.compute("user"):
                ct = elgamal_ec.encrypt(payload, server_keypair.public, crypto_rand)
            tracker.send("user", "shuffler:0", ct.size_bytes)
        ciphertexts.append(ct)

    permutation = rng.permutation(len(ciphertexts))
    shuffled = [ciphertexts[i] for i in permutation]
    if tracker is not None:
        for ct in shuffled:
            tracker.send("shuffler:0", "server", ct.size_bytes)

    def _decrypt_all() -> np.ndarray:
        decoded = [
            int.from_bytes(elgamal_ec.decrypt(ct, server_keypair.private), "big")
            for ct in shuffled
        ]
        return np.array(
            decoded, dtype=np.int64 if report_space < (1 << 62) else object
        )

    if tracker is None:
        decoded = _decrypt_all()
    else:
        with tracker.compute("server"):
            decoded = _decrypt_all()
    return SingleShuffleResult(reports=decoded, permutation=permutation)
