"""Sequential shuffle (SS) — the first-attempt protocol of Section VI-A1.

A chain of ``r`` shufflers, onion encryption, and fake-report injection:

1. every user onion-encrypts their encoded LDP report under the keys of
   shuffler 1, ..., shuffler r, server (outermost first);
2. shuffler ``j`` peels one layer from every message, draws ``n_r / r``
   fake reports (onion-encrypted under the *remaining* keys), shuffles, and
   forwards;
3. the server peels the last layer and decodes the reports.

Weaknesses the paper identifies (and which :mod:`repro.protocol.attacks`
demonstrates): a shuffler can replace users' reports (mitigated by the
server spot-checking dummy accounts, implemented here), and a shuffler's
fake reports can be drawn from any skewed distribution with no way to prove
uniformity — the motivation for PEOS.

Crypto per the paper's prototype: hybrid EC-ElGamal(secp256r1) + AES-128.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..crypto import elgamal_ec, onion
from ..crypto.math_utils import RandomLike, as_random
from ..crypto.onion import OnionCiphertext
from ..costs import CostTracker


@dataclass
class SSKeys:
    """Key material for one SS deployment: r shuffler keypairs + server's."""

    shufflers: list[elgamal_ec.ECKeyPair]
    server: elgamal_ec.ECKeyPair

    @property
    def public_chain(self) -> list[elgamal_ec.Point]:
        """Layer keys in wrap order: shuffler 1 .. r, then the server."""
        return [kp.public for kp in self.shufflers] + [self.server.public]


def generate_keys(r: int, rng: RandomLike = None) -> SSKeys:
    """Generate fresh EC keypairs for ``r`` shufflers and the server."""
    if r < 1:
        raise ValueError(f"need at least 1 shuffler, got r={r}")
    rand = as_random(rng)
    return SSKeys(
        shufflers=[elgamal_ec.generate_keypair(rand) for _ in range(r)],
        server=elgamal_ec.generate_keypair(rand),
    )


@dataclass
class SSResult:
    """Outcome of one SS execution."""

    #: decoded reports (genuine + fake), in arrival order at the server
    reports: np.ndarray
    #: how many fake reports each shuffler inserted
    fakes_per_shuffler: list[int]
    #: True if every planted spot-check report survived to the server
    spot_check_passed: bool
    transcript_sizes: list[int] = field(default_factory=list)


def _encode_payload(report: int, width: int) -> bytes:
    return int(report).to_bytes(width, "big")


def _decode_payload(payload: bytes) -> int:
    return int.from_bytes(payload, "big")


def sequential_shuffle(
    reports: Sequence[int],
    report_space: int,
    keys: SSKeys,
    n_fake: int,
    rng: np.random.Generator,
    crypto_rng: RandomLike = None,
    tracker: Optional[CostTracker] = None,
    spot_check_reports: Sequence[int] = (),
    shuffler_tamper: Optional[Callable[[int, list[OnionCiphertext]], list[OnionCiphertext]]] = None,
) -> SSResult:
    """Run the SS protocol end to end.

    Parameters
    ----------
    reports:
        Users' encoded LDP reports (integers in ``[0, report_space)``).
    report_space:
        Size of the ordinal report group (fake reports are uniform in it).
    keys:
        The deployment's key material.
    n_fake:
        Total fake reports, split evenly across the shufflers.
    rng / crypto_rng:
        Fake-report and shuffle randomness / encryption randomness.
    spot_check_reports:
        Extra reports planted by the server through dummy accounts; their
        presence in the output is verified (tamper detection).
    shuffler_tamper:
        Optional hook ``(shuffler_index, batch) -> batch`` modelling a
        malicious shuffler (used by the attack analyses).
    """
    r = len(keys.shufflers)
    width = max(1, (int(report_space) - 1).bit_length() + 7 >> 3)
    crypto_rand = as_random(crypto_rng)
    fakes_per_shuffler = [n_fake // r + (1 if j < n_fake % r else 0) for j in range(r)]

    # --- users (and the server's dummy accounts) wrap their reports -------
    batch: list[OnionCiphertext] = []
    all_inputs = list(reports) + list(spot_check_reports)
    for report in all_inputs:
        if tracker is None:
            wrapped = onion.wrap(
                _encode_payload(report, width), keys.public_chain, crypto_rand
            )
        else:
            with tracker.compute("user"):
                wrapped = onion.wrap(
                    _encode_payload(report, width), keys.public_chain, crypto_rand
                )
            tracker.send("user", "shuffler:0", wrapped.size_bytes)
        batch.append(wrapped)

    # --- each shuffler peels, injects fakes, shuffles, forwards ----------
    for j in range(r):
        party = f"shuffler:{j}"
        remaining_keys = [kp.public for kp in keys.shufflers[j + 1:]] + [
            keys.server.public
        ]

        def _process() -> list[OnionCiphertext]:
            peeled = [onion.peel(msg, keys.shufflers[j].private)[1] for msg in batch]
            for _ in range(fakes_per_shuffler[j]):
                fake = int(rng.integers(0, report_space))
                peeled.append(
                    onion.wrap(
                        _encode_payload(fake, width), remaining_keys, crypto_rand
                    )
                )
            order = rng.permutation(len(peeled))
            return [peeled[i] for i in order]

        if tracker is None:
            batch = _process()
        else:
            with tracker.compute(party):
                batch = _process()
        if shuffler_tamper is not None:
            batch = shuffler_tamper(j, batch)
        if tracker is not None:
            destination = f"shuffler:{j + 1}" if j + 1 < r else "server"
            for msg in batch:
                tracker.send(party, destination, msg.size_bytes)

    # --- server peels the last layer and decodes -------------------------
    def _finalize() -> np.ndarray:
        decoded = []
        for msg in batch:
            payload, _ = onion.peel(msg, keys.server.private)
            decoded.append(_decode_payload(payload))
        return np.array(decoded, dtype=np.int64 if report_space < (1 << 62) else object)

    if tracker is None:
        final_reports = _finalize()
    else:
        with tracker.compute("server"):
            final_reports = _finalize()

    # Spot check: every planted report must appear at least as many times
    # as planted (multiset containment).
    passed = _multiset_contains(final_reports.tolist(), list(spot_check_reports))
    return SSResult(
        reports=final_reports,
        fakes_per_shuffler=fakes_per_shuffler,
        spot_check_passed=passed,
    )


def _multiset_contains(haystack: list, needles: list) -> bool:
    from collections import Counter

    have = Counter(haystack)
    need = Counter(needles)
    return all(have[key] >= count for key, count in need.items())
