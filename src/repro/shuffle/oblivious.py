"""Resharing-based oblivious shuffle (Laur, Willemson, Zhang [42]).

Section II-C: ``r`` shufflers each hold one additive share vector of the
``N`` secrets.  Let ``t = floor(r/2) + 1`` ("hiders") and ``r - t``
("seekers").  For each of the ``C(r, t)`` hider subsets:

1. every seeker splits its share vector into ``t`` fresh sub-shares and
   sends one to each hider;
2. hiders fold the received sub-shares into their own vectors, then apply a
   jointly agreed random permutation;
3. each hider resplits its permuted vector into ``r`` sub-shares and
   distributes them to all ``r`` shufflers.

After all rounds, every coalition of at most ``r - t`` shufflers misses at
least one round's permutation, so the overall order is oblivious to it.

The simulation keeps a :class:`ShuffleTranscript` (rounds, hider sets,
permutations) so tests can verify both correctness (composition of round
permutations equals the net permutation) and the obliviousness counting
argument (every minority coalition is excluded from >= 1 round).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Optional, Sequence

import numpy as np

from ..crypto.secret_sharing import add_share_vectors, share_vector
from ..costs import CostTracker, share_bytes


@dataclass
class ShuffleRound:
    """One hide-and-seek round: who hid, and (secretly) how they permuted."""

    hiders: tuple[int, ...]
    permutation: np.ndarray


@dataclass
class ShuffleTranscript:
    """Everything a global observer would know about one shuffle run."""

    rounds: list[ShuffleRound] = field(default_factory=list)

    @property
    def net_permutation(self) -> np.ndarray:
        """Composition of all round permutations (first round applied first).

        ``output[i] = input[net[i]]`` — i.e. ``net`` maps output positions to
        original positions.
        """
        if not self.rounds:
            raise ValueError("transcript has no rounds")
        net = self.rounds[0].permutation.copy()
        for rnd in self.rounds[1:]:
            net = net[rnd.permutation]
        return net

    def known_to(self, coalition: Sequence[int]) -> bool:
        """Would this coalition of shuffler indices learn the net permutation?

        A coalition learns the net permutation iff it contains a hider of
        *every* round (each round's permutation is known only to that
        round's hiders).
        """
        coalition_set = set(coalition)
        return all(coalition_set & set(rnd.hiders) for rnd in self.rounds)


def hider_count(r: int) -> int:
    """``t = floor(r/2) + 1`` — the majority size used by the protocol."""
    if r < 2:
        raise ValueError(f"need at least 2 shufflers, got r={r}")
    return r // 2 + 1


def shuffle_rounds(r: int) -> list[tuple[int, ...]]:
    """The ``C(r, t)`` hider subsets, in deterministic order."""
    return list(combinations(range(r), hider_count(r)))


def oblivious_shuffle(
    shares: Sequence[np.ndarray],
    modulus: int,
    rng: np.random.Generator,
    tracker: Optional[CostTracker] = None,
    party_prefix: str = "shuffler",
) -> tuple[list[np.ndarray], ShuffleTranscript]:
    """Run the full resharing-based oblivious shuffle.

    Parameters
    ----------
    shares:
        ``r`` share vectors of equal length over ``Z_modulus``.
    modulus:
        The share group size.
    rng:
        Source of sub-share randomness and round permutations (in a real
        deployment each round's permutation is agreed among that round's
        hiders; the simulation draws it centrally but records who knows it).
    tracker:
        Optional cost ledger; parties are ``f"{party_prefix}:{i}"``.

    Returns the new share vectors and the transcript.
    """
    r = len(shares)
    if r < 2:
        raise ValueError(f"need at least 2 shufflers, got r={r}")
    n = len(shares[0])
    for share in shares:
        if len(share) != n:
            raise ValueError("share vectors have inconsistent lengths")
    width = share_bytes(modulus)
    vectors = [np.asarray(share) for share in shares]
    transcript = ShuffleTranscript()

    for hiders in shuffle_rounds(r):
        seekers = [j for j in range(r) if j not in hiders]
        # 1. Seekers split their vectors among the hiders.
        incoming: dict[int, list[np.ndarray]] = {h: [] for h in hiders}
        for s in seekers:
            parts = share_vector(vectors[s], len(hiders), modulus, rng)
            for h, part in zip(hiders, parts):
                incoming[h].append(part)
                if tracker is not None:
                    tracker.send(
                        f"{party_prefix}:{s}", f"{party_prefix}:{h}", n * width
                    )
            vectors[s] = _zeros_like(vectors[s])
        # 2. Hiders accumulate and apply the agreed permutation.
        permutation = rng.permutation(n)
        for h in hiders:
            accumulated = vectors[h]
            for part in incoming[h]:
                accumulated = add_share_vectors(accumulated, part, modulus)
            vectors[h] = accumulated[permutation]
        transcript.rounds.append(
            ShuffleRound(hiders=tuple(hiders), permutation=permutation)
        )
        # 3. Hiders reshare among all r shufflers.
        fresh = [_zeros_like(vectors[0]) for _ in range(r)]
        for h in hiders:
            parts = share_vector(vectors[h], r, modulus, rng)
            for j, part in enumerate(parts):
                fresh[j] = add_share_vectors(fresh[j], part, modulus)
                if tracker is not None and j != h:
                    tracker.send(
                        f"{party_prefix}:{h}", f"{party_prefix}:{j}", n * width
                    )
        vectors = fresh

    return vectors, transcript


def _zeros_like(vector: np.ndarray) -> np.ndarray:
    """Zero share vector matching dtype conventions (int64 or object)."""
    if vector.dtype == object:
        out = np.empty(len(vector), dtype=object)
        out[:] = 0
        return out
    return np.zeros(len(vector), dtype=np.int64)
