"""Encrypted Oblivious Shuffle (EOS) — Section VI-A3, Figure 2.

EOS is the resharing-based oblivious shuffle with one twist: at any moment
exactly one shuffler (the *holder*, ``E``) carries its share vector as AHE
ciphertexts under the **server's** public key.  Plaintext shares move and
reshare exactly as in :mod:`repro.shuffle.oblivious`; the encrypted vector
is processed homomorphically:

* when the holder splits its vector, it emits fresh uniform plaintext
  vectors and one ciphertext remainder ``c'_i = c_i (+) Enc(-sum of the
  plaintext parts)``, re-randomized so the hop is unlinkable;
* whoever receives the ciphertext piece becomes the next holder.

Because one share stays encrypted end-to-end, even *all* ``r`` shufflers
colluding cannot reconstruct the reports (Corollary 7) — that requires the
server's private key, and the server never sees intermediate rounds.

AHE plaintext-space bookkeeping: corrections are added as their positive
residues mod ``M``, so decrypted plaintexts grow additively but never wrap
the AHE plaintext space (asserted at entry: ``rounds * (r + t) * M`` must
fit).  The DGK scheme with ``2^l = M`` wraps natively and also satisfies
the check trivially via modular arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence

import numpy as np

from ..crypto.math_utils import RandomLike, as_random
from ..crypto.secret_sharing import add_share_vectors, uniform_array
from ..costs import CostTracker, share_bytes
from .oblivious import ShuffleRound, ShuffleTranscript, hider_count, shuffle_rounds


class AdditiveHomomorphicKey(Protocol):
    """The AHE public-key interface EOS needs (Paillier and DGK satisfy it)."""

    @property
    def plaintext_space(self) -> int: ...

    @property
    def ciphertext_bytes(self) -> int: ...

    def encrypt(self, message: int, rng: RandomLike = None) -> int: ...

    def add(self, ciphertext_a: int, ciphertext_b: int) -> int: ...

    def add_plain(self, ciphertext: int, plain: int) -> int: ...

    def rerandomize(self, ciphertext: int, rng: RandomLike = None) -> int: ...


@dataclass
class EOSState:
    """Post-shuffle state handed to the server.

    ``plain_shares[j]`` is shuffler ``j``'s final plaintext vector (the
    final reshare hands the holder a plaintext piece as well), ``encrypted``
    the ciphertext vector, and ``holder`` the shuffler holding it.
    """

    plain_shares: list[np.ndarray]
    encrypted: list[int]
    holder: int
    transcript: ShuffleTranscript


def encrypted_oblivious_shuffle(
    plain_shares: Sequence[np.ndarray],
    encrypted: Sequence[int],
    holder: int,
    modulus: int,
    ahe: AdditiveHomomorphicKey,
    rng: np.random.Generator,
    crypto_rng: RandomLike = None,
    tracker: Optional[CostTracker] = None,
    party_prefix: str = "shuffler",
    rerandomize: bool = True,
) -> EOSState:
    """Run EOS over ``r`` shufflers.

    Parameters
    ----------
    plain_shares:
        ``r`` vectors over ``Z_modulus``; the entry at index ``holder`` must
        be all zeros (that shuffler's share arrived encrypted).
    encrypted:
        The holder's vector as AHE ciphertexts (same length).
    holder:
        Index of the shuffler initially holding the encrypted vector
        (Algorithm 1: shuffler ``r``, who received the encrypted user shares).
    modulus:
        The report-group size ``M``; decrypted sums are reduced mod ``M``.
    ahe:
        The server's public key.
    rng / crypto_rng:
        Share-randomness + permutations / AHE encryption randomness.
    rerandomize:
        Refresh each ciphertext's AHE randomness at every hop (default).
        The paper's cost model (Table III: "C(r,t) n/r homomorphic
        additions" per shuffler) counts only the deterministic
        ``g^adjust`` corrections — the secret uniform adjustment already
        unlinks ciphertexts from every party except the holder that
        applied it.  Set False to reproduce that cost model; keep True for
        the conservative hop-unlinkability guarantee.
    """
    r = len(plain_shares)
    if r < 2:
        raise ValueError(f"need at least 2 shufflers, got r={r}")
    if not 0 <= holder < r:
        raise ValueError(f"holder index {holder} out of range for r={r}")
    n = len(encrypted)
    for share in plain_shares:
        if len(share) != n:
            raise ValueError("share vectors have inconsistent lengths")
    t = hider_count(r)
    rounds = shuffle_rounds(r)
    # Plaintext-space headroom: every round adds < (t + r) corrections of
    # size < modulus to the encrypted plaintexts.
    headroom_needed = (len(rounds) * (t + r) + 2) * modulus
    if ahe.plaintext_space % modulus != 0 and ahe.plaintext_space < headroom_needed:
        raise ValueError(
            f"AHE plaintext space {ahe.plaintext_space} too small for "
            f"modulus {modulus} over {len(rounds)} rounds"
        )
    crypto_rand = as_random(crypto_rng)
    width = share_bytes(modulus)
    vectors = [np.asarray(share) for share in plain_shares]
    cipher = list(encrypted)
    transcript = ShuffleTranscript()

    def send(src: int, dst: int, n_bytes: int) -> None:
        if tracker is not None and src != dst:
            tracker.send(f"{party_prefix}:{src}", f"{party_prefix}:{dst}", n_bytes)

    def compute(party: int):
        """Attribute a block's wall time to one shuffler (no-op untracked)."""
        if tracker is None:
            from contextlib import nullcontext

            return nullcontext()
        return tracker.compute(f"{party_prefix}:{party}")

    def split_encrypted(
        source: int, plain_vector: np.ndarray, destinations: Sequence[int]
    ) -> tuple[dict[int, np.ndarray], int]:
        """Split the holder's (ciphertext + own plaintext) into pieces.

        The holder's residual plaintext vector (acquired during earlier
        reshares) is first folded into the ciphertexts; then all but one
        piece are fresh uniform plaintext vectors and the last is the
        homomorphically corrected, re-randomized ciphertext remainder.
        Returns the plaintext pieces keyed by destination and the index of
        the destination that received the ciphertext.
        """
        nonlocal cipher
        destinations = list(destinations)
        cipher_dst = destinations[int(rng.integers(len(destinations)))]
        plain_dsts = [dst for dst in destinations if dst != cipher_dst]
        with compute(source):
            pieces = {dst: uniform_array(modulus, n, rng) for dst in plain_dsts}
            corrections = _zeros(n, modulus)
            for piece in pieces.values():
                corrections = add_share_vectors(corrections, piece, modulus)
            new_cipher = []
            for i, c in enumerate(cipher):
                adjust = (int(plain_vector[i]) - int(corrections[i])) % modulus
                adjusted = ahe.add_plain(c, adjust)
                if rerandomize:
                    adjusted = ahe.rerandomize(adjusted, crypto_rand)
                new_cipher.append(adjusted)
            cipher = new_cipher
        for dst in plain_dsts:
            send(source, dst, n * width)
        send(source, cipher_dst, n * ahe.ciphertext_bytes)
        return pieces, cipher_dst

    for hiders in rounds:
        seekers = [j for j in range(r) if j not in hiders]
        incoming: dict[int, list[np.ndarray]] = {h: [] for h in hiders}

        # 1. Seekers split their vectors among the hiders.
        for s in seekers:
            if s == holder:
                pieces, holder = split_encrypted(s, vectors[s], list(hiders))
                for dst, piece in pieces.items():
                    incoming[dst].append(piece)
            else:
                from ..crypto.secret_sharing import share_vector

                with compute(s):
                    parts = share_vector(vectors[s], t, modulus, rng)
                for h, part in zip(hiders, parts):
                    incoming[h].append(part)
                    send(s, h, n * width)
            vectors[s] = _zeros(n, modulus)

        # 2. Hiders accumulate; the holder folds plaintext into ciphertext.
        permutation = rng.permutation(n)
        for h in hiders:
            with compute(h):
                accumulated = vectors[h]
                for part in incoming[h]:
                    accumulated = add_share_vectors(accumulated, part, modulus)
                if h == holder:
                    cipher = [
                        ahe.add_plain(c, int(accumulated[i]) % modulus)
                        for i, c in enumerate(cipher)
                    ]
                    if rerandomize:
                        cipher = [
                            ahe.rerandomize(c, crypto_rand) for c in cipher
                        ]
                    vectors[h] = _zeros(n, modulus)
                    cipher = [cipher[i] for i in permutation]
                else:
                    vectors[h] = accumulated[permutation]
        transcript.rounds.append(
            ShuffleRound(hiders=tuple(hiders), permutation=permutation)
        )

        # 3. Hiders reshare among all r shufflers; the holder's reshare
        #    carries the ciphertext piece to a random party.
        fresh = [_zeros(n, modulus) for _ in range(r)]
        # Snapshot: if the reshare hands the ciphertext to another hider,
        # that hider still reshares its plaintext normally this round.
        holder_at_reshare = holder
        for h in list(hiders):
            if h == holder_at_reshare:
                pieces, holder = split_encrypted(h, vectors[h], list(range(r)))
                for dst, piece in pieces.items():
                    fresh[dst] = add_share_vectors(fresh[dst], piece, modulus)
            else:
                from ..crypto.secret_sharing import share_vector

                with compute(h):
                    parts = share_vector(vectors[h], r, modulus, rng)
                for j, part in enumerate(parts):
                    fresh[j] = add_share_vectors(fresh[j], part, modulus)
                    send(h, j, n * width)
        vectors = fresh

    return EOSState(
        plain_shares=vectors,
        encrypted=cipher,
        holder=holder,
        transcript=transcript,
    )


def server_reconstruct(
    state: EOSState,
    modulus: int,
    decrypt,
    tracker: Optional[CostTracker] = None,
    party_prefix: str = "shuffler",
    server_name: str = "server",
    ciphertext_bytes: int = 0,
) -> np.ndarray:
    """Final step: shufflers upload shares, the server decrypts and sums.

    ``decrypt`` is the server's private decryption callable (ciphertext ->
    integer plaintext).  Returns the shuffled encoded reports mod ``M``.
    """
    n = len(state.encrypted)
    width = share_bytes(modulus)
    if tracker is not None:
        for j in range(len(state.plain_shares)):
            # Every shuffler uploads its plaintext vector; the holder also
            # uploads the ciphertext vector.
            tracker.send(f"{party_prefix}:{j}", server_name, n * width)
            if j == state.holder:
                tracker.send(
                    f"{party_prefix}:{j}", server_name, n * ciphertext_bytes
                )
    total = _zeros(n, modulus)
    for share in state.plain_shares:
        total = add_share_vectors(total, share, modulus)
    decrypted = np.array(
        [int(decrypt(c)) % modulus for c in state.encrypted], dtype=object
    )
    result = add_share_vectors(total, decrypted, modulus)
    if modulus < (1 << 62):
        return np.asarray(result, dtype=np.int64)
    return result


def _zeros(n: int, modulus: int) -> np.ndarray:
    if modulus < (1 << 62):
        return np.zeros(n, dtype=np.int64)
    out = np.empty(n, dtype=object)
    out[:] = 0
    return out
