"""Deterministic fault injection: named failpoints with trigger schedules.

Production systems earn their fault-tolerance claims by *injecting*
faults, not by waiting for them.  This module is the repo's chaos seam:
code under test calls :func:`fail_point` at the places that historically
kill a run — the parent's shared-memory write (``"shm.write"``), the
fold worker's release body (``"fold.worker"``), the SQLite commit
(``"store.commit"``), and the server's ingest apply
(``"server.ingest"``) — and a test, the CLI (``--fail-point``), or the
``REPRO_FAIL_POINTS`` environment variable arms a subset of them with a
mode and a deterministic trigger schedule.

Spec grammar (one spec per failpoint)::

    name:mode[:schedule]

    mode      raise            raise InjectedFault at the call site
              kill             SIGKILL the calling process (worker-death
                               chaos; never catchable)
              delay=SECONDS    sleep SECONDS, then continue (hang chaos,
                               paired with --fold-timeout)
    schedule  once             trigger on the first hit only (default)
              every=N          trigger on every Nth hit (per process)
              at=K             trigger once when the call site's
                               ``sequence`` equals K

Determinism contract: schedules count *hits at the failpoint in one
process* (``every``/``once``) or match the caller-supplied sequence
number (``at``) — no randomness, no wall clock, so a chaos run is
reproducible.  The injected faults themselves are exactly the failures
the supervision layer must absorb; because folds are pure given their
``(sequence, reports, entropy)`` inputs, a retried or degraded run's
estimates stay bit-identical to the fault-free run (the CI chaos smoke
pins this).

Cross-process activation: fold workers are spawned fresh, so they cannot
see the parent's registry.  :func:`install` therefore both arms the
current process and exports the specs to ``REPRO_FAIL_POINTS``; spawned
children inherit the environment and re-arm at import time.

Zero overhead disarmed: :func:`fail_point` is one empty-dict truth test
when nothing is armed.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .core.errors import ConfigError

__all__ = [
    "ENV_VAR",
    "FailPointSpec",
    "InjectedFault",
    "active",
    "arm",
    "disarm",
    "fail_point",
    "fired_counts",
    "install",
    "parse_spec",
]

#: comma-separated failpoint specs; read once at import so spawned fold
#: workers arm themselves before their first task
ENV_VAR = "REPRO_FAIL_POINTS"

#: failure modes a spec may request
MODES = ("raise", "kill", "delay")


class InjectedFault(RuntimeError):
    """Raised at an armed ``raise``-mode failpoint."""


@dataclass(frozen=True)
class FailPointSpec:
    """One parsed failpoint activation (see the module grammar)."""

    name: str
    mode: str  # "raise" | "kill" | "delay"
    delay_s: float = 0.0  # only meaningful for mode="delay"
    every: Optional[int] = None  # trigger on every Nth hit
    at: Optional[int] = None  # trigger once at this sequence number

    def render(self) -> str:
        """The spec string form (round-trips through :func:`parse_spec`)."""
        mode = (
            f"delay={self.delay_s:g}" if self.mode == "delay" else self.mode
        )
        if self.every is not None:
            schedule = f"every={self.every}"
        elif self.at is not None:
            schedule = f"at={self.at}"
        else:
            schedule = "once"
        return f"{self.name}:{mode}:{schedule}"


class _ArmedPoint:
    """Mutable trigger state of one armed spec (hit counter, one-shot latch)."""

    __slots__ = ("spec", "hits", "fired", "done")

    def __init__(self, spec: FailPointSpec):
        self.spec = spec
        self.hits = 0
        self.fired = 0
        self.done = False


#: the process-local registry; empty means every failpoint is disarmed
_ARMED: Dict[str, _ArmedPoint] = {}


def parse_spec(text: str) -> FailPointSpec:
    """Parse one ``name:mode[:schedule]`` spec, :class:`ConfigError` on junk."""
    parts = [part.strip() for part in str(text).split(":")]
    if len(parts) < 2 or len(parts) > 3 or not parts[0]:
        raise ConfigError(
            "fail_point",
            f"spec must be 'name:mode[:schedule]' (e.g. "
            f"'fold.worker:kill:every=3'), got {text!r}",
        )
    name, mode_text = parts[0], parts[1]
    delay_s = 0.0
    if mode_text.startswith("delay="):
        mode = "delay"
        try:
            delay_s = float(mode_text[len("delay="):])
        except ValueError:
            delay_s = -1.0
        if not delay_s >= 0.0:
            raise ConfigError(
                "fail_point",
                f"delay mode needs non-negative seconds "
                f"(e.g. 'delay=0.5'), got {mode_text!r} in {text!r}",
            )
    else:
        mode = mode_text
    if mode not in MODES:
        raise ConfigError(
            "fail_point",
            f"unknown mode {mode_text!r} in {text!r} "
            f"(modes: raise, kill, delay=SECONDS)",
        )
    every: Optional[int] = None
    at: Optional[int] = None
    schedule = parts[2] if len(parts) == 3 else "once"
    if schedule.startswith("every="):
        every = _positive_int(schedule[len("every="):], text, minimum=1)
    elif schedule.startswith("at="):
        at = _positive_int(schedule[len("at="):], text, minimum=0)
    elif schedule != "once":
        raise ConfigError(
            "fail_point",
            f"unknown schedule {schedule!r} in {text!r} "
            f"(schedules: once, every=N, at=K)",
        )
    return FailPointSpec(
        name=name, mode=mode, delay_s=delay_s, every=every, at=at
    )


def _positive_int(digits: str, spec_text: str, minimum: int) -> int:
    try:
        value = int(digits)
    except ValueError:
        value = minimum - 1
    if value < minimum:
        raise ConfigError(
            "fail_point",
            f"schedule needs an integer >= {minimum} in {spec_text!r}, "
            f"got {digits!r}",
        )
    return value


def arm(specs: Iterable[FailPointSpec]) -> None:
    """Arm (or re-arm, resetting trigger state) the given failpoints."""
    for spec in specs:
        _ARMED[spec.name] = _ArmedPoint(spec)


def disarm() -> None:
    """Disarm every failpoint in this process (tests call this in teardown)."""
    _ARMED.clear()


def install(spec_texts: Iterable[str], export_env: bool = True) -> List[FailPointSpec]:
    """Parse, arm, and (by default) export specs to child processes.

    The CLI's ``--fail-point`` path: arms the current process *and*
    writes ``REPRO_FAIL_POINTS`` so spawned fold workers inherit the
    activation.  Returns the parsed specs.
    """
    specs = [parse_spec(text) for text in spec_texts]
    arm(specs)
    if export_env and specs:
        os.environ[ENV_VAR] = ",".join(spec.render() for spec in specs)
    return specs


def active() -> Tuple[str, ...]:
    """Names of the currently armed failpoints, sorted."""
    return tuple(sorted(_ARMED))


def fired_counts() -> Dict[str, int]:
    """``{name: times fired}`` for every armed failpoint (observability)."""
    return {name: point.fired for name, point in sorted(_ARMED.items())}


def fail_point(name: str, sequence: Optional[int] = None) -> None:
    """Trigger the named failpoint if armed and scheduled; else no-op.

    Call sites pass ``sequence`` where a natural deterministic sequence
    number exists (flush sequence, submit order) so ``at=K`` schedules
    can target one exact event.
    """
    if not _ARMED:
        return
    point = _ARMED.get(name)
    if point is None or point.done:
        return
    spec = point.spec
    if spec.at is not None:
        if sequence != spec.at:
            return
        point.done = True
    else:
        point.hits += 1
        if spec.every is not None:
            if point.hits % spec.every != 0:
                return
        else:  # once
            point.done = True
    point.fired += 1
    if spec.mode == "delay":
        time.sleep(spec.delay_s)
        return
    if spec.mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    raise InjectedFault(
        f"injected fault at {spec.name!r} "
        f"(hit {point.hits}, sequence {sequence})"
    )


def _arm_from_env() -> None:
    """Arm from ``REPRO_FAIL_POINTS`` at import (spawned workers' path)."""
    raw = os.environ.get(ENV_VAR, "")
    if not raw.strip():
        return
    arm(parse_spec(part) for part in raw.split(",") if part.strip())


_arm_from_env()
