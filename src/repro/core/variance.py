"""Analytical utility (variance / MSE) of shuffle-model frequency oracles.

Implements Propositions 4-6 and the surrounding analysis of Section IV-B3:
for a fixed central target ``eps_c`` each mechanism's estimation variance is
a closed-form function of ``(eps_c, n, d, delta)``.  These formulas drive

* the GRR-vs-SOLH mechanism choice (``choose_mechanism``),
* the Eq. (5) optimal hash domain,
* analytical overlays / sanity checks for the Figure 3 and Table II
  benchmarks (empirical MSE should match these up to sampling noise).

All variances are *per-value* expected squared errors of the frequency
estimate ``f_hat_v`` for a rare value (the paper's ``f_v ~ 0`` regime), which
is also what MSE over a large sparse domain measures.
"""

from __future__ import annotations

import math
from typing import Optional

from .amplification import (
    blanket_budget,
    invert_solh,
    invert_unary,
    invert_unary_removal,
    resolve_grr,
    solh_optimal_d_prime,
)

_BLANKET_CONSTANT = 14.0


# ---------------------------------------------------------------------------
# Local-model building blocks (Wang et al. USENIX'17 Theorem 2 instances)
# ---------------------------------------------------------------------------

def grr_variance_local(eps_l: float, n: int, d: int) -> float:
    """Variance of GRR at local budget ``eps_l``: ``(e^eps + d - 2)/(n (e^eps - 1)^2)``."""
    if d < 2:
        raise ValueError(f"domain size must be >= 2, got d={d}")
    e = math.exp(eps_l)
    return (e + d - 2.0) / (n * (e - 1.0) ** 2)


def olh_variance_local(eps_l: float, n: int, d_prime: int) -> float:
    """Variance of local hashing with domain ``d'`` (Eq. 4 / Eq. 10 of [54]):
    ``(e^eps + d' - 1)^2 / (n (e^eps - 1)^2 (d' - 1))``.
    """
    if d_prime < 2:
        raise ValueError(f"hash output domain must be >= 2, got {d_prime}")
    e = math.exp(eps_l)
    return (e + d_prime - 1.0) ** 2 / (n * (e - 1.0) ** 2 * (d_prime - 1.0))


def rappor_variance_local(eps_l: float, n: int) -> float:
    """Variance of symmetric unary encoding (RAPPOR) at ``eps_l``:
    ``e^{eps/2} / (n (e^{eps/2} - 1)^2)``.
    """
    e_half = math.exp(eps_l / 2.0)
    return e_half / (n * (e_half - 1.0) ** 2)


def rappor_removal_variance_local(eps_l: float, n: int) -> float:
    """Variance of the removal-LDP unary method at ``eps_l`` (budget not
    halved): ``e^{eps} / (n (e^{eps} - 1)^2)``.
    """
    e = math.exp(eps_l)
    return e / (n * (e - 1.0) ** 2)


# ---------------------------------------------------------------------------
# Shuffle-model variances at a fixed central target (Props 4-6)
# ---------------------------------------------------------------------------

def grr_variance_shuffled(eps_c: float, n: int, d: int, delta: float) -> float:
    """Proposition 4: shuffled-GRR variance at central target ``eps_c``.

    ``(m - 1) / (n (m - d)^2)`` with ``m = eps_c^2 (n-1)/(14 ln(2/delta))``.
    Falls back to the *local* GRR variance at ``eps_l = eps_c`` when the
    amplification bound yields no benefit (the SH cliff).
    """
    resolution = resolve_grr(eps_c, n, d, delta)
    if not resolution.amplified:
        return grr_variance_local(eps_c, n, d)
    m = blanket_budget(eps_c, n, delta)
    return (m - 1.0) / (n * (m - d) ** 2)


def unary_variance_shuffled(eps_c: float, n: int, delta: float) -> float:
    """Proposition 5: shuffled-RAPPOR variance at central target ``eps_c``.

    ``(m2 - 1) / (n (m2 - 2)^2)`` with
    ``m2 = eps_c^2 (n-1) / (56 ln(4/delta))``; local fallback otherwise.
    """
    eps_l = invert_unary(eps_c, n, delta)
    if eps_l is None or eps_l <= eps_c:
        return rappor_variance_local(eps_c, n)
    m2 = eps_c**2 * (n - 1) / (4.0 * _BLANKET_CONSTANT * math.log(4.0 / delta))
    return (m2 - 1.0) / (n * (m2 - 2.0) ** 2)


def unary_removal_variance_shuffled(eps_c: float, n: int, delta: float) -> float:
    """Shuffled RAP_R variance: RAP at budget ``2 eps_c`` (Section IV-B4)."""
    eps_l = invert_unary_removal(eps_c, n, delta)
    if eps_l is None or eps_l <= eps_c:
        return rappor_removal_variance_local(eps_c, n)
    m2 = eps_c**2 * (n - 1) / (_BLANKET_CONSTANT * math.log(4.0 / delta))
    return (m2 - 1.0) / (n * (m2 - 2.0) ** 2)


def solh_variance_shuffled(
    eps_c: float,
    n: int,
    delta: float,
    d_prime: Optional[int] = None,
) -> float:
    """Proposition 6: SOLH variance at central target ``eps_c``.

    ``m^2 / (n (m - d')^2 (d' - 1))``; with ``d_prime=None`` the Eq. (5)
    optimum is used.  Falls back to local hashing at ``eps_l = eps_c`` when
    no amplification is possible — at the LDP-optimal domain when ``d'`` was
    left free, at the *requested* domain when it was explicit (the
    catastrophic mis-tuning cells of Table II).
    """
    explicit = d_prime is not None
    if d_prime is None:
        d_prime = solh_optimal_d_prime(eps_c, n, delta)
    eps_l = invert_solh(eps_c, n, d_prime, delta)
    if eps_l is None or eps_l <= eps_c:
        if explicit:
            return olh_variance_local(eps_c, n, d_prime)
        fallback_d = max(2, int(round(math.exp(eps_c))) + 1)
        return olh_variance_local(eps_c, n, fallback_d)
    m = blanket_budget(eps_c, n, delta)
    return m**2 / (n * (m - d_prime) ** 2 * (d_prime - 1.0))


def aue_variance(eps_c: float, n: int, delta: float) -> float:
    """Variance of AUE (Balcer-Cheu [8]) per location.

    Each location receives Bernoulli(q) increments with
    ``q = 200 ln(4/delta) / (eps_c^2 n)``; the aggregated-noise variance on a
    frequency estimate is ``q (1 - q) / n``.
    """
    q = aue_noise_probability(eps_c, n, delta)
    return q * (1.0 - q) / n


def aue_noise_probability(eps_c: float, n: int, delta: float) -> float:
    """AUE per-location increment probability ``200 ln(4/delta)/(eps_c^2 n)``.

    Raises when the formula exceeds 1 (target unreachable at this ``n``).
    """
    if eps_c <= 0.0:
        raise ValueError(f"eps_c must be positive, got {eps_c}")
    q = 200.0 * math.log(4.0 / delta) / (eps_c**2 * n)
    if q >= 1.0:
        raise ValueError(
            f"AUE cannot meet eps_c={eps_c} with n={n}: noise probability {q} >= 1"
        )
    return q


def laplace_variance_central(eps: float, n: int) -> float:
    """Variance of the central-DP Laplace mechanism on frequencies.

    Histogram sensitivity under replacement neighbours is 2, so each
    frequency gets ``Lap(2 / (n eps))`` noise of variance ``8 / (n eps)^2``.
    """
    if eps <= 0.0:
        raise ValueError(f"eps must be positive, got {eps}")
    return 8.0 / (n * eps) ** 2


def base_variance(true_frequencies) -> float:
    """MSE of the trivial baseline that always answers ``1/d``."""
    d = len(true_frequencies)
    return float(sum((f - 1.0 / d) ** 2 for f in true_frequencies) / d)


# ---------------------------------------------------------------------------
# Mechanism selection (Section IV-B3 "Comparison of the Methods")
# ---------------------------------------------------------------------------

def choose_mechanism(eps_c: float, n: int, d: int, delta: float) -> str:
    """Pick GRR or SOLH by comparing Prop. 4 with Var(m, (m+2)/3).

    Returns ``"grr"`` or ``"solh"``, the procedure PEOS's setup uses to pick
    its frequency oracle (Section VI-D).
    """
    grr_var = grr_variance_shuffled(eps_c, n, d, delta)
    solh_var = solh_variance_shuffled(eps_c, n, delta)
    return "grr" if grr_var <= solh_var else "solh"


def solh_variance_profile(
    eps_c: float, n: int, delta: float, d_prime_values
) -> list[tuple[int, float]]:
    """Evaluate Prop. 6 over a sweep of ``d'`` values (Table II ablation).

    Entries whose ``d'`` admits no amplification are reported with the local
    fallback variance, matching how a deployment would behave.
    """
    return [
        (int(dp), solh_variance_shuffled(eps_c, n, delta, d_prime=int(dp)))
        for dp in d_prime_values
    ]
