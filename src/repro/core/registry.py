"""The mechanism registry: one declarative spec per competitor mechanism.

Every layer that used to hand-wire mechanism construction — the Figure 3 /
Table II sweeps (:mod:`repro.analysis.experiments`), the CLI, and the
streaming service (:mod:`repro.service`) — resolves mechanisms here
instead.  A :class:`MechanismSpec` names the mechanism, holds its batch
factory ``(d, n, eps_c, delta) -> oracle``, and declares *capabilities*:

``ordinal_encodable``
    reports serialize to the ordinal group ``Z_M`` (Section VI-A2), so the
    mechanism can ride PEOS / SS / the plain shuffle backends;
``closed_form_sampling``
    ``sample_support_counts`` is overridden with an O(d) closed form, so
    paper-scale sweeps never materialize per-user reports;
``streamable``
    the streaming telemetry service can run it per flush (the spec carries
    a ``plan_factory`` building the oracle from a Section VI-D plan);
``central_only``
    a central-model target/baseline, not a local mechanism (AUE, Laplace,
    the uniform guess) — excluded from any LDP-only consumer;
``local_model``
    the factory interprets ``eps_c`` directly as the per-user local budget
    (OLH, Hadamard) — the only specs a ``model="local"`` privacy budget in
    :mod:`repro.api` may deploy, since every other factory treats ``eps_c``
    as a *central* target and amplifies.

Two optional hooks round out a spec: ``variance_fn`` maps
``(d, n, eps_c, delta)`` to the closed-form per-value sampling variance
(Propositions 4-6 and friends; the facade turns it into confidence
intervals via :mod:`repro.analysis.confidence`), and ``planner_id`` names
the Section VI-D planner candidate ("grr" / "solh") the spec corresponds
to, so a deployment pinned to one mechanism can restrict the planner.

Specs register by canonical name plus aliases; lookups are
case-insensitive, and unknown names raise :class:`UnknownMechanismError`
(a ``KeyError``) naming the close matches — a typo in a sweep fails fast
instead of silently becoming a NaN row.

Factories import their mechanism modules lazily so this module can live in
:mod:`repro.core` without dragging the frequency-oracle package into every
core import (and without import cycles: the oracles themselves import
``repro.core.amplification``).
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Optional, Sequence

#: batch factory signature: ``(d, n, eps_c, delta) -> mechanism``
MethodFactory = Callable[[int, int, float, float], Any]

#: streaming factory signature: ``(d, plan) -> FrequencyOracle``
PlanFactory = Callable[[int, Any], Any]

#: closed-form variance signature: ``(d, n, eps_c, delta) -> float``
VarianceFn = Callable[[int, int, float, float], float]


class UnknownMechanismError(KeyError):
    """An unregistered mechanism name was requested."""

    def __init__(self, name: str, known: Sequence[str]):
        self.name = name
        self.known = tuple(known)
        close = difflib.get_close_matches(name, self.known, n=3)
        hint = f" (did you mean {', '.join(close)}?)" if close else ""
        super().__init__(
            f"unknown mechanism {name!r}{hint}; "
            f"registered: {', '.join(self.known)}"
        )


@dataclass(frozen=True)
class MechanismSpec:
    """Declarative description of one registered mechanism."""

    #: canonical name used in experiment tables ("SOLH", "RAP_R", ...)
    name: str
    #: batch constructor for a central target ``(d, n, eps_c, delta)``
    factory: MethodFactory
    #: one-line description for tables and ``--help`` output
    description: str = ""
    #: reports serialize to the ordinal group (PEOS-shuffleable)
    ordinal_encodable: bool = False
    #: has an O(d) ``sample_support_counts`` closed form
    closed_form_sampling: bool = False
    #: the streaming service can run it per flush
    streamable: bool = False
    #: central-model target or baseline, not a local mechanism
    central_only: bool = False
    #: the factory spends ``eps_c`` directly as the local budget
    local_model: bool = False
    #: constructor from a Section VI-D plan (streamable specs only)
    plan_factory: Optional[PlanFactory] = None
    #: the planner candidate this spec deploys ("grr"/"solh"), if any
    planner_id: Optional[str] = None
    #: closed-form per-value sampling variance ``(d, n, eps_c, delta)``
    variance_fn: Optional[VarianceFn] = None
    #: alternate lookup names (e.g. the planner's lowercase mechanism ids)
    aliases: tuple = field(default_factory=tuple)

    def build(self, d: int, n: int, eps_c: float, delta: float):
        """Construct the mechanism for a batch population."""
        return self.factory(d, n, eps_c, delta)

    def variance(self, d: int, n: int, eps_c: float, delta: float) -> Optional[float]:
        """Closed-form per-value sampling variance, or None.

        Returns None both when no closed form is registered and when the
        registered form declares the parameters infeasible (``ValueError``)
        — an estimate may still exist there (construction can fall back),
        it just has no analytical variance.
        """
        if self.variance_fn is None:
            return None
        try:
            return float(self.variance_fn(d, n, eps_c, delta))
        except ValueError:
            return None

    def build_from_plan(self, d: int, plan) -> Any:
        """Construct the streaming oracle from a Section VI-D plan."""
        if self.plan_factory is None:
            raise ValueError(
                f"mechanism {self.name!r} is not streamable (no plan factory)"
            )
        return self.plan_factory(d, plan)


_REGISTRY: Dict[str, MechanismSpec] = {}
_LOOKUP: Dict[str, str] = {}  # casefolded name/alias -> canonical name


def register(spec: MechanismSpec) -> MechanismSpec:
    """Register a spec under its canonical name and aliases.

    Re-registering a name replaces the previous spec (the hook future
    backend/workload PRs use to override or extend the built-ins).
    """
    # Validate every key before mutating anything, so a collision leaves
    # the registry exactly as it was.
    for key in (spec.name, *spec.aliases):
        owner = _LOOKUP.get(key.casefold())
        if owner is not None and owner != spec.name:
            raise ValueError(
                f"name {key!r} already registered for mechanism {owner!r}"
            )
    stale = _REGISTRY.pop(spec.name, None)
    if stale is not None:
        for key, canonical in list(_LOOKUP.items()):
            if canonical == stale.name:
                del _LOOKUP[key]
    for key in (spec.name, *spec.aliases):
        _LOOKUP[key.casefold()] = spec.name
    _REGISTRY[spec.name] = spec
    return spec


def registered_names() -> tuple:
    """Canonical names of every registered mechanism, in registration order."""
    return tuple(_REGISTRY)


def get_spec(name: str) -> MechanismSpec:
    """Resolve a spec by canonical name or alias (case-insensitive)."""
    canonical = _LOOKUP.get(str(name).casefold())
    if canonical is None:
        raise UnknownMechanismError(str(name), registered_names())
    return _REGISTRY[canonical]


def has_mechanism(name: str) -> bool:
    """True if ``name`` resolves to a registered spec."""
    return str(name).casefold() in _LOOKUP


def validate_names(names: Iterable[str]) -> None:
    """Raise :class:`UnknownMechanismError` for the first unknown name.

    Sweep runners call this up front so a typo aborts the whole sweep
    instead of surfacing as NaN rows hours later.
    """
    for name in names:
        get_spec(name)


def build_mechanism(name: str, d: int, n: int, eps_c: float, delta: float):
    """Construct a registered mechanism by name.

    Raises :class:`UnknownMechanismError` for unknown names and lets the
    factory's ``ValueError`` propagate for infeasible parameters — the two
    failure modes are deliberately distinct exception types.
    """
    return get_spec(name).build(d, n, eps_c, delta)


def specs_with(**flags: bool) -> tuple:
    """Specs whose capability flags match every given keyword.

    Example: ``specs_with(ordinal_encodable=True, central_only=False)``.
    """
    selected = []
    for spec in _REGISTRY.values():
        if all(getattr(spec, key) == value for key, value in flags.items()):
            selected.append(spec)
    return tuple(selected)


# ---------------------------------------------------------------------------
# Built-in specs: the Section VII-A competitor set.  Factories import
# lazily; each matches the construction the paper's experiments use.
# ---------------------------------------------------------------------------


def _build_olh(d: int, n: int, eps_c: float, delta: float):
    from ..frequency_oracles import OLH

    return OLH(d, eps_c)


def _build_had(d: int, n: int, eps_c: float, delta: float):
    from ..frequency_oracles import HadamardResponse

    return HadamardResponse(d, eps_c)


def _build_sh(d: int, n: int, eps_c: float, delta: float):
    from ..frequency_oracles import make_sh

    oracle, _ = make_sh(d, eps_c, n, delta)
    return oracle


def _build_solh(d: int, n: int, eps_c: float, delta: float):
    from ..frequency_oracles import SOLH

    oracle, _ = SOLH.for_central_target(d, eps_c, n, delta)
    return oracle


def _build_aue(d: int, n: int, eps_c: float, delta: float):
    from ..frequency_oracles import AUE

    return AUE(d, eps_c, n, delta)


def _build_rap(d: int, n: int, eps_c: float, delta: float):
    from ..frequency_oracles import make_rap

    oracle, _ = make_rap(d, eps_c, n, delta)
    return oracle


def _build_rap_r(d: int, n: int, eps_c: float, delta: float):
    from ..frequency_oracles import make_rap_r

    oracle, _ = make_rap_r(d, eps_c, n, delta)
    return oracle


def _build_base(d: int, n: int, eps_c: float, delta: float):
    from ..frequency_oracles import UniformBaseline

    return UniformBaseline(d)


def _build_lap(d: int, n: int, eps_c: float, delta: float):
    from ..frequency_oracles import LaplaceMechanism

    return LaplaceMechanism(d, eps_c)


# Closed-form sampling variances (Propositions 4-6 and the baselines);
# all share the ``(d, n, eps_c, delta)`` signature so the facade can price
# confidence intervals without knowing any mechanism's analysis.


def _var_olh(d: int, n: int, eps_c: float, delta: float) -> float:
    import math

    from .variance import olh_variance_local

    # Must mirror OLH's own d' choice (LDP-optimal e^eps + 1).
    d_prime = max(2, int(round(math.exp(eps_c))) + 1)
    return olh_variance_local(eps_c, n, d_prime)


def _var_sh(d: int, n: int, eps_c: float, delta: float) -> float:
    from .variance import grr_variance_shuffled

    return grr_variance_shuffled(eps_c, n, d, delta)


def _var_solh(d: int, n: int, eps_c: float, delta: float) -> float:
    from .variance import solh_variance_shuffled

    return solh_variance_shuffled(eps_c, n, delta)


def _var_aue(d: int, n: int, eps_c: float, delta: float) -> float:
    from .variance import aue_variance

    return aue_variance(eps_c, n, delta)


def _var_rap(d: int, n: int, eps_c: float, delta: float) -> float:
    from .variance import unary_variance_shuffled

    return unary_variance_shuffled(eps_c, n, delta)


def _var_rap_r(d: int, n: int, eps_c: float, delta: float) -> float:
    from .variance import unary_removal_variance_shuffled

    return unary_removal_variance_shuffled(eps_c, n, delta)


def _var_base(d: int, n: int, eps_c: float, delta: float) -> float:
    # The uniform guess is deterministic: zero sampling variance (its MSE
    # against any particular truth is bias, not noise).
    return 0.0


def _var_lap(d: int, n: int, eps_c: float, delta: float) -> float:
    from .variance import laplace_variance_central

    return laplace_variance_central(eps_c, n)


def _stream_grr(d: int, plan):
    from ..frequency_oracles import GRR

    return GRR(d, plan.eps_l)


def _stream_solh(d: int, plan):
    from ..frequency_oracles import SOLH
    from ..hashing import XXHash32Family

    # The 32-bit seed family keeps the ordinal report group inside 64-bit
    # arithmetic, the protocol-backend requirement noted in repro.protocol.
    return SOLH(d, plan.eps_l, plan.d_prime, family=XXHash32Family())


register(MechanismSpec(
    name="OLH",
    factory=_build_olh,
    description="local-model optimized local hashing at eps = eps_c",
    ordinal_encodable=True,
    closed_form_sampling=True,
    local_model=True,
    variance_fn=_var_olh,
))
register(MechanismSpec(
    name="Had",
    factory=_build_had,
    description="local-model Hadamard response at eps = eps_c",
    ordinal_encodable=True,
    closed_form_sampling=True,
    local_model=True,
))
register(MechanismSpec(
    name="SH",
    factory=_build_sh,
    description="shuffled GRR [9] (amplified; falls back below threshold)",
    ordinal_encodable=True,
    closed_form_sampling=True,
    streamable=True,
    plan_factory=_stream_grr,
    aliases=("grr",),
    planner_id="grr",
    variance_fn=_var_sh,
))
register(MechanismSpec(
    name="SOLH",
    factory=_build_solh,
    description="the paper's shuffler-optimal local hashing",
    ordinal_encodable=True,
    closed_form_sampling=True,
    streamable=True,
    plan_factory=_stream_solh,
    aliases=("solh",),
    planner_id="solh",
    variance_fn=_var_solh,
))
register(MechanismSpec(
    name="AUE",
    factory=_build_aue,
    description="appended unary encoding [8] (central target, not LDP)",
    closed_form_sampling=True,
    central_only=True,
    variance_fn=_var_aue,
))
register(MechanismSpec(
    name="RAP",
    factory=_build_rap,
    description="shuffled basic RAPPOR (Theorem 2)",
    closed_form_sampling=True,
    variance_fn=_var_rap,
))
register(MechanismSpec(
    name="RAP_R",
    factory=_build_rap_r,
    description="removal-LDP RAPPOR [31]",
    closed_form_sampling=True,
    variance_fn=_var_rap_r,
))
register(MechanismSpec(
    name="Base",
    factory=_build_base,
    description="uniform-guess baseline",
    closed_form_sampling=True,
    central_only=True,
    variance_fn=_var_base,
))
register(MechanismSpec(
    name="Lap",
    factory=_build_lap,
    description="central-DP Laplace mechanism",
    closed_form_sampling=True,
    central_only=True,
    variance_fn=_var_lap,
))
