"""Privacy and utility analysis of PEOS (Section VI-B / VI-C).

PEOS adds ``n_r`` uniformly random fake reports, contributed share-wise by
the shufflers.  Privacy then has two regimes:

* against the server alone (``Adv``): the blanket is the users' random
  reports *plus* the fake reports (Corollaries 8 and 9);
* against the server colluding with all other users (``Adv_u``): only the
  fake reports remain, giving the ``eps_s`` guarantee.

Utility pays for the fake reports through the Eq. (6) post-processing; the
variance picks up a ``(n + n_r)/n^2`` factor (Section VI-C).

The paper's closed-form optimal ``d'`` under fake reports appears with a
sign typo (see ``peos_optimal_d_prime``); we derive the formula from the
variance expression and additionally expose an exact integer search so the
two can be cross-checked (done in tests and the ablation bench).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

_BLANKET_CONSTANT = 14.0


def _check(n: int, n_r: int, delta: float) -> None:
    if n < 2:
        raise ValueError(f"need at least two users, got n={n}")
    if n_r < 0:
        raise ValueError(f"fake-report count must be >= 0, got {n_r}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")


# ---------------------------------------------------------------------------
# Privacy (Corollaries 8 and 9)
# ---------------------------------------------------------------------------

def peos_epsilon_server_solh(
    eps_l: float, d_prime: int, n: int, n_r: int, delta: float
) -> float:
    """Corollary 8, ``eps_c``: PEOS+SOLH guarantee against the server.

    ``eps_c = sqrt(14 ln(2/delta) / ((n-1)/(e^eps_l + d' - 1) + n_r/d'))``.
    """
    _check(n, n_r, delta)
    if d_prime < 2:
        raise ValueError(f"hash output domain must be >= 2, got {d_prime}")
    blanket_mass = (n - 1) / (math.exp(eps_l) + d_prime - 1) + n_r / d_prime
    return math.sqrt(_BLANKET_CONSTANT * math.log(2.0 / delta) / blanket_mass)


def peos_epsilon_collusion_solh(d_prime: int, n_r: int, delta: float) -> float:
    """Corollary 8, ``eps_s``: guarantee when all other users collude.

    ``eps_s = sqrt(14 ln(2/delta) d' / n_r)``.  Infinite when ``n_r = 0``
    (no fake reports -> colluding users recover the victim's LDP report).
    """
    if d_prime < 2:
        raise ValueError(f"hash output domain must be >= 2, got {d_prime}")
    if n_r == 0:
        return math.inf
    return math.sqrt(_BLANKET_CONSTANT * math.log(2.0 / delta) * d_prime / n_r)


def peos_epsilon_server_grr(
    eps_l: float, d: int, n: int, n_r: int, delta: float
) -> float:
    """Corollary 9, ``eps_c``: PEOS+GRR guarantee against the server."""
    _check(n, n_r, delta)
    if d < 2:
        raise ValueError(f"domain size must be >= 2, got d={d}")
    blanket_mass = (n - 1) / (math.exp(eps_l) + d - 1) + n_r / d
    return math.sqrt(_BLANKET_CONSTANT * math.log(2.0 / delta) / blanket_mass)


def peos_epsilon_collusion_grr(d: int, n_r: int, delta: float) -> float:
    """Corollary 9, ``eps_s``: GRR variant of the collusion guarantee."""
    if d < 2:
        raise ValueError(f"domain size must be >= 2, got d={d}")
    if n_r == 0:
        return math.inf
    return math.sqrt(_BLANKET_CONSTANT * math.log(2.0 / delta) * d / n_r)


def invert_peos_solh(
    eps_c: float, d_prime: int, n: int, n_r: int, delta: float
) -> Optional[float]:
    """Largest ``eps_l`` meeting a central target under ``n_r`` fake reports.

    Solves Corollary 8 for ``e^{eps_l} = (n-1)/(a - n_r/d') - d' + 1`` with
    ``a = 14 ln(2/delta) / eps_c^2``.  Returns ``None`` when no positive
    local budget meets the target.  When the fake reports alone already
    provide ``eps_c`` (``a <= n_r/d'``), returns ``math.inf`` — users could
    report in the clear and the DP constraint would still hold, though
    callers will normally cap ``eps_l`` at the ``Adv_a`` requirement.
    """
    _check(n, n_r, delta)
    if eps_c <= 0.0:
        raise ValueError(f"eps_c must be positive, got {eps_c}")
    a = _BLANKET_CONSTANT * math.log(2.0 / delta) / eps_c**2
    residual = a - n_r / d_prime
    if residual <= 0.0:
        return math.inf
    e_eps = (n - 1) / residual - d_prime + 1
    if e_eps <= 1.0:
        return None
    return math.log(e_eps)


def invert_peos_grr(
    eps_c: float, d: int, n: int, n_r: int, delta: float
) -> Optional[float]:
    """GRR counterpart of :func:`invert_peos_solh` (Corollary 9 inverted)."""
    _check(n, n_r, delta)
    if eps_c <= 0.0:
        raise ValueError(f"eps_c must be positive, got {eps_c}")
    a = _BLANKET_CONSTANT * math.log(2.0 / delta) / eps_c**2
    residual = a - n_r / d
    if residual <= 0.0:
        return math.inf
    e_eps = (n - 1) / residual - d + 1
    if e_eps <= 1.0:
        return None
    return math.log(e_eps)


def required_fake_reports(eps_s: float, d_prime: int, delta: float) -> int:
    """Smallest ``n_r`` achieving collusion guarantee ``eps_s`` (Cor. 8 inverted).

    ``n_r = ceil(14 ln(2/delta) d' / eps_s^2)``.
    """
    if eps_s <= 0.0:
        raise ValueError(f"eps_s must be positive, got {eps_s}")
    return math.ceil(_BLANKET_CONSTANT * math.log(2.0 / delta) * d_prime / eps_s**2)


# ---------------------------------------------------------------------------
# Utility (Section VI-C)
# ---------------------------------------------------------------------------

def peos_variance_solh(
    eps_c: float,
    n: int,
    n_r: int,
    delta: float,
    d_prime: Optional[int] = None,
) -> float:
    """PEOS+SOLH estimation variance after Eq. (6) post-processing.

    ``Var = (n + n_r) b^2 / (n^2 (b + n_r - a d')^2 (d' - 1))`` with
    ``a = 14 ln(2/delta)/eps_c^2`` and ``b = n - 1`` (Section VI-C).  With
    ``d_prime=None`` the optimal value from :func:`peos_optimal_d_prime` is
    used.
    """
    if d_prime is None:
        d_prime = peos_optimal_d_prime(eps_c, n, n_r, delta)
    eps_l = invert_peos_solh(eps_c, d_prime, n, n_r, delta)
    if eps_l is None:
        raise ValueError(
            f"PEOS+SOLH cannot meet eps_c={eps_c} with d'={d_prime}, n_r={n_r}"
        )
    a = _BLANKET_CONSTANT * math.log(2.0 / delta) / eps_c**2
    b = n - 1
    denominator = (b + n_r - a * d_prime) ** 2 * (d_prime - 1)
    return (n + n_r) * b**2 / (n**2 * denominator)


def peos_variance_grr(
    eps_c: float, n: int, n_r: int, d: int, delta: float
) -> float:
    """PEOS+GRR estimation variance after Eq. (6) post-processing.

    Proposition 4 with ``n + n_r`` total reports and the ``(n+n_r)/n^2``
    rescaling factor.
    """
    eps_l = invert_peos_grr(eps_c, d, n, n_r, delta)
    if eps_l is None:
        raise ValueError(
            f"PEOS+GRR cannot meet eps_c={eps_c} with d={d}, n_r={n_r}"
        )
    a = _BLANKET_CONSTANT * math.log(2.0 / delta) / eps_c**2
    b = n - 1
    # m = total blanket-equivalent budget observed by the server
    m = b / (a - n_r / d) if a > n_r / d else math.inf
    if math.isinf(m):
        # Fake reports alone satisfy the target; variance is dominated by
        # the d-ary uniform noise of the n_r fake reports.
        return (n + n_r) / n**2 * (1.0 / d) * (1.0 - 1.0 / d)
    return (n + n_r) / n**2 * (m - 1.0) / ((m - d) ** 2)


def peos_optimal_d_prime(eps_c: float, n: int, n_r: int, delta: float) -> int:
    """Variance-optimal ``d'`` for PEOS+SOLH under ``n_r`` fake reports.

    Setting the derivative of the Section VI-C variance to zero gives
    ``d' = ((b + n_r)/a + 2) / 3`` with ``a = 14 ln(2/delta)/eps_c^2`` and
    ``b = n - 1``.  (The paper prints ``n - 1 - n_r`` at this step; the
    algebra of its own variance expression yields ``n - 1 + n_r``, which is
    what the exact integer search in :func:`peos_search_d_prime` confirms.
    At ``n_r = 0`` both reduce to Eq. (5).)
    """
    _check(n, n_r, delta)
    a = _BLANKET_CONSTANT * math.log(2.0 / delta) / eps_c**2
    b = n - 1
    return max(2, int(((b + n_r) / a + 2.0) // 3.0))


def peos_search_d_prime(
    eps_c: float, n: int, n_r: int, delta: float, d_max: Optional[int] = None
) -> int:
    """Exact integer-search optimum of the PEOS+SOLH variance over ``d'``.

    Scans ``d' in [2, d_max]`` (default: twice the closed-form optimum) and
    returns the feasible minimiser.  Used to validate the closed form and by
    callers who prefer robustness over speed.
    """
    closed_form = peos_optimal_d_prime(eps_c, n, n_r, delta)
    if d_max is None:
        d_max = max(8, 2 * closed_form)
    best_d, best_var = 2, math.inf
    for d_prime in range(2, d_max + 1):
        if invert_peos_solh(eps_c, d_prime, n, n_r, delta) is None:
            continue
        var = peos_variance_solh(eps_c, n, n_r, delta, d_prime=d_prime)
        if var < best_var:
            best_d, best_var = d_prime, var
    return best_d


@dataclass(frozen=True)
class PeosGuarantees:
    """Full privacy picture of one PEOS configuration (Section VI-D).

    ``eps_server`` bounds ``Adv`` (server alone), ``eps_collusion`` bounds
    ``Adv_u`` (server + all other users), and ``eps_local`` bounds ``Adv_a``
    (server + more than ``floor(r/2)`` shufflers, i.e. the raw LDP guarantee).
    """

    eps_server: float
    eps_collusion: float
    eps_local: float
    delta: float
    d_prime: int
    n_r: int

    def dominates(self, other: "PeosGuarantees") -> bool:
        """True when every guarantee is at least as strong as ``other``'s."""
        return (
            self.eps_server <= other.eps_server
            and self.eps_collusion <= other.eps_collusion
            and self.eps_local <= other.eps_local
        )


def analyze_peos_solh(
    eps_l: float, d_prime: int, n: int, n_r: int, delta: float
) -> PeosGuarantees:
    """Compute all three adversary guarantees for a PEOS+SOLH configuration."""
    return PeosGuarantees(
        eps_server=peos_epsilon_server_solh(eps_l, d_prime, n, n_r, delta),
        eps_collusion=peos_epsilon_collusion_solh(d_prime, n_r, delta),
        eps_local=eps_l,
        delta=delta,
        d_prime=d_prime,
        n_r=n_r,
    )
