"""Differential-privacy composition accounting.

Multi-round workflows — TreeHist's six rounds are the paper's example —
must split a total budget ``(eps, delta)`` across ``T`` adaptive queries.
Two standard allocators are provided:

* **basic** sequential composition: ``eps_i = eps / T``,
  ``delta_i = delta / T`` (what the paper's evaluation uses);
* **advanced** composition (Dwork-Rothblum-Vadhan): for ``T`` rounds at
  per-round ``eps_i``, the total is
  ``eps_total = sqrt(2 T ln(1/delta')) eps_i + T eps_i (e^{eps_i} - 1)``
  with slack ``delta_total = T delta_i + delta'``.  Inverting it gives a
  larger per-round budget than ``eps / T`` once ``T`` is big enough, which
  is the optional improvement the TreeHist ablation measures.

Also includes the group-privacy helper used by the removal/replacement
conversion of Section IV-B4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class BudgetSplit:
    """A per-round budget allocation for ``rounds`` adaptive queries."""

    eps_per_round: float
    delta_per_round: float
    rounds: int
    method: str

    @property
    def total_eps_basic(self) -> float:
        """The basic-composition total of this split (sanity bound)."""
        return self.eps_per_round * self.rounds


def basic_composition(eps: float, delta: float, rounds: int) -> BudgetSplit:
    """Split ``(eps, delta)`` across ``rounds`` by basic composition."""
    _validate(eps, delta, rounds)
    return BudgetSplit(
        eps_per_round=eps / rounds,
        delta_per_round=delta / rounds,
        rounds=rounds,
        method="basic",
    )


def advanced_composition_total(
    eps_per_round: float, rounds: int, delta_slack: float
) -> float:
    """Total epsilon of ``rounds`` eps-DP mechanisms under advanced
    composition with slack ``delta_slack``."""
    if eps_per_round <= 0.0:
        raise ValueError(f"eps must be positive, got {eps_per_round}")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if not 0.0 < delta_slack < 1.0:
        raise ValueError(f"delta slack must be in (0, 1), got {delta_slack}")
    return (
        math.sqrt(2.0 * rounds * math.log(1.0 / delta_slack)) * eps_per_round
        + rounds * eps_per_round * (math.exp(eps_per_round) - 1.0)
    )


def advanced_composition(
    eps: float, delta: float, rounds: int, slack_fraction: float = 0.5
) -> BudgetSplit:
    """Split ``(eps, delta)`` across ``rounds`` by advanced composition.

    ``slack_fraction`` of ``delta`` is reserved as the composition slack
    ``delta'``; the rest is divided among the rounds.  The per-round
    epsilon is found by bisection on the (monotone) total; when ``rounds``
    is small the result can be *below* ``eps / rounds`` — in that regime
    the allocator transparently returns the basic split, so callers always
    get the better of the two.
    """
    _validate(eps, delta, rounds)
    if not 0.0 < slack_fraction < 1.0:
        raise ValueError(f"slack fraction must be in (0, 1), got {slack_fraction}")
    delta_slack = delta * slack_fraction
    delta_rounds = delta * (1.0 - slack_fraction) / rounds

    low, high = 0.0, eps  # per-round budget cannot exceed the total
    for __ in range(100):
        mid = (low + high) / 2.0
        if mid <= 0.0:
            break
        if advanced_composition_total(mid, rounds, delta_slack) <= eps:
            low = mid
        else:
            high = mid
    per_round = low
    if per_round <= eps / rounds:
        return basic_composition(eps, delta, rounds)
    return BudgetSplit(
        eps_per_round=per_round,
        delta_per_round=delta_rounds,
        rounds=rounds,
        method="advanced",
    )


def split_budget(
    eps: float, delta: float, rounds: int, method: str = "basic"
) -> BudgetSplit:
    """Dispatch on the allocation method name ("basic" or "advanced")."""
    if method == "basic":
        return basic_composition(eps, delta, rounds)
    if method == "advanced":
        return advanced_composition(eps, delta, rounds)
    raise ValueError(f"unknown composition method: {method!r}")


def group_privacy_epsilon(eps: float, group_size: int) -> float:
    """Pure-DP group privacy: ``k`` correlated changes cost ``k * eps``.

    Section IV-B4's removal-to-replacement conversion is the ``k = 2``
    case: replacing a value is removing one and adding another.
    """
    if group_size < 1:
        raise ValueError(f"group size must be >= 1, got {group_size}")
    return eps * group_size


def _validate(eps: float, delta: float, rounds: int) -> None:
    if eps <= 0.0:
        raise ValueError(f"eps must be positive, got {eps}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
