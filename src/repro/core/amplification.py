"""Privacy-amplification accounting for the shuffle model.

This module implements, as plain closed-form functions:

* Theorem 1 (binomial mechanism): the central ``(eps_c, delta)`` guarantee
  provided by ``Bin(n, p)`` noise on each histogram component.
* The three amplification bounds compared in Table I —
  EFMRTT'19 [32], CSUZZ'19 [21], and the privacy-blanket bound BBGN'19 [9]
  that the paper builds on.
* Theorem 2 (unary encoding after shuffling) and Theorem 3 (SOLH after
  shuffling).
* The *inversions* of those bounds: given a central target ``eps_c`` the
  library must pick the local budget ``eps_l`` each user actually spends.
  Every inversion returns ``None`` when the bound admits no amplification at
  that target (the regime where SH collapses in Figure 3), and callers fall
  back to ``eps_l = eps_c``.

Conventions: ``n`` is the number of users, ``d`` the value-domain size,
``d_prime`` the hash output domain, ``delta`` the additive DP slack, and all
epsilons are natural-log based.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

#: The constant ``14`` of Theorem 3.1 in BBGN'19, as used throughout the paper.
_BLANKET_CONSTANT = 14.0


def _check_common(n: int, delta: float) -> None:
    if n < 2:
        raise ValueError(f"need at least two users, got n={n}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")


def binomial_mechanism_epsilon(n: int, p: float, delta: float) -> float:
    """Theorem 1: the ``eps_c`` of binomial noise ``Bin(n, p)`` per component.

    ``eps_c = sqrt(14 ln(2/delta) / (n p))``.  Valid (i.e. meaningful) when
    the result is at most 1, mirroring the theorem's applicability condition.
    """
    _check_common(n, delta)
    if not 0.0 < p <= 1.0:
        raise ValueError(f"p must be in (0, 1], got {p}")
    return math.sqrt(_BLANKET_CONSTANT * math.log(2.0 / delta) / (n * p))


def grr_blanket_gamma(eps_l: float, d: int) -> float:
    """Total-variation blanket mass of GRR: ``gamma = d / (e^eps_l + d - 1)``."""
    if d < 2:
        raise ValueError(f"domain size must be >= 2, got d={d}")
    return d / (math.exp(eps_l) + d - 1)


# ---------------------------------------------------------------------------
# Forward bounds (Table I rows, Theorems 2-3): eps_l -> eps_c
# ---------------------------------------------------------------------------

def efmrtt_amplified_epsilon(eps_l: float, n: int, delta: float) -> float:
    """Table I row 1 (EFMRTT'19 [32]): ``sqrt(144 ln(1/delta) eps_l^2 / n)``.

    Applicability requires ``eps_l < 1/2``; raises outside that regime.
    """
    _check_common(n, delta)
    if eps_l >= 0.5:
        raise ValueError(f"EFMRTT'19 requires eps_l < 1/2, got {eps_l}")
    return math.sqrt(144.0 * math.log(1.0 / delta) * eps_l**2 / n)


def csuzz_amplified_epsilon(eps_l: float, n: int, delta: float) -> float:
    """Table I row 2 (CSUZZ'19 [21], binary domain):
    ``sqrt(32 ln(4/delta) (e^eps_l + 1) / n)``.
    """
    _check_common(n, delta)
    return math.sqrt(32.0 * math.log(4.0 / delta) * (math.exp(eps_l) + 1.0) / n)


def grr_amplified_epsilon(eps_l: float, n: int, d: int, delta: float) -> float:
    """Table I row 3 (BBGN'19 [9]) — GRR after shuffling:
    ``eps_c = sqrt(14 ln(2/delta) (e^eps_l + d - 1) / (n - 1))``.
    """
    _check_common(n, delta)
    if d < 2:
        raise ValueError(f"domain size must be >= 2, got d={d}")
    return math.sqrt(
        _BLANKET_CONSTANT * math.log(2.0 / delta) * (math.exp(eps_l) + d - 1)
        / (n - 1)
    )


def unary_amplified_epsilon(eps_l: float, n: int, delta: float) -> float:
    """Theorem 2 — an ``eps_l``-LDP unary-encoding method after shuffling:
    ``eps_c = 2 sqrt(14 ln(4/delta) (e^{eps_l/2} + 1) / (n - 1))``.
    """
    _check_common(n, delta)
    return 2.0 * math.sqrt(
        _BLANKET_CONSTANT * math.log(4.0 / delta)
        * (math.exp(eps_l / 2.0) + 1.0) / (n - 1)
    )


def solh_amplified_epsilon(
    eps_l: float, n: int, d_prime: int, delta: float
) -> float:
    """Theorem 3 — SOLH after shuffling:
    ``eps_c = sqrt(14 ln(2/delta) (e^eps_l + d' - 1) / (n - 1))``.
    """
    _check_common(n, delta)
    if d_prime < 2:
        raise ValueError(f"hash output domain must be >= 2, got {d_prime}")
    return math.sqrt(
        _BLANKET_CONSTANT * math.log(2.0 / delta)
        * (math.exp(eps_l) + d_prime - 1) / (n - 1)
    )


# ---------------------------------------------------------------------------
# Inversions: eps_c -> eps_l (None means "no amplification possible")
# ---------------------------------------------------------------------------

def blanket_budget(eps_c: float, n: int, delta: float) -> float:
    """The quantity ``m = eps_c^2 (n-1) / (14 ln(2/delta))``.

    ``m`` is the privacy-blanket "budget": BBGN-style bounds all take the
    form ``e^{eps_l} + (support size) - 1 = m``, so ``m`` caps how much
    probability mass the blanket must supply.  Larger ``m`` means more local
    budget for the same central guarantee.
    """
    _check_common(n, delta)
    if eps_c <= 0.0:
        raise ValueError(f"eps_c must be positive, got {eps_c}")
    return eps_c**2 * (n - 1) / (_BLANKET_CONSTANT * math.log(2.0 / delta))


def invert_grr(eps_c: float, n: int, d: int, delta: float) -> Optional[float]:
    """Largest ``eps_l`` such that shuffled GRR satisfies ``(eps_c, delta)``-DP.

    Solves ``e^{eps_l} = m - d + 1`` for the BBGN'19 bound.  Returns ``None``
    when ``m <= d`` (then ``e^{eps_l} <= 1``: shuffling gives no
    amplification and the caller should run plain ``eps_c``-LDP GRR).
    """
    if d < 2:
        raise ValueError(f"domain size must be >= 2, got d={d}")
    m = blanket_budget(eps_c, n, delta)
    if m - d + 1 <= 1.0:
        return None
    return math.log(m - d + 1)


def invert_unary(eps_c: float, n: int, delta: float) -> Optional[float]:
    """Largest ``eps_l`` for shuffled unary encoding (Theorem 2 inverted).

    Solves ``e^{eps_l/2} + 1 = eps_c^2 (n-1) / (56 ln(4/delta))``; returns
    ``None`` when the right-hand side is at most 2.
    """
    _check_common(n, delta)
    if eps_c <= 0.0:
        raise ValueError(f"eps_c must be positive, got {eps_c}")
    m2 = eps_c**2 * (n - 1) / (4.0 * _BLANKET_CONSTANT * math.log(4.0 / delta))
    if m2 - 1.0 <= 1.0:
        return None
    return 2.0 * math.log(m2 - 1.0)


def invert_unary_removal(eps_c: float, n: int, delta: float) -> Optional[float]:
    """Largest ``eps_l`` for the removal-LDP unary method (RAP_R, [31]).

    Removal-LDP does not halve the budget across the two flipped bits, so a
    removal method at ``eps_c`` behaves like RAP at ``2 eps_c`` (Section
    IV-B4): ``e^{eps_l} + 1 = eps_c^2 (n-1) / (14 ln(4/delta))``.
    """
    _check_common(n, delta)
    if eps_c <= 0.0:
        raise ValueError(f"eps_c must be positive, got {eps_c}")
    m2 = eps_c**2 * (n - 1) / (_BLANKET_CONSTANT * math.log(4.0 / delta))
    if m2 - 1.0 <= 1.0:
        return None
    return math.log(m2 - 1.0)


def invert_solh(
    eps_c: float, n: int, d_prime: int, delta: float
) -> Optional[float]:
    """Largest ``eps_l`` for SOLH with a *given* ``d_prime`` (Theorem 3).

    Solves ``e^{eps_l} = m - d' + 1``; ``None`` when that is at most 1.
    """
    if d_prime < 2:
        raise ValueError(f"hash output domain must be >= 2, got {d_prime}")
    m = blanket_budget(eps_c, n, delta)
    if m - d_prime + 1 <= 1.0:
        return None
    return math.log(m - d_prime + 1)


def solh_optimal_d_prime(eps_c: float, n: int, delta: float) -> int:
    """Equation (5): the variance-optimal hash domain ``d' = (m + 2) / 3``.

    Implemented as ``floor((m+2)/3)`` clamped to at least 2, exactly as the
    paper's implementation note prescribes.
    """
    m = blanket_budget(eps_c, n, delta)
    return max(2, int((m + 2.0) // 3.0))


@dataclass(frozen=True)
class ShuffleAmplification:
    """Resolved shuffle-model parameters for one mechanism run.

    Attributes
    ----------
    eps_c:
        The central privacy target against the server (``Adv``).
    eps_l:
        The local budget each user's randomizer actually spends.  When
        ``amplified`` is False this equals ``eps_c`` (fallback, no benefit).
    delta:
        The central DP slack.
    amplified:
        Whether the shuffle bound produced ``eps_l > eps_c``.
    """

    eps_c: float
    eps_l: float
    delta: float
    amplified: bool

    @property
    def gain(self) -> float:
        """Multiplicative budget gain ``eps_l / eps_c`` from shuffling."""
        return self.eps_l / self.eps_c


def resolve_grr(eps_c: float, n: int, d: int, delta: float) -> ShuffleAmplification:
    """Resolve the SH (shuffled GRR) local budget for a central target.

    Falls back to ``eps_l = eps_c`` below the amplification threshold
    ``eps_c < sqrt(14 ln(2/delta) d / (n-1))`` — the regime where Figure 3
    shows SH degrading to worse-than-baseline accuracy.
    """
    eps_l = invert_grr(eps_c, n, d, delta)
    if eps_l is None or eps_l <= eps_c:
        return ShuffleAmplification(eps_c, eps_c, delta, amplified=False)
    return ShuffleAmplification(eps_c, eps_l, delta, amplified=True)


def resolve_unary(eps_c: float, n: int, delta: float) -> ShuffleAmplification:
    """Resolve the shuffled-RAPPOR local budget for a central target."""
    eps_l = invert_unary(eps_c, n, delta)
    if eps_l is None or eps_l <= eps_c:
        return ShuffleAmplification(eps_c, eps_c, delta, amplified=False)
    return ShuffleAmplification(eps_c, eps_l, delta, amplified=True)


def resolve_unary_removal(
    eps_c: float, n: int, delta: float
) -> ShuffleAmplification:
    """Resolve the removal-LDP unary (RAP_R) local budget."""
    eps_l = invert_unary_removal(eps_c, n, delta)
    if eps_l is None or eps_l <= eps_c:
        return ShuffleAmplification(eps_c, eps_c, delta, amplified=False)
    return ShuffleAmplification(eps_c, eps_l, delta, amplified=True)


def resolve_solh(
    eps_c: float, n: int, delta: float, d_prime: Optional[int] = None
) -> tuple[ShuffleAmplification, int]:
    """Resolve SOLH's ``(eps_l, d')`` for a central target.

    When ``d_prime`` is None the Eq. (5) optimum is used; if even ``d' = 2``
    then admits no amplification, falls back to local OLH at
    ``eps_l = eps_c`` with the LDP-optimal ``d' = e^{eps_c} + 1``.

    An *explicit* ``d_prime`` is always honored (Table II's fixed-``d'``
    ablation): when Theorem 3 admits no amplification at that ``d'`` the
    mechanism runs locally at ``eps_l = eps_c`` with the requested domain —
    the catastrophic mis-tuning regime the paper demonstrates.

    Returns the amplification record and the hash domain to use.
    """
    explicit = d_prime is not None
    if d_prime is None:
        d_prime = solh_optimal_d_prime(eps_c, n, delta)
    eps_l = invert_solh(eps_c, n, d_prime, delta)
    if eps_l is not None and eps_l > eps_c:
        return ShuffleAmplification(eps_c, eps_l, delta, amplified=True), d_prime
    if explicit:
        return ShuffleAmplification(eps_c, eps_c, delta, amplified=False), d_prime
    # Retry at the smallest possible hash domain before giving up.
    eps_l = invert_solh(eps_c, n, 2, delta)
    if eps_l is not None and eps_l > eps_c:
        return ShuffleAmplification(eps_c, eps_l, delta, amplified=True), 2
    fallback_d = max(2, int(round(math.exp(eps_c))) + 1)
    return ShuffleAmplification(eps_c, eps_c, delta, amplified=False), fallback_d


def grr_amplification_threshold(n: int, d: int, delta: float) -> float:
    """The smallest ``eps_c`` at which shuffled GRR amplifies at all:
    ``sqrt(14 ln(2/delta) d / (n - 1))`` (condition column of Table I).
    """
    _check_common(n, delta)
    return math.sqrt(_BLANKET_CONSTANT * math.log(2.0 / delta) * d / (n - 1))
