"""Parameter selection for PEOS deployments (Section VI-D "Choosing Parameters").

Given desired privacy levels ``eps_1, eps_2, eps_3`` against the three
adversaries ``Adv`` (server), ``Adv_u`` (server + other users), ``Adv_a``
(server + majority of shufflers), plus ``(n, d, delta)``, configure PEOS:

1. ``Adv_a`` sees raw LDP reports, so the local budget must satisfy
   ``eps_l <= eps_3``.
2. ``Adv_u`` is protected only by fake reports, fixing a lower bound on
   ``n_r`` given ``d'`` (Corollary 8's ``eps_s``).
3. ``Adv`` combines both noise sources; meeting ``eps_c <= eps_1`` may need
   extra fake reports or a lower ``eps_l``.

The paper prescribes a numerical search over ``(n_r, eps_l, d')`` using the
closed-form privacy and utility expressions; :func:`plan_peos` implements
that search and returns the utility-optimal feasible configuration for both
GRR and SOLH, selecting the better one (Section IV-B3's comparison rule).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .peos_analysis import (
    peos_epsilon_collusion_grr,
    peos_epsilon_collusion_solh,
    peos_epsilon_server_grr,
    peos_epsilon_server_solh,
    peos_optimal_d_prime,
    peos_variance_grr,
    peos_variance_solh,
    required_fake_reports,
)


@dataclass(frozen=True)
class PeosPlan:
    """A fully resolved PEOS configuration.

    Attributes
    ----------
    mechanism:
        ``"grr"`` or ``"solh"`` — the frequency oracle to deploy.
    eps_l:
        Local budget each user spends.
    d_prime:
        Report domain (for GRR this equals the value domain ``d``).
    n_r:
        Number of fake reports the shufflers jointly insert.
    variance:
        Predicted per-value estimation variance (Section VI-C).
    eps_server / eps_collusion / eps_local:
        Achieved guarantees against ``Adv`` / ``Adv_u`` / ``Adv_a``.
    d:
        The value-domain size the plan was computed for (None for
        hand-built plans) — consumers like
        :class:`~repro.service.pipeline.StreamConfig` cross-check it so a
        plan cannot silently be deployed against a different domain.
    """

    mechanism: str
    eps_l: float
    d_prime: int
    n_r: int
    variance: float
    eps_server: float
    eps_collusion: float
    eps_local: float
    delta: float
    d: Optional[int] = None


class InfeasiblePlanError(ValueError):
    """Raised when no PEOS configuration meets the requested guarantees."""


def _solh_candidate(
    eps_1: float,
    eps_2: float,
    eps_3: float,
    n: int,
    d: int,
    delta: float,
    n_r_grid: int,
    max_n_r: int,
) -> Optional[PeosPlan]:
    """Best feasible SOLH plan, or None."""
    best: Optional[PeosPlan] = None
    # n_r must at least cover eps_2 at the smallest d'; sweep upward from
    # there on a geometric grid (variance is monotone in n_r past the
    # feasibility knee, so a modest grid suffices).
    n_r_floor = required_fake_reports(eps_2, 2, delta)
    if n_r_floor > max_n_r:
        return None
    for step in range(n_r_grid):
        n_r = min(max_n_r, int(n_r_floor * (1.25**step)))
        d_prime = peos_optimal_d_prime(eps_1, n, n_r, delta)
        # Enforce eps_2: larger d' weakens the collusion guarantee, so shrink
        # d' until the fake reports cover it.
        while d_prime > 2 and peos_epsilon_collusion_solh(d_prime, n_r, delta) > eps_2:
            d_prime -= max(1, d_prime // 10)
        if peos_epsilon_collusion_solh(d_prime, n_r, delta) > eps_2:
            continue
        # Enforce eps_1 and eps_3 through the local budget.
        implied_eps_l = _max_eps_l_solh(eps_1, d_prime, n, n_r, delta)
        eps_l = min(eps_3, implied_eps_l)
        if eps_l <= 0.0:
            continue
        eps_server = peos_epsilon_server_solh(eps_l, d_prime, n, n_r, delta)
        if eps_server > eps_1 * (1.0 + 1e-9):
            continue
        # The Section VI-C closed form assumes eps_l saturates the server
        # bound; when the eps_3 cap binds, price the capped budget instead.
        variance = _solh_variance_from_eps_l(eps_l, d_prime, n, n_r)
        plan = PeosPlan(
            mechanism="solh",
            eps_l=eps_l,
            d_prime=d_prime,
            n_r=n_r,
            variance=variance,
            eps_server=eps_server,
            eps_collusion=peos_epsilon_collusion_solh(d_prime, n_r, delta),
            eps_local=eps_l,
            delta=delta,
            d=d,
        )
        if best is None or plan.variance < best.variance:
            best = plan
    return best


def _grr_candidate(
    eps_1: float,
    eps_2: float,
    eps_3: float,
    n: int,
    d: int,
    delta: float,
    n_r_grid: int,
    max_n_r: int,
) -> Optional[PeosPlan]:
    """Best feasible GRR plan, or None."""
    best: Optional[PeosPlan] = None
    n_r_floor = required_fake_reports(eps_2, d, delta)
    if n_r_floor > max_n_r:
        return None
    for step in range(n_r_grid):
        n_r = min(max_n_r, int(n_r_floor * (1.25**step)))
        if peos_epsilon_collusion_grr(d, n_r, delta) > eps_2:
            continue
        eps_l = min(eps_3, _max_eps_l_grr(eps_1, d, n, n_r, delta))
        if eps_l <= 0.0:
            continue
        eps_server = peos_epsilon_server_grr(eps_l, d, n, n_r, delta)
        if eps_server > eps_1 * (1.0 + 1e-9):
            continue
        variance = _grr_variance_from_eps_l(eps_l, d, n, n_r)
        plan = PeosPlan(
            mechanism="grr",
            eps_l=eps_l,
            d_prime=d,
            n_r=n_r,
            variance=variance,
            eps_server=eps_server,
            eps_collusion=peos_epsilon_collusion_grr(d, n_r, delta),
            eps_local=eps_l,
            delta=delta,
            d=d,
        )
        if best is None or plan.variance < best.variance:
            best = plan
    return best


def _max_eps_l_solh(
    eps_1: float, d_prime: int, n: int, n_r: int, delta: float
) -> float:
    """Largest eps_l meeting the server target, +inf if unconstrained."""
    from .peos_analysis import invert_peos_solh

    eps_l = invert_peos_solh(eps_1, d_prime, n, n_r, delta)
    if eps_l is None:
        return 0.0
    return eps_l


def _max_eps_l_grr(eps_1: float, d: int, n: int, n_r: int, delta: float) -> float:
    """GRR counterpart of :func:`_max_eps_l_solh`."""
    from .peos_analysis import invert_peos_grr

    eps_l = invert_peos_grr(eps_1, d, n, n_r, delta)
    if eps_l is None:
        return 0.0
    return eps_l


def _solh_variance_from_eps_l(eps_l: float, d_prime: int, n: int, n_r: int) -> float:
    """SOLH variance with ``n + n_r`` reports at an explicit local budget.

    Eq. (4) over ``n + n_r`` reports, rescaled by ``((n+n_r)/n)^2`` for the
    Eq. (6) post-processing: ``(n+n_r)/n^2 * (e+d'-1)^2/((e-1)^2 (d'-1))``.
    """
    e = math.exp(eps_l)
    per_report = (e + d_prime - 1.0) ** 2 / ((e - 1.0) ** 2 * (d_prime - 1.0))
    return (n + n_r) / n**2 * per_report


def _grr_variance_from_eps_l(eps_l: float, d: int, n: int, n_r: int) -> float:
    """GRR variance with ``n + n_r`` reports at an explicit local budget.

    Proposition 4's per-report form over ``n + n_r`` reports, rescaled by
    ``((n+n_r)/n)^2``: ``(n+n_r)/n^2 * (e+d-2)/(e-1)^2``.
    """
    e = math.exp(eps_l)
    per_report = (e + d - 2.0) / ((e - 1.0) ** 2)
    return (n + n_r) / n**2 * per_report


def plan_peos(
    eps_1: float,
    eps_2: float,
    eps_3: float,
    n: int,
    d: int,
    delta: float,
    n_r_grid: int = 32,
    max_fake_factor: float = 10.0,
    mechanism: Optional[str] = None,
) -> PeosPlan:
    """Find the utility-optimal PEOS configuration meeting all three targets.

    Parameters
    ----------
    eps_1, eps_2, eps_3:
        Privacy budgets against ``Adv``, ``Adv_u``, ``Adv_a``.  Must satisfy
        ``eps_1 <= eps_2 <= eps_3`` (stronger guarantees against stronger
        positions of the adversary would be vacuous otherwise).
    n, d, delta:
        Population size, value-domain size, and DP slack.
    n_r_grid:
        Number of geometric steps in the fake-report sweep.
    max_fake_factor:
        Practicality cap: the shufflers will not inject more than
        ``max_fake_factor * n`` fake reports (beyond that the protocol
        technically meets the targets but the estimate is useless and the
        communication blows up).
    mechanism:
        Restrict the search to one candidate: ``"grr"``, ``"solh"``, or
        None (default) for the paper's free choice between the two.  A
        deployment pinned to a mechanism (e.g. via the facade's
        ``DeploymentConfig``) plans under this restriction.

    Raises
    ------
    InfeasiblePlanError
        If no allowed candidate can meet the targets at any swept ``n_r``.
    """
    if not eps_1 <= eps_2 <= eps_3:
        raise ValueError(
            f"expected eps_1 <= eps_2 <= eps_3, got {eps_1}, {eps_2}, {eps_3}"
        )
    if mechanism not in (None, "grr", "solh"):
        raise ValueError(
            f"mechanism restriction must be 'grr', 'solh', or None, "
            f"got {mechanism!r}"
        )
    max_n_r = int(max_fake_factor * n)
    candidates = []
    if mechanism in (None, "solh"):
        candidates.append(
            _solh_candidate(eps_1, eps_2, eps_3, n, d, delta, n_r_grid, max_n_r)
        )
    if mechanism in (None, "grr"):
        candidates.append(
            _grr_candidate(eps_1, eps_2, eps_3, n, d, delta, n_r_grid, max_n_r)
        )
    candidates = [plan for plan in candidates if plan is not None]
    if not candidates:
        restriction = f" (restricted to {mechanism})" if mechanism else ""
        raise InfeasiblePlanError(
            f"no PEOS configuration{restriction} meets "
            f"eps=({eps_1}, {eps_2}, {eps_3}) with n={n}, d={d}, delta={delta}"
        )
    return min(candidates, key=lambda plan: plan.variance)
