"""Shared configuration-error type for every front-door layer.

The facade (:mod:`repro.api`), the streaming service's
:class:`~repro.service.pipeline.StreamConfig`, and any future deployment
surface raise one exception type for invalid static configuration:
:class:`ConfigError`, a ``ValueError`` that names the offending field.
Catching it is therefore enough to handle *any* misconfiguration uniformly,
and the ``field`` attribute lets callers (CLIs, web layers) point at the
exact knob to fix — instead of a numpy shape error surfacing three layers
down.

This lives in :mod:`repro.core` (not :mod:`repro.api`) because the service
layer validates eagerly too and must not import the facade that wraps it.
"""

from __future__ import annotations


class ConfigError(ValueError):
    """Invalid static configuration, attributed to one named field.

    ``field`` is the dataclass attribute / parameter name the message is
    about (``"flush_size"``, ``"mechanism"``, ...); the string form always
    leads with it so even unstructured logs stay actionable.
    """

    def __init__(self, field: str, message: str):
        self.field = str(field)
        super().__init__(f"{self.field}: {message}")


# Shared field validators: the facade's DeploymentConfig and the service's
# StreamConfig check the same deployment knobs; one definition keeps the
# allowed sets and messages from drifting between the two layers.


def validate_domain_size(d: int) -> None:
    if d < 2:
        raise ConfigError("d", f"domain size must be >= 2, got {d}")


def validate_backend_name(backend: str, registered: tuple) -> None:
    if backend not in registered:
        raise ConfigError(
            "backend",
            f"unknown shuffle backend {backend!r} "
            f"(registered: {', '.join(registered)})",
        )


def validate_shuffler_count(r: int) -> None:
    if r < 1:
        raise ConfigError("r", f"need at least one shuffler, got {r}")


def validate_composition(composition: str) -> None:
    if composition not in ("basic", "advanced"):
        raise ConfigError(
            "composition",
            f"must be 'basic' or 'advanced', got {composition!r}",
        )
