"""The ordinal report codec: one dtype discipline for the whole stack.

PEOS operates on the *ordinal* report group ``Z_M`` (Section VI-A2): every
shuffleable mechanism serializes its reports to integers in ``[0, M)``
before secret sharing, fake injection, and shuffling.  Three layers used to
reimplement the same int64-vs-object decision independently — the
frequency oracles (``encode_reports``/``decode_reports``), the PEOS
protocol (``concat_encoded``/``_concat_pad``/``_zeros``), and the
streaming service buffers.  :class:`OrdinalCodec` centralizes it:

* ``M < 2**62`` — everything stays in vectorized int64 numpy arrays.
  This is the common case (GRR reports; local hashing with the 32-bit
  xxHash seed family, group ``2^32 * d'``) and the hot path: packing or
  unpacking ``(seed, value)`` pairs for 10^5 reports is a handful of
  numpy ufunc calls instead of a Python loop per report.
* larger ``M`` — a single object-dtype fallback of exact Python ints,
  needed only for the 64-bit-seed Carter-Wegman family whose group
  ``2^64 * d'`` overflows 64-bit arithmetic.

The ``2**62`` margin (rather than ``2**63``) leaves headroom so that one
modular addition of two reduced residues can never overflow a signed
int64 — the invariant the secret-sharing layer relies on.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

#: groups below this bound use the int64 fast path; see module docstring
#: for why the margin is 2**62 and not 2**63.
INT64_SAFE_SPACE = 1 << 62

ArrayLike = Union[Sequence[int], np.ndarray]


class OrdinalCodec:
    """Vectorized encoding into the ordinal report group ``Z_M``.

    One instance per report space; every array-producing method returns
    the codec's dtype (int64 fast path or object fallback), so arrays
    from different call sites concatenate and share without copies or
    per-element coercion.
    """

    __slots__ = ("space", "fast")

    def __init__(self, space: int):
        space = int(space)
        if space < 1:
            raise ValueError(f"report space must be >= 1, got {space}")
        self.space = space
        self.fast = space < INT64_SAFE_SPACE

    def __repr__(self) -> str:
        path = "int64" if self.fast else "object"
        return f"OrdinalCodec(space={self.space}, path={path})"

    def __eq__(self, other) -> bool:
        return isinstance(other, OrdinalCodec) and other.space == self.space

    def __hash__(self) -> int:
        return hash((OrdinalCodec, self.space))

    @property
    def dtype(self):
        """The numpy dtype of every array this codec produces."""
        return np.dtype(np.int64) if self.fast else np.dtype(object)

    # -- array construction ------------------------------------------------

    def asarray(self, values: ArrayLike) -> np.ndarray:
        """Coerce encoded reports to the codec dtype (no range check)."""
        if self.fast:
            return np.asarray(values, dtype=np.int64)
        values = np.asarray(values)
        out = np.empty(len(values), dtype=object)
        out[:] = [int(v) for v in values]
        return out

    def zeros(self, n: int) -> np.ndarray:
        """An all-zero encoded array of length ``n``."""
        if self.fast:
            return np.zeros(n, dtype=np.int64)
        out = np.empty(n, dtype=object)
        out[:] = 0
        return out

    def concat(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Concatenate two encoded arrays in the codec dtype."""
        if self.fast:
            return np.concatenate(
                [np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64)]
            )
        out = np.empty(len(a) + len(b), dtype=object)
        out[: len(a)] = [int(x) for x in a]
        out[len(a):] = [int(x) for x in b]
        return out

    def pad_check(self, vec: ArrayLike, total: int) -> np.ndarray:
        """Coerce a share vector, asserting it already has ``total`` entries."""
        if len(vec) != total:
            raise ValueError(f"share vector length {len(vec)} != {total}")
        return self.asarray(vec)

    def uniform(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform draws from ``Z_M`` in the codec dtype."""
        return uniform_ordinal(self.space, size, rng)

    # -- validation --------------------------------------------------------

    def validate(self, encoded: ArrayLike, what: str = "encoded report") -> np.ndarray:
        """Coerce and range-check encoded reports against ``[0, M)``."""
        encoded = self.asarray(encoded)
        if len(encoded):
            low = encoded.min() if self.fast else min(int(v) for v in encoded)
            high = encoded.max() if self.fast else max(int(v) for v in encoded)
            if int(low) < 0 or int(high) >= self.space:
                raise ValueError(f"{what} outside [0, {self.space})")
        return encoded

    # -- pair packing (local-hashing reports) ------------------------------

    def pack_pairs(self, hi: ArrayLike, lo: ArrayLike, base: int) -> np.ndarray:
        """Pack ``(hi, lo)`` report pairs as ``hi * base + lo``.

        The local-hashing layout: ``hi`` is the hash seed, ``lo`` the
        perturbed hashed value in ``[0, base)``, and the codec's space is
        ``seed_space * base``.  Vectorized on the int64 fast path.
        """
        base = int(base)
        if self.fast:
            hi = np.asarray(hi).astype(np.int64)
            lo = np.asarray(lo, dtype=np.int64)
            return hi * base + lo
        out = np.empty(len(hi), dtype=object)
        out[:] = [int(h) * base + int(v) for h, v in zip(hi, lo)]
        return out

    def unpack_pairs(self, encoded: ArrayLike, base: int) -> tuple[np.ndarray, np.ndarray]:
        """Invert :meth:`pack_pairs`: return ``(hi, lo)`` int64 arrays.

        ``hi`` values must fit in uint64 (true for every seed family); on
        the object path exact Python division keeps them exact before the
        final cast.
        """
        base = int(base)
        if self.fast:
            encoded = np.asarray(encoded, dtype=np.int64)
            hi, lo = np.divmod(encoded, base)
            return hi.astype(np.uint64), lo
        hi = np.array([int(e) // base for e in encoded], dtype=np.uint64)
        lo = np.array([int(e) % base for e in encoded], dtype=np.int64)
        return hi, lo


def uniform_ordinal(m: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform draws from ``Z_M`` as int64 (small ``M``) or object array.

    For huge ``M`` the draw oversamples by 64 bits and reduces modulo
    ``M`` (rejection-free; statistical distance below ``2^-64``), which is
    standard practice for uniform sampling in large groups.
    """
    if m <= 0:
        raise ValueError(f"modulus must be positive, got {m}")
    if m < INT64_SAFE_SPACE:
        return rng.integers(0, m, size=size, dtype=np.int64)
    extra_words = (m.bit_length() + 64 + 63) // 64
    words = rng.integers(0, 1 << 64, size=(size, extra_words), dtype=np.uint64)
    out = np.empty(size, dtype=object)
    for i in range(size):
        acc = 0
        for w in words[i]:
            acc = (acc << 64) | int(w)
        out[i] = acc % m
    return out
